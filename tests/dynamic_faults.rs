//! Integration tests for the non-quiescent regime (§1): dynamic task
//! arrivals, work consumption, and link faults — the conditions the paper
//! says real systems impose and static schemes cannot handle.

use particle_plane::prelude::*;

#[test]
fn arrivals_plus_balancing_keep_cov_bounded() {
    let topo = Topology::torus(&[6, 6]);
    let mut engine = EngineBuilder::new(topo)
        .balancer(ParticlePlaneBalancer::new(PhysicsConfig::default()))
        .config(EngineConfig {
            arrival: ArrivalProcess::Poisson { rate: 10.0, size_min: 1.0, size_max: 1.0 },
            ..Default::default()
        })
        .seed(3)
        .build();
    engine.run_rounds(300);
    let r = engine.report();
    // Arrivals are uniform, so even unbalanced they stay moderate; the
    // balancer should keep the tail of the CoV series bounded.
    let tail: Vec<f64> = r.series.points().iter().rev().take(50).map(|&(_, v)| v).collect();
    let tail_mean = tail.iter().sum::<f64>() / tail.len() as f64;
    assert!(tail_mean < 1.0, "steady-state CoV {tail_mean}");
    assert!(r.total_load > 0.0);
}

#[test]
fn consumption_drains_the_system() {
    let topo = Topology::torus(&[4, 4]);
    let w = Workload::hotspot(16, 0, 64.0);
    let mut engine = EngineBuilder::new(topo)
        .workload(w)
        .balancer(ParticlePlaneBalancer::new(PhysicsConfig::default()))
        .config(EngineConfig { consume_rate: 0.5, ..Default::default() })
        .seed(5)
        .build();
    engine.run_rounds(400).drain(100.0);
    let r = engine.report();
    assert!(r.completed_tasks > 0, "tasks should complete");
    assert!(r.total_load < 64.0, "consumption should have drained load: {}", r.total_load);
}

#[test]
fn balancing_speeds_up_completion_under_hotspot() {
    // With work consumed at each node, spreading the hotspot lets idle
    // nodes contribute: the balanced system must finish more work.
    let run = |balance: bool| {
        let topo = Topology::torus(&[4, 4]);
        let w = Workload::hotspot(16, 0, 64.0);
        let mut builder = EngineBuilder::new(topo)
            .workload(w)
            .config(EngineConfig { consume_rate: 0.25, ..Default::default() })
            .seed(8);
        builder = if balance {
            builder.balancer(ParticlePlaneBalancer::new(PhysicsConfig::default()))
        } else {
            builder.balancer(NullBalancer)
        };
        let mut engine = builder.build();
        engine.run_rounds(60);
        engine.report().completed_tasks
    };
    let with = run(true);
    let without = run(false);
    assert!(with > without, "balancing should raise throughput: {with} vs {without} tasks done");
}

#[test]
fn fault_storm_does_not_lose_load() {
    let topo = Topology::torus(&[5, 5]);
    let links =
        LinkMap::uniform(&topo, LinkAttrs { bandwidth: 1.0, distance: 1.0, fault_prob: 0.3 });
    let w = Workload::hotspot(25, 0, 100.0);
    let mut engine = EngineBuilder::new(topo)
        .links(links)
        .workload(w)
        .balancer(ParticlePlaneBalancer::new(PhysicsConfig::default()))
        .config(EngineConfig {
            fault_model: Some(FaultModel { p_down: 0.1, p_up: 0.3 }),
            ..Default::default()
        })
        .seed(2)
        .build();
    for _ in 0..30 {
        engine.run_rounds(5);
        assert!((engine.system_load() - 100.0).abs() < 1e-6);
    }
    engine.drain(500.0);
    let r = engine.report();
    assert!(r.ledger.fault_count() > 0, "the storm should have hit some transfers");
    assert!((r.total_load - 100.0).abs() < 1e-6);
}

#[test]
fn balancer_still_converges_with_faulty_links() {
    let topo = Topology::torus(&[6, 6]);
    let links =
        LinkMap::uniform(&topo, LinkAttrs { bandwidth: 1.0, distance: 1.0, fault_prob: 0.1 });
    let w = Workload::hotspot(36, 0, 72.0);
    let before = Imbalance::of(&w.heights()).cov;
    let mut engine = EngineBuilder::new(topo)
        .links(links)
        .workload(w)
        .balancer(ParticlePlaneBalancer::new(PhysicsConfig::default()))
        .seed(4)
        .build();
    engine.run_rounds(400).drain(500.0);
    let r = engine.report();
    assert!(
        r.final_imbalance.cov < 0.3 * before,
        "cov {} should be well below {before}",
        r.final_imbalance.cov
    );
}

#[test]
fn heat_equals_traffic_for_particle_plane() {
    // §4.1's analogy: the heat billed by the energy model must correlate
    // (≈ perfectly) with measured load·weight traffic. Heterogeneous links
    // and fractional task sizes give the records real variance.
    let topo = Topology::torus(&[6, 6]);
    let links = LinkMap::random(&topo, 12, (0.5, 2.0), (0.5, 3.0), 0.0);
    let w = Workload::bimodal(36, 0.3, 6.3, 1.7, 9);
    let mut engine = EngineBuilder::new(topo)
        .links(links)
        .workload(w)
        .balancer(ParticlePlaneBalancer::new(PhysicsConfig::default()))
        .seed(6)
        .build();
    engine.run_rounds(200).drain(200.0);
    let r = engine.report();
    assert!(r.ledger.migration_count() > 10, "need data");
    let corr = r.ledger.heat_traffic_correlation().expect("variance present");
    assert!(corr > 0.99, "heat/traffic correlation {corr}");
}
