//! Theorem 2 integration tests: "the load balancing scheme converges to a
//! nearly perfect load balance" — exercised end-to-end on the standard
//! topology families with both hotspot and random initial distributions.

use particle_plane::prelude::*;

fn converge(topo: Topology, workload: Workload, rounds: u64, seed: u64) -> RunReport {
    let mut engine = EngineBuilder::new(topo)
        .workload(workload)
        .balancer(ParticlePlaneBalancer::new(PhysicsConfig::default()))
        .seed(seed)
        .build();
    engine.run_rounds(rounds).drain(500.0);
    engine.report()
}

#[test]
fn hotspot_spreads_on_mesh_torus_hypercube() {
    let cases: Vec<(Topology, &str)> = vec![
        (Topology::mesh(&[6, 6]), "mesh"),
        (Topology::torus(&[6, 6]), "torus"),
        (Topology::hypercube(5), "hypercube"),
    ];
    for (topo, name) in cases {
        let n = topo.node_count();
        let initial_cov = Imbalance::of(&Workload::hotspot(n, 0, 2.0 * n as f64).heights()).cov;
        let r = converge(topo, Workload::hotspot(n, 0, 2.0 * n as f64), 400, 3);
        assert!(
            r.final_imbalance.cov < 0.25 * initial_cov,
            "{name}: cov {} did not drop well below initial {initial_cov}",
            r.final_imbalance.cov
        );
        assert!(r.final_imbalance.cov < 1.0, "{name}: {}", r.final_imbalance.cov);
    }
}

#[test]
fn random_workload_balances_on_torus() {
    let topo = Topology::torus(&[8, 8]);
    let w = Workload::uniform_random(64, 8.0, 17);
    let before = Imbalance::of(&w.heights()).cov;
    let r = converge(topo, w, 200, 5);
    assert!(r.final_imbalance.cov < before, "cov {} vs initial {before}", r.final_imbalance.cov);
    assert!(r.final_imbalance.cov < 0.6);
}

#[test]
fn load_is_conserved_through_the_whole_run() {
    let topo = Topology::torus(&[6, 6]);
    let w = Workload::hotspot(36, 0, 72.0);
    let total = w.total_load();
    let mut engine = EngineBuilder::new(topo)
        .workload(w)
        .balancer(ParticlePlaneBalancer::new(PhysicsConfig::default()))
        .seed(1)
        .build();
    for _ in 0..50 {
        engine.run_rounds(4);
        let sys = engine.system_load();
        assert!((sys - total).abs() < 1e-6, "system load drifted: {sys} vs {total}");
    }
}

#[test]
fn imbalance_trend_is_downward() {
    // The CoV series need not be strictly monotone (stochastic arbiter,
    // in-flight load), but its tail must sit far below its head.
    let topo = Topology::torus(&[8, 8]);
    let r = converge(topo, Workload::hotspot(64, 0, 128.0), 300, 9);
    let pts = r.series.points();
    let head: f64 = pts.iter().take(5).map(|&(_, v)| v).sum::<f64>() / 5.0;
    let tail: f64 = pts.iter().rev().take(5).map(|&(_, v)| v).sum::<f64>() / 5.0;
    assert!(tail < 0.2 * head, "head {head} tail {tail}");
}

#[test]
fn bigger_hotspots_take_longer_but_still_converge() {
    let topo = |_| Topology::torus(&[6, 6]);
    let small = converge(topo(()), Workload::hotspot(36, 0, 36.0), 400, 2);
    let big = converge(topo(()), Workload::hotspot(36, 0, 144.0), 400, 2);
    let t_small = small.converged_round(0.6, 3);
    let t_big = big.converged_round(0.6, 3);
    assert!(t_small.is_some(), "small hotspot should converge");
    assert!(t_big.is_some(), "big hotspot should converge");
    assert!(t_small.unwrap() <= t_big.unwrap());
}

#[test]
fn multi_hotspot_and_ramp_workloads() {
    let topo = Topology::torus(&[6, 6]);
    for w in [
        Workload::multi_hotspot(36, &[0, 17, 35], 108.0),
        Workload::ramp(36, 0.25),
        Workload::bimodal(36, 0.3, 6.0, 1.0, 4),
    ] {
        let before = Imbalance::of(&w.heights()).cov;
        let r = converge(topo.clone(), w, 250, 8);
        assert!(
            r.final_imbalance.cov < before.max(0.2),
            "cov {} vs initial {before}",
            r.final_imbalance.cov
        );
    }
}

#[test]
fn deterministic_across_identical_runs() {
    let run = || {
        let topo = Topology::hypercube(4);
        converge(topo, Workload::uniform_random(16, 6.0, 2), 100, 77).final_imbalance
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn parallel_decide_engine_matches_sequential() {
    let build = |parallel: bool| {
        let topo = Topology::torus(&[8, 8]);
        let w = Workload::hotspot(64, 10, 128.0);
        let mut engine = EngineBuilder::new(topo)
            .workload(w)
            .balancer(ParticlePlaneBalancer::new(PhysicsConfig::default()))
            .config(EngineConfig { parallel_decide: parallel, ..Default::default() })
            .seed(31)
            .build();
        engine.run_rounds(120).drain(300.0);
        (engine.heights(), engine.report())
    };
    let (h_seq, r_seq) = build(false);
    let (h_par, r_par) = build(true);
    assert_eq!(h_seq, h_par);
    // Byte-identical reports: the persistent worker pool must not perturb
    // the per-node RNG streams or the event ordering in any way.
    assert_eq!(r_seq, r_par);
}
