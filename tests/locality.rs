//! The network-side Corollary 3: a load's final resting node can never be
//! farther (in accumulated link weight) from its origin than its initial
//! energy budget allows — `Σ e_hops ≤ h₀/(c₀·µ_k)` — because every hop
//! debits the potential-height flag by `c₀·µ_k·e`.
//!
//! This ties together pp-physics (the theorem), pp-topology (weighted
//! shortest paths), pp-core (the energy flag) and pp-sim (the engine).

use particle_plane::prelude::*;
use particle_plane::topology::paths::{dijkstra, reachable_within};

#[test]
fn tasks_never_rest_beyond_their_energy_radius() {
    let topo = Topology::torus(&[8, 8]);
    let n = topo.node_count();
    let h0 = 2.0 * n as f64; // hotspot height = every task's initial flag bound
    let cfg = PhysicsConfig::default();
    let links = LinkMap::uniform(&topo, LinkAttrs::default());
    let origin = NodeId(0);

    let mut engine = EngineBuilder::new(topo.clone())
        .links(links.clone())
        .workload(Workload::hotspot(n, 0, h0))
        .balancer(ParticlePlaneBalancer::new(cfg))
        .seed(3)
        .build();
    engine.run_rounds(400).drain(1000.0);

    // Smallest possible µ_k along any hop (no dependencies ⇒ µ_s = base).
    let mu_k_min = kinetic_friction(&cfg, cfg.mu_s_base);
    let budget = h0 / (cfg.c0 * mu_k_min);
    let dist = dijkstra(&topo, &links, 1.0, origin);

    for v in topo.nodes() {
        for task in engine.state().node(v).tasks() {
            if task.origin == origin.0 {
                assert!(
                    dist[v.idx()] <= budget + 1e-9,
                    "task {} rested at {} (weighted distance {}) beyond budget {}",
                    task.id,
                    v,
                    dist[v.idx()],
                    budget
                );
            }
        }
    }
}

#[test]
fn tighter_friction_shrinks_the_migration_footprint() {
    // Measure how far from the origin the hotspot's tasks settle for two
    // friction levels: heavier friction ⇒ smaller mean displacement.
    let run = |mu_base: f64| {
        let topo = Topology::torus(&[10, 10]);
        let n = topo.node_count();
        let cfg = PhysicsConfig {
            mu_s_base: mu_base,
            // Keep the movement threshold constant across the sweep so only
            // the kinetic drain changes.
            ..PhysicsConfig::default()
        };
        let mut engine = EngineBuilder::new(topo.clone())
            .workload(Workload::hotspot(n, 0, n as f64))
            .balancer(ParticlePlaneBalancer::new(cfg))
            .seed(8)
            .build();
        engine.run_rounds(300).drain(500.0);
        let hop_dist = topo.bfs_distances(NodeId(0));
        let mut total = 0.0;
        let mut count = 0usize;
        for v in topo.nodes() {
            for t in engine.state().node(v).tasks() {
                if t.origin == 0 {
                    total += hop_dist[v.idx()] as f64;
                    count += 1;
                }
            }
        }
        total / count.max(1) as f64
    };
    let light = run(1.0);
    let heavy = run(4.0);
    assert!(
        heavy < light,
        "mean displacement should shrink with friction: µ=1 → {light}, µ=4 → {heavy}"
    );
}

#[test]
fn reachable_set_bounds_actual_migrations() {
    // Same invariant expressed through the paths API: the set of nodes
    // holding origin tasks is a subset of reachable_within(budget).
    let topo = Topology::mesh(&[12]);
    let n = topo.node_count();
    let h0 = 12.0;
    let cfg = PhysicsConfig::default();
    let links = LinkMap::uniform(&topo, LinkAttrs::default());
    let mut engine = EngineBuilder::new(topo.clone())
        .links(links.clone())
        .workload(Workload::hotspot(n, 0, h0))
        .balancer(ParticlePlaneBalancer::new(cfg))
        .seed(5)
        .build();
    engine.run_rounds(200).drain(500.0);

    let mu_k_min = kinetic_friction(&cfg, cfg.mu_s_base);
    let budget = h0 / (cfg.c0 * mu_k_min);
    let allowed: Vec<NodeId> = reachable_within(&topo, &links, 1.0, NodeId(0), budget);
    for v in topo.nodes() {
        let holds_origin_task = engine.state().node(v).tasks().iter().any(|t| t.origin == 0);
        if holds_origin_task {
            assert!(allowed.contains(&v), "{v} outside the energy-reachable set");
        }
    }
}
