//! Integration tests for the §2 baseline algorithms on the full engine:
//! each must reduce imbalance on its home turf, and the classical exact
//! results (dimension exchange on a hypercube) must hold.

use particle_plane::prelude::*;

/// Links so fast that transfers complete within the same tick — the
/// synchronous-network assumption under which the classical convergence
/// results were proven.
fn instant_links(topo: &Topology) -> LinkMap {
    LinkMap::uniform(topo, LinkAttrs { bandwidth: 1e9, distance: 1e-9, fault_prob: 0.0 })
}

fn run_with(
    topo: Topology,
    balancer: Box<dyn LoadBalancer>,
    workload: Workload,
    rounds: u64,
) -> RunReport {
    let links = instant_links(&topo);
    let mut engine = EngineBuilder::new(topo)
        .links(links)
        .workload(workload)
        .balancer_boxed(balancer)
        .seed(19)
        .build();
    engine.run_rounds(rounds).drain(10.0);
    engine.report()
}

#[test]
fn dimension_exchange_balances_hypercube_in_d_sweeps() {
    // The classical §2 result: on a hypercube the system is balanced after
    // every processor has exchanged with each neighbour once — one sweep of
    // the d dimensions. 2^d·k units on node 0 halve cleanly each round.
    let d = 4;
    let topo = Topology::hypercube(d);
    let n = topo.node_count();
    let w = Workload::hotspot(n, 0, (n * 4) as f64);
    let r = run_with(topo.clone(), Box::new(DimensionExchangeBalancer::new(&topo)), w, d as u64);
    assert_eq!(
        r.final_imbalance.spread, 0.0,
        "hypercube must be perfectly balanced after {d} rounds: {:?}",
        r.final_imbalance
    );
}

#[test]
fn diffusion_reduces_hotspot() {
    let topo = Topology::torus(&[6, 6]);
    let w = Workload::hotspot(36, 0, 72.0);
    let before = Imbalance::of(&w.heights()).cov;
    for b in [
        Box::new(DiffusionBalancer::optimal(&topo)) as Box<dyn LoadBalancer>,
        Box::new(DiffusionBalancer::safe(&topo)),
    ] {
        let r = run_with(topo.clone(), b, Workload::hotspot(36, 0, 72.0), 200);
        assert!(
            r.final_imbalance.cov < 0.5 * before,
            "{}: cov {} vs {before}",
            r.balancer,
            r.final_imbalance.cov
        );
    }
}

#[test]
fn optimal_diffusion_converges_no_slower_than_safe() {
    let topo = Topology::torus(&[8, 8]);
    let w = || Workload::hotspot(64, 0, 128.0);
    let opt = run_with(topo.clone(), Box::new(DiffusionBalancer::optimal(&topo)), w(), 300);
    let safe = run_with(topo.clone(), Box::new(DiffusionBalancer::safe(&topo)), w(), 300);
    // Compare cumulative imbalance (area under the CoV curve): the Xu–Lau
    // parameter must not be worse.
    assert!(
        opt.series.auc() <= safe.series.auc() * 1.05,
        "opt AUC {} vs safe AUC {}",
        opt.series.auc(),
        safe.series.auc()
    );
}

#[test]
fn gm_drains_overload_toward_light_region() {
    let topo = Topology::mesh(&[8, 8]);
    let w = Workload::hotspot(64, 0, 128.0);
    let before = Imbalance::of(&w.heights()).cov;
    let r = run_with(topo, Box::new(GradientModelBalancer::new(1.5, 2.5)), w, 400);
    assert!(r.final_imbalance.cov < 0.3 * before);
}

#[test]
fn cwn_reaches_unit_granularity_balance() {
    let topo = Topology::torus(&[4, 4]);
    let w = Workload::hotspot(16, 0, 32.0);
    let r = run_with(topo, Box::new(CwnBalancer::new(1.0)), w, 150);
    assert!(r.final_imbalance.spread <= 2.0, "{:?}", r.final_imbalance);
}

#[test]
fn random_balancer_helps_but_less_than_cwn() {
    let topo = Topology::torus(&[6, 6]);
    let w = || Workload::hotspot(36, 0, 108.0);
    let before = Imbalance::of(&w().heights()).cov;
    let rnd = run_with(topo.clone(), Box::new(RandomNeighborBalancer::new(1.0)), w(), 300);
    let cwn = run_with(topo.clone(), Box::new(CwnBalancer::new(1.0)), w(), 300);
    assert!(rnd.final_imbalance.cov < before);
    assert!(cwn.series.auc() <= rnd.series.auc());
}

#[test]
fn sender_initiated_fires_only_above_watermark() {
    let topo = Topology::torus(&[4, 4]);
    // Everything below the high watermark: nothing should ever move.
    let w = Workload::from_loads(&[2.0; 16], 1.0);
    let r = run_with(topo, Box::new(SenderInitiatedBalancer::new(3.0, 2.0, 2)), w, 50);
    assert_eq!(r.ledger.migration_count(), 0);
}

#[test]
fn every_balancer_conserves_load() {
    let topo = Topology::torus(&[4, 4]);
    let total = 48.0;
    let balancers: Vec<Box<dyn LoadBalancer>> = vec![
        Box::new(ParticlePlaneBalancer::new(PhysicsConfig::default())),
        Box::new(DiffusionBalancer::safe(&topo)),
        Box::new(DimensionExchangeBalancer::new(&topo)),
        Box::new(GradientModelBalancer::new(2.0, 4.0)),
        Box::new(CwnBalancer::new(1.0)),
        Box::new(RandomNeighborBalancer::new(1.0)),
        Box::new(SenderInitiatedBalancer::new(4.0, 3.0, 2)),
    ];
    for b in balancers {
        let name = b.name().to_string();
        let r = run_with(Topology::torus(&[4, 4]), b, Workload::hotspot(16, 3, total), 120);
        assert!(
            (r.total_load + r.in_flight_load - total).abs() < 1e-6,
            "{name} lost load: resident {} in-flight {}",
            r.total_load,
            r.in_flight_load
        );
    }
}

#[test]
fn particle_plane_beats_no_balancing_everywhere() {
    for topo in [Topology::mesh(&[5, 5]), Topology::ring(25), Topology::hypercube(5)] {
        let n = topo.node_count();
        let w = Workload::bimodal(n, 0.2, 8.0, 1.0, 6);
        let before = Imbalance::of(&w.heights()).cov;
        let r =
            run_with(topo, Box::new(ParticlePlaneBalancer::new(PhysicsConfig::default())), w, 250);
        assert!(r.final_imbalance.cov < before, "cov {} vs {before}", r.final_imbalance.cov);
    }
}
