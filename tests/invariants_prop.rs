//! Property-based invariants across the whole stack (proptest): load
//! conservation, no negative heights, determinism, arbiter probability
//! bounds, feasibility strictness, and the energy flag's monotonic decay.

use particle_plane::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small connected topology chosen by index.
fn topo_from(idx: u8) -> Topology {
    match idx % 5 {
        0 => Topology::ring(8),
        1 => Topology::mesh(&[3, 3]),
        2 => Topology::torus(&[3, 3]),
        3 => Topology::hypercube(3),
        _ => Topology::random(9, 0.2, 7),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn load_conserved_for_any_workload(
        topo_idx in 0u8..5,
        seed in 0u64..1000,
        loads in prop::collection::vec(0.0f64..10.0, 8..=9),
    ) {
        let topo = topo_from(topo_idx);
        let n = topo.node_count();
        let mut l = loads;
        l.resize(n, 1.0);
        let w = Workload::from_loads(&l, 1.0);
        let total = w.total_load();
        let mut engine = EngineBuilder::new(topo)
            .workload(w)
            .balancer(ParticlePlaneBalancer::new(PhysicsConfig::default()))
            .seed(seed)
            .build();
        engine.run_rounds(30);
        prop_assert!((engine.system_load() - total).abs() < 1e-6);
        // Heights can never be negative.
        prop_assert!(engine.heights().iter().all(|&h| h >= 0.0));
    }

    #[test]
    fn balancing_never_hurts_final_cov_much(
        seed in 0u64..200,
        hot in 0usize..9,
    ) {
        let topo = Topology::torus(&[3, 3]);
        let w = Workload::hotspot(9, hot, 27.0);
        let before = Imbalance::of(&w.heights()).cov;
        let mut engine = EngineBuilder::new(topo)
            .workload(w)
            .balancer(ParticlePlaneBalancer::new(PhysicsConfig::default()))
            .seed(seed)
            .build();
        engine.run_rounds(120).drain(200.0);
        let after = engine.report().final_imbalance.cov;
        prop_assert!(after <= before, "cov went {before} -> {after}");
    }

    #[test]
    fn runs_identical_for_identical_seeds(seed in 0u64..500) {
        let run = |s: u64| {
            let topo = Topology::hypercube(3);
            let w = Workload::uniform_random(8, 6.0, 3);
            let mut e = EngineBuilder::new(topo)
                .workload(w)
                .balancer(ParticlePlaneBalancer::new(PhysicsConfig::default()))
                .seed(s)
                .build();
            e.run_rounds(40);
            e.heights()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn arbiter_probabilities_valid(
        beta0 in 0.01f64..0.99,
        c in 0.1f64..10.0,
        t_max in 1.0f64..1000.0,
        t in 0.0f64..2000.0,
        scores in prop::collection::vec(-10.0f64..10.0, 1..6),
    ) {
        let a = Arbiter::Stochastic { beta0, c, t_max };
        let p = a.steepest_probability(&scores, t);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&p), "p = {p}");
        // Annealing: probability of the steepest never decreases with time.
        let p_later = a.steepest_probability(&scores, t + 100.0);
        prop_assert!(p_later >= p - 1e-9);
    }

    #[test]
    fn arbiter_choice_always_among_candidates(
        seed in 0u64..100,
        scores in prop::collection::vec(-5.0f64..5.0, 1..6),
    ) {
        let a = Arbiter::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let cand: Vec<(usize, f64)> = scores.iter().cloned().enumerate().collect();
        let pick = a.choose(&cand, 0.0, &mut rng).unwrap();
        prop_assert!(pick < scores.len());
    }

    #[test]
    fn stationary_feasibility_is_strict_and_monotone(
        h_i in 0.0f64..50.0,
        h_j in 0.0f64..50.0,
        l in 0.1f64..5.0,
        e in 0.1f64..5.0,
        mu_s in 0.0f64..10.0,
    ) {
        let cfg = PhysicsConfig::default();
        let neigh = [(h_j, e)];
        let cands = stationary_candidates(&cfg, l, mu_s, h_i, &neigh);
        let a = gradient(&cfg, h_i, h_j, l, e);
        prop_assert_eq!(!cands.is_empty(), a > mu_s);
        // Raising µ_s can only remove candidates.
        let cands_stricter = stationary_candidates(&cfg, l, mu_s + 1.0, h_i, &neigh);
        prop_assert!(cands_stricter.len() <= cands.len());
    }

    #[test]
    fn energy_flag_decays_monotonically(
        flag0 in 0.0f64..100.0,
        mu_k in 0.01f64..5.0,
        hops in prop::collection::vec(0.1f64..3.0, 1..20),
    ) {
        let cfg = PhysicsConfig::default();
        let mut flag = flag0;
        for e in hops {
            let next = updated_flag(&cfg, flag, mu_k, e);
            prop_assert!(next < flag);
            flag = next;
        }
    }

    #[test]
    fn hop_bound_consistent_with_decrement(
        flag0 in 1.0f64..100.0,
        mu_k in 0.05f64..2.0,
        e in 0.1f64..3.0,
    ) {
        let cfg = PhysicsConfig::default();
        let bound = max_hops_bound(&cfg, flag0, 0.0, mu_k, e);
        // Simulate the decay: the number of hops until the flag reaches 0
        // must not exceed the bound.
        let mut flag = flag0;
        let mut hops = 0u32;
        while flag > 0.0 && hops < 100_000 {
            flag = updated_flag(&cfg, flag, mu_k, e);
            hops += 1;
        }
        prop_assert!(hops <= bound, "{hops} > bound {bound}");
    }

    #[test]
    fn link_weight_monotonicities(
        bw in 0.1f64..10.0,
        d in 0.1f64..10.0,
        f in 0.0f64..0.9,
    ) {
        let a = LinkAttrs { bandwidth: bw, distance: d, fault_prob: f };
        let base = a.weight(1.0);
        prop_assert!(base > 0.0);
        // More distance ⇒ heavier; more bandwidth ⇒ lighter; more faults ⇒ heavier.
        let farther = LinkAttrs { distance: d * 2.0, ..a }.weight(1.0);
        prop_assert!(farther > base);
        let faster = LinkAttrs { bandwidth: bw * 2.0, ..a }.weight(1.0);
        prop_assert!(faster < base);
        if f > 0.0 {
            let cleaner = LinkAttrs { fault_prob: 0.0, ..a }.weight(1.0);
            prop_assert!(cleaner <= base);
        }
    }

    #[test]
    fn imbalance_stats_consistent(
        loads in prop::collection::vec(0.0f64..100.0, 1..40),
    ) {
        let im = Imbalance::of(&loads);
        prop_assert!(im.min <= im.mean + 1e-9);
        prop_assert!(im.mean <= im.max + 1e-9);
        prop_assert!(im.spread >= 0.0);
        prop_assert!(im.stddev >= 0.0);
        if im.mean > 0.0 {
            prop_assert!((im.cov - im.stddev / im.mean).abs() < 1e-12);
        }
    }
}
