//! The sharded tick pipeline's correctness contract: for the same seed,
//! every `(shards, threads)` layout — including `K = 1`, the sequential
//! reference — produces **byte-identical** `RunReport`s (`PartialEq` over
//! every recorded artifact: the CoV series, the full migration ledger,
//! totals), with the paper's particle-plane balancer, under the full event
//! mix: link-fault processes, Poisson arrivals, work consumption,
//! heterogeneous speeds and recorded-trace replay.
//!
//! The quiescence-stable skip is active in these runs (the default
//! particle-plane configuration has no jitter), so this also proves that
//! skipping clean shards is unobservable; a jittered variant exercises the
//! skip-disabled path.

use particle_plane::prelude::*;
use pp_tasking::workload::{record_trace, ArrivalProcess};

/// Layouts to pit against the sequential reference: pure decomposition,
/// decomposition + pool threads, and a shard count above the node count
/// (clamping).
const LAYOUTS: &[(usize, usize)] = &[(2, 1), (7, 1), (16, 2), (64, 3), (4096, 2)];

fn run(
    mut spec_engine: EngineConfig,
    shards: usize,
    threads: usize,
    build: &dyn Fn() -> EngineBuilder,
) -> RunReport {
    spec_engine.shards = shards;
    spec_engine.threads = threads;
    let mut e = build().config(spec_engine).build();
    e.run_rounds(60);
    e.drain(40.0);
    e.report()
}

fn assert_layout_invariant(config: EngineConfig, build: impl Fn() -> EngineBuilder) {
    let reference = run(config, 1, 1, &build);
    for &(k, t) in LAYOUTS {
        let report = run(config, k, t, &build);
        assert_eq!(reference, report, "K={k} threads={t} diverged from sequential");
    }
}

#[test]
fn quiescent_redistribution_identical_across_layouts() {
    let build = || {
        EngineBuilder::new(Topology::torus(&[8, 8]))
            .workload(Workload::uniform_random(64, 10.0, 11))
            .balancer(ParticlePlaneBalancer::new(PhysicsConfig::default()))
            .seed(9)
    };
    assert_layout_invariant(EngineConfig::default(), build);
}

#[test]
fn faults_and_poisson_arrivals_identical_across_layouts() {
    let config = EngineConfig {
        consume_rate: 0.25,
        fault_model: Some(FaultModel { p_down: 0.04, p_up: 0.5 }),
        arrival: ArrivalProcess::Poisson { rate: 3.0, size_min: 0.5, size_max: 1.5 },
        ..Default::default()
    };
    let build = || {
        EngineBuilder::new(Topology::torus(&[8, 8]))
            .workload(Workload::uniform_random(64, 6.0, 3))
            .balancer(ParticlePlaneBalancer::new(PhysicsConfig::default()))
            .seed(17)
    };
    assert_layout_invariant(config, build);
}

#[test]
fn trace_replay_with_speeds_identical_across_layouts() {
    let trace = record_trace(
        &ArrivalProcess::MovingHotspot { rate: 4.0, size: 1.0, dwell: 8.0, stride: 11 },
        64,
        50.0,
        23,
    );
    let config = EngineConfig { consume_rate: 0.15, ..Default::default() };
    let build = move || {
        let speeds: Vec<f64> = (0..64).map(|i| if i % 3 == 0 { 2.0 } else { 0.8 }).collect();
        EngineBuilder::new(Topology::torus(&[8, 8]))
            .workload(Workload::hotspot(64, 5, 40.0))
            .balancer(ParticlePlaneBalancer::new(PhysicsConfig::default()))
            .node_speeds(speeds)
            .arrival_trace(trace.clone())
            .seed(31)
    };
    assert_layout_invariant(config, build);
}

#[test]
fn jittered_balancer_disables_skip_but_stays_identical() {
    // Friction jitter draws per task per round, so the balancer reports
    // quiescence_stable = false and no shard is ever skipped — layouts
    // must still be outcome-identical (same per-node RNG streams).
    let cfg = PhysicsConfig {
        jitter: Some(pp_core::jitter::FrictionJitter::new(0.4, 2.0, 200.0)),
        ..Default::default()
    };
    let build = move || {
        EngineBuilder::new(Topology::torus(&[8, 8]))
            .workload(Workload::uniform_random(64, 8.0, 5))
            .balancer(ParticlePlaneBalancer::new(cfg))
            .seed(13)
    };
    assert_layout_invariant(EngineConfig::default(), build);
}

#[test]
fn sharded_scenario_specs_match_their_sequential_twin() {
    // The same invariant through the declarative layer: a registry spec
    // with explicit shards, re-run with shards pinned to 1.
    let spec = by_name("torus16k-sharded").expect("registered").smoke(4, 10.0);
    assert!(spec.engine.shards >= 2, "scenario should request sharding");
    let mut seq = spec.clone();
    seq.engine.shards = 1;
    assert_eq!(seq.run().unwrap(), spec.run().unwrap());
}

#[test]
fn skip_engages_at_steady_state_with_sharding() {
    // After convergence the sharded engine should be skipping most
    // shard-ticks (this is what BENCH_4's throughput win is made of).
    let mut e = EngineBuilder::new(Topology::torus(&[16, 16]))
        .workload(Workload::uniform_random(256, 8.0, 5))
        .balancer(ParticlePlaneBalancer::new(PhysicsConfig::default()))
        .config(EngineConfig { shards: 8, ..Default::default() })
        .seed(5)
        .build();
    e.run_rounds(400);
    e.drain(50.0);
    let before = e.shard_stats();
    e.run_rounds(100);
    let after = e.shard_stats();
    assert_eq!(
        after.ticks_skipped - before.ticks_skipped,
        800,
        "all 8 shards must sleep through all 100 converged rounds"
    );
    assert_eq!(after.nodes_evaluated, before.nodes_evaluated);
}
