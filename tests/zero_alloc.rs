//! Proof of the zero-allocation claim: once a quiescent system has
//! converged, sequential balance rounds perform **zero heap allocations and
//! zero deallocations** — the height map, imbalance statistics, neighbour
//! views, decision buffers and metric storage are all maintained
//! incrementally or reused from scratch space.
//!
//! This file must hold exactly one `#[test]` so no concurrent test thread
//! pollutes the global allocation counters.

use particle_plane::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static DEALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_rounds_do_not_allocate() {
    // A quiescent redistribution on an 8×8 torus with the paper's balancer
    // (stochastic arbiter, as benchmarked; with no feasible slopes left the
    // arbiter never draws, so steady state touches no RNG-driven paths).
    let topo = Topology::torus(&[8, 8]);
    let n = topo.node_count();
    let w = Workload::uniform_random(n, 8.0, 5);
    let mut engine = EngineBuilder::new(topo)
        .workload(w)
        .balancer(ParticlePlaneBalancer::new(PhysicsConfig::default()))
        .seed(5)
        .build();

    // Converge and drain so no migrations or events remain, then warm every
    // scratch buffer and pre-reserve the metrics series for the measured
    // window.
    engine.run_rounds(300);
    engine.drain(50.0);
    let migrations_before = engine.report().ledger.migration_count();
    engine.reserve_rounds(64);
    engine.run_rounds(4); // warm-up inside the reserved window

    let a0 = ALLOCS.load(Ordering::SeqCst);
    let d0 = DEALLOCS.load(Ordering::SeqCst);
    engine.run_rounds(50);
    let allocs = ALLOCS.load(Ordering::SeqCst) - a0;
    let deallocs = DEALLOCS.load(Ordering::SeqCst) - d0;

    // Sanity: the system really is in a migration-free steady state, and the
    // rounds really ran.
    let report = engine.report();
    assert_eq!(report.ledger.migration_count(), migrations_before, "steady state assumption");
    assert_eq!(report.rounds, 354);

    assert_eq!(allocs, 0, "steady-state rounds allocated {allocs} times");
    assert_eq!(deallocs, 0, "steady-state rounds deallocated {deallocs} times");
}
