//! The cross-strategy differential suite: the event strategy's correctness
//! contract is that for any scenario and any `(shards, threads)` layout it
//! produces a `RunReport` **byte-identical** to the round-by-round tick
//! reference — skipping a round must be unobservable in everything the run
//! records (CoV series, migration ledger, totals, clock).
//!
//! The suite pits the two strategies against each other over a family of
//! 24 deterministically varied scenarios (faults, Poisson/diurnal/bursty
//! arrivals, recorded-trace replay, heterogeneous speeds, consumption,
//! several topology families) across `K ∈ {1, 3, 64} × threads ∈ {1, 4}`,
//! and additionally crosses a checkpoint mid-run *between* strategies in
//! both directions — a tick-half resumed under event (and vice versa) must
//! land on the very same report. See `docs/adr/ADR-006-event-strategy.md`.

use particle_plane::prelude::*;
use pp_sim::strategy::SimulationStrategy;

/// 24 deterministically varied scenario specs. Variation is modular rather
/// than random so every CI run exercises the identical family, but the
/// axes are chosen to cover every event source the engine has: initial
/// imbalance shapes, dynamic arrivals (including trace replay), link
/// faults, heterogeneous speeds, and work consumption.
fn specs() -> Vec<ScenarioSpec> {
    (0..24u64)
        .map(|i| {
            let mut s = ScenarioSpec {
                name: format!("diff-{i}"),
                description: "cross-strategy differential family".into(),
                ..ScenarioSpec::default()
            };
            s.topology = match i % 4 {
                0 => TopologySpec::Torus { dims: vec![6, 6] },
                1 => TopologySpec::Mesh { dims: vec![5, 7] },
                2 => TopologySpec::Ring { n: 24 },
                _ => TopologySpec::Hypercube { dim: 5 },
            };
            s.workload = match i % 3 {
                0 => WorkloadSpec::Hotspot { node: 0, total: 40.0, task_size: 1.0 },
                1 => WorkloadSpec::UniformRandom { max_per_node: 6.0, seed: i },
                _ => WorkloadSpec::Bimodal { fraction: 0.3, high: 9.0, low: 1.0, seed: i },
            };
            s.arrival = match i % 5 {
                0 => ArrivalSpec::Quiescent,
                1 => ArrivalSpec::Poisson { rate: 4.0, size_min: 0.5, size_max: 1.5 },
                2 => ArrivalSpec::Diurnal {
                    base_rate: 3.0,
                    amplitude: 0.7,
                    period: 8.0,
                    size_min: 0.5,
                    size_max: 1.0,
                },
                3 => ArrivalSpec::Bursty { rate: 6.0, burst_len: 2.0, quiet_len: 5.0, size: 1.0 },
                _ => ArrivalSpec::Replay {
                    events: vec![(0.7, 3, 2.0), (3.2, 11, 1.0), (3.2, 0, 0.5), (9.9, 7, 1.5)],
                },
            };
            if i % 3 == 1 {
                s.faults = FaultPlanSpec { model: Some((0.05, 0.5)) };
            }
            if i % 4 == 2 {
                s.speeds =
                    SpeedSpec::TwoTier { fast_fraction: 0.25, fast: 2.0, slow: 0.75, seed: i };
            }
            if i % 2 == 0 {
                s.engine.consume_rate = 0.3;
            }
            s.duration = DurationSpec { rounds: 10 + (i % 3) * 4, drain: 25.0 };
            s.seed = 100 + i;
            s
        })
        .collect()
}

fn run_with(spec: &ScenarioSpec, strategy: SimulationStrategy, k: usize, t: usize) -> RunReport {
    let mut s = spec.clone();
    s.engine.strategy = strategy;
    s.engine.shards = k;
    s.engine.threads = t;
    s.run().unwrap_or_else(|e| panic!("{}: {e}", spec.name))
}

/// Asserts tick == event for every spec in the family at one layout.
fn assert_layout(k: usize, t: usize) {
    for spec in specs() {
        let tick = run_with(&spec, SimulationStrategy::Tick, k, t);
        let event = run_with(&spec, SimulationStrategy::Event, k, t);
        assert_eq!(event, tick, "{} diverged at K={k} threads={t}", spec.name);
    }
}

#[test]
fn family_is_valid_and_varied() {
    let all = specs();
    assert_eq!(all.len(), 24);
    for s in &all {
        s.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
    }
    // Every axis actually varies within the family.
    assert!(all.iter().any(|s| s.faults.model.is_some()));
    assert!(all.iter().any(|s| s.faults.model.is_none()));
    assert!(all.iter().any(|s| !matches!(s.speeds, SpeedSpec::Uniform)));
    assert!(all.iter().any(|s| s.engine.consume_rate > 0.0));
    assert!(all.iter().any(|s| s.engine.consume_rate == 0.0));
    assert!(all.iter().any(|s| matches!(s.arrival, ArrivalSpec::Replay { .. })));
}

#[test]
fn tick_vs_event_sequential_reference() {
    assert_layout(1, 1);
}

#[test]
fn tick_vs_event_three_shards() {
    assert_layout(3, 1);
}

#[test]
fn tick_vs_event_clamped_shards() {
    assert_layout(64, 1);
}

#[test]
fn tick_vs_event_sequential_threaded() {
    assert_layout(1, 4);
}

#[test]
fn tick_vs_event_three_shards_threaded() {
    assert_layout(3, 4);
}

#[test]
fn tick_vs_event_clamped_shards_threaded() {
    assert_layout(64, 4);
}

#[test]
fn golden_report_bytes_match_across_strategies() {
    // The CI gate diffs canonical golden-report JSON, not in-memory
    // structs; mirror that exactly for the whole family.
    for spec in specs() {
        let bytes = |strategy| {
            let report = run_with(&spec, strategy, 3, 1);
            GoldenReport::from_run(&spec.name, spec.seed, spec.topology.node_count(), &report)
                .to_canonical_json()
        };
        assert_eq!(
            bytes(SimulationStrategy::Event),
            bytes(SimulationStrategy::Tick),
            "{} golden bytes diverged",
            spec.name
        );
    }
}

/// Runs the first half under `first`, crosses the checkpoint through its
/// serialized JSON form into a fresh engine built under `second`, and
/// finishes there.
fn run_crossed(
    spec: &ScenarioSpec,
    first: SimulationStrategy,
    second: SimulationStrategy,
) -> RunReport {
    let at = (spec.duration.rounds / 2).max(1);
    let mut a = {
        let mut s = spec.clone();
        s.engine.strategy = first;
        s.build_engine().unwrap_or_else(|e| panic!("{}: {e}", spec.name))
    };
    a.run_rounds(at);
    let cp = Checkpoint::from_json(&a.checkpoint().to_json()).expect("checkpoint round-trips");
    let mut b = {
        let mut s = spec.clone();
        s.engine.strategy = second;
        s.build_engine().unwrap_or_else(|e| panic!("{}: {e}", spec.name))
    };
    b.restore(&cp).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    b.run_rounds(spec.duration.rounds - at).drain(spec.duration.drain);
    b.report()
}

#[test]
fn checkpoint_crossover_tick_to_event() {
    // The checkpoint format is strategy-free: a tick half resumed under
    // the event strategy must finish on the identical report.
    for spec in specs().into_iter().step_by(3) {
        let straight = run_with(&spec, SimulationStrategy::Tick, 1, 1);
        let crossed = run_crossed(&spec, SimulationStrategy::Tick, SimulationStrategy::Event);
        assert_eq!(crossed, straight, "{} tick→event crossover diverged", spec.name);
    }
}

#[test]
fn checkpoint_crossover_event_to_tick() {
    for spec in specs().into_iter().step_by(3) {
        let straight = run_with(&spec, SimulationStrategy::Tick, 1, 1);
        let crossed = run_crossed(&spec, SimulationStrategy::Event, SimulationStrategy::Tick);
        assert_eq!(crossed, straight, "{} event→tick crossover diverged", spec.name);
    }
}

#[test]
fn checkpoint_crossover_across_layouts() {
    // Crossing strategy *and* layout at once: the two independent
    // exactness invariants (restore, skip) must compose.
    for spec in specs().into_iter().step_by(8) {
        let straight = run_with(&spec, SimulationStrategy::Tick, 1, 1);
        for &(k, t) in &[(3usize, 1usize), (64, 4)] {
            let mut s = spec.clone();
            s.engine.shards = k;
            s.engine.threads = t;
            let crossed = run_crossed(&s, SimulationStrategy::Event, SimulationStrategy::Tick);
            assert_eq!(crossed, straight, "{} K={k} T={t} crossover diverged", spec.name);
        }
    }
}
