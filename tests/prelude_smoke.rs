//! Smoke test for the facade crate's public surface: drives the README /
//! `src/lib.rs` quickstart (a 4×4 torus with one hot node) entirely through
//! `particle_plane::prelude::*`, so every re-export the quickstart touches is
//! exercised end-to-end.

use particle_plane::prelude::*;

#[test]
fn quickstart_hotspot_on_torus_converges() {
    let topo = Topology::torus(&[4, 4]);
    let workload = Workload::hotspot(topo.node_count(), 0, 32.0);
    let initial = Imbalance::of(&workload.heights());
    let mut engine = EngineBuilder::new(topo)
        .workload(workload)
        .balancer(ParticlePlaneBalancer::new(PhysicsConfig::default()))
        .seed(42)
        .build();
    engine.run_rounds(100).drain(100.0);
    let report = engine.report();
    assert!(report.final_imbalance.cov < 0.9, "cov = {}", report.final_imbalance.cov);
    assert!(
        report.final_imbalance.cov < initial.cov,
        "balancing must improve on the initial imbalance ({} vs {})",
        report.final_imbalance.cov,
        initial.cov
    );
    // The quickstart's run must conserve load: everything still resident.
    assert!((engine.system_load() - 32.0).abs() < 1e-6);
    assert_eq!(report.rounds, 100);
}

#[test]
fn prelude_exposes_the_documented_types() {
    // Compile-time re-export check across all six crates, one symbol each:
    // physics, topology, tasking, sim, core, metrics.
    let _surface: AnalyticSurface = AnalyticSurface::Bowl { center: Vec2::ZERO, curvature: 1.0 };
    let topo: Topology = Topology::ring(4);
    let w: Workload = Workload::hotspot(4, 0, 4.0);
    let _b: ParticlePlaneBalancer = ParticlePlaneBalancer::new(PhysicsConfig::default());
    let im: Imbalance = Imbalance::of(&w.heights());
    assert!(im.cov.is_finite());
    assert_eq!(topo.node_count(), 4);
}
