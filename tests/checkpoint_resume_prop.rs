//! Resume-equivalence differential suite: for randomized [`ScenarioSpec`]s,
//! running N rounds → checkpoint → serialize → parse → restore into a fresh
//! engine → M rounds must be **byte-identical** to running N+M rounds
//! straight — across shard counts K ∈ {1, 3, 64}, worker threads ∈ {1, 4},
//! with link faults, Poisson/diurnal arrivals, trace replay, heterogeneous
//! speeds and work consumption in the mix. `RunReport::PartialEq` compares
//! every recorded artifact (full CoV series, every ledger record, totals),
//! so equality here means the resumed run is observationally
//! indistinguishable from the uninterrupted one.

use pp_core::jitter::FrictionJitter;
use pp_core::params::PhysicsConfig;
use pp_scenario::registry;
use pp_scenario::report::GoldenReport;
use pp_scenario::spec::{
    ArrivalSpec, BalancerSpec, DiffusionAlpha, DurationSpec, EngineKnobs, FaultPlanSpec,
    ScenarioSpec, SpeedSpec, WorkloadSpec,
};
use pp_topology::spec::TopologySpec;
use proptest::prelude::*;

fn topology_variant(idx: u8) -> TopologySpec {
    match idx % 4 {
        0 => TopologySpec::Torus { dims: vec![6, 6] },
        1 => TopologySpec::Mesh { dims: vec![8, 8] },
        2 => TopologySpec::Ring { n: 24 },
        _ => TopologySpec::Hypercube { dim: 5 },
    }
}

fn workload_variant(idx: u8, seed: u64) -> WorkloadSpec {
    match idx % 4 {
        0 => WorkloadSpec::Hotspot { node: 0, total: 40.0, task_size: 1.0 },
        1 => WorkloadSpec::UniformRandom { max_per_node: 6.0, seed },
        2 => WorkloadSpec::Bimodal { fraction: 0.25, high: 8.0, low: 1.0, seed },
        _ => WorkloadSpec::Empty,
    }
}

fn arrival_variant(idx: u8, n: usize) -> ArrivalSpec {
    match idx % 5 {
        0 => ArrivalSpec::Quiescent,
        1 => ArrivalSpec::Poisson { rate: 4.0, size_min: 0.5, size_max: 1.5 },
        2 => ArrivalSpec::Diurnal {
            base_rate: 3.0,
            amplitude: 0.8,
            period: 6.0,
            size_min: 0.5,
            size_max: 1.0,
        },
        3 => ArrivalSpec::MovingHotspot { rate: 5.0, size: 1.0, dwell: 2.5, stride: 7 },
        _ => ArrivalSpec::Replay {
            events: (0..6)
                .map(|i| (0.7 * i as f64 + 0.3, (i * 5 % n) as u32, 1.0 + 0.25 * i as f64))
                .collect(),
        },
    }
}

fn balancer_variant(idx: u8) -> BalancerSpec {
    match idx % 5 {
        // The paper's balancer, jitter off (quiescence-stable: shard
        // activity tracking engages at K >= 2).
        0 => BalancerSpec::default(),
        // Jitter on: per-task RNG draws every round even when nothing
        // moves, so the checkpoint must resume every node stream
        // mid-sequence.
        1 => BalancerSpec::ParticlePlane {
            config: PhysicsConfig {
                jitter: Some(FrictionJitter::new(0.4, 1.0, 50.0)),
                ..PhysicsConfig::default()
            },
            arbiter: None,
            name: None,
        },
        // Stateful baselines: per-round internal state rides the
        // save_state/load_state contract.
        2 => BalancerSpec::GradientModel { low: 2.0, high: 5.0 },
        3 => BalancerSpec::DimensionExchange,
        _ => BalancerSpec::Diffusion { alpha: DiffusionAlpha::Safe },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn split_runs_are_byte_identical_to_straight_runs(
        t_idx in 0u8..4,
        w_idx in 0u8..4,
        a_idx in 0u8..5,
        b_idx in 0u8..5,
        layout in 0u8..6,
        faulty in 0u8..2,
        hetero in 0u8..2,
        seed in 0u64..10_000,
        rounds in 6u64..=10,
        split_num in 1u64..100,
    ) {
        // K in {1, 3, 64} crossed with threads in {1, 4} (K = 64 clamps to
        // the node count on the smaller topologies — also worth covering).
        let (shards, threads) = [(1, 1), (3, 1), (64, 1), (1, 4), (3, 4), (64, 4)][layout as usize];
        let topology = topology_variant(t_idx);
        let n = topology.node_count();
        let spec = ScenarioSpec {
            name: format!("resume-prop-{t_idx}-{w_idx}-{a_idx}-{b_idx}-{layout}"),
            description: "randomized resume-equivalence case".to_string(),
            topology,
            workload: workload_variant(w_idx, seed),
            arrival: arrival_variant(a_idx, n),
            balancer: balancer_variant(b_idx),
            faults: FaultPlanSpec { model: (faulty == 1).then_some((0.06, 0.5)) },
            speeds: if hetero == 1 {
                SpeedSpec::TwoTier { fast_fraction: 0.25, fast: 2.0, slow: 0.75, seed }
            } else {
                SpeedSpec::Uniform
            },
            engine: EngineKnobs {
                consume_rate: if hetero == 1 { 0.3 } else { 0.0 },
                shards,
                threads,
                ..EngineKnobs::default()
            },
            duration: DurationSpec { rounds, drain: 15.0 },
            seed,
            ..ScenarioSpec::default()
        };
        spec.validate().expect("generated specs must validate");
        let at = 1 + split_num % (rounds - 1); // split strictly mid-run
        let straight = spec.run().expect("straight run");
        let (split, _) = spec.run_split(at).expect("split run");
        prop_assert_eq!(&split, &straight, "split at {} of {} (K={} T={})",
            at, rounds, shards, threads);
    }
}

/// The golden-byte form of the invariant on a fixed chaos case: faults +
/// Poisson arrivals + consumption, split at every possible round, rendered
/// reports compared byte-for-byte.
#[test]
fn chaos_scenario_splits_byte_identically_at_every_round() {
    let mut spec = registry::by_name("faulty-torus").expect("registered").smoke(6, 20.0);
    spec.arrival = ArrivalSpec::Poisson { rate: 3.0, size_min: 0.5, size_max: 1.5 };
    spec.engine.consume_rate = 0.2;
    let straight = spec.run().expect("straight");
    let straight_bytes =
        GoldenReport::from_run(&spec.name, spec.seed, spec.topology.node_count(), &straight)
            .to_canonical_json();
    for at in 1..=6 {
        let (split, _) = spec.run_split(at).expect("split");
        let split_bytes =
            GoldenReport::from_run(&spec.name, spec.seed, spec.topology.node_count(), &split)
                .to_canonical_json();
        assert_eq!(split_bytes, straight_bytes, "split at {at}");
    }
}

/// Trace replay keeps absolute record offsets in the event queue; a resume
/// must pick up the remaining records and only those.
#[test]
fn trace_replay_resumes_at_the_right_offset() {
    let spec = registry::by_name("trace-replay").expect("registered").smoke(8, 25.0);
    let straight = spec.run().expect("straight");
    for at in [1, 4, 7] {
        let (split, _) = spec.run_split(at).expect("split");
        assert_eq!(split, straight, "split at {at}");
    }
}

/// The structure-of-arrays mirrors (`task_count_slice`, `height_slice`)
/// are derived hot-path state, not checkpoint state: a checkpoint written
/// before the SoA layout existed would restore identically. This pins
/// that — restore into a different *thread* layout and immediately
/// re-checkpoint must reproduce the exact bytes (threads are excluded from
/// capture; spatial K is recorded, so K is held fixed), the rebuilt SoA
/// mirrors must agree bitwise with the per-node truth at every node, and
/// the continued run must land on the straight run's report.
#[test]
fn soa_mirrors_rebuild_exactly_across_relayout() {
    let mut spec = registry::by_name("faulty-torus").expect("registered").smoke(8, 20.0);
    spec.arrival = ArrivalSpec::Poisson { rate: 3.0, size_min: 0.5, size_max: 1.5 };
    spec.engine.consume_rate = 0.2;
    spec.engine.shards = 3;
    spec.engine.threads = 1;
    let straight = spec.run().expect("straight");

    let mut writer = spec.build_engine().expect("engine");
    writer.run_rounds(4);
    let bytes = writer.checkpoint().to_json();
    let cp = pp_sim::checkpoint::Checkpoint::from_json(&bytes).expect("round trip");

    for threads in [1usize, 4] {
        let mut respec = spec.clone();
        respec.engine.threads = threads;
        let mut resumed = respec.build_engine().expect("engine");
        resumed.restore(&cp).expect("restore");
        assert_eq!(
            resumed.checkpoint().to_json(),
            bytes,
            "re-checkpoint after restore (T={threads}) must be byte-identical"
        );
        let state = resumed.state();
        for i in 0..state.node_count() {
            let v = pp_topology::graph::NodeId(i as u32);
            assert_eq!(
                state.task_count_slice()[i],
                state.node(v).task_count() as u32,
                "task-count mirror diverged at node {i} (T={threads})"
            );
            assert_eq!(
                state.height_slice()[i].to_bits(),
                state.node(v).height().to_bits(),
                "height mirror diverged at node {i} (T={threads})"
            );
        }
        resumed.run_rounds(4);
        resumed.drain(20.0);
        assert_eq!(resumed.report(), straight, "continuation under T={threads} diverged");
    }
}

/// A resumed spec must also be able to *checkpoint again* — chained
/// checkpoints across two interruptions still land on the straight run.
#[test]
fn double_interruption_still_exact() {
    let spec = registry::by_name("hetero-speeds").expect("registered").smoke(9, 20.0);
    let straight = spec.run().expect("straight");

    let mut first = spec.build_engine().expect("engine");
    first.run_rounds(3);
    let cp1 = pp_sim::checkpoint::Checkpoint::from_json(&first.checkpoint().to_json()).unwrap();
    let mut second = spec.build_engine().expect("engine");
    second.restore(&cp1).expect("restore 1");
    second.run_rounds(3);
    let cp2 = pp_sim::checkpoint::Checkpoint::from_json(&second.checkpoint().to_json()).unwrap();
    let mut third = spec.build_engine().expect("engine");
    third.restore(&cp2).expect("restore 2");
    third.run_rounds(3).drain(20.0);
    assert_eq!(third.report(), straight);
}
