//! Cross-crate physics validation: the §3.3 theorems checked on both
//! analytic and grid-sampled surfaces, including the grid surfaces the
//! load-balancing analogy produces.

use particle_plane::physics::prelude::*;

fn cfg() -> SimConfig {
    SimConfig { g: 10.0, dt: 1e-3, stop_speed: 1e-4, max_steps: 500_000 }
}

#[test]
fn theorem1_invariants_on_sampled_crater() {
    // Sample the analytic crater onto a grid and re-run the trapping sweep:
    // the energy invariants must survive interpolation.
    let crater = AnalyticSurface::Crater {
        center: Vec2::new(5.0, 5.0),
        floor_r: 1.0,
        rim_r: 2.5,
        rim_height: 1.5,
    };
    let grid = GridSurface::sample(&crater, 101, 101, 0.1);
    let contour = Contour::basin(&grid, Vec2::new(5.0, 5.0), 1.45, 0.1, 60);
    assert!(contour.area_cells() > 0);
    for mu in [0.1, 0.3, 0.6] {
        for start in [Vec2::new(5.5, 5.0), Vec2::new(5.0, 6.5)] {
            let trial =
                trapping_trial(&grid, Friction::uniform(mu), cfg(), start, 1.0, &contour, 1.0);
            assert_ne!(trial.verdict, TheoremVerdict::Violation, "µ={mu} {start:?}: {trial:?}");
        }
    }
}

#[test]
fn corollary1_frictionless_escapes_any_lower_contour() {
    // 1-D double well, frictionless: released on the outer slope above the
    // barrier, the object must cross into the far well (escape the contour
    // around its own well).
    let s = AnalyticSurface::DoubleWell { a: 2.0, barrier: 0.5 };
    let release = Vec2::new(3.6, 0.0); // height = 0.5·((3.6/2)²−1)² ≈ 2.24 > barrier
    let contour = Contour::disc(Vec2::new(2.0, 0.0), 1.8, 0.05);
    let trial = trapping_trial(&s, Friction::FRICTIONLESS, cfg(), release, 1.0, &contour, 4.0);
    assert!(trial.escaped, "{trial:?}");
    assert_eq!(trial.verdict, TheoremVerdict::Consistent);
}

#[test]
fn corollary2_any_friction_eventually_stops() {
    let s = AnalyticSurface::SinBumps { amp: 1.0, fx: 1.0, fy: 1.0 };
    for mu in [0.05, 0.2, 0.5] {
        let mut sim = Simulation::new(
            &s,
            Friction::uniform(mu),
            cfg(),
            Particle::at_rest(Vec2::new(0.7, 0.9), 1.0),
        );
        let out = sim.run_until_rest();
        assert_eq!(out.reason, StopReason::AtRest, "µ={mu}");
    }
}

#[test]
fn corollary3_travel_shrinks_with_friction_on_bumps() {
    let s = AnalyticSurface::SinBumps { amp: 2.0, fx: 0.7, fy: 0.7 };
    let start = Vec2::new(2.2, 0.0);
    let travel = |mu: f64| {
        let check = max_travel_check(&s, Friction::uniform(mu), cfg(), start, 1.0, 2.0);
        assert!(check.ok, "µ={mu}: {check:?}");
        check.path
    };
    let t1 = travel(0.05);
    let t2 = travel(0.4);
    assert!(t1 > t2, "path {t1} should exceed {t2}");
}

#[test]
fn trapping_radius_bound_is_respected_across_random_geometry() {
    // Random crater geometries: the object must never come to rest further
    // from its start than the slack-adjusted h*/µ_k.
    let geometries = [(1.0, 2.0, 1.0), (0.5, 1.5, 2.0), (2.0, 4.0, 0.8)];
    for &(floor_r, rim_r, rim_height) in &geometries {
        let s = AnalyticSurface::Crater { center: Vec2::ZERO, floor_r, rim_r, rim_height };
        let max_slope = rim_height / (rim_r - floor_r);
        for mu in [0.2, 0.5] {
            let start = Vec2::new((floor_r + rim_r) / 2.0, 0.0);
            let check = max_travel_check(&s, Friction::uniform(mu), cfg(), start, 1.0, max_slope);
            assert!(check.ok, "geometry {floor_r}/{rim_r}/{rim_height} µ={mu}: {check:?}");
        }
    }
}

#[test]
fn load_surface_analogy_roundtrip() {
    // Build the yard from a network's height map (the M₃ mapping of §4.1):
    // heights at embedded node positions, interpolated in between. Checks
    // that the surface reproduces node heights and slopes toward the
    // lighter node.
    use particle_plane::prelude::{embed, Topology};
    let topo = Topology::mesh(&[3, 3]);
    let pts = embed(&topo);
    let heights = [9.0, 4.0, 1.0, 4.0, 1.0, 0.0, 1.0, 0.0, 0.0];
    let mut grid = GridSurface::flat(3, 3, 1.0);
    for (i, p) in pts.iter().enumerate() {
        grid.set(p.x as usize, p.y as usize, heights[i]);
    }
    // Node 0 embeds at (0,0) with height 9.
    assert_eq!(grid.height(Vec2::new(0.0, 0.0)), 9.0);
    // The gradient at the hot corner points uphill toward it.
    let g = grid.gradient(Vec2::new(0.2, 0.2));
    assert!(g.x < 0.0 && g.y < 0.0, "{g:?}");
    // A particle released near the hot corner slides away from it.
    let mut sim = Simulation::new(
        &grid,
        Friction::uniform(0.2),
        cfg(),
        Particle::at_rest(Vec2::new(0.3, 0.3), 1.0),
    );
    let out = sim.run_until_rest();
    let end = out.particle.pos;
    assert!(end.x > 0.3 || end.y > 0.3, "particle should move off the hill: {end:?}");
}
