//! Checkpoint format gate: a golden fixture committed under `golden/`
//! pins the version-1 byte format, and malformed inputs — future versions,
//! truncations, corrupted fields — must error cleanly, never panic.
//!
//! The fixture is the `faulty-torus` smoke scenario captured at round 4:
//! deterministic, machine-independent (auto layout resolves to one shard;
//! thread counts are not part of a checkpoint), and busy enough to populate
//! every section (tasks, down links, ledger, series, free slots). To
//! regenerate after an intended format change:
//!
//! ```text
//! cargo test --test checkpoint_format regenerate_fixture -- --ignored
//! ```

use pp_scenario::registry;
use pp_scenario::spec::ScenarioSpec;
use pp_sim::checkpoint::{Checkpoint, CHECKPOINT_VERSION};
use pp_sim::engine::Engine;

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/checkpoint-v1.ckpt.json");

/// The scenario the fixture captures (smoke caps match `pp-lab --smoke`).
fn fixture_spec() -> ScenarioSpec {
    registry::by_name("faulty-torus").expect("registered").smoke(8, 25.0)
}

/// Builds the fixture engine and runs it to the capture point (round 4).
fn engine_at_capture_point() -> Engine {
    let mut e = fixture_spec().build_engine().expect("engine");
    e.run_rounds(4);
    e
}

fn fixture_text() -> String {
    std::fs::read_to_string(FIXTURE).expect("committed fixture golden/checkpoint-v1.ckpt.json")
}

#[test]
fn fixture_parses_resumes_and_stays_byte_stable() {
    let text = fixture_text();
    let cp = Checkpoint::from_json(&text).expect("fixture parses");
    assert_eq!(cp.round, 4);
    assert_eq!(cp.nodes, 64);
    assert_eq!(cp.balancer, "particle-plane");

    // Byte-stability: capturing the same engine state today must reproduce
    // the committed fixture exactly. If this fails after an intended format
    // or behavior change, regenerate (see module docs) and commit the diff
    // deliberately.
    let fresh = engine_at_capture_point().checkpoint().to_json();
    assert_eq!(fresh, text, "checkpoint bytes drifted from the committed v1 fixture");

    // And the fixture resumes into the exact straight-run report.
    let spec = fixture_spec();
    let straight = spec.run().expect("straight run");
    let resumed = spec.run_from_checkpoint(&cp).expect("resume from fixture");
    assert_eq!(resumed, straight);
}

#[test]
fn future_version_is_rejected_not_panicked() {
    let text = fixture_text();
    assert!(text.starts_with("{\n  \"version\": 1,"), "fixture must lead with the version");
    let future = text.replacen("\"version\": 1", "\"version\": 2", 1);
    let err = Checkpoint::from_json(&future).unwrap_err();
    assert!(err.contains("version 2"), "unhelpful version error: {err}");
    assert!(err.contains(&CHECKPOINT_VERSION.to_string()));
}

#[test]
fn truncated_bytes_error_at_every_cut_point() {
    let text = fixture_text();
    // Dense cuts near the start (header/version territory) plus spread
    // samples across the whole body.
    let mut cuts: Vec<usize> = (0..64).collect();
    cuts.extend((1..50).map(|i| i * text.len() / 50));
    // len-1 would only trim the trailing newline (still a complete JSON
    // document); len-2 drops the closing brace.
    cuts.push(text.len() - 2);
    for cut in cuts {
        assert!(Checkpoint::from_json(&text[..cut]).is_err(), "cut at byte {cut} must error");
    }
}

#[test]
fn corrupted_fields_error_cleanly() {
    let text = fixture_text();
    let cases: &[(&str, &str)] = &[
        ("\"nodes\": 64", "\"nodes\": \"sixty-four\""), // type confusion
        ("\"round\": 4", "\"round\": -4"),              // sign corruption
        ("\"kind\": \"load\"", "\"kind\": \"warp\""),   // unknown event
        ("\"stats\": {", "\"stats\": ["),               // shape corruption
        ("\"balancer\": \"particle-plane\"", "\"balancer\": null"),
    ];
    for (from, to) in cases {
        let bad = text.replacen(from, to, 1);
        assert_ne!(&bad, &text, "corruption `{from}` did not apply — fixture shape changed?");
        assert!(Checkpoint::from_json(&bad).is_err(), "corruption `{from}` -> `{to}` must error");
    }
    // Raw binary garbage.
    assert!(Checkpoint::from_json("\u{0}\u{1}\u{2}garbage").is_err());
}

#[test]
fn structurally_valid_but_mismatched_checkpoint_is_refused_by_restore() {
    let cp = Checkpoint::from_json(&fixture_text()).expect("fixture parses");
    // A different scenario's engine: same parse, wrong fingerprint.
    let mut other = registry::by_name("bursty-onoff")
        .expect("registered")
        .smoke(8, 25.0)
        .build_engine()
        .expect("engine");
    let err = other.restore(&cp).unwrap_err();
    assert!(err.contains("nodes") || err.contains("balancer"), "{err}");
    // The refused engine is still usable.
    other.run_rounds(2);
    assert_eq!(other.round(), 2);
}

/// Regenerates the committed fixture. Run manually after an intended
/// format change; `fixture_parses_resumes_and_stays_byte_stable` keeps it
/// honest on every CI run.
#[test]
#[ignore = "writes golden/checkpoint-v1.ckpt.json; run after intended format changes"]
fn regenerate_fixture() {
    let text = engine_at_capture_point().checkpoint().to_json();
    std::fs::write(FIXTURE, text).expect("write fixture");
}
