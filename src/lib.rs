//! # particle-plane
//!
//! A production-grade Rust reproduction of Imani & Sarbazi-Azad,
//! *"A Physical Particle and Plane Framework for Load Balancing in
//! Multiprocessors"* (IPPS 2006).
//!
//! The paper models dynamic load balancing as classical mechanics: loads are
//! massive objects, the network is a bumpy surface whose height at a node is
//! that node's total load, and migration is an object sliding downhill
//! subject to static friction (task/resource affinity), kinetic friction
//! (communication cost) and an energy budget (the *potential height* flag
//! carried by each migrating load).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`physics`] — the particle-on-a-plane model of §3 (surfaces, friction,
//!   energy, contours, theorems).
//! * [`topology`] — interconnection networks (mesh, torus, hypercube, …),
//!   embeddings and link attribute matrices (§4.1–4.2).
//! * [`tasking`] — tasks, dependency graphs, resource matrices and workload
//!   generators.
//! * [`sim`] — the discrete-event multiprocessor simulator all balancers run
//!   on.
//! * [`core`] — the particle-plane balancer itself plus the classical
//!   baselines (diffusion, dimension exchange, GM, CWN, …).
//! * [`metrics`] — imbalance metrics, traffic ledgers, convergence detection.
//! * [`scenario`] — declarative, JSON-serializable experiment scenarios and
//!   the registry behind the `pp-lab` runner.
//!
//! ## Quickstart
//!
//! ```
//! use particle_plane::prelude::*;
//!
//! // A 4×4 torus with one hot node holding all 32 load units.
//! let topo = Topology::torus(&[4, 4]);
//! let workload = Workload::hotspot(topo.node_count(), 0, 32.0);
//! let mut engine = EngineBuilder::new(topo)
//!     .workload(workload)
//!     .balancer(ParticlePlaneBalancer::new(PhysicsConfig::default()))
//!     .seed(42)
//!     .build();
//! engine.run_rounds(100).drain(100.0);
//! let report = engine.report();
//! assert!(report.final_imbalance.cov < 0.9);
//! ```

pub use pp_core as core;
pub use pp_metrics as metrics;
pub use pp_physics as physics;
pub use pp_scenario as scenario;
pub use pp_sim as sim;
pub use pp_tasking as tasking;
pub use pp_topology as topology;

/// Convenient re-exports of the most used items across the workspace.
pub mod prelude {
    pub use pp_core::prelude::*;
    pub use pp_metrics::prelude::*;
    pub use pp_physics::prelude::*;
    pub use pp_scenario::prelude::*;
    pub use pp_sim::prelude::*;
    pub use pp_tasking::prelude::*;
    pub use pp_topology::prelude::*;
}
