//! Vendored minimal `#[derive(Serialize)]` companion to the `serde` stub.
//!
//! Parses the derive input by walking the raw token stream (no `syn`/`quote`
//! — the offline build has no registry access) and supports the one shape the
//! workspace derives on: non-generic structs with named fields. The generated
//! impl lowers each field with `serde::Serialize::to_value` into an
//! insertion-ordered `serde::Value::Object`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a struct with named fields.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (name, fields) = parse_struct(&tokens);
    let entries: String = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})),"))
        .collect();
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 serde::Value::Object(vec![{entries}])\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated impl parses")
}

/// Extracts the struct name and its named-field identifiers.
fn parse_struct(tokens: &[TokenTree]) -> (String, Vec<String>) {
    let mut iter = tokens.iter().peekable();
    // Skip attributes (`#[...]`) and visibility ahead of `struct`.
    let mut name = None;
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = tt {
            if id.to_string() == "struct" {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("expected struct name, found {other:?}"),
                }
                break;
            }
        }
    }
    let name = name.expect("derive input contains `struct`");
    // The next brace group holds the fields; anything else (generics, tuple
    // structs, unit structs) is unsupported by this stub.
    let body = iter
        .find_map(|tt| match tt {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .unwrap_or_else(|| {
            panic!("serde stub derive supports only structs with named fields (on {name})")
        });
    (name, field_names(body))
}

/// Walks a brace-group body collecting field identifiers: for each
/// depth-0 `ident :` pair not inside an attribute, records the ident, then
/// skips to the next depth-0 comma.
fn field_names(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            // Field attribute: `#` followed by a bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) => {
                let id = id.to_string();
                if id == "pub" {
                    i += 1;
                    // Skip a `pub(...)` restriction group if present.
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                    continue;
                }
                // `ident :` introduces a field; `::` would mean a path, but
                // paths cannot start a named field at depth 0.
                match tokens.get(i + 1) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {
                        fields.push(id);
                        i += 2;
                        // Skip the type: everything to the next depth-0 comma.
                        while let Some(tt) = tokens.get(i) {
                            i += 1;
                            if let TokenTree::Punct(p) = tt {
                                if p.as_char() == ',' {
                                    break;
                                }
                            }
                        }
                    }
                    other => panic!("unsupported field syntax after `{id}`: {other:?}"),
                }
            }
            other => panic!("unsupported token in struct body: {other:?}"),
        }
    }
    fields
}
