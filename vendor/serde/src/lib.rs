//! Vendored minimal stand-in for `serde`.
//!
//! The build environment has no network access to a crates registry, so this
//! path dependency replaces the real `serde`. Instead of the full
//! `Serializer`/`Deserializer` machinery it exposes a single [`Serialize`]
//! trait that lowers a value into a small JSON [`Value`] model, which
//! `serde_json` then renders. `#[derive(Serialize)]` is provided by the
//! sibling `serde_derive` stub and supports plain structs with named fields —
//! the only shape this workspace derives on.

pub use serde_derive::Serialize;

/// An owned JSON value: the intermediate representation [`Serialize`] lowers
/// into and `serde_json` renders from.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float; non-finite values render as `null` like real serde_json.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` (ints and uints widen); `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a string slice; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool; `None` for non-booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The array items; `None` for non-arrays.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Types that can be lowered to a JSON [`Value`].
pub trait Serialize {
    /// Lowers `self` into the JSON value model.
    fn to_value(&self) -> Value;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

impl_serialize_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

impl_serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::{Serialize, Value};

    #[test]
    fn primitives_lower() {
        assert_eq!(3usize.to_value(), Value::UInt(3));
        assert_eq!((-2i32).to_value(), Value::Int(-2));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
    }

    #[test]
    fn option_and_vec_lower() {
        assert_eq!(None::<f64>.to_value(), Value::Null);
        assert_eq!(Some(1.5f64).to_value(), Value::Float(1.5));
        assert_eq!(vec![1u32, 2].to_value(), Value::Array(vec![Value::UInt(1), Value::UInt(2)]));
    }

    #[test]
    fn tuple_lowers_to_array() {
        assert_eq!(
            (1u8, "a").to_value(),
            Value::Array(vec![Value::UInt(1), Value::Str("a".into())])
        );
    }
}
