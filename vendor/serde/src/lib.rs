//! Vendored minimal stand-in for `serde`.
//!
//! The build environment has no network access to a crates registry, so this
//! path dependency replaces the real `serde`. Instead of the full
//! `Serializer`/`Deserializer` machinery it exposes a [`Serialize`] trait
//! that lowers a value into a small JSON [`Value`] model (which `serde_json`
//! renders) and a mirror-image [`Deserialize`] trait that lifts a parsed
//! [`Value`] back into a typed value. `#[derive(Serialize)]` is provided by
//! the sibling `serde_derive` stub and supports plain structs with named
//! fields — the only shape this workspace derives on; `Deserialize` impls
//! for aggregate types are written by hand.

pub use serde_derive::Serialize;

/// An owned JSON value: the intermediate representation [`Serialize`] lowers
/// into and `serde_json` renders from.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float; non-finite values render as `null` like real serde_json.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` (ints and uints widen); `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a string slice; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool; `None` for non-booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The array items; `None` for non-arrays.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as `u64`; `None` for anything but a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as `i64`; `None` for non-integers and out-of-range uints.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Typed lookup of a required object field: `get(key)` lifted through
    /// [`Deserialize`], with the key name in the error message.
    pub fn field<T: Deserialize>(&self, key: &str) -> Result<T, String> {
        match self.get(key) {
            Some(v) => T::from_value(v).map_err(|e| format!("field `{key}`: {e}")),
            None => Err(format!("missing field `{key}`")),
        }
    }

    /// Typed lookup of an optional object field: a missing key or an
    /// explicit `null` both yield `None`.
    pub fn field_opt<T: Deserialize>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(v) => T::from_value(v).map(Some).map_err(|e| format!("field `{key}`: {e}")),
        }
    }
}

/// Types that can be lowered to a JSON [`Value`].
pub trait Serialize {
    /// Lowers `self` into the JSON value model.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

impl_serialize_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

impl_serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Types that can be lifted back out of a JSON [`Value`]. Errors are plain
/// strings describing the first mismatch found.
pub trait Deserialize: Sized {
    /// Lifts a value out of the JSON value model.
    fn from_value(v: &Value) -> Result<Self, String>;
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_bool().ok_or_else(|| format!("expected bool, got {v:?}"))
    }
}

macro_rules! impl_deserialize_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                let i = v.as_i64().ok_or_else(|| format!("expected integer, got {v:?}"))?;
                <$t>::try_from(i).map_err(|_| format!("integer {i} out of range"))
            }
        }
    )*};
}

impl_deserialize_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_deserialize_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                let u = v.as_u64().ok_or_else(|| format!("expected unsigned integer, got {v:?}"))?;
                <$t>::try_from(u).map_err(|_| format!("integer {u} out of range"))
            }
        }
    )*};
}

impl_deserialize_unsigned!(u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_f64().ok_or_else(|| format!("expected number, got {v:?}"))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, String> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_str().map(str::to_string).ok_or_else(|| format!("expected string, got {v:?}"))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        let items = v.as_array().ok_or_else(|| format!("expected array, got {v:?}"))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_value(item).map_err(|e| format!("index {i}: {e}")))
            .collect()
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($($name:ident : $idx:tt),+ ; $len:expr))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, String> {
                let items = v.as_array().ok_or_else(|| format!("expected array, got {v:?}"))?;
                if items.len() != $len {
                    return Err(format!("expected {}-tuple, got {} items", $len, items.len()));
                }
                Ok(($($name::from_value(&items[$idx])
                    .map_err(|e| format!("tuple index {}: {e}", $idx))?,)+))
            }
        }
    )*};
}

impl_deserialize_tuple! {
    (A: 0; 1)
    (A: 0, B: 1; 2)
    (A: 0, B: 1, C: 2; 3)
    (A: 0, B: 1, C: 2, D: 3; 4)
}

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize, Value};

    #[test]
    fn primitives_lift() {
        assert_eq!(u32::from_value(&Value::UInt(7)), Ok(7));
        assert_eq!(i64::from_value(&Value::Int(-3)), Ok(-3));
        assert_eq!(f64::from_value(&Value::UInt(2)), Ok(2.0));
        assert_eq!(bool::from_value(&Value::Bool(true)), Ok(true));
        assert_eq!(String::from_value(&Value::Str("x".into())), Ok("x".to_string()));
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Str("7".into())).is_err());
    }

    #[test]
    fn aggregates_lift() {
        let arr = Value::Array(vec![Value::UInt(1), Value::UInt(2)]);
        assert_eq!(Vec::<u32>::from_value(&arr), Ok(vec![1, 2]));
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&Value::UInt(5)), Ok(Some(5)));
        let pair = Value::Array(vec![Value::UInt(3), Value::Float(0.5)]);
        assert_eq!(<(usize, f64)>::from_value(&pair), Ok((3, 0.5)));
        assert!(<(usize, f64)>::from_value(&Value::Array(vec![Value::UInt(3)])).is_err());
    }

    #[test]
    fn field_lookups() {
        let obj =
            Value::Object(vec![("a".to_string(), Value::UInt(1)), ("b".to_string(), Value::Null)]);
        assert_eq!(obj.field::<u64>("a"), Ok(1));
        assert!(obj.field::<u64>("missing").unwrap_err().contains("missing field"));
        assert_eq!(obj.field_opt::<u64>("b"), Ok(None));
        assert_eq!(obj.field_opt::<u64>("missing"), Ok(None));
        assert_eq!(obj.field_opt::<u64>("a"), Ok(Some(1)));
    }

    #[test]
    fn primitives_lower() {
        assert_eq!(3usize.to_value(), Value::UInt(3));
        assert_eq!((-2i32).to_value(), Value::Int(-2));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
    }

    #[test]
    fn option_and_vec_lower() {
        assert_eq!(None::<f64>.to_value(), Value::Null);
        assert_eq!(Some(1.5f64).to_value(), Value::Float(1.5));
        assert_eq!(vec![1u32, 2].to_value(), Value::Array(vec![Value::UInt(1), Value::UInt(2)]));
    }

    #[test]
    fn tuple_lowers_to_array() {
        assert_eq!(
            (1u8, "a").to_value(),
            Value::Array(vec![Value::UInt(1), Value::Str("a".into())])
        );
    }
}
