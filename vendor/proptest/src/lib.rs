//! Vendored minimal stand-in for `proptest`.
//!
//! The build environment has no network access to a crates registry, so this
//! path dependency replaces the real `proptest` with the subset the
//! workspace's property tests use:
//!
//! * the [`proptest!`] macro over `fn name(arg in strategy, ...)` items, with
//!   an optional `#![proptest_config(...)]` header;
//! * range strategies (`0u8..5`, `0.0f64..=1.0`, ...) and
//!   `prop::collection::vec(elem, size_range)`;
//! * `prop_assert!` / `prop_assert_eq!`, which simply forward to the std
//!   assertions.
//!
//! Cases are generated from a deterministic per-case RNG (SplitMix64 over the
//! case index), so failures reproduce exactly on re-run. There is **no
//! shrinking**: a failing case reports the assertion as-is.

use std::ops::{Range, RangeInclusive};

/// Test-runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod test_runner {
    //! The per-case RNG driving strategy sampling.

    /// A SplitMix64 stream; cheap, seedable, and good enough for case
    /// generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG fully determined by `seed` (the case index), so every run
        /// replays the same cases.
        pub fn deterministic(seed: u64) -> Self {
            TestRng { state: seed.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xD1B54A32D192ED03 }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// A uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform `usize` in `[lo, hi]`.
        pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
            lo + (self.next_u64() as u128 % (hi as u128 - lo as u128 + 1)) as usize
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from `rng`.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_strategy_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty strategy range");
                    let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    self.start().wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }

    impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_strategy_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                    if v < self.end { v } else { self.start }
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty strategy range");
                    self.start() + (self.end() - self.start()) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    impl_strategy_float_range!(f32, f64);

    macro_rules! impl_strategy_tuple {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_strategy_tuple!(A, B);
    impl_strategy_tuple!(A, B, C);
    impl_strategy_tuple!(A, B, C, D);

    /// Wraps a fixed value as a strategy (proptest's `Just`).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use super::SizeRange;

    /// A strategy yielding `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_inclusive(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// An inclusive length range for collection strategies, converted from the
/// range literals used at call sites.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Checks a condition inside a property, with an optional message.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Checks equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Checks inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments `cases` times and runs the
/// body per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..u64::from(__cfg.cases) {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(__case);
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng); )*
                    $body
                }
            }
        )*
    };
}

pub mod prelude {
    //! The glob-import surface property tests use.

    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn int_ranges_in_bounds(x in 3u8..9, y in -2i64..=2) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2..=2).contains(&y));
        }

        #[test]
        fn float_ranges_in_bounds(v in 0.5f64..2.5) {
            prop_assert!((0.5..2.5).contains(&v));
        }

        #[test]
        fn vec_lengths_respect_size_range(
            a in prop::collection::vec(0.0f64..1.0, 2..5),
            b in prop::collection::vec(0u32..10, 3..=4),
        ) {
            prop_assert!((2..=4).contains(&a.len()));
            prop_assert!((3..=4).contains(&b.len()));
            prop_assert!(a.iter().all(|v| (0.0..1.0).contains(v)));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u8..2) {
            prop_assert!(x < 2);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let sample = |case: u64| {
            let mut rng = crate::test_runner::TestRng::deterministic(case);
            crate::strategy::Strategy::sample(&(0u64..1_000_000), &mut rng)
        };
        assert_eq!(sample(7), sample(7));
        assert_ne!(
            (0..32).map(sample).collect::<Vec<_>>(),
            (1..33).map(sample).collect::<Vec<_>>()
        );
    }
}
