//! Vendored minimal stand-in for `crossbeam`.
//!
//! The build environment has no network access to a crates registry, so this
//! path dependency replaces the real `crossbeam` with the two facilities the
//! workspace uses:
//!
//! * [`channel::unbounded`] — an MPMC FIFO channel (std's `mpsc` receiver is
//!   single-consumer, so this is a small `Mutex<VecDeque>` + `Condvar` queue
//!   with crossbeam's disconnect semantics).
//! * [`thread::scope`] — scoped spawning, delegated to `std::thread::scope`
//!   (stable since 1.63) behind crossbeam's `Result`-returning signature.

pub mod channel {
    //! Multi-producer multi-consumer FIFO channel.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Creates an unbounded MPMC channel; both halves are cloneable.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    /// Error returned by [`Sender::send`] when every receiver has been
    /// dropped; gives the message back.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// The sending half; clone to add producers.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing only if all receivers are gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().expect("channel lock");
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            st.queue.push_back(msg);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").senders += 1;
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel lock");
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                // Wake blocked receivers so they observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    /// The receiving half; clone to add consumers.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Dequeues the next message, blocking while the channel is empty
        /// and at least one sender is alive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().expect("channel lock");
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.ready.wait(st).expect("channel lock");
            }
        }

        /// A blocking iterator over incoming messages; ends on disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").receivers += 1;
            Receiver { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.state.lock().expect("channel lock").receivers -= 1;
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Iterator over received messages; see [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's API over `std::thread::scope`.

    use std::any::Any;

    /// A scope handle; the spawn closure receives `&Scope` so workers can
    /// spawn siblings (unused in this workspace but part of the API shape).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The handle joins implicitly at scope end.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned; all
    /// are joined before this returns.
    ///
    /// Unlike crossbeam, a panicking child propagates as a panic out of
    /// `scope` (std semantics) instead of an `Err`; the `Result` wrapper is
    /// kept so call sites written against crossbeam compile unchanged.
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::{channel, thread};

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn recv_errors_after_disconnect() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn send_errors_without_receivers() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(channel::SendError(9)));
    }

    #[test]
    fn multi_consumer_processes_everything() {
        let (tx, rx) = channel::unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let (out_tx, out_rx) = channel::unbounded();
        thread::scope(|s| {
            for _ in 0..4 {
                let rx = rx.clone();
                let out_tx = out_tx.clone();
                s.spawn(move |_| {
                    while let Ok(v) = rx.recv() {
                        out_tx.send(v).unwrap();
                    }
                });
            }
        })
        .unwrap();
        drop(out_tx);
        let mut got: Vec<i32> = out_rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn scope_returns_closure_value() {
        let r = thread::scope(|s| {
            let h = s.spawn(|_| 21);
            h.join().unwrap() * 2
        })
        .unwrap();
        assert_eq!(r, 42);
    }
}
