//! Vendored minimal stand-in for `serde_json`.
//!
//! Renders the `serde` stub's [`Value`] model to JSON text. Implements the
//! two entry points the workspace uses: [`to_string`] and
//! [`to_string_pretty`]. Non-finite floats render as `null`, matching the
//! real serde_json's default behavior.

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error. The stub's rendering is total, so this is never
/// produced, but the `Result` return keeps call sites source-compatible with
/// the real serde_json.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Renders `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Writes `v` to `out`; `indent = None` means compact, `Some(w)` means
/// pretty with `w`-space indentation at nesting `depth`.
fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a trailing `.0` for integral floats, matching
                // the distinction JSON readers expect between 1 and 1.0.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            write_seq(items.iter(), indent, depth, out, '[', ']', |item, d, o| {
                write_value(item, indent, d, o)
            });
        }
        Value::Object(entries) => {
            write_seq(entries.iter(), indent, depth, out, '{', '}', |(k, v), d, o| {
                write_escaped(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(v, indent, d, o);
            });
        }
    }
}

/// Writes a delimited, comma-separated sequence with optional pretty layout.
fn write_seq<I, F>(
    items: I,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    open: char,
    close: char,
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(I::Item, usize, &mut String),
{
    out.push(open);
    if items.len() == 0 {
        out.push(close);
        return;
    }
    let mut first = true;
    for item in items {
        if !first {
            out.push(',');
        }
        first = false;
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(item, depth + 1, out);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

/// Writes `s` as a JSON string literal with the mandatory escapes.
fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::{to_string, to_string_pretty};
    use serde::{Serialize, Value};

    struct Row {
        name: String,
        cov: f64,
        rounds: Option<u64>,
    }

    impl Serialize for Row {
        fn to_value(&self) -> Value {
            Value::Object(vec![
                ("name".to_string(), self.name.to_value()),
                ("cov".to_string(), self.cov.to_value()),
                ("rounds".to_string(), self.rounds.to_value()),
            ])
        }
    }

    #[test]
    fn compact_object() {
        let r = Row { name: "torus".into(), cov: 0.5, rounds: None };
        assert_eq!(to_string(&r).unwrap(), r#"{"name":"torus","cov":0.5,"rounds":null}"#);
    }

    #[test]
    fn pretty_roundtrips_structure() {
        let rows = vec![
            Row { name: "a".into(), cov: 1.0, rounds: Some(3) },
            Row { name: "b".into(), cov: 0.25, rounds: None },
        ];
        let s = to_string_pretty(&rows).unwrap();
        assert!(s.starts_with("[\n  {"));
        assert!(s.contains("\"cov\": 1.0"));
        assert!(s.ends_with("\n]"));
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(to_string("a\"b\\c\n").unwrap(), r#""a\"b\\c\n""#);
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&Vec::<u8>::new()).unwrap(), "[]");
    }
}
