//! Vendored minimal stand-in for `serde_json`.
//!
//! Renders the `serde` stub's [`Value`] model to JSON text and parses JSON
//! text back into it. Implements the entry points the workspace uses:
//! [`to_string`], [`to_string_pretty`] and [`from_str`]. Non-finite floats
//! render as `null`, matching the real serde_json's default behavior.

pub use serde::Value;

use serde::Serialize;
use std::fmt;

/// Serialization/deserialization error. Rendering is total; parsing reports
/// the byte offset and a short description of the first problem found.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn parse(offset: usize, msg: impl Into<String>) -> Self {
        Error(format!("JSON parse error at byte {offset}: {}", msg.into()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            f.write_str("JSON serialization error")
        } else {
            f.write_str(&self.0)
        }
    }
}

impl std::error::Error for Error {}

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Renders `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Writes `v` to `out`; `indent = None` means compact, `Some(w)` means
/// pretty with `w`-space indentation at nesting `depth`.
fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a trailing `.0` for integral floats, matching
                // the distinction JSON readers expect between 1 and 1.0.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            write_seq(items.iter(), indent, depth, out, '[', ']', |item, d, o| {
                write_value(item, indent, d, o)
            });
        }
        Value::Object(entries) => {
            write_seq(entries.iter(), indent, depth, out, '{', '}', |(k, v), d, o| {
                write_escaped(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(v, indent, d, o);
            });
        }
    }
}

/// Writes a delimited, comma-separated sequence with optional pretty layout.
fn write_seq<I, F>(
    items: I,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    open: char,
    close: char,
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(I::Item, usize, &mut String),
{
    out.push(open);
    if items.len() == 0 {
        out.push(close);
        return;
    }
    let mut first = true;
    for item in items {
        if !first {
            out.push(',');
        }
        first = false;
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(item, depth + 1, out);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

/// Parses JSON text into the [`Value`] model. Accepts exactly the grammar
/// [`to_string`] emits (all of standard JSON except `\uXXXX` surrogate
/// pairs, which decode per-escape).
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse(p.pos, "trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(self.pos, format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::parse(self.pos, format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::parse(self.pos, "expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse(self.pos, "expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::parse(self.pos, "expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::parse(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::parse(self.pos, "invalid \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::parse(self.pos, "invalid escape")),
                    }
                    self.pos += 1;
                }
                // ASCII fast path: the overwhelmingly common case, and —
                // crucially — O(1). Validating UTF-8 over the whole
                // remaining input per character made large documents
                // (multi-MB engine checkpoints) parse quadratically.
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume exactly one multi-byte UTF-8 scalar (input is
                    // a &str, so byte boundaries are valid); decode only its
                    // own bytes, never the rest of the document.
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (self.pos + width).min(self.bytes.len());
                    let c = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| Error::parse(self.pos, "invalid UTF-8"))?
                        .chars()
                        .next()
                        .ok_or_else(|| Error::parse(self.pos, "invalid UTF-8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse(start, "invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) });
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::parse(start, format!("invalid number `{text}`")))
    }
}

/// Writes `s` as a JSON string literal with the mandatory escapes.
fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::{from_str, to_string, to_string_pretty};
    use serde::{Serialize, Value};

    struct Row {
        name: String,
        cov: f64,
        rounds: Option<u64>,
    }

    impl Serialize for Row {
        fn to_value(&self) -> Value {
            Value::Object(vec![
                ("name".to_string(), self.name.to_value()),
                ("cov".to_string(), self.cov.to_value()),
                ("rounds".to_string(), self.rounds.to_value()),
            ])
        }
    }

    #[test]
    fn compact_object() {
        let r = Row { name: "torus".into(), cov: 0.5, rounds: None };
        assert_eq!(to_string(&r).unwrap(), r#"{"name":"torus","cov":0.5,"rounds":null}"#);
    }

    #[test]
    fn pretty_roundtrips_structure() {
        let rows = vec![
            Row { name: "a".into(), cov: 1.0, rounds: Some(3) },
            Row { name: "b".into(), cov: 0.25, rounds: None },
        ];
        let s = to_string_pretty(&rows).unwrap();
        assert!(s.starts_with("[\n  {"));
        assert!(s.contains("\"cov\": 1.0"));
        assert!(s.ends_with("\n]"));
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(to_string("a\"b\\c\n").unwrap(), r#""a\"b\\c\n""#);
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&Vec::<u8>::new()).unwrap(), "[]");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" false ").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::UInt(42));
        assert_eq!(from_str("-7").unwrap(), Value::Int(-7));
        assert_eq!(from_str("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(from_str("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(from_str(r#""hi\n\"x\"""#).unwrap(), Value::Str("hi\n\"x\"".into()));
    }

    #[test]
    fn parse_nested() {
        let v = from_str(r#"{"a": [1, 2.0, {"b": null}], "c": "d"}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[1].as_f64(), Some(2.0));
        assert!(matches!(a[2].get("b"), Some(Value::Null)));
        assert_eq!(v.get("c").unwrap().as_str(), Some("d"));
    }

    #[test]
    fn serialize_parse_roundtrip() {
        let r = Row { name: "torus [4, 4]".into(), cov: 0.125, rounds: Some(10) };
        let parsed = from_str(&to_string_pretty(&r).unwrap()).unwrap();
        assert_eq!(parsed.get("name").unwrap().as_str(), Some("torus [4, 4]"));
        assert_eq!(parsed.get("cov").unwrap().as_f64(), Some(0.125));
        assert_eq!(parsed.get("rounds").unwrap().as_f64(), Some(10.0));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str(r#"{"a" 1}"#).is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn parse_unicode_escapes_and_raw() {
        assert_eq!(from_str(r#""Aµ""#).unwrap(), Value::Str("Aµ".into()));
        // Multi-byte scalars of every UTF-8 width, mid-string and adjacent.
        assert_eq!(from_str(r#""aµ€𝄞z""#).unwrap(), Value::Str("aµ€𝄞z".into()));
        assert_eq!(from_str(r#"["σ/µ", "h²"]"#).unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn large_documents_parse_in_linear_time() {
        // Engine checkpoints reach tens of MB. The per-character UTF-8
        // revalidation bug made this quadratic (minutes for one file); with
        // the ASCII fast path this parses instantly — a reintroduced
        // regression shows up as this test hanging.
        let big = "x".repeat(400_000);
        let doc = format!("{{\"k\": \"{big}\", \"µ\": [1.5, 2.5]}}");
        let v = from_str(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str().map(str::len), Some(400_000));
        assert_eq!(v.get("µ").unwrap().as_array().unwrap().len(), 2);
    }
}
