//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace pins this path dependency instead of the real `rand`. It
//! implements exactly the surface the codebase uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over (inclusive and
//! half-open) integer and float ranges, and `Rng::gen_bool` — with the same
//! signatures as rand 0.8, so swapping the real crate back in is a
//! one-line manifest change.
//!
//! The generator is xoshiro256++ seeded via SplitMix64: deterministic,
//! high-quality for simulation purposes, and stable across platforms. Streams
//! are NOT bit-compatible with the real `StdRng` (ChaCha12); nothing in the
//! workspace depends on specific streams, only on determinism per seed.

use std::ops::{Range, RangeInclusive};

/// A random number generator core: the single source of entropy.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator seedable from a `u64` for reproducible runs.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// Panics if the range is empty (matching rand 0.8).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[lo, hi)`. Callers guarantee `lo < hi`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Samples uniformly from `[lo, hi]`. Callers guarantee `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                let v = lo + (hi - lo) * u;
                // Guard against rounding `lo + span` up to `hi` itself by
                // stepping to the largest float below `hi` (sign-aware:
                // for positive floats that is bits−1, for negative bits+1).
                if v < hi {
                    v
                } else {
                    let below_hi = if hi > 0.0 {
                        <$t>::from_bits(hi.to_bits() - 1)
                    } else if hi < 0.0 {
                        <$t>::from_bits(hi.to_bits() + 1)
                    } else {
                        -<$t>::from_bits(1) // largest float below +0.0
                    };
                    lo.max(below_hi)
                }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Samples one value; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of state,
            // as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw 256-bit generator state, for checkpointing. Restoring
        /// via [`StdRng::from_state`] resumes the stream exactly where
        /// [`StdRng::state`] captured it.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a captured [`StdRng::state`] snapshot.
        ///
        /// The all-zero state is a fixed point of xoshiro256++ and can only
        /// come from a corrupted snapshot (seeding never produces it); it is
        /// mapped to the `seed_from_u64(0)` state instead.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn int_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(2usize..7);
            assert!((2..7).contains(&v));
            let w = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
        }
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v));
            let w: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn negative_float_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(-2.0..-1.0);
            assert!((-2.0..-1.0).contains(&v), "v = {v}");
            let w: f64 = rng.gen_range(-1.0..0.0);
            assert!((-1.0..0.0).contains(&w), "w = {w}");
        }
        // The rounding guard itself: a denormal-width range forces v == hi.
        let lo = -1.0f64;
        let hi = -1.0f64 + f64::EPSILON;
        for _ in 0..100 {
            let v: f64 = rng.gen_range(lo..hi);
            assert!(v >= lo && v < hi, "v = {v}");
        }
    }

    #[test]
    fn state_snapshot_resumes_stream_exactly() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            let _: u64 = a.gen_range(0..u64::MAX);
        }
        let snap = a.state();
        let mut b = StdRng::from_state(snap);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..u64::MAX), b.gen_range(0..u64::MAX));
        }
    }

    #[test]
    fn all_zero_state_is_repaired() {
        // The zero state would lock xoshiro at 0 forever; from_state maps it
        // to a working seed instead.
        let mut z = StdRng::from_state([0; 4]);
        let vals: Vec<u64> = (0..4).map(|_| z.gen_range(0..u64::MAX)).collect();
        assert!(vals.iter().any(|&v| v != vals[0]));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_bool_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits = {hits}");
    }
}
