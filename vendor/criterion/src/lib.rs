//! Vendored minimal stand-in for `criterion`.
//!
//! The build environment has no network access to a crates registry, so this
//! path dependency replaces the real `criterion` with a lightweight
//! measure-and-print harness exposing the same call surface the workspace's
//! benches use: `criterion_group!` / `criterion_main!`, `benchmark_group`,
//! the group tuning knobs (recorded but only loosely honored), and
//! `Bencher::iter`. Each bench is timed over a handful of samples and the
//! median per-iteration time is printed; there is no statistical analysis,
//! no HTML report, and no baseline comparison.
//!
//! Passing `--test` (as `cargo test` does for `harness = false` bench
//! targets) runs every closure exactly once, unmeasured.

use std::fmt;
use std::time::{Duration, Instant};

/// The top-level harness handle, one per bench binary.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10 }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.0, 10, self.test_mode, f);
        self
    }
}

/// A set of related benchmarks sharing tuning parameters.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per bench (clamped to `2..=20`; the
    /// stub keeps runs short).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(2, 20);
        self
    }

    /// Accepted for API compatibility; the stub does not warm up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub times a fixed number of
    /// samples instead of filling a time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().0);
        run_one(&id, self.sample_size, self.criterion.test_mode, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name plus a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to the bench closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    test_mode: bool,
}

impl Bencher {
    /// Times `routine`, keeping its return value opaque to the optimizer.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(routine());
        }
        self.samples.push(start.elapsed() / self.iters_per_sample as u32);
    }
}

/// Runs one benchmark: a calibration pass sizing iterations so a sample
/// stays cheap, then `samples` timed samples; prints the median.
fn run_one<F>(id: &str, samples: usize, test_mode: bool, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if test_mode {
        let mut b = Bencher { samples: Vec::new(), iters_per_sample: 1, test_mode };
        f(&mut b);
        println!("test {id} ... ok");
        return;
    }
    // Calibrate: aim for roughly 10ms per sample, capped for slow routines.
    let mut b = Bencher { samples: Vec::new(), iters_per_sample: 1, test_mode };
    f(&mut b);
    let once = b.samples.first().copied().unwrap_or(Duration::from_millis(1));
    let iters =
        (Duration::from_millis(10).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u64;

    let mut b = Bencher { samples: Vec::new(), iters_per_sample: iters, test_mode };
    for _ in 0..samples {
        f(&mut b);
    }
    b.samples.sort();
    let median = b.samples.get(b.samples.len() / 2).copied().unwrap_or_default();
    println!("{id:<60} median {median:>12?} ({samples} samples x {iters} iters)");
}

/// Bundles bench functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_composes() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(1));
        let mut runs = 0;
        group.bench_function("f", |b| {
            b.iter(|| ());
            runs += 1;
        });
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn measured_mode_collects_samples() {
        let mut c = Criterion { test_mode: false };
        c.bench_function(BenchmarkId::new("id", 3), |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).0, "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).0, "8");
    }
}
