//! Sharded tick pipeline at scale: run the same 4 096-node redistribution
//! sequentially (one shard) and sharded (32 row bands), prove the outcomes
//! are byte-identical, and show where the sharded engine's speed comes
//! from — after convergence, clean shards skip their decision sweeps
//! entirely (exact shard-level activity tracking over the partition's halo
//! maps).
//!
//! Run with: `cargo run --release --example sharded_scale`

use particle_plane::prelude::*;
use std::time::Instant;

const SIDE: usize = 64;
const WARM_ROUNDS: u64 = 300;
const MEASURED_ROUNDS: u64 = 500;

fn engine(shards: usize) -> Engine {
    let topo = Topology::torus(&[SIDE, SIDE]);
    let n = topo.node_count();
    EngineBuilder::new(topo)
        .workload(Workload::uniform_random(n, 10.0, 7))
        .balancer(ParticlePlaneBalancer::new(PhysicsConfig::default()))
        .config(EngineConfig { shards, ..Default::default() })
        .seed(7)
        .build()
}

fn main() {
    println!("{SIDE}x{SIDE} torus ({} nodes), uniform-random redistribution\n", SIDE * SIDE);

    let mut results = Vec::new();
    for shards in [1usize, 32] {
        let mut e = engine(shards);
        let layout = e.shard_layout();
        e.run_rounds(WARM_ROUNDS); // converge past the migration burst
        let start = Instant::now();
        e.run_rounds(MEASURED_ROUNDS);
        let secs = start.elapsed().as_secs_f64().max(1e-12);
        e.drain(50.0);
        let stats = e.shard_stats();
        println!(
            "{layout}: {:>10.0} rounds/s steady-state, skip ratio {:.2}",
            MEASURED_ROUNDS as f64 / secs,
            stats.skip_ratio()
        );
        results.push(e.report());
    }

    let (seq, sharded) = (&results[0], &results[1]);
    assert_eq!(seq, sharded, "sharded run must be byte-identical to sequential");
    println!(
        "\noutcomes byte-identical: cov={:.4}, {} migration hops, {:.1} load moved",
        seq.final_imbalance.cov,
        seq.ledger.migration_count(),
        seq.ledger.total_load_moved()
    );

    // The partition itself is inspectable: contiguous row bands with
    // exact halo maps (what makes skipping clean shards provably safe).
    let p = Partition::new(&Topology::torus(&[SIDE, SIDE]), 32);
    let (lo, hi) = p.range(0);
    println!(
        "partition: {} shards of {} nodes; shard 0 owns v{lo}..v{hi}, \
         {} boundary / {} interior, {} halo edges",
        p.shard_count(),
        p.len(0),
        p.boundary_count(0),
        p.interior_count(0),
        p.halo(0).len()
    );
}
