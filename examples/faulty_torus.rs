//! Fault tolerance (§4.2): balance a torus whose links both *fail
//! per-transfer* (fault probability raising `e_{i,j}`) and *go down
//! dynamically* (a Markov up/down process). The particle-plane balancer
//! keeps converging because down links vanish from its view and faulty
//! links weigh more in `tan β`. Every variant is the registry's
//! `faulty-torus` scenario with its link/fault-plan fields overridden.
//!
//! Run with: `cargo run --release --example faulty_torus`

use particle_plane::prelude::*;

fn run(fault_prob: f64, dynamic: Option<(f64, f64)>) -> RunReport {
    let mut spec = by_name("faulty-torus").expect("registered scenario");
    spec.links = LinkSpec::Uniform { bandwidth: 1.0, distance: 1.0, fault_prob };
    spec.faults = FaultPlanSpec { model: dynamic };
    spec.duration = DurationSpec { rounds: 250, drain: 200.0 };
    spec.seed = 13;
    spec.run().expect("valid scenario")
}

fn main() {
    let mut table = TextTable::new(vec!["scenario", "final CoV", "hops", "hop faults", "traffic"]);
    type Scenario = (&'static str, f64, Option<(f64, f64)>);
    let scenarios: Vec<Scenario> = vec![
        ("clean links", 0.0, None),
        ("per-transfer faults f=0.05", 0.05, None),
        ("per-transfer faults f=0.20", 0.20, None),
        ("dynamic up/down (p_down=.05, p_up=.5)", 0.0, Some((0.05, 0.5))),
        ("both", 0.10, Some((0.05, 0.5))),
    ];
    for (name, f, dynamic) in scenarios {
        let r = run(f, dynamic);
        table.row(vec![
            name.to_string(),
            fmt(r.final_imbalance.cov, 3),
            r.ledger.migration_count().to_string(),
            r.ledger.fault_count().to_string(),
            fmt(r.ledger.total_weighted_traffic(), 0),
        ]);
        assert!(
            r.final_imbalance.cov < 1.0,
            "{name}: balancing should survive faults (cov {})",
            r.final_imbalance.cov
        );
    }
    println!("8×8 torus, bimodal workload, particle-plane under faults:\n");
    println!("{}", table.render());
}
