//! Bake-off on a mesh hotspot: the particle-plane balancer against every
//! baseline from §2 of the paper, on identical workloads and seeds.
//!
//! Run with: `cargo run --release --example hotspot_mesh`

use particle_plane::prelude::*;

fn run(name_topo: &Topology, balancer: Box<dyn LoadBalancer>, rounds: u64) -> RunReport {
    let nodes = name_topo.node_count();
    let workload = Workload::hotspot(nodes, 0, 2.0 * nodes as f64);
    let mut engine = EngineBuilder::new(name_topo.clone())
        .workload(workload)
        .balancer_boxed(balancer)
        .seed(7)
        .build();
    engine.run_rounds(rounds).drain(200.0);
    engine.report()
}

fn main() {
    let topo = Topology::mesh(&[8, 8]);
    let rounds = 300;
    let mean = 2.0;

    let balancers: Vec<Box<dyn LoadBalancer>> = vec![
        Box::new(ParticlePlaneBalancer::new(PhysicsConfig::default())),
        Box::new(DiffusionBalancer::optimal(&topo)),
        Box::new(DiffusionBalancer::safe(&topo)),
        Box::new(DimensionExchangeBalancer::new(&topo)),
        Box::new(GradientModelBalancer::new(mean * 0.75, mean * 1.25)),
        Box::new(CwnBalancer::new(1.0)),
        Box::new(RandomNeighborBalancer::new(1.0)),
        Box::new(SenderInitiatedBalancer::new(mean * 1.5, mean, 2)),
    ];

    let mut table =
        TextTable::new(vec!["balancer", "final CoV", "spread", "hops", "traffic", "conv@0.5"]);
    for b in balancers {
        let r = run(&topo, b, rounds);
        table.row(vec![
            r.balancer.clone(),
            fmt(r.final_imbalance.cov, 3),
            fmt(r.final_imbalance.spread, 1),
            r.ledger.migration_count().to_string(),
            fmt(r.ledger.total_weighted_traffic(), 0),
            r.converged_round(0.5, 3).map(|t| fmt(t, 0)).unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("8×8 mesh, hotspot of {} units on node 0, {} rounds:\n", 128, rounds);
    println!("{}", table.render());
}
