//! Bake-off on a mesh hotspot: the particle-plane balancer against every
//! baseline from §2 of the paper, on identical workloads and seeds. One
//! declarative scenario; only the `balancer` field varies.
//!
//! Run with: `cargo run --release --example hotspot_mesh`

use particle_plane::prelude::*;

fn main() {
    let rounds = 300;
    let mean = 2.0;

    let balancers: Vec<BalancerSpec> = vec![
        BalancerSpec::ParticlePlane { config: PhysicsConfig::default(), arbiter: None, name: None },
        BalancerSpec::Diffusion { alpha: DiffusionAlpha::Optimal },
        BalancerSpec::Diffusion { alpha: DiffusionAlpha::Safe },
        BalancerSpec::DimensionExchange,
        BalancerSpec::GradientModel { low: mean * 0.75, high: mean * 1.25 },
        BalancerSpec::Cwn { threshold: 1.0 },
        BalancerSpec::RandomNeighbor { threshold: 1.0 },
        BalancerSpec::SenderInitiated { t_high: mean * 1.5, t_accept: mean, probes: 2 },
    ];

    let mut table =
        TextTable::new(vec!["balancer", "final CoV", "spread", "hops", "traffic", "conv@0.5"]);
    for balancer in balancers {
        let spec = ScenarioSpec {
            name: "hotspot-mesh-bakeoff".to_string(),
            topology: TopologySpec::Mesh { dims: vec![8, 8] },
            workload: WorkloadSpec::Hotspot { node: 0, total: 128.0, task_size: 1.0 },
            balancer,
            duration: DurationSpec { rounds, drain: 200.0 },
            seed: 7,
            ..ScenarioSpec::default()
        };
        let r = spec.run().expect("valid scenario");
        table.row(vec![
            r.balancer.clone(),
            fmt(r.final_imbalance.cov, 3),
            fmt(r.final_imbalance.spread, 1),
            r.ledger.migration_count().to_string(),
            fmt(r.ledger.total_weighted_traffic(), 0),
            r.converged_round(0.5, 3).map(|t| fmt(t, 0)).unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("8×8 mesh, hotspot of {} units on node 0, {} rounds:\n", 128, rounds);
    println!("{}", table.render());
}
