//! Task dependencies (§4.2): two pipeline stages whose tasks communicate
//! heavily resist migration (their mutual dependency raises `µ_s`/`µ_k`),
//! while independent filler tasks spread freely. The example measures how
//! many of each kind leave their origin node as the dependency weight
//! grows. The setup is the registry's `dependency-pipeline` scenario with
//! the chain weight swept.
//!
//! Run with: `cargo run --release --example dependency_pipeline`

use particle_plane::prelude::*;

/// Builds a hotspot of 16 chained tasks plus 16 independent fillers on
/// node 0 and reports how many of each migrated away.
fn run(dependency_weight: f64) -> (usize, usize, f64) {
    let pipeline = 16u64;
    let filler = 16u64;

    let mut spec = by_name("dependency-pipeline").expect("registered scenario");
    // Task ids are assigned in order: 0..16 become the pipeline, the rest
    // are filler.
    spec.task_graph = TaskGraphSpec::Chain { count: pipeline, weight: dependency_weight };
    spec.seed = 21;

    let mut engine = spec.build_engine().expect("valid scenario");
    engine.run_rounds(spec.duration.rounds).drain(spec.duration.drain);

    let moved = |ids: std::ops::Range<u64>| -> usize {
        ids.filter(|&id| !engine.state().node(NodeId(0)).tasks().iter().any(|t| t.id == TaskId(id)))
            .count()
    };
    let pipeline_moved = moved(0..pipeline);
    let filler_moved = moved(pipeline..pipeline + filler);
    (pipeline_moved, filler_moved, engine.report().final_imbalance.cov)
}

fn main() {
    let mut table = TextTable::new(vec![
        "dependency weight",
        "pipeline tasks moved (of 16)",
        "filler tasks moved (of 16)",
        "final CoV",
    ]);
    let mut last_pipeline_moved = usize::MAX;
    for w in [0.0, 0.5, 2.0, 8.0, 32.0] {
        let (p, f, cov) = run(w);
        table.row(vec![fmt(w, 1), p.to_string(), f.to_string(), fmt(cov, 3)]);
        // Heavier chains must never migrate *more* than lighter ones.
        assert!(p <= last_pipeline_moved || p <= 2, "w={w}: {p} > {last_pipeline_moved}");
        last_pipeline_moved = last_pipeline_moved.min(p);
        assert!(f > 0, "independent fillers should always spread");
    }
    println!("4×4 mesh, 16-task pipeline + 16 fillers on node 0:\n");
    println!("{}", table.render());
    println!("Dependent tasks stay near their partners; fillers do the balancing.");
}
