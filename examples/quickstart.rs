//! Quickstart: balance a single hotspot on a small torus with the
//! particle-plane algorithm and watch the imbalance decay (Theorem 2 in
//! action).
//!
//! Run with: `cargo run --release --example quickstart`

use particle_plane::prelude::*;

fn main() {
    // An 8×8 torus; node 0 starts with all 128 units of load — the tallest
    // possible hill on an otherwise flat yard.
    let topo = Topology::torus(&[8, 8]);
    let nodes = topo.node_count();
    let workload = Workload::hotspot(nodes, 0, 128.0);

    let mut engine = EngineBuilder::new(topo)
        .workload(workload)
        .balancer(ParticlePlaneBalancer::new(PhysicsConfig::default()))
        .seed(42)
        .build();

    println!("round  cov     max/mean  spread");
    for checkpoint in [0u64, 1, 2, 5, 10, 20, 50, 100, 200] {
        let done = engine.round();
        if checkpoint > done {
            engine.run_rounds(checkpoint - done);
        }
        let im = Imbalance::of(&engine.heights());
        println!("{:>5}  {:<6.3} {:<9.3} {:<6.2}", checkpoint, im.cov, im.max_over_mean, im.spread);
    }
    engine.drain(100.0);

    let report = engine.report();
    let im = report.final_imbalance;
    println!("\nfinal: cov={:.3}, spread={:.2}, mean={:.2}", im.cov, im.spread, im.mean);
    println!(
        "migrations: {} hops, {:.1} load·weight traffic, {:.1} heat billed",
        report.ledger.migration_count(),
        report.ledger.total_weighted_traffic(),
        report.ledger.total_heat()
    );
    if let Some(t) = report.converged_round(0.5, 3) {
        println!("CoV ≤ 0.5 sustained from t = {t}");
    }
    assert!(im.cov < 1.0, "the hotspot should spread substantially");
}
