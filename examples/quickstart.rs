//! Quickstart: balance a single hotspot on a small torus with the
//! particle-plane algorithm and watch the imbalance decay (Theorem 2 in
//! action). The setup comes from the scenario registry — the same
//! `hotspot-torus` spec is runnable from the `pp-lab` CLI, tests and CI.
//!
//! Run with: `cargo run --release --example quickstart`

use particle_plane::prelude::*;

fn main() {
    // The registered canonical worst case: an 8×8 torus, node 0 holding
    // all 128 units of load — the tallest possible hill on a flat yard.
    let spec = by_name("hotspot-torus").expect("registered scenario");
    println!("scenario: {} — {}\n", spec.name, spec.description);

    // Build the engine from the spec, but drive it by hand so we can
    // sample the imbalance trajectory at checkpoints.
    let mut engine = spec.build_engine().expect("valid scenario");

    println!("round  cov     max/mean  spread");
    for checkpoint in [0u64, 1, 2, 5, 10, 20, 50, 100, 200] {
        let done = engine.round();
        if checkpoint > done {
            engine.run_rounds(checkpoint - done);
        }
        let im = Imbalance::of(&engine.heights());
        println!("{:>5}  {:<6.3} {:<9.3} {:<6.2}", checkpoint, im.cov, im.max_over_mean, im.spread);
    }
    engine.drain(100.0);

    let report = engine.report();
    let im = report.final_imbalance;
    println!("\nfinal: cov={:.3}, spread={:.2}, mean={:.2}", im.cov, im.spread, im.mean);
    println!(
        "migrations: {} hops, {:.1} load·weight traffic, {:.1} heat billed",
        report.ledger.migration_count(),
        report.ledger.total_weighted_traffic(),
        report.ledger.total_heat()
    );
    if let Some(t) = report.converged_round(0.5, 3) {
        println!("CoV ≤ 0.5 sustained from t = {t}");
    }
    assert!(im.cov < 1.0, "the hotspot should spread substantially");
}
