//! The §6 tuning story: the framework is configured for a concrete system
//! by "fine-tuning the configuration parameters". This example sweeps the
//! friction scale over a heterogeneous cluster (zipf task sizes, random
//! link attributes) with the crossbeam sweep runner and prints the
//! balance-versus-traffic frontier that the operator picks from. The
//! cluster is one declarative scenario; the sweep rewrites only the
//! balancer's `mu_s_base`.
//!
//! Run with: `cargo run --release --example tuning_sweep`

use particle_plane::prelude::*;
use particle_plane::sim::parallel::par_map;

struct Point {
    mu_base: f64,
    final_cov: f64,
    traffic: f64,
    hops: usize,
}

fn main() {
    let sweep: Vec<f64> = vec![0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
    let points: Vec<Point> = par_map(sweep, 0, |mu_base| {
        // Many small heavy-tailed tasks: sizes in [0.125, 1], mean node
        // height ≈ 2.9 — atomic sizes stay below the −2l threshold scale so
        // friction, not granularity, is the knob under test.
        let spec = ScenarioSpec {
            name: format!("tuning-mu{mu_base}"),
            topology: TopologySpec::Torus { dims: vec![8, 8] },
            links: LinkSpec::Random { seed: 21, bw: (0.5, 2.0), d: (0.5, 2.0), f_max: 0.02 },
            workload: WorkloadSpec::Zipf { count: 1024, base: 1.0, skew: 0.3, seed: 21 },
            balancer: BalancerSpec::ParticlePlane {
                config: PhysicsConfig { mu_s_base: mu_base, ..PhysicsConfig::default() },
                arbiter: None,
                name: None,
            },
            duration: DurationSpec { rounds: 300, drain: 500.0 },
            seed: 21,
            ..ScenarioSpec::default()
        };
        let r = spec.run().expect("valid scenario");
        Point {
            mu_base,
            final_cov: r.final_imbalance.cov,
            traffic: r.ledger.total_weighted_traffic(),
            hops: r.ledger.migration_count(),
        }
    });

    let mut table = TextTable::new(vec!["µ_s base", "final CoV", "traffic", "hops"]);
    for p in &points {
        table.row(vec![
            fmt(p.mu_base, 2),
            fmt(p.final_cov, 3),
            fmt(p.traffic, 0),
            p.hops.to_string(),
        ]);
    }
    println!("8×8 torus, 256 zipf tasks, heterogeneous faulty links:\n");
    println!("{}", table.render());
    println!("Low friction buys balance with traffic; high friction buys quiet with");
    println!("imbalance — the µ knob is the paper's stability/quality dial.");

    // The frontier must be monotone in the expected directions at its ends.
    let first = points.first().unwrap();
    let last = points.last().unwrap();
    assert!(last.traffic < first.traffic, "more friction ⇒ less traffic");
    assert!(last.final_cov > first.final_cov, "more friction ⇒ worse balance");
}
