//! # pp-core — the particle & plane load balancer
//!
//! The primary contribution of Imani & Sarbazi-Azad (IPPS 2006), built on
//! the `pp-sim` substrate:
//!
//! * [`params`] — §4.2's dictionary from load-balancing primitives to the
//!   physical constants (`µ_s`, `µ_k`, `tan β`, `e_{i,j}`);
//! * [`energy`] — §5.1's potential-height flag `h*` and per-hop heat `E_h`;
//! * [`feasibility`] — Eq. 1's movement criterion and the in-motion energy
//!   rule (Theorem 1 with `r = e_{i,j}`);
//! * [`arbiter`] — §5.2's annealed stochastic link chooser;
//! * [`balancer::ParticlePlaneBalancer`] — the algorithm itself;
//! * [`baselines`] — diffusion, dimension exchange, GM, CWN, random and
//!   sender-initiated threshold policies for the comparison experiments.
//!
//! ```
//! use pp_core::prelude::*;
//! use pp_sim::prelude::*;
//! use pp_tasking::prelude::*;
//! use pp_topology::prelude::*;
//!
//! let topo = Topology::torus(&[4, 4]);
//! let w = Workload::hotspot(16, 0, 32.0);
//! let mut engine = EngineBuilder::new(topo)
//!     .workload(w)
//!     .balancer(ParticlePlaneBalancer::new(PhysicsConfig::default()))
//!     .seed(7)
//!     .build();
//! engine.run_rounds(50).drain(50.0);
//! let report = engine.report();
//! assert!(report.final_imbalance.cov < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod balancer;
pub mod baselines;
pub mod energy;
pub mod feasibility;
pub mod jitter;
pub mod params;

/// One-stop imports.
pub mod prelude {
    pub use crate::arbiter::Arbiter;
    pub use crate::balancer::ParticlePlaneBalancer;
    pub use crate::baselines::{
        CwnBalancer, DiffusionBalancer, DimensionExchangeBalancer, GradientModelBalancer,
        RandomNeighborBalancer, SenderInitiatedBalancer,
    };
    pub use crate::energy::{can_climb, flag_decrement, hop_heat, updated_flag};
    pub use crate::feasibility::{
        max_hops_bound, motion_candidates, movement_threshold, stationary_candidates,
    };
    pub use crate::jitter::FrictionJitter;
    pub use crate::params::{gradient, kinetic_friction, static_friction, PhysicsConfig};
}
