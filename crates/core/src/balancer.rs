//! The particle & plane load balancer (§5) — the paper's contribution.
//!
//! At each balance tick every node treats its loads as objects resting on
//! the local surface: a load may start sliding toward a neighbour if the
//! load-size-corrected gradient beats its static friction (Eq. 1, §5.1).
//! The stochastic arbiter (§5.2) picks among the feasible slopes, hardening
//! over time. A launched load carries its potential-height flag `h*`
//! (initialised to the departure node's height, decremented by `c₀·µ_k·e`
//! per hop) and, on landing, may keep sliding while its energy budget lets
//! it clear a neighbour (`h*' > h(v_j)`) — the inertia that lets loads
//! escape local minima, the paper's key difference from plain gradient
//! methods.
//!
//! One load per link per tick is launched ("assuming that at each time unit
//! only a single load is transferred over a link", §5.1), and both the
//! source and destination heights a node plans with are updated as it
//! commits migrations within the tick (the `tan β` self-correction clause).

use crate::arbiter::Arbiter;
use crate::energy::{hop_heat, updated_flag};
use crate::feasibility::{motion_candidates_soa_into, stationary_candidates_soa_into, Candidate};
use crate::jitter::FrictionJitter;
use crate::params::{kinetic_friction, static_friction, PhysicsConfig};
use pp_sim::balancer::{LoadBalancer, MigratingLoad, MigrationIntent, NodeView};
use rand::rngs::StdRng;
use std::cell::RefCell;

/// Reusable per-thread buffers for one `decide`/`on_arrival` evaluation, so
/// steady-state decision rounds allocate nothing. Thread-local because
/// `decide` takes `&self` (the engine may evaluate nodes on a worker pool);
/// each decision thread warms its own set once and reuses it forever.
#[derive(Default)]
struct DecideScratch {
    /// Effective neighbour heights, updated as the tick commits migrations.
    /// A used link's entry is set to `+∞` — one write that both masks the
    /// link (an infinite height can never beat `µ_s`) and spares the
    /// per-task rebuild of a masked pair list the AoS kernel needed.
    h_eff: Vec<f64>,
    /// Feasible-slope output buffer for the arbiter.
    candidates: Vec<Candidate>,
}

thread_local! {
    static SCRATCH: RefCell<DecideScratch> = RefCell::default();
}

/// The paper's balancer. Construct with [`ParticlePlaneBalancer::new`] or
/// customise the arbiter/ablations via the builder methods.
#[derive(Debug, Clone)]
pub struct ParticlePlaneBalancer {
    cfg: PhysicsConfig,
    arbiter: Arbiter,
    name: String,
}

impl ParticlePlaneBalancer {
    /// A balancer with the given physics constants and the default
    /// (stochastic) arbiter.
    pub fn new(cfg: PhysicsConfig) -> Self {
        cfg.validate().expect("invalid physics configuration");
        ParticlePlaneBalancer { cfg, arbiter: Arbiter::default(), name: "particle-plane".into() }
    }

    /// Replaces the arbiter (e.g. [`Arbiter::Deterministic`] for the
    /// ablation).
    pub fn with_arbiter(mut self, arbiter: Arbiter) -> Self {
        self.arbiter = arbiter;
        self
    }

    /// Overrides the display name (used to label ablations in tables).
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// The physics configuration.
    pub fn config(&self) -> &PhysicsConfig {
        &self.cfg
    }

    /// The arbiter.
    pub fn arbiter(&self) -> &Arbiter {
        &self.arbiter
    }
}

impl LoadBalancer for ParticlePlaneBalancer {
    fn name(&self) -> &str {
        &self.name
    }

    /// Without friction jitter the balancer is quiescence-stable, which
    /// lets the engine's sharded pipeline skip sweeps over untouched
    /// shards: candidate sets are pure functions of (tasks, heights, live
    /// links) — `round`/`time` reach the arbiter only *after* a non-empty
    /// candidate set exists — and [`Arbiter::choose`] draws from the RNG
    /// only for 2+ candidates and returns `None` only on an empty set, so
    /// an empty decision implies every candidate set was empty and zero
    /// draws occurred. With jitter enabled `µ_s` takes a per-task draw
    /// every round, so skipping would desync the node's RNG stream.
    fn quiescence_stable(&self) -> bool {
        self.cfg.jitter.is_none()
    }

    fn decide(&self, view: &NodeView<'_>, rng: &mut StdRng) -> Vec<MigrationIntent> {
        let mut out = Vec::new();
        self.decide_into(view, rng, &mut out);
        out
    }

    /// The allocation-free primary: intents append to the caller's arena
    /// (the engine passes the shard-local outbox), so the sweep's steady
    /// state allocates nothing. `decide` above delegates here.
    fn decide_into(&self, view: &NodeView<'_>, rng: &mut StdRng, out: &mut Vec<MigrationIntent>) {
        let cfg = &self.cfg;
        let m = view.neighbors.len();
        if m == 0 || view.tasks.is_empty() {
            return;
        }
        // The jitter amplitude A(t) depends only on the round, so the `exp`
        // is hoisted out of the per-task loop; `apply_amp` keeps the draw
        // discipline (and the draws themselves) bitwise identical.
        let jitter_amp = cfg.jitter.as_ref().map(|j| j.amplitude_at(view.round as f64));
        SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let DecideScratch { h_eff, candidates } = scratch;
            // Effective heights: updated as this tick commits migrations so
            // that later decisions see the planned post-transfer surface.
            // One copy of the view's SoA height slice per node; each task's
            // feasibility pass then streams `h_eff` + `nbr_weights` flat,
            // instead of rebuilding a masked pair list per task.
            let mut h_i = view.height;
            h_eff.clear();
            h_eff.extend_from_slice(view.nbr_heights);
            let weights = view.nbr_weights;
            let mut links_left = m;

            for task in view.tasks {
                if links_left == 0 {
                    break;
                }
                let mut mu_s = static_friction(
                    cfg,
                    task.id,
                    view.node,
                    view.tasks,
                    view.task_graph,
                    view.resources,
                );
                if let Some(a) = jitter_amp {
                    mu_s = FrictionJitter::apply_amp(mu_s, a, rng);
                }
                let mu_k = kinetic_friction(cfg, mu_s);
                stationary_candidates_soa_into(
                    cfg, task.size, mu_s, h_i, h_eff, weights, candidates,
                );
                let Some(pick) = self.arbiter.choose(candidates, view.round as f64, rng) else {
                    continue;
                };
                let nb = &view.neighbors[pick];
                // The flag starts at the departure height h₀ = h_i and pays
                // the first hop's toll up front (§5.1).
                let flag = updated_flag(cfg, h_i, mu_k, nb.link_weight);
                let heat = hop_heat(cfg, mu_k, nb.link_weight, task.size);
                out.push(MigrationIntent { task: task.id, to: nb.id, flag, heat });
                h_i -= task.size;
                // One load per link per tick: an infinite effective height
                // masks the used link for the rest of the sweep (the AoS
                // kernel's `+= task.size` on a masked entry was dead — the
                // entry was never read again).
                h_eff[pick] = f64::INFINITY;
                links_left -= 1;
            }
        })
    }

    fn on_arrival(
        &self,
        view: &NodeView<'_>,
        load: &MigratingLoad,
        rng: &mut StdRng,
    ) -> Option<MigrationIntent> {
        let cfg = &self.cfg;
        if !cfg.in_motion || load.hops >= cfg.max_hops || view.neighbors.is_empty() {
            return None;
        }
        // Affinity is evaluated against the tasks resident where the load
        // just landed: dependencies here pull it to rest.
        let mut mu_s = static_friction(
            cfg,
            load.task.id,
            view.node,
            view.tasks,
            view.task_graph,
            view.resources,
        );
        if let Some(j) = cfg.jitter {
            mu_s = j.apply(mu_s, view.round as f64, rng);
        }
        let mu_k = kinetic_friction(cfg, mu_s);
        SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let DecideScratch { candidates, .. } = scratch;
            // The view's SoA slices feed the kernel directly — no pair list.
            motion_candidates_soa_into(
                cfg,
                load.flag,
                mu_k,
                view.nbr_heights,
                view.nbr_weights,
                candidates,
            );
            let pick = self.arbiter.choose(candidates, view.round as f64, rng)?;
            let nb = &view.neighbors[pick];
            Some(MigrationIntent {
                task: load.task.id,
                to: nb.id,
                flag: updated_flag(cfg, load.flag, mu_k, nb.link_weight),
                heat: hop_heat(cfg, mu_k, nb.link_weight, load.task.size),
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_sim::balancer::{build_view, LinkView, ViewScratch};
    use pp_sim::state::SystemState;
    use pp_tasking::graph::TaskGraph;
    use pp_tasking::resources::ResourceMatrix;
    use pp_tasking::task::{Task, TaskId};
    use pp_topology::graph::{NodeId, Topology};
    use pp_topology::links::{LinkAttrs, LinkMap};
    use rand::SeedableRng;

    fn det(cfg: PhysicsConfig) -> ParticlePlaneBalancer {
        ParticlePlaneBalancer::new(cfg).with_arbiter(Arbiter::Deterministic)
    }

    fn ring_state(loads: &[f64]) -> SystemState {
        let topo = Topology::ring(loads.len());
        let links = LinkMap::uniform(&topo, LinkAttrs::default());
        let mut s = SystemState::new(topo, links, TaskGraph::new(), ResourceMatrix::none());
        let mut id = 0u64;
        for (i, &l) in loads.iter().enumerate() {
            let mut rest = l;
            while rest > 1e-9 {
                let sz = rest.min(1.0);
                s.add_task(NodeId(i as u32), Task::new(TaskId(id), sz, i as u32));
                id += 1;
                rest -= sz;
            }
        }
        s
    }

    #[test]
    fn flat_system_stays_put() {
        let s = ring_state(&[2.0, 2.0, 2.0, 2.0]);
        let h = s.heights();
        let mut scratch = ViewScratch::new();
        let view = build_view(&mut scratch, &s, NodeId(0), &h, &LinkView::all_up(&s, 1.0), 0, 0.0);
        let b = det(PhysicsConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(b.decide(&view, &mut rng).is_empty());
    }

    #[test]
    fn steep_hotspot_emits_one_task_per_link() {
        let s = ring_state(&[8.0, 0.0, 0.0, 0.0]);
        let h = s.heights();
        let mut scratch = ViewScratch::new();
        let view = build_view(&mut scratch, &s, NodeId(0), &h, &LinkView::all_up(&s, 1.0), 0, 0.0);
        let b = det(PhysicsConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        let intents = b.decide(&view, &mut rng);
        // Ring node 0 has 2 links; one load per link per tick.
        assert_eq!(intents.len(), 2);
        let dests: Vec<u32> = intents.iter().map(|i| i.to.0).collect();
        assert!(dests.contains(&1) && dests.contains(&3));
        // Flags: h₀ = 8 minus the hop toll µ_k·e = 1·1 (second launch sees
        // h₀ = 7 after the first committed departure).
        assert!(intents.iter().any(|i| (i.flag - 7.0).abs() < 1e-9));
        assert!(intents.iter().any(|i| (i.flag - 6.0).abs() < 1e-9));
        // Heat billed per hop: c₀·g·µ_k·e·l = 1.
        for i in &intents {
            assert!((i.heat - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn shallow_gradient_blocked_by_static_friction() {
        // Difference 3 with µ_s = 1, l = 1, e = 1: a = (3 − 2)/1 = 1, not
        // strictly greater than µ_s ⇒ blocked.
        let s = ring_state(&[4.0, 1.0, 4.0, 1.0]);
        let h = s.heights();
        let mut scratch = ViewScratch::new();
        let view = build_view(&mut scratch, &s, NodeId(0), &h, &LinkView::all_up(&s, 1.0), 0, 0.0);
        let b = det(PhysicsConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(b.decide(&view, &mut rng).is_empty());
    }

    #[test]
    fn task_dependency_holds_tasks_back() {
        // Two co-located heavily-dependent tasks on the hot node refuse to
        // leave; with the dependency removed, they migrate.
        let mut s = ring_state(&[6.0, 0.0, 0.0, 0.0]);
        let mut tg = TaskGraph::new();
        for a in 0..6u64 {
            for b in (a + 1)..6 {
                tg.set_dependency(TaskId(a), TaskId(b), 10.0);
            }
        }
        s.task_graph = tg;
        let h = s.heights();
        let mut scratch = ViewScratch::new();
        let view = build_view(&mut scratch, &s, NodeId(0), &h, &LinkView::all_up(&s, 1.0), 0, 0.0);
        let b = det(PhysicsConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(
            b.decide(&view, &mut rng).is_empty(),
            "µ_s = 1 + 5·10 should block a gradient of (6−0−2)/1 = 4"
        );
    }

    #[test]
    fn resource_pin_blocks_only_pinned_task() {
        let mut s = ring_state(&[8.0, 0.0, 0.0, 0.0]);
        let mut res = ResourceMatrix::none();
        for id in 0..8u64 {
            res.set(TaskId(id), NodeId(0), 100.0);
        }
        s.resources = res;
        let h = s.heights();
        let mut scratch = ViewScratch::new();
        let view = build_view(&mut scratch, &s, NodeId(0), &h, &LinkView::all_up(&s, 1.0), 0, 0.0);
        let b = det(PhysicsConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(b.decide(&view, &mut rng).is_empty());
    }

    #[test]
    fn on_arrival_continues_while_energy_lasts() {
        let s = ring_state(&[0.0, 0.0, 5.0, 0.0]);
        let h = s.heights();
        let mut scratch = ViewScratch::new();
        let view = build_view(&mut scratch, &s, NodeId(1), &h, &LinkView::all_up(&s, 1.0), 0, 0.0);
        let b = det(PhysicsConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        let load = MigratingLoad {
            task: Task::new(TaskId(99), 1.0, 0),
            flag: 6.0,
            hops: 1,
            source: NodeId(0),
        };
        let fwd = b.on_arrival(&view, &load, &mut rng).expect("should forward");
        // Neighbours of 1 are 0 (h=0) and 2 (h=5). flag' = 6−µ_k·e; µ_k =
        // max(c_µ·µ_s, floor) = 1 (µ_s base 1) ⇒ flag' = 5: node 2 at 5 is
        // not < 5 ⇒ only node 0 feasible.
        assert_eq!(fwd.to, NodeId(0));
        assert!((fwd.flag - 5.0).abs() < 1e-9);
    }

    #[test]
    fn on_arrival_deposits_when_drained() {
        let s = ring_state(&[3.0, 0.0, 3.0, 3.0]);
        let h = s.heights();
        let mut scratch = ViewScratch::new();
        let view = build_view(&mut scratch, &s, NodeId(1), &h, &LinkView::all_up(&s, 1.0), 0, 0.0);
        let b = det(PhysicsConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        // flag 0.5: flag' = −0.5 ≤ every neighbour height ⇒ rest here.
        let load = MigratingLoad {
            task: Task::new(TaskId(99), 1.0, 0),
            flag: 0.5,
            hops: 2,
            source: NodeId(0),
        };
        assert!(b.on_arrival(&view, &load, &mut rng).is_none());
    }

    #[test]
    fn in_motion_ablation_never_forwards() {
        let s = ring_state(&[0.0, 0.0, 5.0, 0.0]);
        let h = s.heights();
        let mut scratch = ViewScratch::new();
        let view = build_view(&mut scratch, &s, NodeId(1), &h, &LinkView::all_up(&s, 1.0), 0, 0.0);
        let cfg = PhysicsConfig { in_motion: false, ..Default::default() };
        let b = det(cfg);
        let mut rng = StdRng::seed_from_u64(0);
        let load = MigratingLoad {
            task: Task::new(TaskId(99), 1.0, 0),
            flag: 100.0,
            hops: 1,
            source: NodeId(0),
        };
        assert!(b.on_arrival(&view, &load, &mut rng).is_none());
    }

    #[test]
    fn hop_cap_respected() {
        let s = ring_state(&[0.0, 0.0, 0.0, 0.0]);
        let h = s.heights();
        let mut scratch = ViewScratch::new();
        let view = build_view(&mut scratch, &s, NodeId(1), &h, &LinkView::all_up(&s, 1.0), 0, 0.0);
        let cfg = PhysicsConfig { max_hops: 3, ..Default::default() };
        let b = det(cfg);
        let mut rng = StdRng::seed_from_u64(0);
        let load = MigratingLoad {
            task: Task::new(TaskId(99), 1.0, 0),
            flag: 100.0,
            hops: 3,
            source: NodeId(0),
        };
        assert!(b.on_arrival(&view, &load, &mut rng).is_none());
    }

    #[test]
    #[should_panic(expected = "invalid physics configuration")]
    fn invalid_config_rejected() {
        let _ = ParticlePlaneBalancer::new(PhysicsConfig { c_mu: 0.0, ..Default::default() });
    }

    #[test]
    fn quiescence_stable_unless_jittered() {
        use crate::jitter::FrictionJitter;
        assert!(ParticlePlaneBalancer::new(PhysicsConfig::default()).quiescence_stable());
        let jittered = PhysicsConfig {
            jitter: Some(FrictionJitter::new(0.5, 1.0, 100.0)),
            ..Default::default()
        };
        // Jitter draws from the node RNG every round even when nothing
        // moves, so the sharded skip must stay off.
        assert!(!ParticlePlaneBalancer::new(jittered).quiescence_stable());
    }

    #[test]
    fn empty_decision_draws_nothing_from_the_rng() {
        // The quiescence_stable contract: a decide that returns no intents
        // must leave the RNG stream untouched (the arbiter only draws once
        // a non-empty candidate set exists).
        let s = ring_state(&[2.0, 2.0, 2.0, 2.0]);
        let h = s.heights();
        let mut scratch = ViewScratch::new();
        let view = build_view(&mut scratch, &s, NodeId(0), &h, &LinkView::all_up(&s, 1.0), 0, 0.0);
        let b = ParticlePlaneBalancer::new(PhysicsConfig::default());
        let mut rng = StdRng::seed_from_u64(7);
        let mut witness = StdRng::seed_from_u64(7);
        assert!(b.decide(&view, &mut rng).is_empty());
        assert!(b.decide(&view, &mut rng).is_empty());
        use rand::Rng;
        assert_eq!(rng.gen_range(0.0f64..1.0), witness.gen_range(0.0f64..1.0));
    }

    #[test]
    fn jittered_friction_can_flip_borderline_decisions() {
        // Gradient exactly at the deterministic threshold: without jitter
        // nothing moves; with early-time jitter some seeds soften µ_s below
        // the gradient and the transfer fires.
        use crate::jitter::FrictionJitter;
        let s = ring_state(&[4.0, 1.0, 4.0, 1.0]); // a = 1 = µ_s exactly
        let h = s.heights();
        let cfg = PhysicsConfig {
            jitter: Some(FrictionJitter::new(0.5, 1.0, 1e9)),
            ..Default::default()
        };
        let b = det(cfg);
        // Node 0 holds 4 tasks, each drawing its own jitter, so a seed
        // fires unless all four draws harden µ_s: P ≈ 1 − 0.5⁴ ≈ 0.94.
        let mut fired = 0;
        for seed in 0..64 {
            let mut scratch = ViewScratch::new();
            let view =
                build_view(&mut scratch, &s, NodeId(0), &h, &LinkView::all_up(&s, 1.0), 0, 0.0);
            let mut rng = StdRng::seed_from_u64(seed);
            fired += usize::from(!b.decide(&view, &mut rng).is_empty());
        }
        assert!(fired > 40 && fired < 64, "jitter should fire often but not always: {fired}/64");
    }

    #[test]
    fn jitter_rigid_at_late_rounds() {
        use crate::jitter::FrictionJitter;
        let s = ring_state(&[4.0, 1.0, 4.0, 1.0]);
        let h = s.heights();
        let cfg = PhysicsConfig {
            jitter: Some(FrictionJitter::new(0.5, 5.0, 10.0)),
            ..Default::default()
        };
        let b = det(cfg);
        // At round 10_000 the amplitude is ~0: identical to no jitter.
        for seed in 0..32 {
            let mut scratch = ViewScratch::new();
            let view = build_view(
                &mut scratch,
                &s,
                NodeId(0),
                &h,
                &LinkView::all_up(&s, 1.0),
                10_000,
                0.0,
            );
            let mut rng = StdRng::seed_from_u64(seed);
            assert!(b.decide(&view, &mut rng).is_empty());
        }
    }
}
