//! Annealed parameter jitter (§5.1): *"This stochastic nature can also be
//! considered for some other parameters which are not too much rigid like
//! µ_s and µ_k … it seems quite logical to decrease the stochastic nature
//! of the parameters when time passes."*
//!
//! The jitter multiplies a friction value by `1 + A(t)·u` with
//! `u ~ U(−1, 1)` and amplitude `A(t) = A₀·exp(−c·t/t_max)` — the same
//! annealing shape as the arbiter, so early rounds explore slightly
//! softer/harder friction while late rounds are rigid.

use rand::rngs::StdRng;
use rand::Rng;

/// Annealed multiplicative jitter for `µ_s`/`µ_k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrictionJitter {
    /// Initial relative amplitude `A₀ ∈ [0, 1)`.
    pub amplitude: f64,
    /// Decay rate `c > 0`.
    pub c: f64,
    /// Time scale over which the parameters harden.
    pub t_max: f64,
}

impl serde::Serialize for FrictionJitter {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("amplitude".to_string(), self.amplitude.to_value()),
            ("c".to_string(), self.c.to_value()),
            ("t_max".to_string(), self.t_max.to_value()),
        ])
    }
}

impl serde::Deserialize for FrictionJitter {
    fn from_value(v: &serde::Value) -> Result<Self, String> {
        let jitter = FrictionJitter {
            amplitude: v.field("amplitude")?,
            c: v.field("c")?,
            t_max: v.field("t_max")?,
        };
        jitter.validate()?;
        Ok(jitter)
    }
}

impl FrictionJitter {
    /// Validates the parameter ranges — the single source of truth shared
    /// by [`FrictionJitter::new`], JSON deserialization and
    /// `PhysicsConfig::validate`.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.amplitude) {
            return Err(format!("jitter amplitude {} not in [0, 1)", self.amplitude));
        }
        if !self.c.is_finite() || self.c <= 0.0 || !self.t_max.is_finite() || self.t_max <= 0.0 {
            return Err("jitter decay rate and t_max must be finite and positive".into());
        }
        Ok(())
    }

    /// Creates a jitter model.
    ///
    /// # Panics
    /// Panics on `amplitude ∉ [0, 1)`, non-positive `c` or `t_max` (an
    /// amplitude ≥ 1 could drive friction negative).
    pub fn new(amplitude: f64, c: f64, t_max: f64) -> Self {
        assert!((0.0..1.0).contains(&amplitude), "amplitude must be in [0, 1)");
        assert!(c > 0.0, "decay rate must be positive");
        assert!(t_max > 0.0, "t_max must be positive");
        FrictionJitter { amplitude, c, t_max }
    }

    /// The amplitude `A(t)` remaining at time `t`.
    pub fn amplitude_at(&self, t: f64) -> f64 {
        self.amplitude * (-self.c * (t.max(0.0) / self.t_max)).exp()
    }

    /// Applies the jitter to a parameter value at time `t`.
    pub fn apply(&self, value: f64, t: f64, rng: &mut StdRng) -> f64 {
        Self::apply_amp(value, self.amplitude_at(t), rng)
    }

    /// Applies the jitter with a precomputed amplitude `a = A(t)`.
    ///
    /// `A(t)` depends only on `t`, so a sweep deciding many tasks at one
    /// time can hoist the `exp` out of the per-task loop and call this —
    /// bitwise-identical to [`FrictionJitter::apply`], including the RNG
    /// draw discipline (no draw when the amplitude is zero).
    #[inline]
    pub fn apply_amp(value: f64, a: f64, rng: &mut StdRng) -> f64 {
        if a <= 0.0 {
            return value;
        }
        let u: f64 = rng.gen_range(-1.0..=1.0);
        value * (1.0 + a * u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(9)
    }

    #[test]
    fn amplitude_decays_monotonically() {
        let j = FrictionJitter::new(0.5, 3.0, 100.0);
        assert!((j.amplitude_at(0.0) - 0.5).abs() < 1e-12);
        assert!(j.amplitude_at(50.0) < 0.5);
        assert!(j.amplitude_at(200.0) < j.amplitude_at(100.0));
    }

    #[test]
    fn jitter_stays_within_band_and_positive() {
        let j = FrictionJitter::new(0.4, 2.0, 50.0);
        let mut r = rng();
        for _ in 0..2000 {
            let v = j.apply(2.0, 0.0, &mut r);
            assert!((2.0 * 0.6 - 1e-12..=2.0 * 1.4 + 1e-12).contains(&v), "{v}");
            assert!(v > 0.0);
        }
    }

    #[test]
    fn jitter_vanishes_late() {
        let j = FrictionJitter::new(0.4, 5.0, 10.0);
        let mut r = rng();
        let v = j.apply(2.0, 1000.0, &mut r);
        assert!((v - 2.0).abs() < 1e-9, "late jitter should be rigid: {v}");
    }

    #[test]
    fn jitter_is_mean_preserving() {
        let j = FrictionJitter::new(0.5, 1.0, 1e9); // effectively constant A
        let mut r = rng();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| j.apply(1.0, 0.0, &mut r)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "amplitude must be in")]
    fn amplitude_one_rejected() {
        let _ = FrictionJitter::new(1.0, 1.0, 1.0);
    }
}
