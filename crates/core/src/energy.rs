//! The load's energy accounting (§5.1): the *potential height flag* `h*`
//! carried by every migrating load, and the heat `E_h` billed per hop.
//!
//! * At launch the flag holds `h₀`, the height of the node the load departs
//!   from ("initialized at the start of the game with the height of the
//!   initial position of the object").
//! * Before each hop the flag is decremented by the energy the hop wastes:
//!   `h*_t = h*_{t−1} − E_{h,t}/(m·g)` with `E_h = c₀·g·µ_k·e_{i,j}·l`,
//!   i.e. the decrement is `c₀·µ_k·e_{i,j}` — independent of the mass, as
//!   in the physical model.
//! * The flag bounds every hill the load may still climb: a neighbour `j`
//!   is reachable only if `h*_{t−1} − c₀·µ_k·e_{i,j} > h(v_j)` (the paper's
//!   in-motion feasibility, which it notes is Theorem 1 with `r_{c,p} =
//!   e_{i,j}`).

use crate::params::PhysicsConfig;

/// Heat billed for moving a load of size `l` over a link of weight `e`
/// with kinetic friction `µ_k`: `E_h = c₀·g·µ_k·e·l`.
pub fn hop_heat(cfg: &PhysicsConfig, mu_k: f64, e_ij: f64, load: f64) -> f64 {
    cfg.c0 * cfg.g * mu_k * e_ij * load
}

/// Flag decrement for one hop: `E_h/(m·g) = c₀·µ_k·e` (mass cancels).
pub fn flag_decrement(cfg: &PhysicsConfig, mu_k: f64, e_ij: f64) -> f64 {
    cfg.c0 * mu_k * e_ij
}

/// The flag after taking a hop: `h*_t = h*_{t−1} − c₀·µ_k·e`.
pub fn updated_flag(cfg: &PhysicsConfig, flag: f64, mu_k: f64, e_ij: f64) -> f64 {
    flag - flag_decrement(cfg, mu_k, e_ij)
}

/// In-motion reachability of neighbour `j`: can the load still climb there?
/// `h*_{t−1} − c₀·µ_k·e_{i,j} > h(v_j)`.
pub fn can_climb(cfg: &PhysicsConfig, flag: f64, mu_k: f64, e_ij: f64, h_j: f64) -> bool {
    updated_flag(cfg, flag, mu_k, e_ij) > h_j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PhysicsConfig {
        PhysicsConfig::default()
    }

    #[test]
    fn heat_linear_in_every_factor() {
        let c = cfg();
        let base = hop_heat(&c, 0.5, 1.0, 1.0);
        assert_eq!(hop_heat(&c, 1.0, 1.0, 1.0), 2.0 * base);
        assert_eq!(hop_heat(&c, 0.5, 2.0, 1.0), 2.0 * base);
        assert_eq!(hop_heat(&c, 0.5, 1.0, 3.0), 3.0 * base);
    }

    #[test]
    fn c0_scales_heat_and_decrement() {
        let c2 = PhysicsConfig { c0: 2.0, ..cfg() };
        assert_eq!(hop_heat(&c2, 0.5, 1.0, 1.0), 2.0 * hop_heat(&cfg(), 0.5, 1.0, 1.0));
        assert_eq!(flag_decrement(&c2, 0.5, 1.0), 1.0);
    }

    #[test]
    fn flag_decrement_is_mass_independent() {
        // The decrement formula has no load term: E_h/(m·g) cancels mass.
        let c = cfg();
        let heavy = hop_heat(&c, 0.5, 2.0, 10.0) / (10.0 * c.g);
        let light = hop_heat(&c, 0.5, 2.0, 0.1) / (0.1 * c.g);
        assert!((heavy - light).abs() < 1e-12);
        assert!((heavy - flag_decrement(&c, 0.5, 2.0)).abs() < 1e-12);
    }

    #[test]
    fn flag_strictly_decreases() {
        let c = cfg();
        let f1 = updated_flag(&c, 10.0, 0.3, 1.5);
        assert!(f1 < 10.0);
        let f2 = updated_flag(&c, f1, 0.3, 1.5);
        assert!(f2 < f1);
    }

    #[test]
    fn can_climb_respects_energy_budget() {
        let c = cfg();
        // flag 5, hop cost 0.5·1 = 0.5 ⇒ can climb hills below 4.5.
        assert!(can_climb(&c, 5.0, 0.5, 1.0, 4.0));
        assert!(!can_climb(&c, 5.0, 0.5, 1.0, 4.5));
        assert!(!can_climb(&c, 5.0, 0.5, 1.0, 6.0));
    }

    #[test]
    fn heavier_links_block_climbing_sooner() {
        let c = cfg();
        assert!(can_climb(&c, 5.0, 0.5, 1.0, 4.0));
        assert!(!can_climb(&c, 5.0, 0.5, 3.0, 4.0)); // same hill, heavier link
    }
}
