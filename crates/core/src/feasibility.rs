//! Feasibility rules (§5.1): when may a load leave its node, and where may
//! a load in motion still climb?
//!
//! * **Stationary** (Eq. 1 transplanted): task `k` may move from `i` to `j`
//!   iff `tan β = (h_i − h_j − 2l)/e_{i,j} > µ_s(k, i)`.
//! * **In motion** (the energy model): the load may hop to `j` iff
//!   `h*_{t−1} − c₀·µ_k·e_{i,j} > h(v_j)` — the paper points out this is
//!   Theorem 1 with the contour chosen as the nodes one link away
//!   (`r_{c,p} = e_{i,j}`).
//!
//! Both return the per-candidate steepness scores `a_{i,j}` that feed the
//! stochastic arbiter of §5.2.

use crate::energy::{flag_decrement, updated_flag};
use crate::params::{gradient, PhysicsConfig};

/// A candidate destination: `(index into the neighbour list, steepness)`.
pub type Candidate = (usize, f64);

/// Stationary candidates for a task of size `load` with static friction
/// `mu_s` on a node of height `h_i`. `neighbors` supplies `(h_j, e_ij)` per
/// neighbour (already restricted to live links).
pub fn stationary_candidates(
    cfg: &PhysicsConfig,
    load: f64,
    mu_s: f64,
    h_i: f64,
    neighbors: &[(f64, f64)],
) -> Vec<Candidate> {
    let mut out = Vec::new();
    stationary_candidates_into(cfg, load, mu_s, h_i, neighbors, &mut out);
    out
}

/// [`stationary_candidates`] into a caller-owned buffer (cleared first) —
/// the allocation-free form the balancer's hot path uses.
pub fn stationary_candidates_into(
    cfg: &PhysicsConfig,
    load: f64,
    mu_s: f64,
    h_i: f64,
    neighbors: &[(f64, f64)],
    out: &mut Vec<Candidate>,
) {
    out.clear();
    out.extend(neighbors.iter().enumerate().filter_map(|(idx, &(h_j, e_ij))| {
        let a = gradient(cfg, h_i, h_j, load, e_ij);
        (a > mu_s).then_some((idx, a))
    }));
}

/// In-motion candidates for a load carrying potential-height `flag` with
/// kinetic friction `mu_k`. The steepness is the headroom
/// `a_{i,j} = h*_{t−1} − c₀·µ_k·e_{i,j} − h(v_j)` (§5.2's in-motion `a`),
/// and a candidate is feasible iff it is positive.
pub fn motion_candidates(
    cfg: &PhysicsConfig,
    flag: f64,
    mu_k: f64,
    neighbors: &[(f64, f64)],
) -> Vec<Candidate> {
    let mut out = Vec::new();
    motion_candidates_into(cfg, flag, mu_k, neighbors, &mut out);
    out
}

/// [`motion_candidates`] into a caller-owned buffer (cleared first).
pub fn motion_candidates_into(
    cfg: &PhysicsConfig,
    flag: f64,
    mu_k: f64,
    neighbors: &[(f64, f64)],
    out: &mut Vec<Candidate>,
) {
    out.clear();
    out.extend(neighbors.iter().enumerate().filter_map(|(idx, &(h_j, e_ij))| {
        let a = updated_flag(cfg, flag, mu_k, e_ij) - h_j;
        (a > 0.0).then_some((idx, a))
    }));
}

/// [`stationary_candidates_into`] over structure-of-arrays neighbour state:
/// `h_j[idx]` and `e_ij[idx]` are parallel slices instead of a packed pair
/// list. Same filter, same scores, same order — the `self_correction`
/// branch is hoisted out of the loop but the gradient arithmetic keeps
/// [`gradient`]'s exact operation order, so the scores are bitwise
/// identical to the pair form.
pub fn stationary_candidates_soa_into(
    cfg: &PhysicsConfig,
    load: f64,
    mu_s: f64,
    h_i: f64,
    h_j: &[f64],
    e_ij: &[f64],
    out: &mut Vec<Candidate>,
) {
    debug_assert_eq!(h_j.len(), e_ij.len());
    let correction = if cfg.self_correction { 2.0 * load } else { 0.0 };
    out.clear();
    out.extend(h_j.iter().zip(e_ij).enumerate().filter_map(|(idx, (&h, &e))| {
        debug_assert!(e > 0.0, "link weights are validated positive");
        let a = (h_i - h - correction) / e;
        (a > mu_s).then_some((idx, a))
    }));
}

/// [`motion_candidates_into`] over structure-of-arrays neighbour state;
/// bitwise identical to the pair form (see
/// [`stationary_candidates_soa_into`]).
pub fn motion_candidates_soa_into(
    cfg: &PhysicsConfig,
    flag: f64,
    mu_k: f64,
    h_j: &[f64],
    e_ij: &[f64],
    out: &mut Vec<Candidate>,
) {
    debug_assert_eq!(h_j.len(), e_ij.len());
    out.clear();
    out.extend(h_j.iter().zip(e_ij).enumerate().filter_map(|(idx, (&h, &e))| {
        let a = updated_flag(cfg, flag, mu_k, e) - h;
        (a > 0.0).then_some((idx, a))
    }));
}

/// The minimum height difference below which no transfer can start, given
/// `µ_s`, link weight and load size: `h_i − h_j` must exceed
/// `µ_s·e + 2l`. Used by experiment `exp2` to draw the movement frontier.
pub fn movement_threshold(cfg: &PhysicsConfig, mu_s: f64, e_ij: f64, load: f64) -> f64 {
    mu_s * e_ij + if cfg.self_correction { 2.0 * load } else { 0.0 }
}

/// Maximum number of hops a load can take before its flag falls to the
/// floor height `h_floor`, on links of weight ≥ `e_min` — the discrete
/// Corollary 3 (`r ≤ h*/µ_k`).
pub fn max_hops_bound(cfg: &PhysicsConfig, flag0: f64, h_floor: f64, mu_k: f64, e_min: f64) -> u32 {
    let per_hop = flag_decrement(cfg, mu_k, e_min);
    if per_hop <= 0.0 {
        return u32::MAX;
    }
    (((flag0 - h_floor) / per_hop).max(0.0)).ceil() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PhysicsConfig;

    fn cfg() -> PhysicsConfig {
        PhysicsConfig::default()
    }

    #[test]
    fn stationary_strictness() {
        let c = cfg();
        // h_i = 10, neighbour at 0, e = 1, l = 1 ⇒ a = 8. µ_s = 8 blocks.
        let n = [(0.0, 1.0)];
        assert!(stationary_candidates(&c, 1.0, 8.0, 10.0, &n).is_empty());
        let got = stationary_candidates(&c, 1.0, 7.9, 10.0, &n);
        assert_eq!(got.len(), 1);
        assert!((got[0].1 - 8.0).abs() < 1e-12);
    }

    #[test]
    fn stationary_filters_uphill_neighbors() {
        let c = cfg();
        let n = [(20.0, 1.0), (0.0, 1.0), (9.0, 1.0)];
        let got = stationary_candidates(&c, 1.0, 0.5, 10.0, &n);
        // Only the height-0 neighbour: (10−0−2)/1 = 8 > 0.5.
        // The 9.0 neighbour gives (10−9−2)/1 = −1.
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 1);
    }

    #[test]
    fn heavier_links_flatten_gradients() {
        let c = cfg();
        let cheap = stationary_candidates(&c, 1.0, 1.0, 10.0, &[(0.0, 1.0)]);
        let costly = stationary_candidates(&c, 1.0, 1.0, 10.0, &[(0.0, 8.0)]);
        assert_eq!(cheap.len(), 1);
        assert!(costly.is_empty(), "(10−0−2)/8 = 1 is not > µ_s = 1");
    }

    #[test]
    fn motion_requires_positive_headroom() {
        let c = cfg();
        // flag 5, µ_k = 1, e = 1 ⇒ flag' = 4: can enter nodes below 4.
        let n = [(3.9, 1.0), (4.0, 1.0), (10.0, 1.0)];
        let got = motion_candidates(&c, 5.0, 1.0, &n);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 0);
        assert!((got[0].1 - 0.1).abs() < 1e-12);
    }

    #[test]
    fn motion_prefers_lowest_destination() {
        let c = cfg();
        let n = [(2.0, 1.0), (0.0, 1.0)];
        let got = motion_candidates(&c, 5.0, 0.5, &n);
        assert_eq!(got.len(), 2);
        // Headroom toward the lower node is larger.
        let s: Vec<f64> = got.iter().map(|&(_, a)| a).collect();
        assert!(s[1] > s[0]);
    }

    #[test]
    fn soa_kernels_are_bitwise_identical_to_pair_kernels() {
        // Awkward magnitudes on purpose: any re-association in the SoA
        // gradient would show up as a last-ulp difference.
        for self_correction in [true, false] {
            let c = PhysicsConfig { self_correction, ..cfg() };
            let pairs: Vec<(f64, f64)> = (0..17)
                .map(|k| {
                    let k = k as f64;
                    (10.0 + (k * 0.7).sin() * 9.3 + k * 1e-13, 0.3 + (k * 1.3).cos().abs() * 2.0)
                })
                .collect();
            let heights: Vec<f64> = pairs.iter().map(|&(h, _)| h).collect();
            let weights: Vec<f64> = pairs.iter().map(|&(_, e)| e).collect();
            for (load, mu, h_i, flag) in
                [(1.0, 0.5, 14.2, 15.0), (0.37, 3.1, 11.0 + 1e-12, 9.5), (5.0, 0.01, 25.0, 30.0)]
            {
                let (mut a, mut b) = (Vec::new(), Vec::new());
                stationary_candidates_into(&c, load, mu, h_i, &pairs, &mut a);
                stationary_candidates_soa_into(&c, load, mu, h_i, &heights, &weights, &mut b);
                let bits = |v: &Vec<Candidate>| {
                    v.iter().map(|&(i, s)| (i, s.to_bits())).collect::<Vec<_>>()
                };
                assert_eq!(bits(&a), bits(&b), "stationary sc={self_correction}");
                motion_candidates_into(&c, flag, mu, &pairs, &mut a);
                motion_candidates_soa_into(&c, flag, mu, &heights, &weights, &mut b);
                assert_eq!(bits(&a), bits(&b), "motion sc={self_correction}");
            }
        }
    }

    #[test]
    fn threshold_combines_friction_and_correction() {
        let c = cfg();
        assert_eq!(movement_threshold(&c, 2.0, 1.5, 1.0), 5.0); // 3 + 2
        let nc = PhysicsConfig { self_correction: false, ..c };
        assert_eq!(movement_threshold(&nc, 2.0, 1.5, 1.0), 3.0);
    }

    #[test]
    fn hop_bound_matches_corollary3() {
        let c = cfg();
        // flag 10 above a floor of 0, per-hop cost 0.5 ⇒ 20 hops.
        assert_eq!(max_hops_bound(&c, 10.0, 0.0, 0.5, 1.0), 20);
        assert_eq!(max_hops_bound(&c, 10.0, 9.0, 0.5, 1.0), 2);
        assert_eq!(max_hops_bound(&c, 0.0, 5.0, 0.5, 1.0), 0);
    }
}
