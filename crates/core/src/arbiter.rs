//! The stochastic arbiter of §5.2: choose among feasible slopes, giving
//! "most of the chance to the links which are the steepest" with "some rare
//! probabilities for choosing the less steep slopes", and let the choice
//! harden over time so the system anneals toward the deterministic
//! steepest-descent rule ("the rigidity of the correct values increases
//! over time … an evolutionary approach").
//!
//! The archival PDF's formula is typographically corrupted; we implement
//! the semantics its prose specifies (see DESIGN.md §2):
//!
//! * exploration probability `β(t) = β₀·exp(−c·t/t_max)`;
//! * with probability `1−β(t)` take the steepest feasible link `a₁`;
//! * otherwise draw among all feasible links with weights
//!   `w_j = 1 − (a₁−a_j)/(a₁−a_m) + w_floor` — linear in relative
//!   steepness, so the steepest link keeps the largest share even while
//!   exploring, while the floor keeps the least steep link at the "rare
//!   probability" the prose demands (never exactly zero).

use rand::rngs::StdRng;
use rand::Rng;

/// Link-choice policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arbiter {
    /// Always take the steepest feasible slope (the ablation baseline and
    /// the `t → ∞` limit of the stochastic rule).
    Deterministic,
    /// The paper's annealed stochastic chooser.
    Stochastic {
        /// Initial probability `β₀ ∈ (0, 1)` of not taking the steepest
        /// link.
        beta0: f64,
        /// Decay rate `c > 0` of the exploration probability.
        c: f64,
        /// Time scale `t_max` over which the choice hardens.
        t_max: f64,
    },
}

impl Default for Arbiter {
    fn default() -> Self {
        Arbiter::Stochastic { beta0: 0.3, c: 3.0, t_max: 100.0 }
    }
}

impl serde::Serialize for Arbiter {
    fn to_value(&self) -> serde::Value {
        match *self {
            Arbiter::Deterministic => serde::Value::Object(vec![(
                "kind".to_string(),
                serde::Value::Str("deterministic".to_string()),
            )]),
            Arbiter::Stochastic { beta0, c, t_max } => serde::Value::Object(vec![
                ("kind".to_string(), serde::Value::Str("stochastic".to_string())),
                ("beta0".to_string(), beta0.to_value()),
                ("c".to_string(), c.to_value()),
                ("t_max".to_string(), t_max.to_value()),
            ]),
        }
    }
}

impl serde::Deserialize for Arbiter {
    fn from_value(v: &serde::Value) -> Result<Self, String> {
        let kind: String = v.field("kind")?;
        let arbiter = match kind.as_str() {
            "deterministic" => Arbiter::Deterministic,
            "stochastic" => Arbiter::Stochastic {
                beta0: v.field("beta0")?,
                c: v.field("c")?,
                t_max: v.field("t_max")?,
            },
            other => return Err(format!("unknown arbiter kind `{other}`")),
        };
        arbiter.validate()?;
        Ok(arbiter)
    }
}

/// Weight floor of the exploration draw: the flattest feasible link keeps
/// this relative weight, realising the "rare probabilities for choosing the
/// less steep slopes".
const W_FLOOR: f64 = 0.1;

impl Arbiter {
    /// Validates the annealing parameter ranges — the single source of
    /// truth shared by JSON deserialization and `pp-scenario` spec
    /// validation.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            Arbiter::Deterministic => Ok(()),
            Arbiter::Stochastic { beta0, c, t_max } => {
                if !(0.0..1.0).contains(&beta0) {
                    return Err(format!("beta0 {beta0} not in [0, 1)"));
                }
                if !c.is_finite() || c <= 0.0 || !t_max.is_finite() || t_max <= 0.0 {
                    return Err("arbiter decay rate and t_max must be finite and positive".into());
                }
                Ok(())
            }
        }
    }

    /// The exploration probability `β(t)` (0 for the deterministic rule).
    pub fn exploration(&self, t: f64) -> f64 {
        match *self {
            Arbiter::Deterministic => 0.0,
            Arbiter::Stochastic { beta0, c, t_max } => {
                assert!(t_max > 0.0, "t_max must be positive");
                beta0 * (-c * (t.max(0.0) / t_max)).exp()
            }
        }
    }

    /// Chooses one index into `scores` (`(candidate, steepness a_{i,j})`
    /// pairs; all candidates must already satisfy the feasibility
    /// criterion). Returns `None` for an empty candidate set.
    pub fn choose<T: Copy>(&self, scores: &[(T, f64)], t: f64, rng: &mut StdRng) -> Option<T> {
        if scores.is_empty() {
            return None;
        }
        // Index of the steepest candidate.
        let (best_idx, &(best, a1)) =
            scores.iter().enumerate().max_by(|x, y| x.1 .1.total_cmp(&y.1 .1)).expect("non-empty");
        if scores.len() == 1 {
            return Some(best);
        }
        let beta = self.exploration(t);
        if beta <= 0.0 || !rng.gen_bool(beta.min(1.0)) {
            return Some(self.steepest_untied(scores, a1, best, rng));
        }
        // Explore: linear weights in relative steepness.
        let am = scores.iter().map(|&(_, a)| a).fold(f64::INFINITY, f64::min);
        let span = (a1 - am).max(1e-12);
        let weights: Vec<f64> =
            scores.iter().map(|&(_, a)| 1.0 - (a1 - a) / span + W_FLOOR).collect();
        let total: f64 = weights.iter().sum();
        let mut pick = rng.gen_range(0.0..total);
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                return Some(scores[i].0);
            }
            pick -= w;
        }
        Some(scores[best_idx].0)
    }

    /// Resolves a "take the steepest" decision. The deterministic arbiter
    /// keeps `max_by`'s fixed tie order (reproducible ablation baseline);
    /// the stochastic arbiter draws uniformly among ties, since on a flat
    /// surface every slope is equally steep and a fixed order would march
    /// all loads down one corridor (physically, symmetry breaking).
    fn steepest_untied<T: Copy>(
        &self,
        scores: &[(T, f64)],
        a1: f64,
        best: T,
        rng: &mut StdRng,
    ) -> T {
        if matches!(self, Arbiter::Deterministic) {
            return best;
        }
        let tol = 1e-12 * a1.abs().max(1.0);
        let tied = scores.iter().filter(|&&(_, a)| a1 - a <= tol).count();
        if tied <= 1 {
            return best;
        }
        let pick = rng.gen_range(0..tied);
        scores.iter().filter(|&&(_, a)| a1 - a <= tol).nth(pick).map(|&(c, _)| c).unwrap_or(best)
    }

    /// Analytic probability of choosing the steepest link at time `t` given
    /// the candidate steepness values — used by experiment `exp6` to plot
    /// the annealing curve without sampling noise.
    pub fn steepest_probability(&self, scores: &[f64], t: f64) -> f64 {
        if scores.len() <= 1 {
            return 1.0;
        }
        let beta = self.exploration(t);
        let a1 = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let am = scores.iter().cloned().fold(f64::INFINITY, f64::min);
        let span = (a1 - am).max(1e-12);
        let weights: Vec<f64> = scores.iter().map(|&a| 1.0 - (a1 - a) / span + W_FLOOR).collect();
        let total: f64 = weights.iter().sum();
        // Probability mass of one maximal candidate (the one `max_by`
        // settles on): the exploit path splits its (1−β) share uniformly
        // among tied maxima for the stochastic arbiter (matching
        // `steepest_untied`), and the exploration draw adds that
        // candidate's weight share.
        let tol = 1e-12 * a1.abs().max(1.0);
        let tied = scores.iter().filter(|&&a| a1 - a <= tol).count().max(1);
        let idx =
            scores.iter().enumerate().max_by(|x, y| x.1.total_cmp(y.1)).map(|(i, _)| i).unwrap();
        let exploit_share = if matches!(self, Arbiter::Deterministic) || tied == 1 {
            1.0
        } else {
            1.0 / tied as f64
        };
        (1.0 - beta) * exploit_share + beta * weights[idx] / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn deterministic_always_takes_steepest() {
        let a = Arbiter::Deterministic;
        let scores = [(0u32, 1.0), (1, 5.0), (2, 3.0)];
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(a.choose(&scores, 0.0, &mut r), Some(1));
        }
    }

    #[test]
    fn empty_candidates_give_none() {
        let a = Arbiter::default();
        let mut r = rng();
        assert_eq!(a.choose::<u32>(&[], 0.0, &mut r), None);
    }

    #[test]
    fn single_candidate_always_chosen() {
        let a = Arbiter::default();
        let mut r = rng();
        assert_eq!(a.choose(&[(7u32, 0.1)], 0.0, &mut r), Some(7));
    }

    #[test]
    fn exploration_decays_to_zero() {
        let a = Arbiter::Stochastic { beta0: 0.5, c: 3.0, t_max: 100.0 };
        assert!((a.exploration(0.0) - 0.5).abs() < 1e-12);
        assert!(a.exploration(50.0) < 0.5);
        assert!(a.exploration(1000.0) < 1e-10 + 0.5 * (-30.0f64).exp() * 2.0);
        assert!(a.exploration(100.0) < a.exploration(10.0));
    }

    #[test]
    fn steepest_is_modal_even_early() {
        let a = Arbiter::Stochastic { beta0: 0.5, c: 3.0, t_max: 100.0 };
        let scores = [(0u32, 1.0), (1, 5.0), (2, 3.0)];
        let mut r = rng();
        let mut counts = [0usize; 3];
        for _ in 0..4000 {
            let pick = a.choose(&scores, 0.0, &mut r).unwrap();
            counts[pick as usize] += 1;
        }
        assert!(counts[1] > counts[2], "{counts:?}");
        assert!(counts[2] > counts[0], "{counts:?}");
        // Less-steep links do get "some rare probabilities".
        assert!(counts[0] > 0, "{counts:?}");
    }

    #[test]
    fn choice_hardens_over_time() {
        let a = Arbiter::Stochastic { beta0: 0.8, c: 4.0, t_max: 50.0 };
        let scores = [(0u32, 1.0), (1, 5.0)];
        let mut r = rng();
        let rate = |t: f64, r: &mut StdRng| {
            let hits = (0..2000).filter(|_| a.choose(&scores, t, r) == Some(1)).count();
            hits as f64 / 2000.0
        };
        let early = rate(0.0, &mut r);
        let late = rate(200.0, &mut r);
        assert!(late > early, "early {early} late {late}");
        assert!(late > 0.99);
    }

    #[test]
    fn steepest_probability_analytic_matches_sampling() {
        let a = Arbiter::Stochastic { beta0: 0.6, c: 2.0, t_max: 100.0 };
        let scores = [(0u32, 2.0), (1, 6.0), (2, 4.0)];
        let plain: Vec<f64> = scores.iter().map(|&(_, s)| s).collect();
        let p = a.steepest_probability(&plain, 10.0);
        let mut r = rng();
        let hits = (0..20_000).filter(|_| a.choose(&scores, 10.0, &mut r) == Some(1)).count();
        let emp = hits as f64 / 20_000.0;
        assert!((p - emp).abs() < 0.02, "analytic {p} empirical {emp}");
    }

    #[test]
    fn tied_maxima_split_uniformly() {
        // On a flat candidate set the stochastic arbiter must not favour any
        // link (the symmetry breaking that spreads in-motion loads).
        let a = Arbiter::Stochastic { beta0: 0.3, c: 3.0, t_max: 100.0 };
        let scores = [(0u32, 2.0), (1, 2.0), (2, 2.0), (3, 2.0)];
        let mut r = rng();
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[a.choose(&scores, 0.0, &mut r).unwrap() as usize] += 1;
        }
        for c in counts {
            assert!((1700..2300).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn steepest_probability_analytic_matches_sampling_with_ties() {
        let a = Arbiter::Stochastic { beta0: 0.6, c: 2.0, t_max: 100.0 };
        let scores = [(0u32, 6.0), (1, 6.0), (2, 3.0)];
        let plain: Vec<f64> = scores.iter().map(|&(_, s)| s).collect();
        let p = a.steepest_probability(&plain, 10.0);
        let mut r = rng();
        // `max_by` settles on the last tied maximum, index 1.
        let hits = (0..20_000).filter(|_| a.choose(&scores, 10.0, &mut r) == Some(1)).count();
        let emp = hits as f64 / 20_000.0;
        assert!((p - emp).abs() < 0.02, "analytic {p} empirical {emp}");
    }

    #[test]
    fn steepest_probability_tends_to_one() {
        let a = Arbiter::default();
        let scores = [1.0, 2.0, 3.0];
        let p0 = a.steepest_probability(&scores, 0.0);
        let p_inf = a.steepest_probability(&scores, 1e6);
        assert!(p0 < p_inf);
        assert!((p_inf - 1.0).abs() < 1e-9);
        assert_eq!(a.steepest_probability(&[4.0], 0.0), 1.0);
    }
}
