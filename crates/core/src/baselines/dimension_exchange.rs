//! The dimension exchange method (Cybenko 1989): edges are partitioned into
//! matchings ("dimensions"); in round `r` each node pairs with its partner
//! in class `r mod k` and the heavier of the two sends half the difference.
//! On a hypercube one full sweep of the `d` dimensions balances the system
//! exactly (the §2 result this reproduction re-verifies in its tests).

use pp_sim::balancer::{GlobalView, LoadBalancer, MigrationIntent, NodeView};
use pp_topology::coloring::EdgeColoring;
use pp_topology::graph::{NodeId, Topology};
use rand::rngs::StdRng;
use serde::Value;

/// Dimension-exchange balancer. Holds the edge colouring of the topology it
/// was built for and sweeps the colour classes round-robin.
#[derive(Debug, Clone)]
pub struct DimensionExchangeBalancer {
    /// `partners[class][node]` = the node's matched partner in that class.
    partners: Vec<Vec<Option<NodeId>>>,
    classes: usize,
    current_class: usize,
    name: String,
}

impl DimensionExchangeBalancer {
    /// Builds the balancer for `topo` (computes the edge colouring).
    pub fn new(topo: &Topology) -> Self {
        let coloring = EdgeColoring::new(topo);
        let classes = coloring.color_count().max(1);
        let mut partners = vec![vec![None; topo.node_count()]; classes];
        for (c, class) in coloring.classes().iter().enumerate() {
            for &(u, v) in class {
                partners[c][u.idx()] = Some(v);
                partners[c][v.idx()] = Some(u);
            }
        }
        DimensionExchangeBalancer {
            partners,
            classes,
            current_class: 0,
            name: format!("dimension-exchange({classes} classes)"),
        }
    }

    /// Number of colour classes (one full sweep = this many rounds).
    pub fn class_count(&self) -> usize {
        self.classes
    }
}

impl LoadBalancer for DimensionExchangeBalancer {
    fn name(&self) -> &str {
        &self.name
    }

    fn begin_round(&mut self, global: &GlobalView<'_>) {
        self.current_class = (global.round as usize).wrapping_sub(1) % self.classes;
    }

    fn decide(&self, view: &NodeView<'_>, _rng: &mut StdRng) -> Vec<MigrationIntent> {
        let Some(partner) = self.partners[self.current_class][view.node.idx()] else {
            return Vec::new();
        };
        // The partner must be a live neighbour this round.
        let Some(nb) = view.neighbors.iter().find(|n| n.id == partner) else {
            return Vec::new();
        };
        if view.height <= nb.height {
            return Vec::new(); // the lighter side stays passive
        }
        let target = (view.height - nb.height) / 2.0;
        let mut sent = 0.0;
        let mut intents = Vec::new();
        for task in view.tasks {
            if sent + task.size <= target + 1e-9 {
                sent += task.size;
                intents.push(MigrationIntent { task: task.id, to: nb.id, flag: 0.0, heat: 0.0 });
            }
        }
        intents
    }

    /// The round-robin cursor is per-round internal state; `begin_round`
    /// rewrites it from the round counter, but a restored policy carries it
    /// so the pre-tick state matches the capture exactly.
    fn save_state(&self) -> Option<Value> {
        Some(Value::Object(vec![(
            "current_class".to_string(),
            Value::UInt(self.current_class as u64),
        )]))
    }

    fn load_state(&mut self, state: &Value, _nodes: usize) -> Result<(), String> {
        let class: u64 = state.field("current_class")?;
        if class as usize >= self.classes {
            return Err(format!("class {class} out of range ({} classes)", self.classes));
        }
        self.current_class = class as usize;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::testutil::ring_view_state;
    use pp_sim::balancer::{build_view, LinkView, ViewScratch};
    use rand::SeedableRng;

    #[test]
    fn heavier_side_sends_half_difference() {
        let (state, heights) = ring_view_state(&[8.0, 2.0, 0.0, 0.0]);
        let mut b = DimensionExchangeBalancer::new(&state.topo);
        // Find the round whose class pairs 0 with 1.
        let mut rng = StdRng::seed_from_u64(0);
        let mut matched = false;
        for round in 1..=b.class_count() as u64 {
            let global = GlobalView { topo: &state.topo, heights: &heights, round, time: 0.0 };
            b.begin_round(&global);
            let mut scratch = ViewScratch::new();
            let view = build_view(
                &mut scratch,
                &state,
                NodeId(0),
                &heights,
                &LinkView::all_up(&state, 1.0),
                round,
                0.0,
            );
            let intents = b.decide(&view, &mut rng);
            if intents.iter().any(|i| i.to == NodeId(1)) {
                // (8−2)/2 = 3 units.
                assert_eq!(intents.len(), 3);
                assert!(intents.iter().all(|i| i.to == NodeId(1)));
                matched = true;
            }
        }
        assert!(matched, "no round paired nodes 0 and 1");
    }

    #[test]
    fn class_cursor_rides_checkpoint_state() {
        let (state, heights) = ring_view_state(&[1.0, 1.0, 1.0, 1.0]);
        let mut b = DimensionExchangeBalancer::new(&state.topo);
        let global = GlobalView { topo: &state.topo, heights: &heights, round: 2, time: 0.0 };
        b.begin_round(&global);
        let saved = b.save_state().expect("dimension exchange is stateful");
        let mut fresh = DimensionExchangeBalancer::new(&state.topo);
        fresh.load_state(&saved, 4).expect("well-formed state");
        assert_eq!(fresh.current_class, b.current_class);
        // An out-of-range cursor is rejected, not applied.
        let bad = Value::Object(vec![("current_class".into(), Value::UInt(999))]);
        assert!(fresh.load_state(&bad, 4).is_err());
    }

    #[test]
    fn lighter_side_stays_passive() {
        let (state, heights) = ring_view_state(&[1.0, 9.0, 1.0, 1.0]);
        let mut b = DimensionExchangeBalancer::new(&state.topo);
        let mut rng = StdRng::seed_from_u64(0);
        for round in 1..=b.class_count() as u64 {
            let global = GlobalView { topo: &state.topo, heights: &heights, round, time: 0.0 };
            b.begin_round(&global);
            let mut scratch = ViewScratch::new();
            let view = build_view(
                &mut scratch,
                &state,
                NodeId(0),
                &heights,
                &LinkView::all_up(&state, 1.0),
                round,
                0.0,
            );
            assert!(b.decide(&view, &mut rng).is_empty());
        }
    }

    #[test]
    fn hypercube_uses_dim_classes() {
        let topo = Topology::hypercube(3);
        let b = DimensionExchangeBalancer::new(&topo);
        assert_eq!(b.class_count(), 3);
    }

    #[test]
    fn unmatched_node_idle() {
        // A star's centre is matched in every class, but leaves are matched
        // in only one class each.
        let topo = Topology::star(5);
        let b = DimensionExchangeBalancer::new(&topo);
        let idle_classes: usize =
            (0..b.class_count()).filter(|&c| b.partners[c][1].is_none()).count();
        assert!(idle_classes >= b.class_count() - 1);
    }
}
