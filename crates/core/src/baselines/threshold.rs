//! Sender-initiated threshold policy (Eager, Lazowska & Zahorjan 1986):
//! a node above its high watermark probes a random neighbour and transfers
//! one task if the probe finds the neighbour below the acceptance
//! threshold.

use pp_sim::balancer::{LoadBalancer, MigrationIntent, NodeView};
use rand::rngs::StdRng;
use rand::Rng;

/// Sender-initiated threshold balancer.
#[derive(Debug, Clone)]
pub struct SenderInitiatedBalancer {
    t_high: f64,
    t_accept: f64,
    probes: usize,
    name: String,
}

impl SenderInitiatedBalancer {
    /// Above `t_high` the node probes up to `probes` random neighbours and
    /// sends one task to the first found below `t_accept`.
    pub fn new(t_high: f64, t_accept: f64, probes: usize) -> Self {
        assert!(probes >= 1, "need at least one probe");
        SenderInitiatedBalancer {
            t_high,
            t_accept,
            probes,
            name: format!("sender-init(H={t_high},A={t_accept},p={probes})"),
        }
    }
}

impl LoadBalancer for SenderInitiatedBalancer {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&self, view: &NodeView<'_>, rng: &mut StdRng) -> Vec<MigrationIntent> {
        if view.height <= self.t_high || view.tasks.is_empty() || view.neighbors.is_empty() {
            return Vec::new();
        }
        for _ in 0..self.probes {
            let nb = &view.neighbors[rng.gen_range(0..view.neighbors.len())];
            if nb.height < self.t_accept {
                return vec![MigrationIntent {
                    task: view.tasks[0].id,
                    to: nb.id,
                    flag: 0.0,
                    heat: 0.0,
                }];
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::testutil::ring_view_state;
    use pp_sim::balancer::{build_view, LinkView, ViewScratch};
    use pp_topology::graph::NodeId;
    use rand::SeedableRng;

    #[test]
    fn below_watermark_never_sends() {
        let (state, heights) = ring_view_state(&[3.0, 0.0, 0.0, 0.0]);
        let mut scratch = ViewScratch::new();
        let view = build_view(
            &mut scratch,
            &state,
            NodeId(0),
            &heights,
            &LinkView::all_up(&state, 1.0),
            0,
            0.0,
        );
        let b = SenderInitiatedBalancer::new(5.0, 1.0, 2);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(b.decide(&view, &mut rng).is_empty());
    }

    #[test]
    fn probe_finds_idle_neighbor() {
        let (state, heights) = ring_view_state(&[9.0, 0.0, 0.0, 0.0]);
        let mut scratch = ViewScratch::new();
        let view = build_view(
            &mut scratch,
            &state,
            NodeId(0),
            &heights,
            &LinkView::all_up(&state, 1.0),
            0,
            0.0,
        );
        let b = SenderInitiatedBalancer::new(5.0, 1.0, 3);
        let mut rng = StdRng::seed_from_u64(0);
        let mut sent = 0;
        for _ in 0..20 {
            sent += b.decide(&view, &mut rng).len();
        }
        assert!(sent > 0);
    }

    #[test]
    fn busy_neighbors_reject_probe() {
        let (state, heights) = ring_view_state(&[9.0, 8.0, 0.0, 8.0]);
        let mut scratch = ViewScratch::new();
        let view = build_view(
            &mut scratch,
            &state,
            NodeId(0),
            &heights,
            &LinkView::all_up(&state, 1.0),
            0,
            0.0,
        );
        let b = SenderInitiatedBalancer::new(5.0, 1.0, 2);
        let mut rng = StdRng::seed_from_u64(0);
        // Neighbours of node 0 (1 and 3) are both at 8 ≥ accept ⇒ no send.
        for _ in 0..20 {
            assert!(b.decide(&view, &mut rng).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "at least one probe")]
    fn zero_probes_rejected() {
        let _ = SenderInitiatedBalancer::new(1.0, 1.0, 0);
    }
}
