//! Random-neighbour balancing: the classical stochastic strawman — when a
//! node is heavier than a uniformly chosen neighbour by more than a
//! threshold, it sends that neighbour one task.

use pp_sim::balancer::{LoadBalancer, MigrationIntent, NodeView};
use rand::rngs::StdRng;
use rand::Rng;

/// Random-neighbour balancer.
#[derive(Debug, Clone)]
pub struct RandomNeighborBalancer {
    threshold: f64,
    name: String,
}

impl RandomNeighborBalancer {
    /// Sends one task when the sampled neighbour is lighter by more than
    /// `threshold`.
    pub fn new(threshold: f64) -> Self {
        assert!(threshold >= 0.0, "threshold must be ≥ 0");
        RandomNeighborBalancer { threshold, name: format!("random(Δ={threshold})") }
    }
}

impl LoadBalancer for RandomNeighborBalancer {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&self, view: &NodeView<'_>, rng: &mut StdRng) -> Vec<MigrationIntent> {
        if view.neighbors.is_empty() || view.tasks.is_empty() {
            return Vec::new();
        }
        let nb = &view.neighbors[rng.gen_range(0..view.neighbors.len())];
        if view.height - nb.height > self.threshold {
            vec![MigrationIntent { task: view.tasks[0].id, to: nb.id, flag: 0.0, heat: 0.0 }]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::testutil::ring_view_state;
    use pp_sim::balancer::{build_view, LinkView, ViewScratch};
    use pp_topology::graph::NodeId;
    use rand::SeedableRng;

    #[test]
    fn sends_at_most_one_task() {
        let (state, heights) = ring_view_state(&[9.0, 0.0, 0.0, 0.0]);
        let mut scratch = ViewScratch::new();
        let view = build_view(
            &mut scratch,
            &state,
            NodeId(0),
            &heights,
            &LinkView::all_up(&state, 1.0),
            0,
            0.0,
        );
        let b = RandomNeighborBalancer::new(1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let intents = b.decide(&view, &mut rng);
            assert!(intents.len() <= 1);
            if let Some(i) = intents.first() {
                assert!(i.to == NodeId(1) || i.to == NodeId(3));
            }
        }
    }

    #[test]
    fn balanced_system_idle() {
        let (state, heights) = ring_view_state(&[2.0, 2.0, 2.0, 2.0]);
        let mut scratch = ViewScratch::new();
        let view = build_view(
            &mut scratch,
            &state,
            NodeId(0),
            &heights,
            &LinkView::all_up(&state, 1.0),
            0,
            0.0,
        );
        let b = RandomNeighborBalancer::new(0.5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            assert!(b.decide(&view, &mut rng).is_empty());
        }
    }

    #[test]
    fn deterministic_per_rng_seed() {
        let (state, heights) = ring_view_state(&[9.0, 5.0, 0.0, 5.0]);
        let mut scratch = ViewScratch::new();
        let view = build_view(
            &mut scratch,
            &state,
            NodeId(0),
            &heights,
            &LinkView::all_up(&state, 1.0),
            0,
            0.0,
        );
        let b = RandomNeighborBalancer::new(1.0);
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..10).map(|_| b.decide(&view, &mut rng).len()).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
    }
}
