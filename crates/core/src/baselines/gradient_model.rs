//! The Gradient Model (GM, Lin & Keller 1987): a *pressure surface* of
//! proximities — each lightly-loaded node has proximity 0, everyone else
//! holds `1 + min(neighbour proximities)` — and overloaded nodes push one
//! task per round toward the neighbour closest to an underloaded region.
//!
//! The proximity map is refreshed every round from the height snapshot
//! (multi-source BFS), standing in for the per-round neighbour message
//! exchange the original distributed algorithm performs.

use pp_sim::balancer::{GlobalView, LoadBalancer, MigrationIntent, NodeView};
use rand::rngs::StdRng;
use serde::{Deserialize, Value};
use std::collections::VecDeque;

/// GM balancer with static low/high watermarks.
#[derive(Debug, Clone)]
pub struct GradientModelBalancer {
    low: f64,
    high: f64,
    proximity: Vec<u32>,
    name: String,
}

impl GradientModelBalancer {
    /// A node is *lightly loaded* below `low` and *overloaded* above `high`.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(low <= high, "low watermark must not exceed high");
        GradientModelBalancer {
            low,
            high,
            proximity: Vec::new(),
            name: format!("gradient-model(L={low},H={high})"),
        }
    }

    /// The current proximity (pressure) value of a node; `u32::MAX` when no
    /// lightly-loaded node is reachable.
    pub fn proximity(&self, node: usize) -> u32 {
        self.proximity.get(node).copied().unwrap_or(u32::MAX)
    }
}

impl LoadBalancer for GradientModelBalancer {
    fn name(&self) -> &str {
        &self.name
    }

    fn begin_round(&mut self, global: &GlobalView<'_>) {
        // Multi-source BFS from all lightly-loaded nodes.
        let n = global.topo.node_count();
        self.proximity = vec![u32::MAX; n];
        let mut q = VecDeque::new();
        for (i, &h) in global.heights.iter().enumerate() {
            if h < self.low {
                self.proximity[i] = 0;
                q.push_back(i);
            }
        }
        while let Some(u) = q.pop_front() {
            let d = self.proximity[u];
            for &v in global.topo.neighbors(pp_topology::graph::NodeId(u as u32)) {
                if self.proximity[v.idx()] == u32::MAX {
                    self.proximity[v.idx()] = d + 1;
                    q.push_back(v.idx());
                }
            }
        }
    }

    fn decide(&self, view: &NodeView<'_>, _rng: &mut StdRng) -> Vec<MigrationIntent> {
        if view.height <= self.high || view.tasks.is_empty() {
            return Vec::new();
        }
        let my_prox = self.proximity(view.node.idx());
        if my_prox == 0 {
            return Vec::new(); // already next to (or in) an underloaded region
        }
        // Push one task toward the lowest-proximity neighbour, strictly
        // descending the pressure surface.
        let best = view
            .neighbors
            .iter()
            .map(|nb| (self.proximity(nb.id.idx()), nb.id))
            .min_by(|a, b| a.0.cmp(&b.0).then(a.1 .0.cmp(&b.1 .0)));
        let Some((prox, to)) = best else { return Vec::new() };
        if prox >= my_prox || prox == u32::MAX {
            return Vec::new();
        }
        vec![MigrationIntent { task: view.tasks[0].id, to, flag: 0.0, heat: 0.0 }]
    }

    /// The propagated pressure map is per-round internal state: it is
    /// rebuilt by the next `begin_round`, but a checkpoint taken between
    /// rounds still carries it so a restored policy answers
    /// [`GradientModelBalancer::proximity`] queries identically before that
    /// rebuild happens.
    fn save_state(&self) -> Option<Value> {
        Some(Value::Object(vec![(
            "proximity".to_string(),
            Value::Array(self.proximity.iter().map(|&p| Value::UInt(u64::from(p))).collect()),
        )]))
    }

    fn load_state(&mut self, state: &Value, nodes: usize) -> Result<(), String> {
        let proximity = Vec::<u32>::from_value(
            state.get("proximity").ok_or("gradient-model state missing `proximity`")?,
        )?;
        // A truncated or spliced array is rejected against the engine's
        // node count instead of silently answering `u32::MAX` for the
        // missing tail. Empty is the legitimate pre-first-round state.
        if !proximity.is_empty() && proximity.len() != nodes {
            return Err(format!(
                "gradient-model pressure map has {} entries for {nodes} nodes",
                proximity.len()
            ));
        }
        self.proximity = proximity;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::testutil::ring_view_state;
    use pp_sim::balancer::{build_view, LinkView, ViewScratch};
    use pp_topology::graph::NodeId;
    use rand::SeedableRng;

    fn prepared(loads: &[f64], low: f64, high: f64) -> (GradientModelBalancer, Vec<f64>) {
        let (state, heights) = ring_view_state(loads);
        let mut b = GradientModelBalancer::new(low, high);
        let global = GlobalView { topo: &state.topo, heights: &heights, round: 1, time: 0.0 };
        b.begin_round(&global);
        (b, heights)
    }

    #[test]
    fn proximity_map_is_bfs_distance() {
        // Ring of 6: only node 3 is light (h < 1).
        let (b, _) = prepared(&[5.0, 5.0, 5.0, 0.0, 5.0, 5.0], 1.0, 4.0);
        assert_eq!(b.proximity(3), 0);
        assert_eq!(b.proximity(2), 1);
        assert_eq!(b.proximity(4), 1);
        assert_eq!(b.proximity(0), 3);
    }

    #[test]
    fn overloaded_node_pushes_toward_pressure_gradient() {
        let loads = [9.0, 5.0, 5.0, 0.0, 5.0, 5.0];
        let (state, heights) = ring_view_state(&loads);
        let mut b = GradientModelBalancer::new(1.0, 4.0);
        let global = GlobalView { topo: &state.topo, heights: &heights, round: 1, time: 0.0 };
        b.begin_round(&global);
        let mut scratch = ViewScratch::new();
        let view = build_view(
            &mut scratch,
            &state,
            NodeId(0),
            &heights,
            &LinkView::all_up(&state, 1.0),
            1,
            0.0,
        );
        let mut rng = StdRng::seed_from_u64(0);
        let intents = b.decide(&view, &mut rng);
        assert_eq!(intents.len(), 1);
        // Node 0's neighbours are 1 (prox 2) and 5 (prox 2): tie broken by
        // id ⇒ node 1.
        assert_eq!(intents[0].to, NodeId(1));
    }

    #[test]
    fn below_high_watermark_stays_quiet() {
        let (state, heights) = ring_view_state(&[3.0, 3.0, 3.0, 0.0, 3.0, 3.0]);
        let mut b = GradientModelBalancer::new(1.0, 4.0);
        let global = GlobalView { topo: &state.topo, heights: &heights, round: 1, time: 0.0 };
        b.begin_round(&global);
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..6 {
            let mut scratch = ViewScratch::new();
            let view = build_view(
                &mut scratch,
                &state,
                NodeId(i),
                &heights,
                &LinkView::all_up(&state, 1.0),
                1,
                0.0,
            );
            assert!(b.decide(&view, &mut rng).is_empty());
        }
    }

    #[test]
    fn no_light_node_means_no_pressure() {
        let (b, _) = prepared(&[5.0, 5.0, 5.0, 5.0], 1.0, 4.0);
        assert_eq!(b.proximity(0), u32::MAX);
        let (state, heights) = ring_view_state(&[5.0, 5.0, 5.0, 5.0]);
        let mut scratch = ViewScratch::new();
        let view = build_view(
            &mut scratch,
            &state,
            NodeId(0),
            &heights,
            &LinkView::all_up(&state, 1.0),
            1,
            0.0,
        );
        let mut rng = StdRng::seed_from_u64(0);
        assert!(b.decide(&view, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "low watermark")]
    fn inverted_watermarks_rejected() {
        let _ = GradientModelBalancer::new(5.0, 1.0);
    }

    #[test]
    fn pressure_map_rides_checkpoint_state() {
        let (b, _) = prepared(&[5.0, 5.0, 5.0, 0.0, 5.0, 5.0], 1.0, 4.0);
        let state = b.save_state().expect("gradient model is stateful");
        let mut fresh = GradientModelBalancer::new(1.0, 4.0);
        assert_eq!(fresh.proximity(2), u32::MAX, "fresh policy knows nothing");
        fresh.load_state(&state, 6).expect("well-formed state");
        for node in 0..6 {
            assert_eq!(fresh.proximity(node), b.proximity(node));
        }
        // Malformed state errors instead of panicking.
        assert!(fresh.load_state(&Value::Object(vec![]), 6).is_err());
        assert!(fresh
            .load_state(&Value::Object(vec![("proximity".into(), Value::Bool(true))]), 6)
            .is_err());
        // A truncated pressure map is rejected against the node count, not
        // padded with u32::MAX; the empty pre-first-round map is fine.
        let truncated =
            Value::Object(vec![("proximity".into(), Value::Array(vec![Value::UInt(0); 3]))]);
        assert!(fresh.load_state(&truncated, 6).unwrap_err().contains("6 nodes"));
        let empty = Value::Object(vec![("proximity".into(), Value::Array(vec![]))]);
        assert!(fresh.load_state(&empty, 6).is_ok());
    }
}
