//! Contracting Within a Neighborhood (CWN, Shu & Kale 1989): the workload
//! index is used directly — each node repeatedly hands tasks to its
//! currently least-loaded neighbour while its own load exceeds that
//! neighbour's by more than a threshold.

use pp_sim::balancer::{LoadBalancer, MigrationIntent, NodeView};
use rand::rngs::StdRng;

/// CWN balancer.
#[derive(Debug, Clone)]
pub struct CwnBalancer {
    threshold: f64,
    name: String,
}

impl CwnBalancer {
    /// Transfers happen while `h_i − min_j h_j > threshold`.
    pub fn new(threshold: f64) -> Self {
        assert!(threshold >= 0.0, "threshold must be ≥ 0");
        CwnBalancer { threshold, name: format!("cwn(Δ={threshold})") }
    }
}

impl LoadBalancer for CwnBalancer {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&self, view: &NodeView<'_>, _rng: &mut StdRng) -> Vec<MigrationIntent> {
        if view.neighbors.is_empty() {
            return Vec::new();
        }
        let mut h_i = view.height;
        let mut h_eff: Vec<f64> = view.neighbors.iter().map(|n| n.height).collect();
        let mut intents = Vec::new();
        for task in view.tasks {
            // Least-loaded neighbour under the current plan.
            let (idx, &h_min) = h_eff
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
                .expect("non-empty");
            if h_i - h_min <= self.threshold {
                break;
            }
            intents.push(MigrationIntent {
                task: task.id,
                to: view.neighbors[idx].id,
                flag: 0.0,
                heat: 0.0,
            });
            h_i -= task.size;
            h_eff[idx] += task.size;
        }
        intents
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::testutil::decide_on_ring;
    use pp_topology::graph::NodeId;

    #[test]
    fn contracts_toward_smallest_index() {
        // Node 0 at 6, neighbours 1 (h=0) and 3 (h=4): tasks flow to 1
        // until the plan evens out.
        let intents = decide_on_ring(&[6.0, 0.0, 0.0, 4.0], CwnBalancer::new(1.0));
        assert!(!intents.is_empty());
        // First transfers go to the lightest neighbour (node 1).
        assert_eq!(intents[0].to, NodeId(1));
        // Plan: (6,0) → (5,1) → (4,2) → stop when h_i − min ≤ 1: after two
        // sends h_i = 4, mins are 2 and 4 ⇒ 4−2 = 2 > 1 ⇒ third send;
        // then h_i = 3, h_eff = [3,4] ⇒ 0 ≤ 1 stop.
        assert_eq!(intents.len(), 3);
    }

    #[test]
    fn balanced_system_idle() {
        let intents = decide_on_ring(&[3.0, 3.0, 3.0, 3.0], CwnBalancer::new(1.0));
        assert!(intents.is_empty());
    }

    #[test]
    fn threshold_zero_balances_to_unit_granularity() {
        let intents = decide_on_ring(&[4.0, 2.0, 4.0, 2.0], CwnBalancer::new(0.0));
        // Plan: h_i = 4, neighbours [2, 2] → send (3, [3,2]) → send
        // (2, [3,3]) → stop when h_i ≤ min.
        assert_eq!(intents.len(), 2);
    }

    #[test]
    #[should_panic(expected = "threshold must be")]
    fn negative_threshold_rejected() {
        let _ = CwnBalancer::new(-1.0);
    }
}
