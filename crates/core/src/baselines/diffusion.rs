//! The diffusion method (Cybenko 1989; optimal parameters Xu & Lau 1994).
//!
//! Each node sends `α·(h_i − h_j)` worth of load across every edge to a
//! lighter neighbour, every round. With `α` below the stability bound the
//! scheme provably converges on any connected topology; `α_opt =
//! 2/(λ₂ + λ_max)` maximises the convergence rate. Loads being discrete
//! tasks, the per-edge quota is filled greedily ("discrete diffusion").

use pp_sim::balancer::{LoadBalancer, MigrationIntent, NodeView};
use pp_topology::graph::Topology;
use pp_topology::spectral::{optimal_diffusion_alpha, safe_diffusion_alpha};
use rand::rngs::StdRng;
use std::collections::HashSet;

/// First-order-scheme diffusion balancer.
#[derive(Debug, Clone)]
pub struct DiffusionBalancer {
    alpha: f64,
    name: String,
}

impl DiffusionBalancer {
    /// Diffusion with an explicit parameter `α ∈ (0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "α must be in (0, 1]");
        DiffusionBalancer { alpha, name: format!("diffusion(α={alpha:.3})") }
    }

    /// Diffusion with the Xu–Lau optimal `α` for `topo`.
    pub fn optimal(topo: &Topology) -> Self {
        let alpha = optimal_diffusion_alpha(topo, 2000).clamp(1e-6, 1.0);
        DiffusionBalancer { alpha, name: format!("diffusion-opt(α={alpha:.3})") }
    }

    /// Diffusion with the always-safe `α = 1/(Δ+1)` (Cybenko).
    pub fn safe(topo: &Topology) -> Self {
        let alpha = safe_diffusion_alpha(topo);
        DiffusionBalancer { alpha, name: format!("diffusion-safe(α={alpha:.3})") }
    }

    /// The diffusion parameter in use.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl LoadBalancer for DiffusionBalancer {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&self, view: &NodeView<'_>, _rng: &mut StdRng) -> Vec<MigrationIntent> {
        let mut intents = Vec::new();
        let mut used: HashSet<u64> = HashSet::new();
        for nb in view.neighbors {
            if view.height <= nb.height {
                continue;
            }
            let quota = self.alpha * (view.height - nb.height);
            let mut sent = 0.0;
            for task in view.tasks {
                if used.contains(&task.id.0) {
                    continue;
                }
                if sent + task.size <= quota + 1e-9 {
                    used.insert(task.id.0);
                    sent += task.size;
                    intents.push(MigrationIntent {
                        task: task.id,
                        to: nb.id,
                        flag: 0.0,
                        heat: 0.0,
                    });
                }
            }
        }
        intents
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::testutil::{decide_on_ring, ring_view_state};
    use pp_topology::graph::NodeId;

    #[test]
    fn quota_respected_per_edge() {
        // Node 0 at 10, neighbours at 0: α = 0.25 ⇒ quota 2.5 per edge ⇒ 2
        // unit tasks per edge.
        let intents = decide_on_ring(&[10.0, 0.0, 0.0, 0.0], DiffusionBalancer::new(0.25));
        assert_eq!(intents.len(), 4);
        let to1 = intents.iter().filter(|i| i.to == NodeId(1)).count();
        let to3 = intents.iter().filter(|i| i.to == NodeId(3)).count();
        assert_eq!(to1, 2);
        assert_eq!(to3, 2);
    }

    #[test]
    fn no_send_uphill_or_level() {
        let intents = decide_on_ring(&[5.0, 5.0, 9.0, 5.0], DiffusionBalancer::new(0.5));
        assert!(intents.is_empty());
    }

    #[test]
    fn each_task_sent_at_most_once() {
        let intents = decide_on_ring(&[3.0, 0.0, 0.0, 0.0], DiffusionBalancer::new(1.0));
        let mut ids: Vec<u64> = intents.iter().map(|i| i.task.0).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
        assert!(before <= 3);
    }

    #[test]
    fn optimal_and_safe_constructors() {
        let (state, _) = ring_view_state(&[1.0, 0.0, 0.0, 0.0]);
        let opt = DiffusionBalancer::optimal(&state.topo);
        let safe = DiffusionBalancer::safe(&state.topo);
        assert!(opt.alpha() > 0.0 && opt.alpha() <= 1.0);
        assert!((safe.alpha() - 1.0 / 3.0).abs() < 1e-12);
        assert!(opt.name().starts_with("diffusion-opt"));
    }

    #[test]
    #[should_panic(expected = "α must be in")]
    fn zero_alpha_rejected() {
        let _ = DiffusionBalancer::new(0.0);
    }
}
