//! The classical dynamic load-balancing baselines the paper positions
//! itself against (§2), re-implemented from their original descriptions on
//! the same simulator substrate so comparisons are apples-to-apples:
//!
//! * [`diffusion::DiffusionBalancer`] — Cybenko 1989, with the Xu–Lau 1994
//!   optimal parameter variant;
//! * [`dimension_exchange::DimensionExchangeBalancer`] — Cybenko 1989;
//! * [`gradient_model::GradientModelBalancer`] — Lin & Keller 1987 (GM);
//! * [`cwn::CwnBalancer`] — Shu & Kale 1989 (contracting within a
//!   neighborhood);
//! * [`random_neighbor::RandomNeighborBalancer`] — stochastic strawman;
//! * [`threshold::SenderInitiatedBalancer`] — Eager et al. 1986.

pub mod cwn;
pub mod diffusion;
pub mod dimension_exchange;
pub mod gradient_model;
pub mod random_neighbor;
pub mod threshold;

pub use cwn::CwnBalancer;
pub use diffusion::DiffusionBalancer;
pub use dimension_exchange::DimensionExchangeBalancer;
pub use gradient_model::GradientModelBalancer;
pub use random_neighbor::RandomNeighborBalancer;
pub use threshold::SenderInitiatedBalancer;

#[cfg(test)]
pub(crate) mod testutil {
    use pp_sim::balancer::{build_view, LinkView, LoadBalancer, MigrationIntent, ViewScratch};
    use pp_sim::state::SystemState;
    use pp_tasking::graph::TaskGraph;
    use pp_tasking::resources::ResourceMatrix;
    use pp_tasking::task::{Task, TaskId};
    use pp_topology::graph::{NodeId, Topology};
    use pp_topology::links::{LinkAttrs, LinkMap};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Ring system with the given per-node loads split into unit tasks.
    pub fn ring_view_state(loads: &[f64]) -> (SystemState, Vec<f64>) {
        let topo = Topology::ring(loads.len());
        let links = LinkMap::uniform(&topo, LinkAttrs::default());
        let mut s = SystemState::new(topo, links, TaskGraph::new(), ResourceMatrix::none());
        let mut id = 0u64;
        for (i, &l) in loads.iter().enumerate() {
            let mut rest = l;
            while rest > 1e-9 {
                let sz = rest.min(1.0);
                s.add_task(NodeId(i as u32), Task::new(TaskId(id), sz, i as u32));
                id += 1;
                rest -= sz;
            }
        }
        let h = s.heights();
        (s, h)
    }

    /// Runs one `decide` for node 0 of a ring with the given loads.
    pub fn decide_on_ring(loads: &[f64], balancer: impl LoadBalancer) -> Vec<MigrationIntent> {
        let (state, heights) = ring_view_state(loads);
        let mut scratch = ViewScratch::new();
        let view = build_view(
            &mut scratch,
            &state,
            NodeId(0),
            &heights,
            &LinkView::all_up(&state, 1.0),
            0,
            0.0,
        );
        let mut rng = StdRng::seed_from_u64(0);
        balancer.decide(&view, &mut rng)
    }
}
