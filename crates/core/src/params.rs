//! The §4.2 parameter derivations: every physical constant of the particle
//! model expressed as a function of the primary load-balancing parameters
//! (Table 1's dictionary, made executable).
//!
//! | physics | here |
//! |---|---|
//! | `µ_s`   | [`static_friction`]: base + task-affinity + resource-affinity |
//! | `µ_k`   | [`kinetic_friction`]: `c_µ·µ_s` (the paper's `µ_k ∝ µ_s`), floored |
//! | `tan β` | [`gradient`]: `(h_i − h_j − 2l)/e_{i,j}` (load-size-corrected) |
//! | `h`     | the node height, maintained by `pp-sim` |
//! | `e_{i,j}` | `pp-topology::LinkAttrs::weight`, carried in the node view |
//! | `E_h`   | [`crate::energy::hop_heat`] |

use pp_tasking::graph::TaskGraph;
use pp_tasking::resources::ResourceMatrix;
use pp_tasking::task::{Task, TaskId};
use pp_topology::graph::NodeId;

/// Configuration constants of the particle-plane balancer (the paper's
/// "configuration parameters which describe the system's characteristics",
/// §6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysicsConfig {
    /// Gravity `g` — scales all energies (default 1; only ratios matter).
    pub g: f64,
    /// Baseline static friction: the minimum gradient any migration must
    /// beat, even for fully independent tasks (the node's "degree of
    /// participation", Table 1).
    pub mu_s_base: f64,
    /// Weight of the task-dependency term `Σ_x T_{k,x}` in `µ_s`.
    pub c_task: f64,
    /// Weight of the resource term `R_{k,i}` in `µ_s`.
    pub c_resource: f64,
    /// `µ_k = c_mu · µ_s` (the paper's `µ_k ∝ µ_s`).
    pub c_mu: f64,
    /// Lower floor for `µ_k`; the convergence proof (Theorem 2 via
    /// Corollary 2) requires `µ_k ≠ 0`.
    pub mu_k_min: f64,
    /// Heat scale `c₀` in `E_h = c₀·g·µ_k·e_{i,j}·l` (the paper's free
    /// constant tuning how much traffic a hop is billed).
    pub c0: f64,
    /// Apply the `−2·l_{i,k}/e_{i,j}` self-correction to `tan β` (accounts
    /// for the height change caused by moving the load itself, §5.1).
    pub self_correction: bool,
    /// Enable in-motion multi-hop forwarding (§5.1's second phase). When
    /// off, every migration is a single hop (ablation).
    pub in_motion: bool,
    /// Hard cap on hops per load (safety net; the energy drain already
    /// bounds travel since `µ_k > 0`).
    pub max_hops: u32,
    /// Optional annealed jitter on `µ_s` (§5.1's "stochastic nature … for
    /// some other parameters which are not too much rigid like µ_s and
    /// µ_k"); `µ_k` inherits it through `µ_k = c_µ·µ_s`.
    pub jitter: Option<crate::jitter::FrictionJitter>,
}

impl Default for PhysicsConfig {
    fn default() -> Self {
        PhysicsConfig {
            g: 1.0,
            mu_s_base: 1.0,
            c_task: 1.0,
            c_resource: 1.0,
            c_mu: 1.0,
            mu_k_min: 0.05,
            c0: 1.0,
            self_correction: true,
            in_motion: true,
            max_hops: 256,
            jitter: None,
        }
    }
}

impl serde::Serialize for PhysicsConfig {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("g".to_string(), self.g.to_value()),
            ("mu_s_base".to_string(), self.mu_s_base.to_value()),
            ("c_task".to_string(), self.c_task.to_value()),
            ("c_resource".to_string(), self.c_resource.to_value()),
            ("c_mu".to_string(), self.c_mu.to_value()),
            ("mu_k_min".to_string(), self.mu_k_min.to_value()),
            ("c0".to_string(), self.c0.to_value()),
            ("self_correction".to_string(), self.self_correction.to_value()),
            ("in_motion".to_string(), self.in_motion.to_value()),
            ("max_hops".to_string(), self.max_hops.to_value()),
            ("jitter".to_string(), self.jitter.as_ref().map(|j| j.to_value()).to_value()),
        ])
    }
}

impl serde::Deserialize for PhysicsConfig {
    /// Lifts a config from JSON. Missing fields fall back to the default,
    /// so a spec only needs to spell out what it overrides.
    fn from_value(v: &serde::Value) -> Result<Self, String> {
        let d = PhysicsConfig::default();
        Ok(PhysicsConfig {
            g: v.field_opt("g")?.unwrap_or(d.g),
            mu_s_base: v.field_opt("mu_s_base")?.unwrap_or(d.mu_s_base),
            c_task: v.field_opt("c_task")?.unwrap_or(d.c_task),
            c_resource: v.field_opt("c_resource")?.unwrap_or(d.c_resource),
            c_mu: v.field_opt("c_mu")?.unwrap_or(d.c_mu),
            mu_k_min: v.field_opt("mu_k_min")?.unwrap_or(d.mu_k_min),
            c0: v.field_opt("c0")?.unwrap_or(d.c0),
            self_correction: v.field_opt("self_correction")?.unwrap_or(d.self_correction),
            in_motion: v.field_opt("in_motion")?.unwrap_or(d.in_motion),
            max_hops: v.field_opt("max_hops")?.unwrap_or(d.max_hops),
            jitter: v.field_opt("jitter")?,
        })
    }
}

impl PhysicsConfig {
    /// Validates constant ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !self.g.is_finite() || self.g <= 0.0 {
            return Err("g must be > 0".into());
        }
        if self.mu_s_base < 0.0 || self.c_task < 0.0 || self.c_resource < 0.0 {
            return Err("friction terms must be ≥ 0".into());
        }
        if self.c_mu <= 0.0 || self.mu_k_min <= 0.0 {
            return Err("µ_k must stay positive (Corollary 2 needs µ_k ≠ 0)".into());
        }
        if !self.c0.is_finite() || self.c0 <= 0.0 {
            return Err("c0 must be > 0".into());
        }
        if let Some(jitter) = &self.jitter {
            jitter.validate()?;
        }
        Ok(())
    }
}

/// `µ_s(l_{i,k}, v_i)` — the static friction of task `k` on node `i`:
///
/// ```text
/// µ_s = µ_base + c_task·Σ_{x on i, x≠k} T_{k,x} + c_res·R_{k,i}
/// ```
///
/// The two proportionalities are the paper's `µ_s ∝ Σ T_{k,x}` (dependency
/// to co-located tasks) and `µ_s ∝ R_{k,i}` (dependency to the node's
/// resources).
pub fn static_friction(
    cfg: &PhysicsConfig,
    task: TaskId,
    node: NodeId,
    colocated: &[Task],
    task_graph: &TaskGraph,
    resources: &ResourceMatrix,
) -> f64 {
    // Walk the task's (usually short) partner list and test co-location,
    // instead of hashing every co-located pair; with no dependencies or no
    // resource pins — the common case — the respective term costs nothing.
    // The graph has no self-edges, so `t != task` needs no explicit check.
    let affinity: f64 = if cfg.c_task == 0.0 || task_graph.is_empty() {
        0.0
    } else {
        task_graph
            .partners_weighted(task)
            .iter()
            .filter(|(p, _)| colocated.iter().any(|t| t.id == *p))
            .map(|&(_, w)| w)
            .sum()
    };
    let resource =
        if cfg.c_resource == 0.0 || resources.is_empty() { 0.0 } else { resources.get(task, node) };
    cfg.mu_s_base + cfg.c_task * affinity + cfg.c_resource * resource
}

/// `µ_k = max(c_µ·µ_s, µ_k_min)` — kinetic friction proportional to static
/// friction, floored away from zero so loads are always eventually trapped
/// (Corollary 2, which Theorem 2's termination argument relies on).
pub fn kinetic_friction(cfg: &PhysicsConfig, mu_s: f64) -> f64 {
    (cfg.c_mu * mu_s).max(cfg.mu_k_min)
}

/// `tan β(v_i, v_j, e_{i,j})` — the slope a stationary load sees toward a
/// neighbour: `(h_i − h_j − 2l)/e` with the `2l` self-correction (or the
/// uncorrected `(h_i − h_j)/e` when disabled).
pub fn gradient(cfg: &PhysicsConfig, h_i: f64, h_j: f64, load: f64, e_ij: f64) -> f64 {
    debug_assert!(e_ij > 0.0, "link weight must be positive");
    let correction = if cfg.self_correction { 2.0 * load } else { 0.0 };
    (h_i - h_j - correction) / e_ij
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PhysicsConfig {
        PhysicsConfig::default()
    }

    #[test]
    fn default_config_is_valid() {
        assert!(cfg().validate().is_ok());
    }

    #[test]
    fn physics_config_json_round_trip() {
        use crate::jitter::FrictionJitter;
        use serde::{Deserialize, Serialize};
        let original = PhysicsConfig {
            mu_s_base: 2.5,
            c_mu: 0.75,
            self_correction: false,
            max_hops: 17,
            jitter: Some(FrictionJitter::new(0.3, 3.0, 100.0)),
            ..PhysicsConfig::default()
        };
        let value = original.to_value();
        let back = PhysicsConfig::from_value(&value).expect("lift");
        assert_eq!(back.mu_s_base, original.mu_s_base);
        assert_eq!(back.c_mu, original.c_mu);
        assert_eq!(back.self_correction, original.self_correction);
        assert_eq!(back.max_hops, original.max_hops);
        assert_eq!(back.jitter, original.jitter);
        // Byte-identical on a second lowering.
        assert_eq!(value, back.to_value());
    }

    #[test]
    fn physics_config_partial_json_uses_defaults() {
        use serde::{Deserialize, Value};
        let v = Value::Object(vec![("mu_s_base".to_string(), Value::Float(4.0))]);
        let cfg = PhysicsConfig::from_value(&v).expect("lift");
        assert_eq!(cfg.mu_s_base, 4.0);
        assert_eq!(cfg.c_mu, PhysicsConfig::default().c_mu);
        assert_eq!(cfg.jitter, None);
    }

    #[test]
    fn zero_mu_k_rejected() {
        let bad = PhysicsConfig { c_mu: 0.0, ..cfg() };
        assert!(bad.validate().is_err());
        let bad2 = PhysicsConfig { mu_k_min: 0.0, ..cfg() };
        assert!(bad2.validate().is_err());
    }

    #[test]
    fn independent_task_has_base_friction() {
        let mu = static_friction(
            &cfg(),
            TaskId(0),
            NodeId(0),
            &[],
            &TaskGraph::new(),
            &ResourceMatrix::none(),
        );
        assert_eq!(mu, 1.0);
    }

    #[test]
    fn colocated_dependency_raises_mu_s() {
        let mut tg = TaskGraph::new();
        tg.set_dependency(TaskId(0), TaskId(1), 2.0);
        tg.set_dependency(TaskId(0), TaskId(2), 1.0);
        let colocated = vec![Task::new(TaskId(1), 1.0, 0), Task::new(TaskId(3), 1.0, 0)];
        // Only task 1 is co-located; task 2's weight must not count.
        let mu =
            static_friction(&cfg(), TaskId(0), NodeId(0), &colocated, &tg, &ResourceMatrix::none());
        assert_eq!(mu, 1.0 + 2.0);
    }

    #[test]
    fn own_task_excluded_from_affinity() {
        let mut tg = TaskGraph::new();
        tg.set_dependency(TaskId(0), TaskId(1), 5.0);
        let colocated = vec![Task::new(TaskId(0), 1.0, 0)];
        let mu =
            static_friction(&cfg(), TaskId(0), NodeId(0), &colocated, &tg, &ResourceMatrix::none());
        assert_eq!(mu, 1.0);
    }

    #[test]
    fn resource_dependency_raises_mu_s() {
        let mut res = ResourceMatrix::none();
        res.set(TaskId(0), NodeId(3), 4.0);
        let at_resource_node =
            static_friction(&cfg(), TaskId(0), NodeId(3), &[], &TaskGraph::new(), &res);
        let elsewhere = static_friction(&cfg(), TaskId(0), NodeId(1), &[], &TaskGraph::new(), &res);
        assert_eq!(at_resource_node, 5.0);
        assert_eq!(elsewhere, 1.0);
    }

    #[test]
    fn mu_k_proportional_with_floor() {
        let c = cfg();
        assert_eq!(kinetic_friction(&c, 2.0), 2.0);
        // Floor kicks in for tiny µ_s.
        assert_eq!(kinetic_friction(&c, 0.0), c.mu_k_min);
    }

    #[test]
    fn gradient_with_and_without_correction() {
        let c = cfg();
        assert_eq!(gradient(&c, 10.0, 2.0, 1.0, 2.0), 3.0); // (10−2−2)/2
        let nc = PhysicsConfig { self_correction: false, ..c };
        assert_eq!(gradient(&nc, 10.0, 2.0, 1.0, 2.0), 4.0); // (10−2)/2
    }

    #[test]
    fn gradient_scales_inverse_with_link_weight() {
        let c = cfg();
        let steep = gradient(&c, 10.0, 0.0, 1.0, 1.0);
        let shallow = gradient(&c, 10.0, 0.0, 1.0, 4.0);
        assert!(steep > shallow);
        assert_eq!(steep, 4.0 * shallow);
    }

    #[test]
    fn self_correction_prevents_thrashing_pairs() {
        // Moving load l between two nodes differing by less than 2l would
        // invert the imbalance; the corrected gradient is ≤ 0 there.
        let c = cfg();
        let g = gradient(&c, 5.0, 4.0, 1.0, 1.0); // diff 1 < 2l = 2
        assert!(g <= 0.0);
    }
}
