//! Property tests for the irregular-topology generators: for *any*
//! admissible (n, m/radius, seed), scale-free and random-geometric graphs
//! are connected, structurally consistent (degree sum = 2·|E|, symmetric
//! adjacency, no self-loops) and a deterministic function of their seed.

use pp_topology::graph::Topology;
use proptest::prelude::*;

fn check_structure(t: &Topology) {
    assert!(t.is_connected(), "generator must yield a connected graph");
    let degree_sum: usize = t.nodes().map(|v| t.degree(v)).sum();
    assert_eq!(degree_sum, 2 * t.edge_count(), "degree sum must be 2·|E|");
    for u in t.nodes() {
        for &v in t.neighbors(u) {
            assert_ne!(u, v, "no self-loops");
            assert!(t.neighbors(v).contains(&u), "adjacency must be symmetric ({u} lists {v})");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scale_free_is_connected_and_consistent(
        extra in 1usize..92,
        m in 1usize..4,
        seed in 0u64..1000,
    ) {
        // n > m always holds by construction of the inputs.
        let n = m + 1 + extra;
        let t = Topology::scale_free(n, m, seed);
        prop_assert_eq!(t.node_count(), n);
        check_structure(&t);
        // BA attaches m distinct targets per node past the clique, so the
        // edge count is exact: C(m+1, 2) + m·(n − m − 1).
        let clique = m + 1;
        let expected = clique * (clique - 1) / 2 + m * (n - m - 1);
        prop_assert_eq!(t.edge_count(), expected);
    }

    #[test]
    fn scale_free_is_deterministic_per_seed(
        extra in 1usize..60,
        m in 1usize..4,
        seed in 0u64..1000,
    ) {
        let n = m + 1 + extra;
        let a = Topology::scale_free(n, m, seed);
        let b = Topology::scale_free(n, m, seed);
        prop_assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn random_geometric_is_connected_and_consistent(
        n in 2usize..64,
        radius_milli in 20u32..800,
        seed in 0u64..1000,
    ) {
        // Radii down to 0.02 exercise the component-stitching augmentation
        // hard (most nodes start isolated).
        let radius = radius_milli as f64 / 1000.0;
        let t = Topology::random_geometric(n, radius, seed);
        prop_assert_eq!(t.node_count(), n);
        check_structure(&t);
    }

    #[test]
    fn random_geometric_is_deterministic_per_seed(
        n in 2usize..48,
        radius_milli in 20u32..800,
        seed in 0u64..1000,
    ) {
        let radius = radius_milli as f64 / 1000.0;
        let a = Topology::random_geometric(n, radius, seed);
        let b = Topology::random_geometric(n, radius, seed);
        prop_assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn geometric_complete_graph_limit(
        n in 2usize..32,
        seed in 0u64..1000,
    ) {
        // A radius covering the whole unit square links every pair exactly
        // once — the augmentation must not add duplicates.
        let t = Topology::random_geometric(n, 1.5, seed);
        prop_assert_eq!(t.edge_count(), n * (n - 1) / 2);
        for v in t.nodes() {
            prop_assert_eq!(t.degree(v), n - 1);
        }
    }
}

#[test]
fn scale_free_grows_hubs() {
    // Not a proptest (hub growth is probabilistic per seed) but a fixed
    // check that preferential attachment produces the heavy tail the
    // scenario frontier is about: on a decent-sized instance the max
    // degree dwarfs the attachment count.
    let t = Topology::scale_free(256, 2, 7);
    let max_deg = t.nodes().map(|v| t.degree(v)).max().unwrap();
    assert!(max_deg >= 8, "expected a hub, max degree {max_deg}");
}
