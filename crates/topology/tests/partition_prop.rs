//! Property tests for the shard partitioner: for *any* topology and any
//! requested shard count, every node lands in exactly one shard, shard
//! sizes stay within ±1 of balanced, the halo map is symmetric and
//! consistent with the boundary classification, and the whole layout is a
//! deterministic function of (topology, K).

use pp_topology::graph::{NodeId, Topology};
use pp_topology::partition::Partition;
use proptest::prelude::*;

/// One family of test topologies per selector, sized by `n`.
fn build_topology(family: u8, n: usize, seed: u64) -> Topology {
    match family % 4 {
        0 => Topology::ring(n.max(3)),
        1 => Topology::torus(&[n.clamp(2, 12), 3]),
        2 => Topology::random(n.max(2), 0.2, seed),
        _ => {
            // A path with a few random chords: irregular degrees.
            let n = n.max(2);
            let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
            let mut x = seed | 1;
            for _ in 0..n / 3 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let a = (x >> 33) as u32 % n as u32;
                let b = (x >> 13) as u32 % n as u32;
                if a != b {
                    edges.push((a.min(b), a.max(b)));
                }
            }
            Topology::from_edges(n, &edges)
        }
    }
}

fn check_partition(topo: &Topology, k: usize) {
    let p = Partition::new(topo, k);
    let n = topo.node_count();
    let k_eff = p.shard_count();
    prop_assert_eq!(k_eff, k.clamp(1, n.max(1)));

    // 1. Every node is in exactly one shard, ranges tile 0..n.
    let mut covered = 0usize;
    let mut next = 0u32;
    for s in 0..k_eff {
        let (lo, hi) = p.range(s);
        prop_assert_eq!(lo, next, "ranges must be contiguous");
        prop_assert!(hi >= lo);
        next = hi;
        covered += (hi - lo) as usize;
        for v in lo..hi {
            prop_assert_eq!(p.shard_of(NodeId(v)), s);
        }
    }
    prop_assert_eq!(covered, n);

    // 2. Balanced within ±1.
    if n > 0 {
        let sizes: Vec<usize> = (0..k_eff).map(|s| p.len(s)).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1, "sizes {sizes:?} not within ±1");
    }

    // 3. Halo symmetry: each cross-shard edge appears exactly once per
    // side, with local/remote swapped, and only cross edges appear.
    let mut seen = std::collections::HashSet::new();
    for s in 0..k_eff {
        for h in p.halo(s) {
            prop_assert_eq!(p.shard_of(h.local), s);
            prop_assert!(p.shard_of(h.remote) != s);
            prop_assert!(p.is_boundary(h.local) && p.is_boundary(h.remote));
            prop_assert!(seen.insert((s, h.edge)), "duplicate halo entry");
        }
    }
    for &(u, v) in topo.edge_slice() {
        let (su, sv) = (p.shard_of(u), p.shard_of(v));
        let e = topo.edge_index(u, v).unwrap();
        if su != sv {
            prop_assert!(seen.contains(&(su, e)), "edge {u}-{v} missing from {su}'s halo");
            prop_assert!(seen.contains(&(sv, e)), "edge {u}-{v} missing from {sv}'s halo");
        } else {
            prop_assert!(!seen.contains(&(su, e)), "intra-shard edge {u}-{v} in halo");
        }
    }

    // 4. Boundary classification and shard adjacency match the edges.
    for v in topo.nodes() {
        let mut expect: Vec<u32> = topo
            .neighbors(v)
            .iter()
            .map(|&w| p.shard_of(w) as u32)
            .filter(|&s| s as usize != p.shard_of(v))
            .collect();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(p.adjacent_shards(v), &expect[..]);
        prop_assert_eq!(p.is_boundary(v), !expect.is_empty());
    }
    let per_shard: usize = (0..k_eff).map(|s| p.boundary_count(s)).sum();
    prop_assert_eq!(per_shard, p.boundary_total());
    for s in 0..k_eff {
        prop_assert_eq!(p.interior_count(s) + p.boundary_count(s), p.len(s));
    }

    // 5. Deterministic: a second build is identical in every observable.
    let q = Partition::new(topo, k);
    for s in 0..k_eff {
        prop_assert_eq!(p.range(s), q.range(s));
        prop_assert_eq!(p.halo(s), q.halo(s));
    }
    for v in topo.nodes() {
        prop_assert_eq!(p.shard_of(v), q.shard_of(v));
        prop_assert_eq!(p.is_boundary(v), q.is_boundary(v));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partition_invariants_hold(
        family in 0u8..4,
        n in 2usize..48,
        k in 1usize..60,
        seed in 0u64..1000,
    ) {
        let topo = build_topology(family, n, seed);
        check_partition(&topo, k);
    }

    #[test]
    fn torus_partitions_stay_banded(side in 2usize..10, k in 1usize..12) {
        // On a row-major torus every shard is a band of consecutive rows
        // (plus a partial row); interior nodes only exist when a shard
        // spans at least 3 full rows.
        let topo = Topology::torus(&[side, side]);
        check_partition(&topo, k);
        let p = Partition::new(&topo, k);
        for s in 0..p.shard_count() {
            let (lo, hi) = p.range(s);
            for v in lo..hi {
                let row = v as usize / side;
                let first_row = lo as usize / side;
                let last_row = (hi as usize - 1) / side;
                prop_assert!((first_row..=last_row).contains(&row));
            }
        }
    }
}
