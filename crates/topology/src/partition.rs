//! Deterministic spatial partitioning of a [`Topology`] into `K`
//! contiguous shards — the domain decomposition under the sharded tick
//! pipeline in `pp-sim` (see `docs/adr/ADR-004-sharded-ticks.md`).
//!
//! Node ids of every generated family are spatially coherent (meshes and
//! tori are row-major, hypercubes Gray-code-adjacent), so splitting the id
//! range `0..n` into `K` contiguous, balanced intervals yields shards whose
//! cross-shard surface is small: on a `d`-dimensional torus a shard is a
//! band of consecutive rows and only its first and last row touch other
//! shards. The partition classifies every node as *interior* (all
//! neighbours in the same shard) or *boundary*, and records the **halo
//! map**: for each shard, the cross-shard edges through which the rest of
//! the system can observe or perturb it. The halo is what makes shard-level
//! activity tracking exact — a height change at node `v` can only affect
//! decisions in `v`'s own shard and in the shards listed in
//! [`Partition::adjacent_shards`]`(v)`.
//!
//! The split is a pure function of `(node count, K, edge structure)`:
//! no RNG, no tie-breaking — two calls always produce the identical layout,
//! which the sharded engine's determinism argument relies on.

use crate::graph::{EdgeId, NodeId, Topology};

/// One cross-shard edge as seen from a particular shard: the undirected
/// edge id plus which endpoint is ours (`local`) and which is the remote
/// halo node. Every cross-shard edge appears in exactly two halo lists,
/// once per side, with `local`/`remote` swapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaloEdge {
    /// Stable id of the crossing edge.
    pub edge: EdgeId,
    /// The endpoint inside the owning shard.
    pub local: NodeId,
    /// The endpoint in the other shard.
    pub remote: NodeId,
}

/// A deterministic split of a topology's nodes into `K` contiguous shards
/// with interior/boundary classification and per-shard halo maps.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Shard `s` owns nodes `ranges[s].0 .. ranges[s].1`.
    ranges: Vec<(u32, u32)>,
    /// Node id → owning shard.
    node_shard: Vec<u32>,
    /// Whether the node has at least one neighbour in another shard.
    boundary: Vec<bool>,
    /// Per shard: its cross-shard edges, sorted by edge id.
    halos: Vec<Vec<HaloEdge>>,
    /// Per node: the *other* shards containing at least one neighbour
    /// (empty for interior nodes), sorted ascending.
    adjacent: Vec<Vec<u32>>,
    /// Total boundary nodes over all shards.
    boundary_total: usize,
}

impl Partition {
    /// Splits `topo` into `k` shards (clamped to `1..=node_count`, so every
    /// shard is non-empty). Shard sizes differ by at most one: the first
    /// `n % k` shards get `⌈n/k⌉` nodes, the rest `⌊n/k⌋`.
    pub fn new(topo: &Topology, k: usize) -> Self {
        let n = topo.node_count();
        let k = k.clamp(1, n.max(1));
        let (base, extra) = (n / k, n % k);
        let mut ranges = Vec::with_capacity(k);
        let mut node_shard = vec![0u32; n];
        let mut start = 0u32;
        for s in 0..k {
            let len = base + usize::from(s < extra);
            let end = start + len as u32;
            for v in start..end {
                node_shard[v as usize] = s as u32;
            }
            ranges.push((start, end));
            start = end;
        }
        debug_assert_eq!(start as usize, n, "ranges must cover every node");

        let mut boundary = vec![false; n];
        let mut halos = vec![Vec::new(); k];
        let mut adjacent = vec![Vec::new(); n];
        for (e, &(u, v)) in topo.edge_slice().iter().enumerate() {
            let (su, sv) = (node_shard[u.idx()], node_shard[v.idx()]);
            if su == sv {
                continue;
            }
            let edge = EdgeId(e as u32);
            boundary[u.idx()] = true;
            boundary[v.idx()] = true;
            halos[su as usize].push(HaloEdge { edge, local: u, remote: v });
            halos[sv as usize].push(HaloEdge { edge, local: v, remote: u });
            let au = &mut adjacent[u.idx()];
            if let Err(pos) = au.binary_search(&sv) {
                au.insert(pos, sv);
            }
            let av = &mut adjacent[v.idx()];
            if let Err(pos) = av.binary_search(&su) {
                av.insert(pos, su);
            }
        }
        // Edge iteration is in edge-id order, so the halo lists already are.
        debug_assert!(halos.iter().all(|h| h.windows(2).all(|w| w[0].edge < w[1].edge)));
        let boundary_total = boundary.iter().filter(|&&b| b).count();
        Partition { ranges, node_shard, boundary, halos, adjacent, boundary_total }
    }

    /// Number of shards `K`.
    pub fn shard_count(&self) -> usize {
        self.ranges.len()
    }

    /// The `[start, end)` node-id range owned by shard `s`.
    #[inline]
    pub fn range(&self, s: usize) -> (u32, u32) {
        self.ranges[s]
    }

    /// Number of nodes in shard `s`.
    pub fn len(&self, s: usize) -> usize {
        let (lo, hi) = self.ranges[s];
        (hi - lo) as usize
    }

    /// Whether the partition is over an empty topology.
    pub fn is_empty(&self) -> bool {
        self.node_shard.is_empty()
    }

    /// The shard owning node `v`.
    #[inline]
    pub fn shard_of(&self, v: NodeId) -> usize {
        self.node_shard[v.idx()] as usize
    }

    /// Whether `v` has a neighbour in another shard.
    #[inline]
    pub fn is_boundary(&self, v: NodeId) -> bool {
        self.boundary[v.idx()]
    }

    /// The other shards containing at least one neighbour of `v` (sorted,
    /// deduplicated; empty for interior nodes). These are exactly the
    /// shards whose decisions can observe `v`'s height.
    #[inline]
    pub fn adjacent_shards(&self, v: NodeId) -> &[u32] {
        &self.adjacent[v.idx()]
    }

    /// Shard `s`'s cross-shard edges, sorted by edge id.
    pub fn halo(&self, s: usize) -> &[HaloEdge] {
        &self.halos[s]
    }

    /// Boundary nodes in shard `s`.
    pub fn boundary_count(&self, s: usize) -> usize {
        let (lo, hi) = self.ranges[s];
        (lo..hi).filter(|&v| self.boundary[v as usize]).count()
    }

    /// Interior nodes in shard `s`.
    pub fn interior_count(&self, s: usize) -> usize {
        self.len(s) - self.boundary_count(s)
    }

    /// Total boundary nodes across all shards.
    pub fn boundary_total(&self) -> usize {
        self.boundary_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_has_no_boundary() {
        let topo = Topology::torus(&[4, 4]);
        let p = Partition::new(&topo, 1);
        assert_eq!(p.shard_count(), 1);
        assert_eq!(p.range(0), (0, 16));
        assert_eq!(p.boundary_total(), 0);
        assert!(p.halo(0).is_empty());
        for v in topo.nodes() {
            assert!(!p.is_boundary(v));
            assert!(p.adjacent_shards(v).is_empty());
        }
    }

    #[test]
    fn balanced_contiguous_ranges() {
        let topo = Topology::ring(10);
        let p = Partition::new(&topo, 3);
        assert_eq!(p.range(0), (0, 4)); // 10 = 4 + 3 + 3
        assert_eq!(p.range(1), (4, 7));
        assert_eq!(p.range(2), (7, 10));
        for s in 0..3 {
            let (lo, hi) = p.range(s);
            for v in lo..hi {
                assert_eq!(p.shard_of(NodeId(v)), s);
            }
        }
    }

    #[test]
    fn k_clamps_to_node_count() {
        let topo = Topology::ring(4);
        let p = Partition::new(&topo, 99);
        assert_eq!(p.shard_count(), 4);
        for s in 0..4 {
            assert_eq!(p.len(s), 1);
        }
        let p0 = Partition::new(&topo, 0);
        assert_eq!(p0.shard_count(), 1);
    }

    #[test]
    fn torus_band_boundary_is_two_rows() {
        // 8×8 torus, K=4: each shard is 2 full rows; every node's up/down
        // neighbours are in adjacent bands, so every node is boundary.
        let topo = Topology::torus(&[8, 8]);
        let p = Partition::new(&topo, 4);
        assert_eq!(p.boundary_total(), 64);
        // K=2: each shard is 4 rows, the 2 inner rows are interior.
        let p2 = Partition::new(&topo, 2);
        assert_eq!(p2.boundary_count(0), 16);
        assert_eq!(p2.interior_count(0), 16);
    }

    #[test]
    fn halo_lists_cross_edges_once_per_side() {
        let topo = Topology::torus(&[4, 4]);
        let p = Partition::new(&topo, 4);
        let mut cross = 0;
        for s in 0..p.shard_count() {
            for h in p.halo(s) {
                assert_eq!(p.shard_of(h.local), s);
                assert_ne!(p.shard_of(h.remote), s);
                let (u, v) = topo.edge_endpoints(h.edge);
                assert!((u, v) == (h.local.min(h.remote), h.local.max(h.remote)));
                cross += 1;
            }
        }
        let expect =
            topo.edge_slice().iter().filter(|&&(u, v)| p.shard_of(u) != p.shard_of(v)).count();
        assert_eq!(cross, 2 * expect);
    }

    #[test]
    fn adjacent_shards_match_neighbour_shards() {
        let topo = Topology::torus(&[6, 6]);
        let p = Partition::new(&topo, 5);
        for v in topo.nodes() {
            let mut expect: Vec<u32> = topo
                .neighbors(v)
                .iter()
                .map(|&w| p.shard_of(w) as u32)
                .filter(|&s| s != p.shard_of(v) as u32)
                .collect();
            expect.sort_unstable();
            expect.dedup();
            assert_eq!(p.adjacent_shards(v), &expect[..], "node {v}");
            assert_eq!(p.is_boundary(v), !expect.is_empty());
        }
    }

    #[test]
    fn deterministic_per_topology_and_k() {
        let topo = Topology::random(40, 0.2, 9);
        let a = Partition::new(&topo, 7);
        let b = Partition::new(&topo, 7);
        assert_eq!(a.ranges, b.ranges);
        assert_eq!(a.node_shard, b.node_shard);
        assert_eq!(a.boundary, b.boundary);
        for s in 0..7 {
            assert_eq!(a.halo(s), b.halo(s));
        }
    }

    #[test]
    fn empty_topology_partition() {
        let topo = Topology::from_edges(0, &[]);
        let p = Partition::new(&topo, 4);
        assert_eq!(p.shard_count(), 1);
        assert!(p.is_empty());
        assert_eq!(p.range(0), (0, 0));
        assert_eq!(p.boundary_total(), 0);
    }
}
