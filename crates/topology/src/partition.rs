//! Deterministic spatial partitioning of a [`Topology`] into `K`
//! contiguous shards — the domain decomposition under the sharded tick
//! pipeline in `pp-sim` (see `docs/adr/ADR-004-sharded-ticks.md`).
//!
//! Node ids of every generated family are spatially coherent (meshes and
//! tori are row-major, hypercubes Gray-code-adjacent), so splitting the id
//! range `0..n` into `K` contiguous, balanced intervals yields shards whose
//! cross-shard surface is small: on a `d`-dimensional torus a shard is a
//! band of consecutive rows and only its first and last row touch other
//! shards. The partition classifies every node as *interior* (all
//! neighbours in the same shard) or *boundary*, and records the **halo
//! map**: for each shard, the cross-shard edges through which the rest of
//! the system can observe or perturb it. The halo is what makes shard-level
//! activity tracking exact — a height change at node `v` can only affect
//! decisions in `v`'s own shard and in the shards listed in
//! [`Partition::adjacent_shards`]`(v)`.
//!
//! The split is a pure function of `(node count, K, edge structure)`:
//! no RNG, no tie-breaking — two calls always produce the identical layout,
//! which the sharded engine's determinism argument relies on.

use crate::graph::{EdgeId, NodeId, Topology};

/// One cross-shard edge as seen from a particular shard: the undirected
/// edge id plus which endpoint is ours (`local`) and which is the remote
/// halo node. Every cross-shard edge appears in exactly two halo lists,
/// once per side, with `local`/`remote` swapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaloEdge {
    /// Stable id of the crossing edge.
    pub edge: EdgeId,
    /// The endpoint inside the owning shard.
    pub local: NodeId,
    /// The endpoint in the other shard.
    pub remote: NodeId,
}

/// A deterministic split of a topology's nodes into `K` contiguous shards
/// with interior/boundary classification and per-shard halo maps.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Shard `s` owns nodes `ranges[s].0 .. ranges[s].1`.
    ranges: Vec<(u32, u32)>,
    /// Node id → owning shard.
    node_shard: Vec<u32>,
    /// Whether the node has at least one neighbour in another shard.
    boundary: Vec<bool>,
    /// CSR halo storage: shard `s`'s cross-shard edges (sorted by edge id)
    /// live in `halo_data[halo_off[s] .. halo_off[s + 1]]`. Flat arrays
    /// instead of per-shard `Vec`s: the adaptive engine rebuilds the
    /// partition mid-run, and a narrow-banded layout makes *every* node a
    /// boundary node, so build cost is on the steady-state path.
    halo_off: Vec<u32>,
    halo_data: Vec<HaloEdge>,
    /// CSR adjacency: node `v`'s other-shard neighbours (sorted,
    /// deduplicated) live in `adj_data[adj_off[v] ..][..adj_len[v]]`.
    /// Offsets keep pre-dedup spacing; `adj_len` is the deduped length.
    adj_off: Vec<u32>,
    adj_len: Vec<u32>,
    adj_data: Vec<u32>,
    /// Total boundary nodes over all shards.
    boundary_total: usize,
    /// Whether the edge-indexed views (boundary/halo/adjacency) match
    /// `ranges`. [`Partition::from_ranges`] always builds them;
    /// [`Partition::refit`] skips the O(E) rebuild and clears this flag,
    /// after which the edge-view accessors panic instead of answering from
    /// a stale layout.
    edge_views_valid: bool,
}

/// The uniform `±1`-balanced contiguous split of `0..n` into `k` intervals
/// (`k` clamped to `1..=n.max(1)`): the first `n % k` intervals get
/// `⌈n/k⌉` nodes, the rest `⌊n/k⌋`. This is the layout [`Partition::new`]
/// builds and the zero-information fallback of [`RepartitionPolicy`].
pub fn uniform_ranges(n: usize, k: usize) -> Vec<(u32, u32)> {
    let k = k.clamp(1, n.max(1));
    let (base, extra) = (n / k, n % k);
    let mut ranges = Vec::with_capacity(k);
    let mut start = 0u32;
    for s in 0..k {
        let len = base + usize::from(s < extra);
        let end = start + len as u32;
        ranges.push((start, end));
        start = end;
    }
    debug_assert_eq!(start as usize, n, "ranges must cover every node");
    ranges
}

impl Partition {
    /// Splits `topo` into `k` shards (clamped to `1..=node_count`, so every
    /// shard is non-empty). Shard sizes differ by at most one: the first
    /// `n % k` shards get `⌈n/k⌉` nodes, the rest `⌊n/k⌋`.
    pub fn new(topo: &Topology, k: usize) -> Self {
        Partition::from_ranges(topo, uniform_ranges(topo.node_count(), k))
    }

    /// Builds the partition for an explicit contiguous interval layout.
    /// `ranges` must be ascending, gap-free, cover exactly `0..node_count`,
    /// and (unless the topology is empty) contain no empty shard — the same
    /// invariants [`uniform_ranges`] and [`RepartitionPolicy`] guarantee.
    /// The boundary/halo classification is recomputed from scratch; it is a
    /// pure function of `(ranges, edge structure)`, so two calls with equal
    /// ranges produce identical layouts.
    pub fn from_ranges(topo: &Topology, ranges: Vec<(u32, u32)>) -> Self {
        let n = topo.node_count();
        assert!(!ranges.is_empty(), "a partition needs at least one shard");
        assert_eq!(ranges[0].0, 0, "ranges must start at node 0");
        assert_eq!(ranges[ranges.len() - 1].1 as usize, n, "ranges must end at node count");
        let mut node_shard = vec![0u32; n];
        for (s, &(lo, hi)) in ranges.iter().enumerate() {
            assert!(lo < hi || n == 0, "shard {s} is empty");
            assert!(s == 0 || ranges[s - 1].1 == lo, "shard {s} leaves a gap");
            for v in lo..hi {
                node_shard[v as usize] = s as u32;
            }
        }
        let k = ranges.len();

        // Two-pass CSR build: count cross-edge slots per shard and per node,
        // prefix into offsets, then fill with cursors. Edge iteration is in
        // edge-id order, so each halo bucket comes out edge-sorted.
        let mut boundary = vec![false; n];
        let mut halo_off = vec![0u32; k + 1];
        let mut adj_off = vec![0u32; n + 1];
        for &(u, v) in topo.edge_slice() {
            let (su, sv) = (node_shard[u.idx()], node_shard[v.idx()]);
            if su == sv {
                continue;
            }
            boundary[u.idx()] = true;
            boundary[v.idx()] = true;
            halo_off[su as usize + 1] += 1;
            halo_off[sv as usize + 1] += 1;
            adj_off[u.idx() + 1] += 1;
            adj_off[v.idx() + 1] += 1;
        }
        for s in 0..k {
            halo_off[s + 1] += halo_off[s];
        }
        for v in 0..n {
            adj_off[v + 1] += adj_off[v];
        }
        let nil = HaloEdge { edge: EdgeId(0), local: NodeId(0), remote: NodeId(0) };
        let mut halo_data = vec![nil; halo_off[k] as usize];
        let mut adj_data = vec![0u32; adj_off[n] as usize];
        let mut halo_cur: Vec<u32> = halo_off[..k].to_vec();
        let mut adj_cur: Vec<u32> = adj_off[..n].to_vec();
        for (e, &(u, v)) in topo.edge_slice().iter().enumerate() {
            let (su, sv) = (node_shard[u.idx()], node_shard[v.idx()]);
            if su == sv {
                continue;
            }
            let edge = EdgeId(e as u32);
            halo_data[halo_cur[su as usize] as usize] = HaloEdge { edge, local: u, remote: v };
            halo_cur[su as usize] += 1;
            halo_data[halo_cur[sv as usize] as usize] = HaloEdge { edge, local: v, remote: u };
            halo_cur[sv as usize] += 1;
            adj_data[adj_cur[u.idx()] as usize] = sv;
            adj_cur[u.idx()] += 1;
            adj_data[adj_cur[v.idx()] as usize] = su;
            adj_cur[v.idx()] += 1;
        }
        // Sort + dedup each node's adjacency bucket in place; offsets keep
        // the pre-dedup spacing, `adj_len` records the deduped length.
        let mut adj_len = vec![0u32; n];
        for v in 0..n {
            let bucket = &mut adj_data[adj_off[v] as usize..adj_off[v + 1] as usize];
            bucket.sort_unstable();
            let mut len = 0;
            for i in 0..bucket.len() {
                if i == 0 || bucket[i] != bucket[i - 1] {
                    bucket[len] = bucket[i];
                    len += 1;
                }
            }
            adj_len[v] = len as u32;
        }
        debug_assert!((0..k).all(|s| {
            let h = &halo_data[halo_off[s] as usize..halo_off[s + 1] as usize];
            h.windows(2).all(|w| w[0].edge < w[1].edge)
        }));
        let boundary_total = boundary.iter().filter(|&&b| b).count();
        Partition {
            ranges,
            node_shard,
            boundary,
            halo_off,
            halo_data,
            adj_off,
            adj_len,
            adj_data,
            boundary_total,
            edge_views_valid: true,
        }
    }

    /// Swaps in a new interval layout *without* rebuilding the edge-indexed
    /// views — the adaptive engine's fire path, where a rebuild would cost
    /// O(E) per repartition for views the sweep never reads (it derives
    /// shard adjacency from the topology directly). Only `ranges`,
    /// `node_shard` and the interval accessors stay valid; `is_boundary`,
    /// `adjacent_shards`, `halo` and the boundary counts panic until the
    /// partition is rebuilt with [`Partition::from_ranges`]. `ranges` must
    /// satisfy the same invariants as in `from_ranges` and keep the shard
    /// count unchanged.
    pub fn refit(&mut self, ranges: Vec<(u32, u32)>) {
        let n = self.node_shard.len();
        assert_eq!(ranges.len(), self.ranges.len(), "refit keeps the shard count");
        assert_eq!(ranges[0].0, 0, "ranges must start at node 0");
        assert_eq!(ranges[ranges.len() - 1].1 as usize, n, "ranges must end at node count");
        for (s, &(lo, hi)) in ranges.iter().enumerate() {
            assert!(lo < hi || n == 0, "shard {s} is empty");
            assert!(s == 0 || ranges[s - 1].1 == lo, "shard {s} leaves a gap");
            for v in lo..hi {
                self.node_shard[v as usize] = s as u32;
            }
        }
        self.ranges = ranges;
        self.edge_views_valid = false;
    }

    /// Whether the edge-indexed views (boundary/halo/adjacency) are in sync
    /// with `ranges` — `false` after a [`Partition::refit`].
    pub fn edge_views_valid(&self) -> bool {
        self.edge_views_valid
    }

    /// Number of shards `K`.
    pub fn shard_count(&self) -> usize {
        self.ranges.len()
    }

    /// The `[start, end)` node-id range owned by shard `s`.
    #[inline]
    pub fn range(&self, s: usize) -> (u32, u32) {
        self.ranges[s]
    }

    /// Number of nodes in shard `s`.
    pub fn len(&self, s: usize) -> usize {
        let (lo, hi) = self.ranges[s];
        (hi - lo) as usize
    }

    /// Whether the partition is over an empty topology.
    pub fn is_empty(&self) -> bool {
        self.node_shard.is_empty()
    }

    /// The shard owning node `v`.
    #[inline]
    pub fn shard_of(&self, v: NodeId) -> usize {
        self.node_shard[v.idx()] as usize
    }

    /// Whether `v` has a neighbour in another shard.
    #[inline]
    pub fn is_boundary(&self, v: NodeId) -> bool {
        assert!(self.edge_views_valid, "edge views stale after refit");
        self.boundary[v.idx()]
    }

    /// The other shards containing at least one neighbour of `v` (sorted,
    /// deduplicated; empty for interior nodes). These are exactly the
    /// shards whose decisions can observe `v`'s height.
    #[inline]
    pub fn adjacent_shards(&self, v: NodeId) -> &[u32] {
        assert!(self.edge_views_valid, "edge views stale after refit");
        let lo = self.adj_off[v.idx()] as usize;
        &self.adj_data[lo..lo + self.adj_len[v.idx()] as usize]
    }

    /// Shard `s`'s cross-shard edges, sorted by edge id.
    pub fn halo(&self, s: usize) -> &[HaloEdge] {
        assert!(self.edge_views_valid, "edge views stale after refit");
        &self.halo_data[self.halo_off[s] as usize..self.halo_off[s + 1] as usize]
    }

    /// Boundary nodes in shard `s`.
    pub fn boundary_count(&self, s: usize) -> usize {
        assert!(self.edge_views_valid, "edge views stale after refit");
        let (lo, hi) = self.ranges[s];
        (lo..hi).filter(|&v| self.boundary[v as usize]).count()
    }

    /// Interior nodes in shard `s`.
    pub fn interior_count(&self, s: usize) -> usize {
        self.len(s) - self.boundary_count(s)
    }

    /// Total boundary nodes across all shards.
    pub fn boundary_total(&self) -> usize {
        assert!(self.edge_views_valid, "edge views stale after refit");
        self.boundary_total
    }

    /// All shard ranges, ascending and gap-free: shard `s` owns
    /// `ranges()[s].0 .. ranges()[s].1`.
    pub fn ranges(&self) -> &[(u32, u32)] {
        &self.ranges
    }
}

/// Deterministic online repartitioning: given the measured per-shard load
/// of the current layout, compute a new contiguous interval layout whose
/// per-shard load is (approximately) equalized — a 1-D weighted prefix-sum
/// split in the spirit of the rectangular partitioners of Saule et al.
/// (arXiv:1104.2566) and the runtime repartitioners surveyed by Eibl &
/// Rüde (arXiv:1808.00829), specialized to the engine's contiguous node-id
/// bands.
///
/// The policy is a pure function — no RNG, no tie-breaking, no state — so
/// an adaptive engine repartitions identically on every `(shards, threads)`
/// execution layout; that is what keeps adaptive runs byte-identical
/// across layouts and across checkpoint/resume.
#[derive(Debug, Clone, Copy, Default)]
pub struct RepartitionPolicy;

impl RepartitionPolicy {
    /// Splits `0..weights.len()` into `k` contiguous intervals whose weight
    /// sums are as equal as the prefix-sum quantile cut allows. Every
    /// interval is non-empty (`k` is clamped to `1..=n.max(1)`); interval
    /// `i` ends at the first prefix `P[j] ≥ W·i/k`, clamped so the
    /// remaining intervals still fit. Non-finite or negative weights count
    /// as zero; an all-zero vector falls back to [`uniform_ranges`].
    pub fn split_weights(weights: &[f64], k: usize) -> Vec<(u32, u32)> {
        let n = weights.len();
        let k = k.clamp(1, n.max(1));
        // Left-to-right prefix sums: deterministic fp association.
        let mut prefix = Vec::with_capacity(n + 1);
        let mut acc = 0.0f64;
        prefix.push(acc);
        for &w in weights {
            acc += if w.is_finite() && w > 0.0 { w } else { 0.0 };
            prefix.push(acc);
        }
        let total = acc;
        if total <= 0.0 {
            return uniform_ranges(n, k);
        }
        let mut ranges = Vec::with_capacity(k);
        let mut start = 0usize;
        for i in 1..k {
            let target = total * i as f64 / k as f64;
            let cut = prefix.partition_point(|&p| p < target);
            // Keep this shard and all remaining shards non-empty.
            let cut = cut.clamp(start + 1, n - (k - i));
            ranges.push((start as u32, cut as u32));
            start = cut;
        }
        ranges.push((start as u32, n as u32));
        ranges
    }

    /// Max/mean weight skew of a layout under per-node `weights` (1.0 is
    /// perfectly balanced; 0.0 when the total weight is zero).
    pub fn range_skew(ranges: &[(u32, u32)], weights: &[f64]) -> f64 {
        let sum_in = |&(lo, hi): &(u32, u32)| -> f64 {
            weights[lo as usize..hi as usize]
                .iter()
                .map(|&w| if w.is_finite() && w > 0.0 { w } else { 0.0 })
                .sum()
        };
        let loads: Vec<f64> = ranges.iter().map(sum_in).collect();
        let total: f64 = loads.iter().sum();
        if total <= 0.0 || loads.is_empty() {
            return 0.0;
        }
        let mean = total / loads.len() as f64;
        loads.iter().fold(0.0f64, |m, &l| m.max(l)) / mean
    }

    /// Proposes a rebalanced layout for `old` given its measured per-shard
    /// loads (one entry per shard, e.g. nodes evaluated since the last
    /// check). Each shard's load is spread uniformly over its nodes,
    /// making the per-node weight piecewise constant over the old shards —
    /// so the whole computation (blend, quantile cut, skew comparison)
    /// runs on the `k` segments directly in O(k), never materializing a
    /// per-node weight vector. The cuts are the same prefix-sum quantiles
    /// [`Self::split_weights`] computes, evaluated in closed form per
    /// segment. Returns `None` — keep the current layout — when the loads
    /// carry no information (all zero) or when the candidate does not
    /// improve the skew by at least 10% under those same weights, so a
    /// proposal is never worse than the layout it replaces and measurement
    /// jitter alone never churns the layout.
    pub fn rebalance(old: &Partition, shard_loads: &[f64]) -> Option<Vec<(u32, u32)>> {
        let k = old.shard_count();
        assert_eq!(shard_loads.len(), k, "one load entry per shard");
        let n = old.node_shard.len();
        let clean = |l: f64| if l.is_finite() && l > 0.0 { l } else { 0.0 };
        let total_load: f64 = shard_loads.iter().map(|&l| clean(l)).sum();
        if n == 0 || total_load <= 0.0 {
            return None;
        }
        // Cut on a 50/50 blend of measured load and uniform mass. Pure
        // load-equalization hands the quiescent region a handful of
        // enormous shards, and the moment the active frontier leaks one
        // node into such a shard the whole thing is swept — the uniform
        // floor caps any shard's width at ~2n/k while still shrinking hot
        // shards toward their measured load share.
        let floor = total_load / n as f64;
        let seg_w: Vec<f64> =
            (0..k).map(|s| clean(shard_loads[s]) / old.len(s) as f64 + floor).collect();
        // Piecewise-linear prefix mass over the segments.
        let mut seg_prefix = Vec::with_capacity(k + 1);
        let mut acc = 0.0f64;
        seg_prefix.push(acc);
        for (s, &w) in seg_w.iter().enumerate() {
            acc += w * old.len(s) as f64;
            seg_prefix.push(acc);
        }
        let total = acc;
        // Interval `i` ends at the first node whose prefix mass reaches
        // `total·i/k`, clamped non-empty — split_weights' quantile cut,
        // located by walking the segments instead of a per-node prefix.
        let mut candidate = Vec::with_capacity(k);
        let mut start = 0usize;
        let mut seg = 0usize;
        for i in 1..k {
            let target = total * i as f64 / k as f64;
            while seg + 1 < k && seg_prefix[seg + 1] < target {
                seg += 1;
            }
            let (lo, hi) = old.range(seg);
            let within = if seg_w[seg] > 0.0 {
                ((target - seg_prefix[seg]) / seg_w[seg]).ceil().max(0.0) as usize
            } else {
                0
            };
            let cut = (lo as usize + within.min((hi - lo) as usize)).clamp(start + 1, n - (k - i));
            candidate.push((start as u32, cut as u32));
            start = cut;
        }
        candidate.push((start as u32, n as u32));
        if candidate == old.ranges {
            return None;
        }
        // Hysteresis: measured loads jitter from round to round, and the
        // prefix cut amplifies a one-node wobble into a layout change. A
        // layout swap is not free (RNG reshuffle, a full sweep of the
        // carried-over activity), so only adopt cuts that beat the
        // incumbent by a clear margin. Skews share the mean `total/k`, so
        // comparing the max per-interval masses is the same comparison.
        let old_max = (0..k).fold(0.0f64, |m, s| m.max(seg_w[s] * old.len(s) as f64));
        let mut new_max = 0.0f64;
        let mut s = 0usize;
        for &(lo, hi) in &candidate {
            let mut mass = 0.0f64;
            let mut pos = lo;
            while pos < hi {
                while old.ranges[s].1 <= pos {
                    s += 1;
                }
                let end = old.ranges[s].1.min(hi);
                mass += f64::from(end - pos) * seg_w[s];
                pos = end;
            }
            new_max = new_max.max(mass);
        }
        (new_max < 0.9 * old_max).then_some(candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_has_no_boundary() {
        let topo = Topology::torus(&[4, 4]);
        let p = Partition::new(&topo, 1);
        assert_eq!(p.shard_count(), 1);
        assert_eq!(p.range(0), (0, 16));
        assert_eq!(p.boundary_total(), 0);
        assert!(p.halo(0).is_empty());
        for v in topo.nodes() {
            assert!(!p.is_boundary(v));
            assert!(p.adjacent_shards(v).is_empty());
        }
    }

    #[test]
    fn balanced_contiguous_ranges() {
        let topo = Topology::ring(10);
        let p = Partition::new(&topo, 3);
        assert_eq!(p.range(0), (0, 4)); // 10 = 4 + 3 + 3
        assert_eq!(p.range(1), (4, 7));
        assert_eq!(p.range(2), (7, 10));
        for s in 0..3 {
            let (lo, hi) = p.range(s);
            for v in lo..hi {
                assert_eq!(p.shard_of(NodeId(v)), s);
            }
        }
    }

    #[test]
    fn k_clamps_to_node_count() {
        let topo = Topology::ring(4);
        let p = Partition::new(&topo, 99);
        assert_eq!(p.shard_count(), 4);
        for s in 0..4 {
            assert_eq!(p.len(s), 1);
        }
        let p0 = Partition::new(&topo, 0);
        assert_eq!(p0.shard_count(), 1);
    }

    #[test]
    fn torus_band_boundary_is_two_rows() {
        // 8×8 torus, K=4: each shard is 2 full rows; every node's up/down
        // neighbours are in adjacent bands, so every node is boundary.
        let topo = Topology::torus(&[8, 8]);
        let p = Partition::new(&topo, 4);
        assert_eq!(p.boundary_total(), 64);
        // K=2: each shard is 4 rows, the 2 inner rows are interior.
        let p2 = Partition::new(&topo, 2);
        assert_eq!(p2.boundary_count(0), 16);
        assert_eq!(p2.interior_count(0), 16);
    }

    #[test]
    fn halo_lists_cross_edges_once_per_side() {
        let topo = Topology::torus(&[4, 4]);
        let p = Partition::new(&topo, 4);
        let mut cross = 0;
        for s in 0..p.shard_count() {
            for h in p.halo(s) {
                assert_eq!(p.shard_of(h.local), s);
                assert_ne!(p.shard_of(h.remote), s);
                let (u, v) = topo.edge_endpoints(h.edge);
                assert!((u, v) == (h.local.min(h.remote), h.local.max(h.remote)));
                cross += 1;
            }
        }
        let expect =
            topo.edge_slice().iter().filter(|&&(u, v)| p.shard_of(u) != p.shard_of(v)).count();
        assert_eq!(cross, 2 * expect);
    }

    #[test]
    fn adjacent_shards_match_neighbour_shards() {
        let topo = Topology::torus(&[6, 6]);
        let p = Partition::new(&topo, 5);
        for v in topo.nodes() {
            let mut expect: Vec<u32> = topo
                .neighbors(v)
                .iter()
                .map(|&w| p.shard_of(w) as u32)
                .filter(|&s| s != p.shard_of(v) as u32)
                .collect();
            expect.sort_unstable();
            expect.dedup();
            assert_eq!(p.adjacent_shards(v), &expect[..], "node {v}");
            assert_eq!(p.is_boundary(v), !expect.is_empty());
        }
    }

    #[test]
    fn deterministic_per_topology_and_k() {
        let topo = Topology::random(40, 0.2, 9);
        let a = Partition::new(&topo, 7);
        let b = Partition::new(&topo, 7);
        assert_eq!(a.ranges, b.ranges);
        assert_eq!(a.node_shard, b.node_shard);
        assert_eq!(a.boundary, b.boundary);
        for s in 0..7 {
            assert_eq!(a.halo(s), b.halo(s));
        }
    }

    #[test]
    fn empty_topology_partition() {
        let topo = Topology::from_edges(0, &[]);
        let p = Partition::new(&topo, 4);
        assert_eq!(p.shard_count(), 1);
        assert!(p.is_empty());
        assert_eq!(p.range(0), (0, 0));
        assert_eq!(p.boundary_total(), 0);
    }

    #[test]
    fn from_ranges_matches_new_for_uniform_layout() {
        let topo = Topology::torus(&[6, 6]);
        let a = Partition::new(&topo, 5);
        let b = Partition::from_ranges(&topo, uniform_ranges(36, 5));
        assert_eq!(a.ranges, b.ranges);
        assert_eq!(a.node_shard, b.node_shard);
        assert_eq!(a.boundary, b.boundary);
        assert_eq!(a.boundary_total(), b.boundary_total());
        for s in 0..5 {
            assert_eq!(a.halo(s), b.halo(s));
        }
    }

    #[test]
    fn from_ranges_rebuilds_halos_for_skewed_layout() {
        // 4×4 torus split 12 / 2 / 2: the halo/boundary classification must
        // track the explicit ranges, not the uniform split.
        let topo = Topology::torus(&[4, 4]);
        let p = Partition::from_ranges(&topo, vec![(0, 12), (12, 14), (14, 16)]);
        assert_eq!(p.shard_count(), 3);
        assert_eq!(p.len(0), 12);
        assert_eq!(p.shard_of(NodeId(13)), 1);
        for s in 0..3 {
            for h in p.halo(s) {
                assert_eq!(p.shard_of(h.local), s);
                assert_ne!(p.shard_of(h.remote), s);
            }
        }
        // Every node in the two 2-node bands borders another shard.
        for v in 12..16 {
            assert!(p.is_boundary(NodeId(v)));
        }
    }

    #[test]
    #[should_panic(expected = "gap")]
    fn from_ranges_rejects_gaps() {
        let topo = Topology::ring(8);
        Partition::from_ranges(&topo, vec![(0, 3), (4, 8)]);
    }

    #[test]
    fn split_weights_equalizes_a_hotspot() {
        // All weight in the first quarter: the cut must concentrate shards
        // there instead of splitting uniformly.
        let mut w = vec![0.0; 16];
        for x in &mut w[0..4] {
            *x = 1.0;
        }
        let r = RepartitionPolicy::split_weights(&w, 4);
        assert_eq!(r, vec![(0, 1), (1, 2), (2, 3), (3, 16)]);
        // Exact cover, ascending, non-empty.
        assert_eq!(r[0].0, 0);
        assert_eq!(r[r.len() - 1].1, 16);
    }

    #[test]
    fn split_weights_zero_total_is_uniform() {
        let w = vec![0.0; 10];
        assert_eq!(RepartitionPolicy::split_weights(&w, 3), uniform_ranges(10, 3));
        // Negative / non-finite weights count as zero.
        let w = vec![-1.0, f64::NAN, f64::INFINITY, -0.5];
        assert_eq!(RepartitionPolicy::split_weights(&w, 2), uniform_ranges(4, 2));
    }

    #[test]
    fn split_weights_uniform_input_is_uniform_output() {
        let w = vec![2.5; 12];
        assert_eq!(RepartitionPolicy::split_weights(&w, 4), uniform_ranges(12, 4));
    }

    #[test]
    fn rebalance_improves_skew_or_declines() {
        let topo = Topology::torus(&[8, 8]);
        let p = Partition::new(&topo, 4);
        // Hot first shard: rebalance must shrink it.
        let loads = [80.0, 1.0, 1.0, 1.0];
        let ranges = RepartitionPolicy::rebalance(&p, &loads).expect("skewed load repartitions");
        assert!(ranges[0].1 - ranges[0].0 < 16, "hot shard shrinks: {ranges:?}");
        let weights: Vec<f64> = (0..64).map(|v| if v < 16 { 5.0 } else { 1.0 / 16.0 }).collect();
        assert!(
            RepartitionPolicy::range_skew(&ranges, &weights)
                < RepartitionPolicy::range_skew(p.ranges(), &weights)
        );
        // Balanced load: no proposal.
        assert_eq!(RepartitionPolicy::rebalance(&p, &[3.0, 3.0, 3.0, 3.0]), None);
        // Zero load: no proposal.
        assert_eq!(RepartitionPolicy::rebalance(&p, &[0.0; 4]), None);
    }

    #[test]
    fn rebalance_is_deterministic() {
        let topo = Topology::torus(&[16, 16]);
        let p = Partition::new(&topo, 8);
        let loads: Vec<f64> = (0..8).map(|s| ((s * 37) % 11) as f64 + 0.25).collect();
        let a = RepartitionPolicy::rebalance(&p, &loads);
        let b = RepartitionPolicy::rebalance(&p, &loads);
        assert_eq!(a, b);
    }
}
