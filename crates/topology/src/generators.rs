//! Constructors for the standard multiprocessor interconnection topologies
//! the load-balancing literature evaluates on (mesh, torus, hypercube, …).

use crate::graph::{NodeId, Topology, TopologyKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Converts mixed-radix coordinates to a linear node index.
fn coords_to_index(coords: &[usize], dims: &[usize]) -> usize {
    let mut idx = 0;
    for (c, d) in coords.iter().zip(dims) {
        idx = idx * d + c;
    }
    idx
}

/// Converts a linear node index to mixed-radix coordinates.
pub(crate) fn index_to_coords(mut idx: usize, dims: &[usize]) -> Vec<usize> {
    let mut coords = vec![0; dims.len()];
    for i in (0..dims.len()).rev() {
        coords[i] = idx % dims[i];
        idx /= dims[i];
    }
    coords
}

impl Topology {
    /// k-ary n-dimensional mesh: nodes at integer coordinates, links between
    /// coordinate neighbours, no wraparound. `dims` gives the extent per
    /// dimension, e.g. `&[8, 8]` for an 8×8 mesh.
    pub fn mesh(dims: &[usize]) -> Topology {
        Self::grid(dims, false, TopologyKind::Mesh(dims.to_vec()))
    }

    /// k-ary n-dimensional torus: a mesh with wraparound links.
    pub fn torus(dims: &[usize]) -> Topology {
        Self::grid(dims, true, TopologyKind::Torus(dims.to_vec()))
    }

    fn grid(dims: &[usize], wrap: bool, kind: TopologyKind) -> Topology {
        assert!(!dims.is_empty(), "need at least one dimension");
        assert!(dims.iter().all(|&d| d >= 1), "dimensions must be ≥ 1");
        let n: usize = dims.iter().product();
        let mut adj = vec![Vec::new(); n];
        for (idx, list) in adj.iter_mut().enumerate() {
            let coords = index_to_coords(idx, dims);
            for (axis, &extent) in dims.iter().enumerate() {
                if extent < 2 {
                    continue;
                }
                let mut fwd = coords.clone();
                if coords[axis] + 1 < extent {
                    fwd[axis] += 1;
                    list.push(NodeId(coords_to_index(&fwd, dims) as u32));
                } else if wrap && extent > 2 {
                    fwd[axis] = 0;
                    list.push(NodeId(coords_to_index(&fwd, dims) as u32));
                } else if wrap && extent == 2 && coords[axis] + 1 < extent {
                    // extent-2 wraparound duplicates the mesh edge; skip.
                }
                let mut back = coords.clone();
                if coords[axis] > 0 {
                    back[axis] -= 1;
                    list.push(NodeId(coords_to_index(&back, dims) as u32));
                } else if wrap && extent > 2 {
                    back[axis] = extent - 1;
                    list.push(NodeId(coords_to_index(&back, dims) as u32));
                }
            }
        }
        Topology::from_adjacency(kind, adj)
    }

    /// n-dimensional hypercube with `2^dim` nodes; node `u` links to `u ^ (1<<b)`.
    pub fn hypercube(dim: usize) -> Topology {
        assert!(dim <= 20, "hypercube dimension unreasonably large");
        let n = 1usize << dim;
        let mut adj = vec![Vec::new(); n];
        for (u, list) in adj.iter_mut().enumerate() {
            for b in 0..dim {
                list.push(NodeId((u ^ (1 << b)) as u32));
            }
        }
        Topology::from_adjacency(TopologyKind::Hypercube(dim), adj)
    }

    /// Simple cycle of `n ≥ 3` nodes.
    pub fn ring(n: usize) -> Topology {
        assert!(n >= 3, "a ring needs at least 3 nodes");
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        let mut t = Topology::from_edges(n, &edges);
        t.set_kind(TopologyKind::Ring);
        t
    }

    /// Star: node 0 is the hub, all others are leaves.
    pub fn star(n: usize) -> Topology {
        assert!(n >= 2, "a star needs at least 2 nodes");
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (0, i)).collect();
        let mut t = Topology::from_edges(n, &edges);
        t.set_kind(TopologyKind::Star);
        t
    }

    /// Complete graph on `n` nodes.
    pub fn complete(n: usize) -> Topology {
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                edges.push((u, v));
            }
        }
        let mut t = Topology::from_edges(n, &edges);
        t.set_kind(TopologyKind::Complete);
        t
    }

    /// Balanced tree: root 0, each internal node has `arity` children, down
    /// to the given `depth` (depth 0 = a single root).
    pub fn tree(arity: usize, depth: usize) -> Topology {
        assert!(arity >= 1, "arity must be ≥ 1");
        let mut edges = Vec::new();
        let mut level: Vec<u32> = vec![0];
        let mut next_id = 1u32;
        for _ in 0..depth {
            let mut next_level = Vec::new();
            for &parent in &level {
                for _ in 0..arity {
                    edges.push((parent, next_id));
                    next_level.push(next_id);
                    next_id += 1;
                }
            }
            level = next_level;
        }
        let mut t = Topology::from_edges(next_id as usize, &edges);
        t.set_kind(TopologyKind::Tree(arity));
        t
    }

    /// Connected random graph: a random spanning tree (guaranteeing
    /// connectivity) plus each remaining pair linked with probability `p`.
    /// Deterministic for a given `seed`.
    pub fn random(n: usize, p: f64, seed: u64) -> Topology {
        assert!(n >= 2, "need at least 2 nodes");
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        // Random spanning tree: attach each node to a random earlier node.
        for v in 1..n as u32 {
            let u = rng.gen_range(0..v);
            edges.push((u, v));
        }
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen_bool(p) {
                    edges.push((u, v));
                }
            }
        }
        let mut t = Topology::from_edges(n, &edges);
        t.set_kind(TopologyKind::Random);
        t
    }

    /// Barabási–Albert preferential-attachment scale-free graph: a
    /// complete seed clique on `m + 1` nodes, then each new node attaches
    /// to `m` distinct existing nodes chosen degree-proportionally (by
    /// uniform sampling from the running edge-endpoint list, the classic
    /// BA construction). Connected by construction and deterministic for
    /// a given `seed`.
    pub fn scale_free(n: usize, m: usize, seed: u64) -> Topology {
        assert!(m >= 1, "attachment count m must be ≥ 1");
        assert!(n > m, "need more than m nodes");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges: Vec<(u32, u32)> = Vec::new();
        // Every edge contributes both endpoints; sampling uniformly from
        // this list is sampling nodes with probability ∝ degree.
        let mut endpoints: Vec<u32> = Vec::new();
        let m0 = m + 1;
        for u in 0..m0.min(n) as u32 {
            for v in (u + 1)..m0.min(n) as u32 {
                edges.push((u, v));
                endpoints.push(u);
                endpoints.push(v);
            }
        }
        let mut targets: Vec<u32> = Vec::with_capacity(m);
        for v in m0 as u32..n as u32 {
            targets.clear();
            while targets.len() < m {
                let u = endpoints[rng.gen_range(0..endpoints.len())];
                if !targets.contains(&u) {
                    targets.push(u);
                }
            }
            for &u in targets.iter() {
                edges.push((u, v));
                endpoints.push(u);
                endpoints.push(v);
            }
        }
        let mut t = Topology::from_edges(n, &edges);
        t.set_kind(TopologyKind::ScaleFree(m));
        t
    }

    /// Random geometric graph: `n` seeded points uniform in the unit
    /// square, every pair within Euclidean distance `radius` linked, then
    /// deterministically augmented to connectivity (while more than one
    /// component remains, the globally closest inter-component node pair
    /// — ties broken by node id — gains an edge). Deterministic for a
    /// given `seed` and always connected.
    pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Topology {
        assert!(n >= 2, "need at least 2 nodes");
        assert!(radius > 0.0 && radius.is_finite(), "radius must be finite and > 0");
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<(f64, f64)> =
            (0..n).map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0))).collect();
        let d2 = |u: usize, v: usize| {
            let dx = pts[u].0 - pts[v].0;
            let dy = pts[u].1 - pts[v].1;
            dx * dx + dy * dy
        };
        let r2 = radius * radius;
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if d2(u, v) <= r2 {
                    edges.push((u as u32, v as u32));
                }
            }
        }
        // Union-find over the radius edges, then stitch components
        // together along shortest inter-component hops.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let mut components = n;
        for &(u, v) in &edges {
            let (ru, rv) = (find(&mut parent, u as usize), find(&mut parent, v as usize));
            if ru != rv {
                parent[ru] = rv;
                components -= 1;
            }
        }
        while components > 1 {
            let mut best: Option<(f64, usize, usize)> = None;
            for u in 0..n {
                for v in (u + 1)..n {
                    if find(&mut parent, u) == find(&mut parent, v) {
                        continue;
                    }
                    let d = d2(u, v);
                    if best.is_none_or(|(bd, _, _)| d < bd) {
                        best = Some((d, u, v));
                    }
                }
            }
            let (_, u, v) = best.expect("components > 1 implies a cross pair");
            edges.push((u as u32, v as u32));
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            parent[ru] = rv;
            components -= 1;
        }
        let mut t = Topology::from_edges(n, &edges);
        t.set_kind(TopologyKind::Geometric);
        t
    }

    pub(crate) fn set_kind(&mut self, kind: TopologyKind) {
        *self.kind_mut() = kind;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_2d_structure() {
        let t = Topology::mesh(&[3, 3]);
        assert_eq!(t.node_count(), 9);
        assert_eq!(t.edge_count(), 12);
        // Corner has 2 neighbours, centre has 4.
        assert_eq!(t.degree(NodeId(0)), 2);
        assert_eq!(t.degree(NodeId(4)), 4);
        assert!(t.is_connected());
        assert_eq!(t.diameter(), Some(4));
    }

    #[test]
    fn torus_2d_is_regular() {
        let t = Topology::torus(&[4, 4]);
        assert_eq!(t.node_count(), 16);
        for v in t.nodes() {
            assert_eq!(t.degree(v), 4);
        }
        assert_eq!(t.edge_count(), 32);
        assert_eq!(t.diameter(), Some(4));
    }

    #[test]
    fn torus_extent_two_does_not_double_edges() {
        // 2-extent wraparound would duplicate the mesh link; ensure we do not
        // create parallel edges.
        let t = Topology::torus(&[2, 2]);
        assert_eq!(t.edge_count(), 4); // a 4-cycle
        for v in t.nodes() {
            assert_eq!(t.degree(v), 2);
        }
    }

    #[test]
    fn mesh_1d_is_a_path() {
        let t = Topology::mesh(&[5]);
        assert_eq!(t.edge_count(), 4);
        assert_eq!(t.diameter(), Some(4));
    }

    #[test]
    fn torus_1d_is_a_ring() {
        let t = Topology::torus(&[5]);
        assert_eq!(t.edge_count(), 5);
        assert_eq!(t.diameter(), Some(2));
    }

    #[test]
    fn hypercube_structure() {
        let t = Topology::hypercube(4);
        assert_eq!(t.node_count(), 16);
        for v in t.nodes() {
            assert_eq!(t.degree(v), 4);
        }
        assert_eq!(t.edge_count(), 32);
        assert_eq!(t.diameter(), Some(4));
        // Neighbours differ in exactly one bit.
        for u in t.nodes() {
            for &v in t.neighbors(u) {
                assert_eq!((u.0 ^ v.0).count_ones(), 1);
            }
        }
    }

    #[test]
    fn ring_and_star_and_complete() {
        let r = Topology::ring(6);
        assert_eq!(r.edge_count(), 6);
        assert_eq!(r.diameter(), Some(3));

        let s = Topology::star(5);
        assert_eq!(s.degree(NodeId(0)), 4);
        assert_eq!(s.diameter(), Some(2));

        let c = Topology::complete(5);
        assert_eq!(c.edge_count(), 10);
        assert_eq!(c.diameter(), Some(1));
    }

    #[test]
    fn tree_structure() {
        let t = Topology::tree(2, 3);
        assert_eq!(t.node_count(), 15); // 1+2+4+8
        assert_eq!(t.edge_count(), 14);
        assert!(t.is_connected());
        assert_eq!(t.degree(NodeId(0)), 2);
    }

    #[test]
    fn tree_depth_zero_is_single_node() {
        let t = Topology::tree(3, 0);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.edge_count(), 0);
    }

    #[test]
    fn random_graph_is_connected_and_deterministic() {
        let a = Topology::random(32, 0.05, 7);
        let b = Topology::random(32, 0.05, 7);
        assert!(a.is_connected());
        assert_eq!(a.edges(), b.edges());
        let c = Topology::random(32, 0.05, 8);
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn mesh_3d_node_degrees() {
        let t = Topology::mesh(&[3, 3, 3]);
        assert_eq!(t.node_count(), 27);
        // Centre of the cube has 6 neighbours.
        let center = NodeId(13);
        assert_eq!(t.degree(center), 6);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_ring_rejected() {
        let _ = Topology::ring(2);
    }

    #[test]
    fn scale_free_structure_and_determinism() {
        let a = Topology::scale_free(64, 2, 11);
        assert_eq!(a.node_count(), 64);
        assert!(a.is_connected());
        // Seed clique on 3 nodes (3 edges) + 2 per later node, minus any
        // collapsed duplicates — but BA never duplicates (targets are
        // distinct and the new node is fresh), so the count is exact.
        assert_eq!(a.edge_count(), 3 + 2 * (64 - 3));
        let b = Topology::scale_free(64, 2, 11);
        assert_eq!(a.edges(), b.edges());
        assert_ne!(a.edges(), Topology::scale_free(64, 2, 12).edges());
        assert_eq!(*a.kind(), TopologyKind::ScaleFree(2));
        // Preferential attachment grows hubs: some node must exceed the
        // regular-graph degree.
        let max_deg = a.nodes().map(|v| a.degree(v)).max().unwrap();
        assert!(max_deg > 4, "expected a hub, max degree {max_deg}");
    }

    #[test]
    fn random_geometric_connected_and_deterministic() {
        // Small radius forces the augmentation path to fire.
        for radius in [0.05, 0.2, 2.0] {
            let t = Topology::random_geometric(48, radius, 5);
            assert_eq!(t.node_count(), 48);
            assert!(t.is_connected(), "radius {radius}");
        }
        let a = Topology::random_geometric(48, 0.2, 5);
        let b = Topology::random_geometric(48, 0.2, 5);
        assert_eq!(a.edges(), b.edges());
        assert_ne!(a.edges(), Topology::random_geometric(48, 0.2, 6).edges());
        assert_eq!(*a.kind(), TopologyKind::Geometric);
        // radius ≥ √2 covers the unit square: complete graph.
        let full = Topology::random_geometric(10, 2.0, 1);
        assert_eq!(full.edge_count(), 45);
    }
}
