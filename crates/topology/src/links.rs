//! Link attribute matrices `BW`, `D`, `F` and the paper's link weight
//! `e_{i,j}` (§4.2).
//!
//! Every link has a bandwidth, a physical length and a fault probability per
//! time unit; all three are configuration constants of the system. The
//! effective link weight used by the balancer is
//!
//! ```text
//! e_{i,j} = (d_{i,j} / bw_{i,j}) / (1 − f_{i,j})^{d_{i,j}/(c·bw_{i,j})}
//! ```
//!
//! which realises the paper's three proportionalities: `e ∝ d`,
//! `e ∝ 1/bw`, and `e ∝ 1/(1−f)^{d/(c·bw)}` (the longer a transfer holds the
//! link, the more likely it is to hit a fault, hence the heavier the link).

use crate::embedding::Point2;
use crate::graph::{EdgeId, NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Attributes of one physical link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkAttrs {
    /// Bandwidth (load units per time unit), `> 0`.
    pub bandwidth: f64,
    /// Physical length / base latency, `> 0`.
    pub distance: f64,
    /// Probability of a fault per time unit, in `[0, 1)`.
    pub fault_prob: f64,
}

impl Default for LinkAttrs {
    fn default() -> Self {
        LinkAttrs { bandwidth: 1.0, distance: 1.0, fault_prob: 0.0 }
    }
}

impl LinkAttrs {
    /// Validates the attribute ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !self.bandwidth.is_finite() || self.bandwidth <= 0.0 {
            return Err(format!("bandwidth must be > 0, got {}", self.bandwidth));
        }
        if !self.distance.is_finite() || self.distance <= 0.0 {
            return Err(format!("distance must be > 0, got {}", self.distance));
        }
        if !(0.0..1.0).contains(&self.fault_prob) {
            return Err(format!("fault_prob must be in [0,1), got {}", self.fault_prob));
        }
        Ok(())
    }

    /// The paper's link weight `e_{i,j}` (see module docs). `c` is the
    /// configuration constant scaling the fault exposure; larger `c` means
    /// faults weigh less.
    pub fn weight(&self, c: f64) -> f64 {
        assert!(c > 0.0, "link weight constant c must be positive");
        let base = self.distance / self.bandwidth;
        let exposure = self.distance / (c * self.bandwidth);
        base / (1.0 - self.fault_prob).powf(exposure)
    }

    /// Nominal transfer time for a load of `size` over this link (latency
    /// plus serialisation), ignoring faults.
    pub fn transfer_time(&self, size: f64) -> f64 {
        self.distance + size / self.bandwidth
    }

    /// Probability that a transfer occupying the link for `duration` time
    /// units completes without a fault: `(1 − f)^duration`.
    pub fn success_probability(&self, duration: f64) -> f64 {
        (1.0 - self.fault_prob).powf(duration.max(0.0))
    }
}

/// Symmetric per-link attribute storage for a topology (the `BW`, `D`, `F`
/// matrices of §4.2, stored sparsely).
#[derive(Debug, Clone)]
pub struct LinkMap {
    attrs: HashMap<(u32, u32), LinkAttrs>,
}

fn key(u: NodeId, v: NodeId) -> (u32, u32) {
    if u.0 <= v.0 {
        (u.0, v.0)
    } else {
        (v.0, u.0)
    }
}

impl LinkMap {
    /// All links of `topo` share the same attributes.
    pub fn uniform(topo: &Topology, attrs: LinkAttrs) -> Self {
        attrs.validate().expect("invalid link attributes");
        let map = topo.edges().into_iter().map(|(u, v)| (key(u, v), attrs)).collect();
        LinkMap { attrs: map }
    }

    /// Distances derived from an embedding (Euclidean length of each link),
    /// uniform bandwidth, no faults.
    pub fn from_embedding(topo: &Topology, points: &[Point2], bandwidth: f64) -> Self {
        let mut attrs = HashMap::new();
        for (u, v) in topo.edges() {
            let d = points[u.idx()].distance(&points[v.idx()]).max(1e-9);
            attrs.insert(key(u, v), LinkAttrs { bandwidth, distance: d, fault_prob: 0.0 });
        }
        LinkMap { attrs }
    }

    /// Heterogeneous random attributes (seeded): bandwidth in
    /// `[bw_min, bw_max]`, distance in `[d_min, d_max]`, fault probability in
    /// `[0, f_max]`.
    #[allow(clippy::too_many_arguments)]
    pub fn random(
        topo: &Topology,
        seed: u64,
        bw_range: (f64, f64),
        d_range: (f64, f64),
        f_max: f64,
    ) -> Self {
        assert!(bw_range.0 > 0.0 && bw_range.1 >= bw_range.0);
        assert!(d_range.0 > 0.0 && d_range.1 >= d_range.0);
        assert!((0.0..1.0).contains(&f_max));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut attrs = HashMap::new();
        for (u, v) in topo.edges() {
            attrs.insert(
                key(u, v),
                LinkAttrs {
                    bandwidth: rng.gen_range(bw_range.0..=bw_range.1),
                    distance: rng.gen_range(d_range.0..=d_range.1),
                    fault_prob: if f_max > 0.0 { rng.gen_range(0.0..f_max) } else { 0.0 },
                },
            );
        }
        LinkMap { attrs }
    }

    /// Attributes of the `(u, v)` link, if it exists.
    pub fn get(&self, u: NodeId, v: NodeId) -> Option<&LinkAttrs> {
        self.attrs.get(&key(u, v))
    }

    /// Mutable attributes of the `(u, v)` link (e.g. to inject a fault).
    pub fn get_mut(&mut self, u: NodeId, v: NodeId) -> Option<&mut LinkAttrs> {
        self.attrs.get_mut(&key(u, v))
    }

    /// Overwrites the attributes of the `(u, v)` link.
    pub fn set(&mut self, u: NodeId, v: NodeId, attrs: LinkAttrs) {
        attrs.validate().expect("invalid link attributes");
        self.attrs.insert(key(u, v), attrs);
    }

    /// The paper's `e_{i,j}` weight for the `(u, v)` link.
    pub fn weight(&self, u: NodeId, v: NodeId, c: f64) -> Option<f64> {
        self.get(u, v).map(|a| a.weight(c))
    }

    /// Number of links with attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }
}

/// Edge-id-indexed link attributes: the hot-path view of a [`LinkMap`],
/// flattened over a topology's stable edge ids so the per-tick loops address
/// link attributes and precomputed weights by array index instead of hashing
/// `(u, v)` pairs.
#[derive(Debug, Clone)]
pub struct LinkTable {
    attrs: Vec<LinkAttrs>,
}

impl LinkTable {
    /// Flattens `map` over `topo`'s edge ids.
    ///
    /// # Panics
    /// Panics if any edge of `topo` is missing from `map`.
    pub fn new(topo: &Topology, map: &LinkMap) -> Self {
        let attrs = topo
            .edge_slice()
            .iter()
            .map(|&(u, v)| *map.get(u, v).expect("link attributes missing for an edge"))
            .collect();
        LinkTable { attrs }
    }

    /// Attributes of the edge, by id.
    #[inline]
    pub fn get(&self, e: EdgeId) -> LinkAttrs {
        self.attrs[e.idx()]
    }

    /// The whole edge-indexed attribute slice.
    #[inline]
    pub fn attrs(&self) -> &[LinkAttrs] {
        &self.attrs
    }

    /// Precomputes the paper's `e_{i,j}` weight for every edge with the
    /// configuration constant `c` — one `powf` per edge at build time
    /// instead of one per neighbour per node per tick.
    pub fn weights(&self, c: f64) -> Vec<f64> {
        self.attrs.iter().map(|a| a.weight(c)).collect()
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_attrs_weight_is_one() {
        let a = LinkAttrs::default();
        assert_eq!(a.weight(1.0), 1.0);
    }

    #[test]
    fn weight_proportional_to_distance() {
        let a = LinkAttrs { distance: 2.0, ..Default::default() };
        let b = LinkAttrs { distance: 4.0, ..Default::default() };
        assert!((b.weight(1.0) / a.weight(1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn weight_inverse_in_bandwidth() {
        let a = LinkAttrs { bandwidth: 1.0, ..Default::default() };
        let b = LinkAttrs { bandwidth: 2.0, ..Default::default() };
        assert!(b.weight(1.0) < a.weight(1.0));
    }

    #[test]
    fn faulty_links_weigh_more() {
        let clean = LinkAttrs::default();
        let faulty = LinkAttrs { fault_prob: 0.3, ..Default::default() };
        assert!(faulty.weight(1.0) > clean.weight(1.0));
        // And the penalty grows with fault probability.
        let worse = LinkAttrs { fault_prob: 0.6, ..Default::default() };
        assert!(worse.weight(1.0) > faulty.weight(1.0));
    }

    #[test]
    fn fault_penalty_scales_with_exposure() {
        // A slower link (more exposure time) suffers more from the same f.
        let fast = LinkAttrs { bandwidth: 10.0, fault_prob: 0.2, ..Default::default() };
        let slow = LinkAttrs { bandwidth: 0.1, fault_prob: 0.2, ..Default::default() };
        let ratio_fast = fast.weight(1.0) / (fast.distance / fast.bandwidth);
        let ratio_slow = slow.weight(1.0) / (slow.distance / slow.bandwidth);
        assert!(ratio_slow > ratio_fast);
    }

    #[test]
    fn transfer_time_and_success_probability() {
        let a = LinkAttrs { bandwidth: 2.0, distance: 3.0, fault_prob: 0.1 };
        assert_eq!(a.transfer_time(4.0), 5.0);
        let p = a.success_probability(2.0);
        assert!((p - 0.81).abs() < 1e-12);
        assert_eq!(a.success_probability(0.0), 1.0);
    }

    #[test]
    fn uniform_map_covers_all_edges() {
        let t = Topology::mesh(&[3, 3]);
        let m = LinkMap::uniform(&t, LinkAttrs::default());
        assert_eq!(m.len(), t.edge_count());
        for (u, v) in t.edges() {
            assert!(m.get(u, v).is_some());
            assert!(m.get(v, u).is_some()); // symmetric access
        }
    }

    #[test]
    fn map_set_and_get_mut() {
        let t = Topology::ring(4);
        let mut m = LinkMap::uniform(&t, LinkAttrs::default());
        m.set(NodeId(0), NodeId(1), LinkAttrs { bandwidth: 9.0, ..Default::default() });
        assert_eq!(m.get(NodeId(1), NodeId(0)).unwrap().bandwidth, 9.0);
        m.get_mut(NodeId(0), NodeId(1)).unwrap().fault_prob = 0.5;
        assert_eq!(m.get(NodeId(0), NodeId(1)).unwrap().fault_prob, 0.5);
    }

    #[test]
    fn embedding_distances_used() {
        let t = Topology::mesh(&[2, 2]);
        let pts = crate::embedding::embed(&t);
        let m = LinkMap::from_embedding(&t, &pts, 1.0);
        for (u, v) in t.edges() {
            assert!((m.get(u, v).unwrap().distance - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn random_map_is_deterministic() {
        let t = Topology::hypercube(3);
        let a = LinkMap::random(&t, 5, (0.5, 2.0), (1.0, 3.0), 0.1);
        let b = LinkMap::random(&t, 5, (0.5, 2.0), (1.0, 3.0), 0.1);
        for (u, v) in t.edges() {
            assert_eq!(a.get(u, v), b.get(u, v));
        }
    }

    #[test]
    #[should_panic(expected = "invalid link attributes")]
    fn invalid_attrs_rejected() {
        let t = Topology::ring(3);
        let _ = LinkMap::uniform(&t, LinkAttrs { bandwidth: 0.0, distance: 1.0, fault_prob: 0.0 });
    }

    #[test]
    fn link_table_matches_map() {
        let t = Topology::torus(&[3, 3]);
        let m = LinkMap::random(&t, 11, (0.5, 2.0), (1.0, 3.0), 0.2);
        let table = LinkTable::new(&t, &m);
        assert_eq!(table.len(), t.edge_count());
        let weights = table.weights(2.0);
        for (i, &(u, v)) in t.edge_slice().iter().enumerate() {
            let e = t.edge_index(u, v).unwrap();
            assert_eq!(table.get(e), *m.get(u, v).unwrap());
            assert_eq!(weights[i], m.get(u, v).unwrap().weight(2.0));
        }
    }

    #[test]
    #[should_panic(expected = "link attributes missing")]
    fn link_table_rejects_partial_map() {
        let t = Topology::ring(4);
        let partial = LinkMap::uniform(&Topology::ring(3), LinkAttrs::default());
        let _ = LinkTable::new(&t, &partial);
    }

    #[test]
    fn validate_catches_bad_fault_prob() {
        let a = LinkAttrs { fault_prob: 1.0, ..Default::default() };
        assert!(a.validate().is_err());
        let b = LinkAttrs { fault_prob: -0.1, ..Default::default() };
        assert!(b.validate().is_err());
    }
}
