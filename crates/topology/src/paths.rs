//! Weighted shortest paths over the link-weight matrix: the network-side
//! counterpart of the physical model's "shortest escape path" (Theorem 1's
//! `r_{c,p}` measured in accumulated `e_{i,j}` instead of metres).
//!
//! Used by the experiments to relate a load's energy budget to the set of
//! nodes it can still reach (`reachable_within`), and for topology
//! statistics (weighted diameter, mean path weight).

use crate::graph::{NodeId, Topology};
use crate::links::LinkMap;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance; ties by node id for determinism.
        other.dist.total_cmp(&self.dist).then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra from `from` over `e_{i,j}` link weights (with constant `c`).
/// Unreachable nodes get `f64::INFINITY`.
pub fn dijkstra(topo: &Topology, links: &LinkMap, c: f64, from: NodeId) -> Vec<f64> {
    let n = topo.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[from.idx()] = 0.0;
    heap.push(HeapEntry { dist: 0.0, node: from });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if done[u.idx()] {
            continue;
        }
        done[u.idx()] = true;
        for &v in topo.neighbors(u) {
            let w = links.weight(u, v, c).expect("link attrs missing");
            let nd = d + w;
            if nd < dist[v.idx()] {
                dist[v.idx()] = nd;
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }
    dist
}

/// Nodes whose weighted distance from `from` is at most `budget` — the set
/// a load with flag headroom `budget/µ_k` could possibly reach (discrete
/// Corollary 3).
pub fn reachable_within(
    topo: &Topology,
    links: &LinkMap,
    c: f64,
    from: NodeId,
    budget: f64,
) -> Vec<NodeId> {
    dijkstra(topo, links, c, from)
        .into_iter()
        .enumerate()
        .filter(|&(_, d)| d <= budget)
        .map(|(i, _)| NodeId(i as u32))
        .collect()
}

/// Weighted diameter: the largest finite pairwise distance; `None` when the
/// graph is disconnected or empty.
pub fn weighted_diameter(topo: &Topology, links: &LinkMap, c: f64) -> Option<f64> {
    let mut best: f64 = 0.0;
    if topo.node_count() == 0 {
        return None;
    }
    for u in topo.nodes() {
        let d = dijkstra(topo, links, c, u);
        for x in d {
            if x.is_infinite() {
                return None;
            }
            best = best.max(x);
        }
    }
    Some(best)
}

/// Mean weighted distance over all ordered pairs (excluding self-pairs);
/// `None` when disconnected or fewer than 2 nodes.
pub fn mean_path_weight(topo: &Topology, links: &LinkMap, c: f64) -> Option<f64> {
    let n = topo.node_count();
    if n < 2 {
        return None;
    }
    let mut sum = 0.0;
    for u in topo.nodes() {
        for (i, d) in dijkstra(topo, links, c, u).into_iter().enumerate() {
            if i as u32 != u.0 {
                if d.is_infinite() {
                    return None;
                }
                sum += d;
            }
        }
    }
    Some(sum / (n * (n - 1)) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::links::LinkAttrs;

    fn unit_links(topo: &Topology) -> LinkMap {
        LinkMap::uniform(topo, LinkAttrs::default())
    }

    #[test]
    fn dijkstra_matches_bfs_on_unit_links() {
        let topo = Topology::torus(&[4, 4]);
        let links = unit_links(&topo);
        let d = dijkstra(&topo, &links, 1.0, NodeId(0));
        let bfs = topo.bfs_distances(NodeId(0));
        for (a, b) in d.iter().zip(bfs) {
            assert!((a - b as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn heavier_link_is_bypassed() {
        // Triangle 0-1-2 where the direct 0→2 link is very heavy: the
        // two-hop route wins.
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let mut links = unit_links(&topo);
        links.set(
            NodeId(0),
            NodeId(2),
            LinkAttrs { bandwidth: 0.1, distance: 5.0, fault_prob: 0.0 },
        );
        let d = dijkstra(&topo, &links, 1.0, NodeId(0));
        assert!((d[2] - 2.0).abs() < 1e-12, "route should go via node 1: {}", d[2]);
    }

    #[test]
    fn reachable_within_budget() {
        let topo = Topology::mesh(&[5]);
        let links = unit_links(&topo);
        let r = reachable_within(&topo, &links, 1.0, NodeId(0), 2.0);
        assert_eq!(r, vec![NodeId(0), NodeId(1), NodeId(2)]);
        let all = reachable_within(&topo, &links, 1.0, NodeId(0), 10.0);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn weighted_diameter_of_ring() {
        let topo = Topology::ring(6);
        let links = unit_links(&topo);
        assert_eq!(weighted_diameter(&topo, &links, 1.0), Some(3.0));
    }

    #[test]
    fn disconnected_graph_has_no_diameter() {
        let topo = Topology::from_edges(4, &[(0, 1), (2, 3)]);
        let links = unit_links(&topo);
        assert_eq!(weighted_diameter(&topo, &links, 1.0), None);
        assert_eq!(mean_path_weight(&topo, &links, 1.0), None);
    }

    #[test]
    fn mean_path_weight_of_complete_graph_is_one() {
        let topo = Topology::complete(5);
        let links = unit_links(&topo);
        assert!((mean_path_weight(&topo, &links, 1.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn faulty_links_lengthen_paths() {
        let topo = Topology::ring(8);
        let clean = unit_links(&topo);
        let faulty =
            LinkMap::uniform(&topo, LinkAttrs { bandwidth: 1.0, distance: 1.0, fault_prob: 0.3 });
        let d_clean = weighted_diameter(&topo, &clean, 1.0).unwrap();
        let d_faulty = weighted_diameter(&topo, &faulty, 1.0).unwrap();
        assert!(d_faulty > d_clean);
    }
}
