//! # pp-topology — interconnection networks for the particle & plane model
//!
//! §4.1 of the paper maps the multiprocessor's interconnection network
//! `G(V, E)` onto the ground plane (the `M₂` embedding) and carries per-link
//! bandwidth/distance/fault matrices (`BW`, `D`, `F`, §4.2) from which the
//! link weight `e_{i,j}` is derived. This crate provides:
//!
//! * [`graph::Topology`] — the network graph with the standard families
//!   (mesh, torus, hypercube, ring, star, tree, complete, random);
//! * [`embedding::embed`] — the `M₂` ground-plane embedding;
//! * [`links::LinkMap`] — the attribute matrices and the `e_{i,j}` weight;
//! * [`partition::Partition`] — deterministic contiguous sharding with
//!   interior/boundary classification and halo maps, the domain
//!   decomposition under `pp-sim`'s sharded tick pipeline;
//! * [`spectral`] — Laplacian eigenvalue estimation for the optimal
//!   diffusion parameter of the Xu–Lau baseline;
//! * [`coloring::EdgeColoring`] — matchings for dimension exchange.
//!
//! ```
//! use pp_topology::prelude::*;
//!
//! let topo = Topology::torus(&[4, 4]);
//! assert_eq!(topo.node_count(), 16);
//! let links = LinkMap::uniform(&topo, LinkAttrs::default());
//! let e = links.weight(NodeId(0), NodeId(1), 1.0).unwrap();
//! assert!((e - 1.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coloring;
pub mod edgeset;
pub mod embedding;
pub mod generators;
pub mod graph;
pub mod links;
pub mod partition;
pub mod paths;
pub mod spec;
pub mod spectral;

/// One-stop imports.
pub mod prelude {
    pub use crate::coloring::EdgeColoring;
    pub use crate::edgeset::EdgeBitSet;
    pub use crate::embedding::{embed, Point2};
    pub use crate::graph::{EdgeId, NodeId, Topology, TopologyKind};
    pub use crate::links::{LinkAttrs, LinkMap, LinkTable};
    pub use crate::partition::{HaloEdge, Partition};
    pub use crate::paths::{dijkstra, mean_path_weight, reachable_within, weighted_diameter};
    pub use crate::spec::TopologySpec;
    pub use crate::spectral::{optimal_diffusion_alpha, safe_diffusion_alpha};
}
