//! The interconnection network graph `G(V, E)` (§4.2).
//!
//! Nodes are processors, edges are physical links. The graph is undirected
//! and stored in CSR (compressed sparse row) form: one flat `targets` array
//! holding every node's sorted neighbour list back to back, with an
//! `offsets` table slicing it per node. Each directed slot also carries the
//! *stable edge id* of its undirected edge, so edge-indexed side tables
//! (link attributes, precomputed weights, up/down bitsets) can be addressed
//! without hashing. Topology constructors live in [`crate::generators`].

use std::collections::VecDeque;
use std::fmt;

/// Identifier of a processing node (index into the topology's node array).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as `usize` for slice addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of an undirected edge: a dense index in `0..edge_count()`,
/// assigned in `(u, v)` order with `u < v` and stable for the lifetime of
/// the topology. Used to address edge-indexed side tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The index as `usize` for slice addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// What family a topology belongs to; carried for display and for
/// family-specific algorithm parameters (e.g. hypercube dimension exchange).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyKind {
    /// k-ary n-dimensional mesh (no wraparound).
    Mesh(Vec<usize>),
    /// k-ary n-dimensional torus (wraparound).
    Torus(Vec<usize>),
    /// n-dimensional hypercube (2ⁿ nodes).
    Hypercube(usize),
    /// Simple cycle.
    Ring,
    /// One hub connected to all leaves.
    Star,
    /// Complete graph.
    Complete,
    /// Balanced tree with the given arity.
    Tree(usize),
    /// Connected Erdős–Rényi-style random graph.
    Random,
    /// Barabási–Albert preferential-attachment scale-free graph (each new
    /// node attaches to `m` existing nodes).
    ScaleFree(usize),
    /// Random geometric graph (unit-square points linked within a radius,
    /// augmented to connectivity).
    Geometric,
    /// Built from an explicit edge list.
    Custom,
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyKind::Mesh(d) => write!(f, "mesh{d:?}"),
            TopologyKind::Torus(d) => write!(f, "torus{d:?}"),
            TopologyKind::Hypercube(n) => write!(f, "hypercube({n})"),
            TopologyKind::Ring => write!(f, "ring"),
            TopologyKind::Star => write!(f, "star"),
            TopologyKind::Complete => write!(f, "complete"),
            TopologyKind::Tree(a) => write!(f, "tree(arity {a})"),
            TopologyKind::Random => write!(f, "random"),
            TopologyKind::ScaleFree(m) => write!(f, "scale-free(m {m})"),
            TopologyKind::Geometric => write!(f, "geometric"),
            TopologyKind::Custom => write!(f, "custom"),
        }
    }
}

/// An undirected interconnection network in CSR form.
#[derive(Debug, Clone)]
pub struct Topology {
    kind: TopologyKind,
    /// Per-node slice bounds into `targets`/`slot_edges` (`n + 1` entries).
    offsets: Vec<u32>,
    /// Flattened sorted neighbour lists.
    targets: Vec<NodeId>,
    /// Stable edge id of each directed slot (parallel to `targets`).
    slot_edges: Vec<EdgeId>,
    /// Endpoints `(u, v)` with `u < v`, indexed by edge id.
    edge_list: Vec<(NodeId, NodeId)>,
}

impl Topology {
    /// Builds a topology from adjacency lists. Neighbour lists are sorted and
    /// deduplicated; self-loops are removed.
    pub fn from_adjacency(kind: TopologyKind, mut adj: Vec<Vec<NodeId>>) -> Self {
        let n = adj.len() as u32;
        for (i, list) in adj.iter_mut().enumerate() {
            list.retain(|v| v.0 != i as u32 && v.0 < n);
            list.sort_unstable();
            list.dedup();
        }
        // Symmetrise: if u lists v, v must list u.
        let pairs: Vec<(u32, u32)> = adj
            .iter()
            .enumerate()
            .flat_map(|(u, list)| list.iter().map(move |v| (u as u32, v.0)))
            .collect();
        for (u, v) in pairs {
            let back = &mut adj[v as usize];
            if back.binary_search(&NodeId(u)).is_err() {
                let pos = back.partition_point(|x| x.0 < u);
                back.insert(pos, NodeId(u));
            }
        }
        // Flatten to CSR and assign edge ids in (u, v), u < v order. For a
        // back slot (u > v) the id was already assigned while walking v's
        // list, and v < u means v's slice is fully built — look it up there.
        let mut offsets = Vec::with_capacity(adj.len() + 1);
        let total: usize = adj.iter().map(Vec::len).sum();
        let mut targets = Vec::with_capacity(total);
        let mut slot_edges = vec![EdgeId(0); total];
        let mut edge_list = Vec::with_capacity(total / 2);
        offsets.push(0u32);
        for list in &adj {
            targets.extend_from_slice(list);
            offsets.push(targets.len() as u32);
        }
        for (u, list) in adj.iter().enumerate() {
            let base = offsets[u] as usize;
            for (slot, &v) in list.iter().enumerate() {
                if (u as u32) < v.0 {
                    slot_edges[base + slot] = EdgeId(edge_list.len() as u32);
                    edge_list.push((NodeId(u as u32), v));
                } else {
                    let vbase = offsets[v.idx()] as usize;
                    let pos = adj[v.idx()].binary_search(&NodeId(u as u32)).expect("symmetric");
                    slot_edges[base + slot] = slot_edges[vbase + pos];
                }
            }
        }
        Topology { kind, offsets, targets, slot_edges, edge_list }
    }

    /// Builds from an explicit edge list over `n` nodes.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!((u as usize) < n && (v as usize) < n, "edge endpoint out of range");
            adj[u as usize].push(NodeId(v));
            adj[v as usize].push(NodeId(u));
        }
        Topology::from_adjacency(TopologyKind::Custom, adj)
    }

    /// The topology family.
    pub fn kind(&self) -> &TopologyKind {
        &self.kind
    }

    pub(crate) fn kind_mut(&mut self) -> &mut TopologyKind {
        &mut self.kind
    }

    /// Number of nodes `|V|`.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `|E|`.
    pub fn edge_count(&self) -> usize {
        self.edge_list.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// The CSR slice bounds of `v`.
    #[inline]
    fn span(&self, v: NodeId) -> (usize, usize) {
        (self.offsets[v.idx()] as usize, self.offsets[v.idx() + 1] as usize)
    }

    /// Neighbours of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let (lo, hi) = self.span(v);
        &self.targets[lo..hi]
    }

    /// Edge ids of `v`'s links, parallel to [`Topology::neighbors`]: the
    /// `k`-th entry is the undirected edge id of the link to the `k`-th
    /// neighbour.
    #[inline]
    pub fn neighbor_edge_ids(&self, v: NodeId) -> &[EdgeId] {
        let (lo, hi) = self.span(v);
        &self.slot_edges[lo..hi]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        let (lo, hi) = self.span(v);
        hi - lo
    }

    /// Maximum degree Δ.
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Whether `u` and `v` share an edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// The stable id of the `(u, v)` edge, if it exists. O(log deg) — no
    /// hashing.
    #[inline]
    pub fn edge_index(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let (lo, _) = self.span(u);
        self.neighbors(u).binary_search(&v).ok().map(|pos| self.slot_edges[lo + pos])
    }

    /// Endpoints `(u, v)` of an edge, with `u < v`.
    #[inline]
    pub fn edge_endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edge_list[e.idx()]
    }

    /// All undirected edges as `(u, v)` with `u < v`, indexed by edge id.
    /// Borrowed view — no allocation.
    pub fn edge_slice(&self) -> &[(NodeId, NodeId)] {
        &self.edge_list
    }

    /// All undirected edges as `(u, v)` with `u < v` (owned copy; prefer
    /// [`Topology::edge_slice`] on hot paths).
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        self.edge_list.clone()
    }

    /// BFS hop distances from `from`; unreachable nodes get `usize::MAX`.
    pub fn bfs_distances(&self, from: NodeId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.node_count()];
        let mut q = VecDeque::new();
        dist[from.idx()] = 0;
        q.push_back(from);
        while let Some(u) = q.pop_front() {
            let du = dist[u.idx()];
            for &v in self.neighbors(u) {
                if dist[v.idx()] == usize::MAX {
                    dist[v.idx()] = du + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// Whether the graph is connected (empty graphs count as connected).
    pub fn is_connected(&self) -> bool {
        if self.node_count() == 0 {
            return true;
        }
        self.bfs_distances(NodeId(0)).iter().all(|&d| d != usize::MAX)
    }

    /// The diameter (max over all pairs of hop distance); `None` when
    /// disconnected or empty.
    pub fn diameter(&self) -> Option<usize> {
        if self.node_count() == 0 {
            return None;
        }
        let mut best = 0;
        for u in self.nodes() {
            let d = self.bfs_distances(u);
            let m = *d.iter().max().unwrap();
            if m == usize::MAX {
                return None;
            }
            best = best.max(m);
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_builds_symmetric_adjacency() {
        let t = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.edge_count(), 2);
        assert!(t.has_edge(NodeId(0), NodeId(1)));
        assert!(t.has_edge(NodeId(1), NodeId(0)));
        assert!(!t.has_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn duplicate_and_self_edges_are_dropped() {
        let t = Topology::from_edges(2, &[(0, 1), (1, 0), (0, 0)]);
        assert_eq!(t.edge_count(), 1);
        assert_eq!(t.degree(NodeId(0)), 1);
    }

    #[test]
    fn one_sided_adjacency_is_symmetrised() {
        let adj = vec![vec![NodeId(1)], vec![]];
        let t = Topology::from_adjacency(TopologyKind::Custom, adj);
        assert!(t.has_edge(NodeId(1), NodeId(0)));
        assert_eq!(t.edge_count(), 1);
    }

    #[test]
    fn bfs_distances_on_path() {
        let t = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(t.bfs_distances(NodeId(0)), vec![0, 1, 2, 3]);
        assert_eq!(t.diameter(), Some(3));
    }

    #[test]
    fn disconnected_graph_detected() {
        let t = Topology::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!t.is_connected());
        assert_eq!(t.diameter(), None);
        assert_eq!(t.bfs_distances(NodeId(0))[2], usize::MAX);
    }

    #[test]
    fn edges_listed_once_each() {
        let t = Topology::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let e = t.edges();
        assert_eq!(e.len(), 3);
        for (u, v) in e {
            assert!(u < v);
        }
    }

    #[test]
    fn display_impls() {
        assert_eq!(NodeId(7).to_string(), "v7");
        assert_eq!(TopologyKind::Hypercube(3).to_string(), "hypercube(3)");
        assert_eq!(TopologyKind::Mesh(vec![4, 4]).to_string(), "mesh[4, 4]");
    }

    #[test]
    fn empty_graph_is_connected() {
        let t = Topology::from_edges(0, &[]);
        assert!(t.is_connected());
        assert_eq!(t.diameter(), None);
    }

    #[test]
    fn edge_ids_are_dense_and_stable() {
        let t = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        // Ids cover 0..edge_count, assigned in (u, v) u < v order.
        for (i, &(u, v)) in t.edge_slice().iter().enumerate() {
            assert!(u < v);
            assert_eq!(t.edge_index(u, v), Some(EdgeId(i as u32)));
            assert_eq!(t.edge_index(v, u), Some(EdgeId(i as u32)), "symmetric lookup");
            assert_eq!(t.edge_endpoints(EdgeId(i as u32)), (u, v));
        }
        assert_eq!(t.edge_slice().len(), t.edge_count());
        assert_eq!(t.edge_index(NodeId(0), NodeId(2)), None);
    }

    #[test]
    fn neighbor_edge_ids_parallel_to_neighbors() {
        let t = Topology::from_edges(5, &[(0, 1), (0, 2), (0, 4), (1, 2), (3, 4)]);
        for u in t.nodes() {
            let nbrs = t.neighbors(u);
            let eids = t.neighbor_edge_ids(u);
            assert_eq!(nbrs.len(), eids.len());
            for (&v, &e) in nbrs.iter().zip(eids) {
                assert_eq!(t.edge_index(u, v), Some(e));
                let (a, b) = t.edge_endpoints(e);
                assert!((a, b) == (u.min(v), u.max(v)));
            }
        }
    }

    #[test]
    fn edges_matches_edge_slice() {
        let t = Topology::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(t.edges(), t.edge_slice().to_vec());
    }
}
