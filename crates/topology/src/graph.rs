//! The interconnection network graph `G(V, E)` (§4.2).
//!
//! Nodes are processors, edges are physical links. The structure is a plain
//! undirected graph stored as adjacency lists; topology constructors live in
//! [`crate::generators`].

use std::collections::VecDeque;
use std::fmt;

/// Identifier of a processing node (index into the topology's node array).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as `usize` for slice addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// What family a topology belongs to; carried for display and for
/// family-specific algorithm parameters (e.g. hypercube dimension exchange).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyKind {
    /// k-ary n-dimensional mesh (no wraparound).
    Mesh(Vec<usize>),
    /// k-ary n-dimensional torus (wraparound).
    Torus(Vec<usize>),
    /// n-dimensional hypercube (2ⁿ nodes).
    Hypercube(usize),
    /// Simple cycle.
    Ring,
    /// One hub connected to all leaves.
    Star,
    /// Complete graph.
    Complete,
    /// Balanced tree with the given arity.
    Tree(usize),
    /// Connected Erdős–Rényi-style random graph.
    Random,
    /// Built from an explicit edge list.
    Custom,
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyKind::Mesh(d) => write!(f, "mesh{d:?}"),
            TopologyKind::Torus(d) => write!(f, "torus{d:?}"),
            TopologyKind::Hypercube(n) => write!(f, "hypercube({n})"),
            TopologyKind::Ring => write!(f, "ring"),
            TopologyKind::Star => write!(f, "star"),
            TopologyKind::Complete => write!(f, "complete"),
            TopologyKind::Tree(a) => write!(f, "tree(arity {a})"),
            TopologyKind::Random => write!(f, "random"),
            TopologyKind::Custom => write!(f, "custom"),
        }
    }
}

/// An undirected interconnection network.
#[derive(Debug, Clone)]
pub struct Topology {
    kind: TopologyKind,
    adj: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl Topology {
    /// Builds a topology from adjacency lists. Neighbour lists are sorted and
    /// deduplicated; self-loops are removed.
    pub fn from_adjacency(kind: TopologyKind, mut adj: Vec<Vec<NodeId>>) -> Self {
        let n = adj.len() as u32;
        for (i, list) in adj.iter_mut().enumerate() {
            list.retain(|v| v.0 != i as u32 && v.0 < n);
            list.sort_unstable();
            list.dedup();
        }
        // Symmetrise: if u lists v, v must list u.
        let pairs: Vec<(u32, u32)> = adj
            .iter()
            .enumerate()
            .flat_map(|(u, list)| list.iter().map(move |v| (u as u32, v.0)))
            .collect();
        for (u, v) in pairs {
            let back = &mut adj[v as usize];
            if back.binary_search(&NodeId(u)).is_err() {
                let pos = back.partition_point(|x| x.0 < u);
                back.insert(pos, NodeId(u));
            }
        }
        let edge_count = adj.iter().map(|l| l.len()).sum::<usize>() / 2;
        Topology { kind, adj, edge_count }
    }

    /// Builds from an explicit edge list over `n` nodes.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!((u as usize) < n && (v as usize) < n, "edge endpoint out of range");
            adj[u as usize].push(NodeId(v));
            adj[v as usize].push(NodeId(u));
        }
        Topology::from_adjacency(TopologyKind::Custom, adj)
    }

    /// The topology family.
    pub fn kind(&self) -> &TopologyKind {
        &self.kind
    }

    pub(crate) fn kind_mut(&mut self) -> &mut TopologyKind {
        &mut self.kind
    }

    /// Number of nodes `|V|`.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges `|E|`.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len() as u32).map(NodeId)
    }

    /// Neighbours of `v`, sorted ascending.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v.idx()]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.idx()].len()
    }

    /// Maximum degree Δ.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(|l| l.len()).max().unwrap_or(0)
    }

    /// Whether `u` and `v` share an edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u.idx()].binary_search(&v).is_ok()
    }

    /// All undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.edge_count);
        for u in self.nodes() {
            for &v in self.neighbors(u) {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// BFS hop distances from `from`; unreachable nodes get `usize::MAX`.
    pub fn bfs_distances(&self, from: NodeId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.node_count()];
        let mut q = VecDeque::new();
        dist[from.idx()] = 0;
        q.push_back(from);
        while let Some(u) = q.pop_front() {
            let du = dist[u.idx()];
            for &v in self.neighbors(u) {
                if dist[v.idx()] == usize::MAX {
                    dist[v.idx()] = du + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// Whether the graph is connected (empty graphs count as connected).
    pub fn is_connected(&self) -> bool {
        if self.adj.is_empty() {
            return true;
        }
        self.bfs_distances(NodeId(0)).iter().all(|&d| d != usize::MAX)
    }

    /// The diameter (max over all pairs of hop distance); `None` when
    /// disconnected or empty.
    pub fn diameter(&self) -> Option<usize> {
        if self.adj.is_empty() {
            return None;
        }
        let mut best = 0;
        for u in self.nodes() {
            let d = self.bfs_distances(u);
            let m = *d.iter().max().unwrap();
            if m == usize::MAX {
                return None;
            }
            best = best.max(m);
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_builds_symmetric_adjacency() {
        let t = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.edge_count(), 2);
        assert!(t.has_edge(NodeId(0), NodeId(1)));
        assert!(t.has_edge(NodeId(1), NodeId(0)));
        assert!(!t.has_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn duplicate_and_self_edges_are_dropped() {
        let t = Topology::from_edges(2, &[(0, 1), (1, 0), (0, 0)]);
        assert_eq!(t.edge_count(), 1);
        assert_eq!(t.degree(NodeId(0)), 1);
    }

    #[test]
    fn one_sided_adjacency_is_symmetrised() {
        let adj = vec![vec![NodeId(1)], vec![]];
        let t = Topology::from_adjacency(TopologyKind::Custom, adj);
        assert!(t.has_edge(NodeId(1), NodeId(0)));
        assert_eq!(t.edge_count(), 1);
    }

    #[test]
    fn bfs_distances_on_path() {
        let t = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(t.bfs_distances(NodeId(0)), vec![0, 1, 2, 3]);
        assert_eq!(t.diameter(), Some(3));
    }

    #[test]
    fn disconnected_graph_detected() {
        let t = Topology::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!t.is_connected());
        assert_eq!(t.diameter(), None);
        assert_eq!(t.bfs_distances(NodeId(0))[2], usize::MAX);
    }

    #[test]
    fn edges_listed_once_each() {
        let t = Topology::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let e = t.edges();
        assert_eq!(e.len(), 3);
        for (u, v) in e {
            assert!(u < v);
        }
    }

    #[test]
    fn display_impls() {
        assert_eq!(NodeId(7).to_string(), "v7");
        assert_eq!(TopologyKind::Hypercube(3).to_string(), "hypercube(3)");
        assert_eq!(TopologyKind::Mesh(vec![4, 4]).to_string(), "mesh[4, 4]");
    }

    #[test]
    fn empty_graph_is_connected() {
        let t = Topology::from_edges(0, &[]);
        assert!(t.is_connected());
        assert_eq!(t.diameter(), None);
    }
}
