//! Edge colourings, used by the *dimension exchange* baseline: each colour
//! class is a matching, and one exchange sweep visits the classes in order
//! (on a hypercube the classes are exactly the dimensions).

use crate::graph::{NodeId, Topology, TopologyKind};

/// Partition of the edge set into matchings (colour classes).
#[derive(Debug, Clone)]
pub struct EdgeColoring {
    classes: Vec<Vec<(NodeId, NodeId)>>,
}

impl EdgeColoring {
    /// Colours the edges of `topo`.
    ///
    /// * Hypercubes get their natural dimension colouring (exactly `d`
    ///   classes);
    /// * everything else is coloured greedily (at most `2Δ − 1` classes).
    pub fn new(topo: &Topology) -> Self {
        if let TopologyKind::Hypercube(dim) = topo.kind() {
            let mut classes = vec![Vec::new(); *dim];
            for (u, v) in topo.edges() {
                let bit = (u.0 ^ v.0).trailing_zeros() as usize;
                classes[bit].push((u, v));
            }
            return EdgeColoring { classes };
        }
        let mut classes: Vec<Vec<(NodeId, NodeId)>> = Vec::new();
        // colour_used[c] tracks, per class, which nodes are already matched.
        let n = topo.node_count();
        let mut used: Vec<Vec<bool>> = Vec::new();
        for (u, v) in topo.edges() {
            let mut placed = false;
            for (c, class) in classes.iter_mut().enumerate() {
                if !used[c][u.idx()] && !used[c][v.idx()] {
                    class.push((u, v));
                    used[c][u.idx()] = true;
                    used[c][v.idx()] = true;
                    placed = true;
                    break;
                }
            }
            if !placed {
                let mut mask = vec![false; n];
                mask[u.idx()] = true;
                mask[v.idx()] = true;
                classes.push(vec![(u, v)]);
                used.push(mask);
            }
        }
        EdgeColoring { classes }
    }

    /// The colour classes, each a matching.
    pub fn classes(&self) -> &[Vec<(NodeId, NodeId)>] {
        &self.classes
    }

    /// Number of colours used.
    pub fn color_count(&self) -> usize {
        self.classes.len()
    }

    /// Checks the matching property of every class (used by tests and debug
    /// assertions).
    pub fn is_valid(&self, topo: &Topology) -> bool {
        let mut total = 0;
        for class in &self.classes {
            let mut seen = vec![false; topo.node_count()];
            for &(u, v) in class {
                if seen[u.idx()] || seen[v.idx()] || !topo.has_edge(u, v) {
                    return false;
                }
                seen[u.idx()] = true;
                seen[v.idx()] = true;
                total += 1;
            }
        }
        total == topo.edge_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypercube_uses_dimension_classes() {
        let t = Topology::hypercube(4);
        let c = EdgeColoring::new(&t);
        assert_eq!(c.color_count(), 4);
        assert!(c.is_valid(&t));
        // Each class has 2^(d−1) edges.
        for class in c.classes() {
            assert_eq!(class.len(), 8);
        }
    }

    #[test]
    fn mesh_coloring_valid_and_bounded() {
        let t = Topology::mesh(&[5, 5]);
        let c = EdgeColoring::new(&t);
        assert!(c.is_valid(&t));
        assert!(c.color_count() < 2 * t.max_degree());
    }

    #[test]
    fn ring_coloring() {
        let t = Topology::ring(6);
        let c = EdgeColoring::new(&t);
        assert!(c.is_valid(&t));
        assert!(c.color_count() >= 2);
    }

    #[test]
    fn odd_ring_needs_three_colors() {
        let t = Topology::ring(5);
        let c = EdgeColoring::new(&t);
        assert!(c.is_valid(&t));
        assert!(c.color_count() >= 3);
    }

    #[test]
    fn random_graph_coloring_valid() {
        let t = Topology::random(24, 0.15, 11);
        let c = EdgeColoring::new(&t);
        assert!(c.is_valid(&t));
    }

    #[test]
    fn classes_cover_all_edges_exactly_once() {
        let t = Topology::torus(&[4, 4]);
        let c = EdgeColoring::new(&t);
        let covered: usize = c.classes().iter().map(|cl| cl.len()).sum();
        assert_eq!(covered, t.edge_count());
    }
}
