//! The `M₂` mapping of §4.1: assign each network node a point in the 2-D
//! plane. Together with per-node load it yields the paper's `M₃` mapping to
//! a 3-D surface (the "yard" of the physical model).
//!
//! Meshes/tori embed on their natural grid; hypercubes use Gray-code
//! coordinates (each node's index split into two halves, Gray-decoded per
//! axis); rings embed on a circle; everything else falls back to BFS shells.

use crate::graph::{NodeId, Topology, TopologyKind};

/// A point of the ground plane (kept as a plain pair so this crate stays
/// independent of the physics crate's vector types).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
}

impl Point2 {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point2) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Gray code of `i`.
fn gray(i: usize) -> usize {
    i ^ (i >> 1)
}

/// Computes the `M₂` embedding: one ground-plane point per node.
pub fn embed(topo: &Topology) -> Vec<Point2> {
    let n = topo.node_count();
    match topo.kind() {
        TopologyKind::Mesh(dims) | TopologyKind::Torus(dims) if dims.len() <= 2 => (0..n)
            .map(|i| {
                let c = crate::generators::index_to_coords(i, dims);
                let x = c.first().copied().unwrap_or(0) as f64;
                let y = c.get(1).copied().unwrap_or(0) as f64;
                Point2::new(x, y)
            })
            .collect(),
        TopologyKind::Hypercube(dim) => {
            // Split the address bits into two halves; Gray-decode each half
            // so adjacent nodes stay close on the plane.
            let hi_bits = dim / 2;
            let lo_bits = dim - hi_bits;
            (0..n)
                .map(|i| {
                    let lo = i & ((1 << lo_bits) - 1);
                    let hi = i >> lo_bits;
                    Point2::new(gray(lo) as f64, gray(hi) as f64)
                })
                .collect()
        }
        TopologyKind::Ring => (0..n)
            .map(|i| {
                let a = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                let r = n as f64 / (2.0 * std::f64::consts::PI);
                Point2::new(r * a.cos(), r * a.sin())
            })
            .collect(),
        _ => bfs_shell_embedding(topo),
    }
}

/// Fallback layout: node 0 at the origin, BFS shells on concentric circles.
fn bfs_shell_embedding(topo: &Topology) -> Vec<Point2> {
    let n = topo.node_count();
    if n == 0 {
        return Vec::new();
    }
    let dist = topo.bfs_distances(NodeId(0));
    let max_d = dist.iter().copied().filter(|&d| d != usize::MAX).max().unwrap_or(0);
    let mut per_shell: Vec<Vec<usize>> = vec![Vec::new(); max_d + 2];
    for (i, &d) in dist.iter().enumerate() {
        let shell = if d == usize::MAX { max_d + 1 } else { d };
        per_shell[shell].push(i);
    }
    let mut pts = vec![Point2::default(); n];
    for (shell, members) in per_shell.iter().enumerate() {
        let count = members.len().max(1) as f64;
        for (k, &node) in members.iter().enumerate() {
            let a = 2.0 * std::f64::consts::PI * k as f64 / count;
            let r = shell as f64;
            pts[node] = Point2::new(r * a.cos(), r * a.sin());
        }
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_embedding_is_the_grid() {
        let t = Topology::mesh(&[3, 2]);
        let e = embed(&t);
        assert_eq!(e.len(), 6);
        // Node index = x*2 + y for dims [3,2].
        assert_eq!(e[0], Point2::new(0.0, 0.0));
        assert_eq!(e[1], Point2::new(0.0, 1.0));
        assert_eq!(e[2], Point2::new(1.0, 0.0));
        assert_eq!(e[5], Point2::new(2.0, 1.0));
    }

    #[test]
    fn mesh_neighbours_are_unit_distance() {
        let t = Topology::mesh(&[4, 4]);
        let e = embed(&t);
        for (u, v) in t.edges() {
            assert!((e[u.idx()].distance(&e[v.idx()]) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn hypercube_embedding_distinct_points() {
        let t = Topology::hypercube(4);
        let e = embed(&t);
        for i in 0..e.len() {
            for j in (i + 1)..e.len() {
                assert!(e[i].distance(&e[j]) > 1e-9, "nodes {i} and {j} collide at {:?}", e[i]);
            }
        }
    }

    #[test]
    fn hypercube_gray_neighbours_close() {
        // Gray-coded halves keep (many) neighbours at distance 1 on the grid;
        // all neighbours stay within the half-grid span.
        let t = Topology::hypercube(4);
        let e = embed(&t);
        for (u, v) in t.edges() {
            assert!(e[u.idx()].distance(&e[v.idx()]) <= 3.0);
        }
    }

    #[test]
    fn ring_embedding_on_circle() {
        let t = Topology::ring(8);
        let e = embed(&t);
        let r = 8.0 / (2.0 * std::f64::consts::PI);
        for p in &e {
            assert!(((p.x * p.x + p.y * p.y).sqrt() - r).abs() < 1e-9);
        }
        // Adjacent ring nodes are closer than opposite ones.
        assert!(e[0].distance(&e[1]) < e[0].distance(&e[4]));
    }

    #[test]
    fn fallback_embedding_distinct_for_random() {
        let t = Topology::random(20, 0.1, 3);
        let e = embed(&t);
        assert_eq!(e.len(), 20);
        for i in 0..e.len() {
            for j in (i + 1)..e.len() {
                assert!(e[i].distance(&e[j]) > 1e-9, "{i} vs {j}");
            }
        }
    }

    #[test]
    fn point_distance() {
        assert_eq!(Point2::new(0.0, 0.0).distance(&Point2::new(3.0, 4.0)), 5.0);
    }
}
