//! Laplacian spectrum estimation, used to derive the *optimal first-order
//! diffusion parameter* `α_opt = 2/(λ₂ + λ_max)` (Xu & Lau 1994) for the
//! diffusion baseline on any topology.
//!
//! Eigenvalues are obtained with plain power iteration: `λ_max` directly on
//! `L`, and `λ₂` (the smallest non-zero eigenvalue, the algebraic
//! connectivity) by power iteration on `λ_max·I − L` restricted to the
//! subspace orthogonal to the constant vector.

use crate::graph::Topology;

/// Multiplies the graph Laplacian by `x` into `out`.
fn laplacian_mul(topo: &Topology, x: &[f64], out: &mut [f64]) {
    for u in topo.nodes() {
        let mut acc = topo.degree(u) as f64 * x[u.idx()];
        for &v in topo.neighbors(u) {
            acc -= x[v.idx()];
        }
        out[u.idx()] = acc;
    }
}

fn normalize(x: &mut [f64]) -> f64 {
    let n = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if n > 0.0 {
        for v in x.iter_mut() {
            *v /= n;
        }
    }
    n
}

fn project_out_constant(x: &mut [f64]) {
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    for v in x.iter_mut() {
        *v -= mean;
    }
}

/// Deterministic pseudo-random start vector (golden-ratio hashing of the
/// index) — keeps the crate free of an RNG dependency here and the results
/// reproducible.
fn start_vector(n: usize, salt: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(salt.wrapping_mul(0xD1B5_4A32_D192_ED03));
            // Map to (-0.5, 0.5).
            (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

/// Estimates the largest Laplacian eigenvalue `λ_max`.
pub fn lambda_max(topo: &Topology, iterations: usize) -> f64 {
    let n = topo.node_count();
    if n == 0 {
        return 0.0;
    }
    let mut x = start_vector(n, 1);
    normalize(&mut x);
    let mut y = vec![0.0; n];
    let mut lambda = 0.0;
    for _ in 0..iterations {
        laplacian_mul(topo, &x, &mut y);
        lambda = normalize(&mut y);
        std::mem::swap(&mut x, &mut y);
    }
    lambda
}

/// Estimates the algebraic connectivity `λ₂` (smallest non-zero eigenvalue).
/// Requires a connected topology with ≥ 2 nodes.
pub fn lambda_2(topo: &Topology, iterations: usize) -> f64 {
    let n = topo.node_count();
    assert!(n >= 2, "λ₂ needs at least two nodes");
    let lmax = lambda_max(topo, iterations).max(f64::EPSILON);
    // Power-iterate M = (λ_max·I − L) orthogonal to the constant vector; its
    // dominant eigenvalue there is λ_max − λ₂.
    let mut x = start_vector(n, 2);
    project_out_constant(&mut x);
    normalize(&mut x);
    let mut y = vec![0.0; n];
    let mut nu = 0.0;
    for _ in 0..iterations {
        laplacian_mul(topo, &x, &mut y);
        for i in 0..n {
            y[i] = lmax * x[i] - y[i];
        }
        project_out_constant(&mut y);
        nu = normalize(&mut y);
        std::mem::swap(&mut x, &mut y);
    }
    (lmax - nu).max(0.0)
}

/// The optimal first-order diffusion parameter `α_opt = 2/(λ₂ + λ_max)`
/// (Xu & Lau). Guarantees the fastest asymptotic convergence of the FOS
/// diffusion scheme on this topology.
pub fn optimal_diffusion_alpha(topo: &Topology, iterations: usize) -> f64 {
    let lmax = lambda_max(topo, iterations);
    let l2 = lambda_2(topo, iterations);
    2.0 / (l2 + lmax)
}

/// A safe (always convergent, possibly slower) diffusion parameter:
/// `1/(Δ+1)` with Δ the maximum degree — the classical Cybenko choice.
pub fn safe_diffusion_alpha(topo: &Topology) -> f64 {
    1.0 / (topo.max_degree() as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ITERS: usize = 3000;

    #[test]
    fn hypercube_spectrum_known() {
        // Laplacian eigenvalues of Q_d are 2k (k = 0..d): λ₂ = 2, λ_max = 2d.
        let t = Topology::hypercube(4);
        assert!((lambda_max(&t, ITERS) - 8.0).abs() < 1e-6);
        assert!((lambda_2(&t, ITERS) - 2.0).abs() < 1e-4);
        // Hence α_opt = 2/(2+8) = 0.2, the known 1/(d+1) for hypercubes.
        assert!((optimal_diffusion_alpha(&t, ITERS) - 0.2).abs() < 1e-4);
    }

    #[test]
    fn complete_graph_spectrum() {
        // K_n has eigenvalues 0 and n (multiplicity n−1).
        let t = Topology::complete(6);
        assert!((lambda_max(&t, ITERS) - 6.0).abs() < 1e-6);
        assert!((lambda_2(&t, ITERS) - 6.0).abs() < 1e-4);
    }

    #[test]
    fn ring_spectrum_known() {
        // C_n eigenvalues: 2 − 2cos(2πk/n); for n = 8: λ₂ = 2−2cos(π/4),
        // λ_max = 4.
        let t = Topology::ring(8);
        let l2_expected = 2.0 - 2.0 * (std::f64::consts::PI / 4.0).cos();
        assert!((lambda_max(&t, ITERS) - 4.0).abs() < 1e-5);
        assert!((lambda_2(&t, ITERS) - l2_expected).abs() < 1e-4);
    }

    #[test]
    fn path_lambda2_below_ring() {
        // Cutting the ring halves connectivity: λ₂(path) < λ₂(ring).
        let ring = Topology::ring(8);
        let path = Topology::mesh(&[8]);
        assert!(lambda_2(&path, ITERS) < lambda_2(&ring, ITERS));
    }

    #[test]
    fn star_lambda_max_is_n() {
        // Star K_{1,n−1}: λ_max = n.
        let t = Topology::star(7);
        assert!((lambda_max(&t, ITERS) - 7.0).abs() < 1e-5);
    }

    #[test]
    fn safe_alpha_below_one_over_degree() {
        let t = Topology::torus(&[4, 4]);
        let a = safe_diffusion_alpha(&t);
        assert!((a - 0.2).abs() < 1e-12); // Δ = 4 ⇒ 1/5
    }

    #[test]
    fn optimal_alpha_is_stable_across_calls() {
        let t = Topology::mesh(&[5, 5]);
        let a = optimal_diffusion_alpha(&t, ITERS);
        let b = optimal_diffusion_alpha(&t, ITERS);
        assert_eq!(a, b);
        assert!(a > 0.0 && a < 1.0);
    }
}
