//! An edge-indexed bitset over a topology's stable edge ids.
//!
//! Replaces hash-set membership (`HashSet<(u32, u32)>`) for per-edge state
//! like dynamic link faults: one bit per undirected edge, addressed by
//! [`EdgeId`], so the balance-tick hot path checks link state with a shift
//! and a mask instead of hashing a node pair.

use crate::graph::EdgeId;

/// A fixed-capacity bitset keyed by [`EdgeId`].
#[derive(Debug, Clone, Default)]
pub struct EdgeBitSet {
    words: Vec<u64>,
    len: usize,
    ones: usize,
}

impl EdgeBitSet {
    /// An empty set over `len` edges (ids `0..len`).
    pub fn new(len: usize) -> Self {
        EdgeBitSet { words: vec![0; len.div_ceil(64)], len, ones: 0 }
    }

    /// Capacity in edges.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the capacity is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn loc(&self, e: EdgeId) -> (usize, u64) {
        debug_assert!(e.idx() < self.len, "edge id {e} out of range {}", self.len);
        (e.idx() / 64, 1u64 << (e.idx() % 64))
    }

    /// Whether the edge's bit is set.
    #[inline]
    pub fn contains(&self, e: EdgeId) -> bool {
        let (w, m) = self.loc(e);
        self.words[w] & m != 0
    }

    /// Sets the edge's bit; returns `true` if it was newly set.
    #[inline]
    pub fn insert(&mut self, e: EdgeId) -> bool {
        let (w, m) = self.loc(e);
        let fresh = self.words[w] & m == 0;
        self.words[w] |= m;
        self.ones += usize::from(fresh);
        fresh
    }

    /// Clears the edge's bit; returns `true` if it was set.
    #[inline]
    pub fn remove(&mut self, e: EdgeId) -> bool {
        let (w, m) = self.loc(e);
        let was = self.words[w] & m != 0;
        self.words[w] &= !m;
        self.ones -= usize::from(was);
        was
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.ones
    }

    /// Whether no bit is set.
    pub fn none_set(&self) -> bool {
        self.ones == 0
    }

    /// Clears every bit, keeping capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.ones = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = EdgeBitSet::new(130);
        assert_eq!(s.len(), 130);
        assert!(!s.contains(EdgeId(0)));
        assert!(s.insert(EdgeId(0)));
        assert!(!s.insert(EdgeId(0)), "second insert is a no-op");
        assert!(s.insert(EdgeId(64)));
        assert!(s.insert(EdgeId(129)));
        assert_eq!(s.count(), 3);
        assert!(s.contains(EdgeId(64)));
        assert!(s.remove(EdgeId(64)));
        assert!(!s.remove(EdgeId(64)));
        assert_eq!(s.count(), 2);
        assert!(!s.contains(EdgeId(64)));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = EdgeBitSet::new(10);
        s.insert(EdgeId(3));
        s.insert(EdgeId(9));
        s.clear();
        assert_eq!(s.count(), 0);
        assert!(s.none_set());
        assert_eq!(s.len(), 10);
        assert!(!s.contains(EdgeId(3)));
    }

    #[test]
    fn zero_capacity() {
        let s = EdgeBitSet::new(0);
        assert!(s.is_empty());
        assert!(s.none_set());
    }
}
