//! An edge-indexed bitset over a topology's stable edge ids.
//!
//! Replaces hash-set membership (`HashSet<(u32, u32)>`) for per-edge state
//! like dynamic link faults: one bit per undirected edge, addressed by
//! [`EdgeId`], so the balance-tick hot path checks link state with a shift
//! and a mask instead of hashing a node pair.

use crate::graph::EdgeId;

/// A fixed-capacity bitset keyed by [`EdgeId`].
#[derive(Debug, Clone, Default)]
pub struct EdgeBitSet {
    words: Vec<u64>,
    len: usize,
    ones: usize,
}

impl EdgeBitSet {
    /// An empty set over `len` edges (ids `0..len`).
    pub fn new(len: usize) -> Self {
        EdgeBitSet { words: vec![0; len.div_ceil(64)], len, ones: 0 }
    }

    /// Capacity in edges.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the capacity is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn loc(&self, e: EdgeId) -> (usize, u64) {
        debug_assert!(e.idx() < self.len, "edge id {e} out of range {}", self.len);
        (e.idx() / 64, 1u64 << (e.idx() % 64))
    }

    /// Whether the edge's bit is set.
    #[inline]
    pub fn contains(&self, e: EdgeId) -> bool {
        let (w, m) = self.loc(e);
        self.words[w] & m != 0
    }

    /// Sets the edge's bit; returns `true` if it was newly set.
    #[inline]
    pub fn insert(&mut self, e: EdgeId) -> bool {
        let (w, m) = self.loc(e);
        let fresh = self.words[w] & m == 0;
        self.words[w] |= m;
        self.ones += usize::from(fresh);
        fresh
    }

    /// Clears the edge's bit; returns `true` if it was set.
    #[inline]
    pub fn remove(&mut self, e: EdgeId) -> bool {
        let (w, m) = self.loc(e);
        let was = self.words[w] & m != 0;
        self.words[w] &= !m;
        self.ones -= usize::from(was);
        was
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.ones
    }

    /// Whether no bit is set.
    pub fn none_set(&self) -> bool {
        self.ones == 0
    }

    /// Clears every bit, keeping capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.ones = 0;
    }

    /// The raw 64-bit backing words (checkpoint plumbing; pair with
    /// [`EdgeBitSet::from_words`]).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a set over `len` edges from captured [`EdgeBitSet::words`].
    /// Validates instead of panicking (the words may come from an untrusted
    /// checkpoint file): the word count must match the capacity and no bit
    /// beyond `len` may be set. The popcount is recomputed.
    pub fn from_words(len: usize, words: Vec<u64>) -> Result<Self, String> {
        if words.len() != len.div_ceil(64) {
            return Err(format!(
                "bitset over {len} edges needs {} words, got {}",
                len.div_ceil(64),
                words.len()
            ));
        }
        if !len.is_multiple_of(64) {
            if let Some(&last) = words.last() {
                if last >> (len % 64) != 0 {
                    return Err(format!("bitset has bits set beyond edge capacity {len}"));
                }
            }
        }
        let ones = words.iter().map(|w| w.count_ones() as usize).sum();
        Ok(EdgeBitSet { words, len, ones })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = EdgeBitSet::new(130);
        assert_eq!(s.len(), 130);
        assert!(!s.contains(EdgeId(0)));
        assert!(s.insert(EdgeId(0)));
        assert!(!s.insert(EdgeId(0)), "second insert is a no-op");
        assert!(s.insert(EdgeId(64)));
        assert!(s.insert(EdgeId(129)));
        assert_eq!(s.count(), 3);
        assert!(s.contains(EdgeId(64)));
        assert!(s.remove(EdgeId(64)));
        assert!(!s.remove(EdgeId(64)));
        assert_eq!(s.count(), 2);
        assert!(!s.contains(EdgeId(64)));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = EdgeBitSet::new(10);
        s.insert(EdgeId(3));
        s.insert(EdgeId(9));
        s.clear();
        assert_eq!(s.count(), 0);
        assert!(s.none_set());
        assert_eq!(s.len(), 10);
        assert!(!s.contains(EdgeId(3)));
    }

    #[test]
    fn zero_capacity() {
        let s = EdgeBitSet::new(0);
        assert!(s.is_empty());
        assert!(s.none_set());
    }

    #[test]
    fn words_round_trip() {
        let mut s = EdgeBitSet::new(100);
        for e in [0u32, 63, 64, 99] {
            s.insert(EdgeId(e));
        }
        let r = EdgeBitSet::from_words(100, s.words().to_vec()).expect("valid words");
        assert_eq!(r.count(), 4);
        for e in [0u32, 63, 64, 99] {
            assert!(r.contains(EdgeId(e)));
        }
        assert!(!r.contains(EdgeId(1)));
    }

    #[test]
    fn from_words_rejects_bad_shapes() {
        // Wrong word count.
        assert!(EdgeBitSet::from_words(100, vec![0; 1]).is_err());
        assert!(EdgeBitSet::from_words(100, vec![0; 3]).is_err());
        // A bit beyond the capacity (edge 100 in a 100-edge set).
        let mut words = vec![0u64; 2];
        words[1] = 1 << (100 % 64);
        assert!(EdgeBitSet::from_words(100, words).is_err());
        // Exact multiples of 64 have no tail to validate.
        assert!(EdgeBitSet::from_words(128, vec![u64::MAX; 2]).is_ok());
    }
}
