//! Declarative topology selection: a small, validatable description of
//! which generator to run with which parameters, so experiment harnesses
//! (`pp-scenario`, `pp-lab`) can name a network instead of hand-wiring a
//! constructor call. Mirrors the constructors in [`crate::generators`].

use crate::graph::Topology;

/// A generator choice plus its parameters. [`TopologySpec::build`] runs the
/// corresponding constructor from [`crate::generators`].
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySpec {
    /// k-ary n-dimensional mesh (no wraparound).
    Mesh {
        /// Extent per dimension, e.g. `[8, 8]`.
        dims: Vec<usize>,
    },
    /// k-ary n-dimensional torus (wraparound).
    Torus {
        /// Extent per dimension.
        dims: Vec<usize>,
    },
    /// n-dimensional hypercube (`2^dim` nodes).
    Hypercube {
        /// Dimension.
        dim: usize,
    },
    /// Simple cycle of `n ≥ 3` nodes.
    Ring {
        /// Node count.
        n: usize,
    },
    /// Hub-and-leaves star on `n ≥ 2` nodes.
    Star {
        /// Node count.
        n: usize,
    },
    /// Complete graph on `n` nodes.
    Complete {
        /// Node count.
        n: usize,
    },
    /// Balanced tree: each internal node has `arity` children.
    Tree {
        /// Children per internal node.
        arity: usize,
        /// Levels below the root (0 = a single root).
        depth: usize,
    },
    /// Connected seeded random graph (spanning tree + extra edges with
    /// probability `p`).
    Random {
        /// Node count (≥ 2).
        n: usize,
        /// Extra-edge probability.
        p: f64,
        /// Generator seed.
        seed: u64,
    },
    /// Barabási–Albert preferential-attachment scale-free graph.
    ScaleFree {
        /// Node count (> m).
        n: usize,
        /// Edges each new node attaches with (≥ 1).
        m: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Random geometric graph on the unit square, augmented to
    /// connectivity.
    Geometric {
        /// Node count (≥ 2).
        n: usize,
        /// Link radius (> 0).
        radius: f64,
        /// Generator seed.
        seed: u64,
    },
}

impl TopologySpec {
    /// Checks parameter ranges without building the (possibly large) graph.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            TopologySpec::Mesh { dims } | TopologySpec::Torus { dims } => {
                if dims.is_empty() {
                    return Err("grid needs at least one dimension".into());
                }
                if dims.contains(&0) {
                    return Err("grid dimensions must be ≥ 1".into());
                }
            }
            TopologySpec::Hypercube { dim } => {
                if *dim == 0 {
                    return Err("hypercube dimension must be ≥ 1 (dim 0 is a single \
                                isolated node)"
                        .into());
                }
                if *dim > 20 {
                    return Err(format!("hypercube dimension {dim} unreasonably large"));
                }
            }
            TopologySpec::Ring { n } => {
                if *n < 3 {
                    return Err("a ring needs at least 3 nodes".into());
                }
            }
            TopologySpec::Star { n } => {
                if *n < 2 {
                    return Err("a star needs at least 2 nodes".into());
                }
            }
            TopologySpec::Complete { n } => {
                if *n == 0 {
                    return Err("a complete graph needs at least 1 node".into());
                }
            }
            TopologySpec::Tree { arity, .. } => {
                if *arity == 0 {
                    return Err("tree arity must be ≥ 1".into());
                }
            }
            TopologySpec::Random { n, p, .. } => {
                if *n < 2 {
                    return Err("a random graph needs at least 2 nodes".into());
                }
                if !(0.0..=1.0).contains(p) {
                    return Err(format!("random edge probability {p} not in [0, 1]"));
                }
            }
            TopologySpec::ScaleFree { n, m, .. } => {
                if *m == 0 {
                    return Err("scale-free attachment count m must be ≥ 1".into());
                }
                if *n <= *m {
                    return Err(format!("scale-free graph needs n > m (n={n}, m={m})"));
                }
            }
            TopologySpec::Geometric { n, radius, .. } => {
                if *n < 2 {
                    return Err("a geometric graph needs at least 2 nodes".into());
                }
                if !(*radius > 0.0 && radius.is_finite()) {
                    return Err(format!("geometric radius {radius} must be finite and > 0"));
                }
            }
        }
        Ok(())
    }

    /// Number of nodes the built topology will have.
    pub fn node_count(&self) -> usize {
        match self {
            TopologySpec::Mesh { dims } | TopologySpec::Torus { dims } => dims.iter().product(),
            TopologySpec::Hypercube { dim } => 1usize << dim,
            TopologySpec::Ring { n } | TopologySpec::Star { n } | TopologySpec::Complete { n } => {
                *n
            }
            TopologySpec::Tree { arity, depth } => {
                // 1 + a + a² + … + a^depth.
                let mut total = 1usize;
                let mut level = 1usize;
                for _ in 0..*depth {
                    level *= arity;
                    total += level;
                }
                total
            }
            TopologySpec::Random { n, .. }
            | TopologySpec::ScaleFree { n, .. }
            | TopologySpec::Geometric { n, .. } => *n,
        }
    }

    /// Runs the generator.
    ///
    /// # Panics
    /// Panics on invalid parameters; call [`TopologySpec::validate`] first
    /// for a `Result`.
    pub fn build(&self) -> Topology {
        match self {
            TopologySpec::Mesh { dims } => Topology::mesh(dims),
            TopologySpec::Torus { dims } => Topology::torus(dims),
            TopologySpec::Hypercube { dim } => Topology::hypercube(*dim),
            TopologySpec::Ring { n } => Topology::ring(*n),
            TopologySpec::Star { n } => Topology::star(*n),
            TopologySpec::Complete { n } => Topology::complete(*n),
            TopologySpec::Tree { arity, depth } => Topology::tree(*arity, *depth),
            TopologySpec::Random { n, p, seed } => Topology::random(*n, *p, *seed),
            TopologySpec::ScaleFree { n, m, seed } => Topology::scale_free(*n, *m, *seed),
            TopologySpec::Geometric { n, radius, seed } => {
                Topology::random_geometric(*n, *radius, *seed)
            }
        }
    }

    /// Short human-readable label, e.g. `torus 8x8` or `random 64 (p=0.05)`.
    pub fn label(&self) -> String {
        fn dims_label(dims: &[usize]) -> String {
            dims.iter().map(usize::to_string).collect::<Vec<_>>().join("x")
        }
        match self {
            TopologySpec::Mesh { dims } => format!("mesh {}", dims_label(dims)),
            TopologySpec::Torus { dims } => format!("torus {}", dims_label(dims)),
            TopologySpec::Hypercube { dim } => format!("hypercube {dim}"),
            TopologySpec::Ring { n } => format!("ring {n}"),
            TopologySpec::Star { n } => format!("star {n}"),
            TopologySpec::Complete { n } => format!("complete {n}"),
            TopologySpec::Tree { arity, depth } => format!("tree {arity}^{depth}"),
            TopologySpec::Random { n, p, .. } => format!("random {n} (p={p})"),
            TopologySpec::ScaleFree { n, m, .. } => format!("scale-free {n} (m={m})"),
            TopologySpec::Geometric { n, radius, .. } => format!("geometric {n} (r={radius})"),
        }
    }
}

impl serde::Serialize for TopologySpec {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        let tagged = |kind: &str, mut fields: Vec<(String, Value)>| {
            let mut entries = vec![("kind".to_string(), Value::Str(kind.to_string()))];
            entries.append(&mut fields);
            Value::Object(entries)
        };
        match self {
            TopologySpec::Mesh { dims } => {
                tagged("mesh", vec![("dims".to_string(), dims.to_value())])
            }
            TopologySpec::Torus { dims } => {
                tagged("torus", vec![("dims".to_string(), dims.to_value())])
            }
            TopologySpec::Hypercube { dim } => {
                tagged("hypercube", vec![("dim".to_string(), dim.to_value())])
            }
            TopologySpec::Ring { n } => tagged("ring", vec![("n".to_string(), n.to_value())]),
            TopologySpec::Star { n } => tagged("star", vec![("n".to_string(), n.to_value())]),
            TopologySpec::Complete { n } => {
                tagged("complete", vec![("n".to_string(), n.to_value())])
            }
            TopologySpec::Tree { arity, depth } => tagged(
                "tree",
                vec![
                    ("arity".to_string(), arity.to_value()),
                    ("depth".to_string(), depth.to_value()),
                ],
            ),
            TopologySpec::Random { n, p, seed } => tagged(
                "random",
                vec![
                    ("n".to_string(), n.to_value()),
                    ("p".to_string(), p.to_value()),
                    ("seed".to_string(), seed.to_value()),
                ],
            ),
            TopologySpec::ScaleFree { n, m, seed } => tagged(
                "scale-free",
                vec![
                    ("n".to_string(), n.to_value()),
                    ("m".to_string(), m.to_value()),
                    ("seed".to_string(), seed.to_value()),
                ],
            ),
            TopologySpec::Geometric { n, radius, seed } => tagged(
                "geometric",
                vec![
                    ("n".to_string(), n.to_value()),
                    ("radius".to_string(), radius.to_value()),
                    ("seed".to_string(), seed.to_value()),
                ],
            ),
        }
    }
}

impl serde::Deserialize for TopologySpec {
    fn from_value(v: &serde::Value) -> Result<Self, String> {
        let kind: String = v.field("kind")?;
        match kind.as_str() {
            "mesh" => Ok(TopologySpec::Mesh { dims: v.field("dims")? }),
            "torus" => Ok(TopologySpec::Torus { dims: v.field("dims")? }),
            "hypercube" => Ok(TopologySpec::Hypercube { dim: v.field("dim")? }),
            "ring" => Ok(TopologySpec::Ring { n: v.field("n")? }),
            "star" => Ok(TopologySpec::Star { n: v.field("n")? }),
            "complete" => Ok(TopologySpec::Complete { n: v.field("n")? }),
            "tree" => Ok(TopologySpec::Tree { arity: v.field("arity")?, depth: v.field("depth")? }),
            "random" => Ok(TopologySpec::Random {
                n: v.field("n")?,
                p: v.field("p")?,
                seed: v.field("seed")?,
            }),
            "scale-free" => Ok(TopologySpec::ScaleFree {
                n: v.field("n")?,
                m: v.field("m")?,
                seed: v.field("seed")?,
            }),
            "geometric" => Ok(TopologySpec::Geometric {
                n: v.field("n")?,
                radius: v.field("radius")?,
                seed: v.field("seed")?,
            }),
            other => Err(format!("unknown topology kind `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_matches_direct_constructors() {
        let cases = vec![
            (TopologySpec::Mesh { dims: vec![3, 4] }, Topology::mesh(&[3, 4])),
            (TopologySpec::Torus { dims: vec![4, 4] }, Topology::torus(&[4, 4])),
            (TopologySpec::Hypercube { dim: 3 }, Topology::hypercube(3)),
            (TopologySpec::Ring { n: 7 }, Topology::ring(7)),
            (TopologySpec::Star { n: 5 }, Topology::star(5)),
            (TopologySpec::Complete { n: 5 }, Topology::complete(5)),
            (TopologySpec::Tree { arity: 2, depth: 3 }, Topology::tree(2, 3)),
            (TopologySpec::Random { n: 16, p: 0.1, seed: 3 }, Topology::random(16, 0.1, 3)),
            (TopologySpec::ScaleFree { n: 24, m: 2, seed: 3 }, Topology::scale_free(24, 2, 3)),
            (
                TopologySpec::Geometric { n: 24, radius: 0.3, seed: 3 },
                Topology::random_geometric(24, 0.3, 3),
            ),
        ];
        for (spec, direct) in cases {
            spec.validate().expect("valid spec");
            let built = spec.build();
            assert_eq!(built.node_count(), direct.node_count(), "{}", spec.label());
            assert_eq!(built.edges(), direct.edges(), "{}", spec.label());
            assert_eq!(spec.node_count(), direct.node_count(), "{}", spec.label());
        }
    }

    #[test]
    fn tree_node_count_closed_form() {
        for (arity, depth) in [(1, 4), (2, 0), (2, 3), (3, 2)] {
            let spec = TopologySpec::Tree { arity, depth };
            assert_eq!(spec.node_count(), spec.build().node_count(), "arity {arity} depth {depth}");
        }
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(TopologySpec::Mesh { dims: vec![] }.validate().is_err());
        assert!(TopologySpec::Torus { dims: vec![4, 0] }.validate().is_err());
        assert!(TopologySpec::Hypercube { dim: 64 }.validate().is_err());
        assert!(TopologySpec::Ring { n: 2 }.validate().is_err());
        assert!(TopologySpec::Star { n: 1 }.validate().is_err());
        assert!(TopologySpec::Tree { arity: 0, depth: 2 }.validate().is_err());
        assert!(TopologySpec::Random { n: 8, p: 1.5, seed: 0 }.validate().is_err());
        assert!(TopologySpec::Random { n: 1, p: 0.5, seed: 0 }.validate().is_err());
        assert!(TopologySpec::ScaleFree { n: 8, m: 0, seed: 0 }.validate().is_err());
        assert!(TopologySpec::ScaleFree { n: 3, m: 3, seed: 0 }.validate().is_err());
        assert!(TopologySpec::Geometric { n: 1, radius: 0.3, seed: 0 }.validate().is_err());
        assert!(TopologySpec::Geometric { n: 8, radius: 0.0, seed: 0 }.validate().is_err());
        assert!(TopologySpec::Geometric { n: 8, radius: f64::NAN, seed: 0 }.validate().is_err());
    }

    #[test]
    fn degenerate_hypercube_rejected() {
        // dim 0 is a single isolated node: dimension exchange's edge
        // coloring has no classes to cycle through, so the spec layer
        // refuses to describe it rather than let every downstream balancer
        // define its own behavior.
        let err = TopologySpec::Hypercube { dim: 0 }.validate().unwrap_err();
        assert!(err.contains("≥ 1"), "got: {err}");
        assert!(TopologySpec::Hypercube { dim: 1 }.validate().is_ok());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TopologySpec::Torus { dims: vec![8, 8] }.label(), "torus 8x8");
        assert_eq!(TopologySpec::Hypercube { dim: 6 }.label(), "hypercube 6");
        assert_eq!(TopologySpec::Random { n: 64, p: 0.05, seed: 1 }.label(), "random 64 (p=0.05)");
        assert_eq!(TopologySpec::ScaleFree { n: 64, m: 2, seed: 1 }.label(), "scale-free 64 (m=2)");
        assert_eq!(
            TopologySpec::Geometric { n: 64, radius: 0.2, seed: 1 }.label(),
            "geometric 64 (r=0.2)"
        );
    }
}
