//! Contours, peaks and escape radii (Definitions 1–3 and Fig. 3).
//!
//! A *contour* is a region of the ground plane; its *peak* `P_c` is the
//! maximum surface height inside it, and the *escape radius* `r_{c,p}` of a
//! point `p` is the minimum ground distance from `p` to a point outside the
//! region. Theorem 1 and Corollary 3 relate these quantities to the object's
//! potential height `h*` and the kinetic friction `µ_k`.

use crate::surface::Surface;
use crate::vec::Vec2;
use std::collections::{HashSet, VecDeque};

/// A region of the ground plane, discretised as a set of grid cells of side
/// `cell` anchored at the origin (cell `(i, j)` covers
/// `[i·cell, (i+1)·cell) × [j·cell, (j+1)·cell)`).
#[derive(Debug, Clone)]
pub struct Contour {
    cells: HashSet<(i64, i64)>,
    cell: f64,
}

impl Contour {
    /// Builds a contour from an explicit cell set.
    pub fn from_cells(cells: HashSet<(i64, i64)>, cell: f64) -> Self {
        assert!(cell > 0.0, "cell size must be positive");
        Contour { cells, cell }
    }

    /// A disc of the given radius around `center` (cells whose centres fall
    /// inside the disc).
    pub fn disc(center: Vec2, radius: f64, cell: f64) -> Self {
        assert!(radius > 0.0 && cell > 0.0);
        let mut cells = HashSet::new();
        let r_cells = (radius / cell).ceil() as i64 + 1;
        let ci = (center.x / cell).floor() as i64;
        let cj = (center.y / cell).floor() as i64;
        for j in (cj - r_cells)..=(cj + r_cells) {
            for i in (ci - r_cells)..=(ci + r_cells) {
                if Self::cell_center(i, j, cell).distance(center) <= radius {
                    cells.insert((i, j));
                }
            }
        }
        Contour { cells, cell }
    }

    /// The *basin* of `p` below level `level`: the connected set of cells
    /// (4-neighbourhood) reachable from `p`'s cell through cells whose centre
    /// height is `< level`, bounded to a search box of `max_cells` per axis.
    ///
    /// This is the natural contour in which an object with potential height
    /// below `level` is confined: leaving the basin requires climbing to
    /// `level` or above.
    pub fn basin<S: Surface>(surface: &S, p: Vec2, level: f64, cell: f64, max_cells: i64) -> Self {
        let start = ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64);
        let mut cells = HashSet::new();
        let mut queue = VecDeque::new();
        let h0 = surface.height(Self::cell_center(start.0, start.1, cell));
        if h0 < level {
            cells.insert(start);
            queue.push_back(start);
        }
        while let Some((i, j)) = queue.pop_front() {
            for (di, dj) in [(1, 0), (-1, 0), (0, 1), (0, -1)] {
                let n = (i + di, j + dj);
                if (n.0 - start.0).abs() > max_cells || (n.1 - start.1).abs() > max_cells {
                    continue;
                }
                if cells.contains(&n) {
                    continue;
                }
                let h = surface.height(Self::cell_center(n.0, n.1, cell));
                if h < level {
                    cells.insert(n);
                    queue.push_back(n);
                }
            }
        }
        Contour { cells, cell }
    }

    fn cell_center(i: i64, j: i64, cell: f64) -> Vec2 {
        Vec2::new((i as f64 + 0.5) * cell, (j as f64 + 0.5) * cell)
    }

    /// Cell side length.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Number of cells in the region.
    pub fn area_cells(&self) -> usize {
        self.cells.len()
    }

    /// Whether the ground point `p` lies inside the contour.
    pub fn contains(&self, p: Vec2) -> bool {
        let i = (p.x / self.cell).floor() as i64;
        let j = (p.y / self.cell).floor() as i64;
        self.cells.contains(&(i, j))
    }

    /// Definition 2 — the peak `P_c`: maximum surface height over the region
    /// (sampled at cell centres). Returns `f64::NEG_INFINITY` for an empty
    /// region.
    pub fn peak<S: Surface>(&self, surface: &S) -> f64 {
        self.cells
            .iter()
            .map(|&(i, j)| surface.height(Self::cell_center(i, j, self.cell)))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Definition 3 — the escape radius `r_{c,p}`: minimum ground distance
    /// from `p` to a point outside the contour. Computed as the distance to
    /// the nearest boundary cell's outer edge (cell-centre approximation,
    /// accurate to one cell). Returns `0` if `p` is already outside.
    pub fn escape_radius(&self, p: Vec2) -> f64 {
        if !self.contains(p) {
            return 0.0;
        }
        // A cell is a boundary cell if one of its 4-neighbours is outside.
        let mut best = f64::INFINITY;
        for &(i, j) in &self.cells {
            let is_boundary = [(1, 0), (-1, 0), (0, 1), (0, -1)]
                .iter()
                .any(|&(di, dj)| !self.cells.contains(&(i + di, j + dj)));
            if is_boundary {
                // Distance to the far edge of the boundary cell (the first
                // point guaranteed outside is at most one cell beyond its
                // centre).
                let d = Self::cell_center(i, j, self.cell).distance(p) + self.cell;
                best = best.min(d);
            }
        }
        if best.is_finite() {
            best
        } else {
            0.0
        }
    }
}

/// Theorem 1: an object at `p` with potential height `h_star` is **not**
/// trapped in contour `c` if `P_c ≤ h* − µ_k·r_{c,p}` — after paying the
/// friction toll for the shortest escape path it can still climb the
/// region's highest hill.
#[inline]
pub fn escape_possible(peak: f64, h_star: f64, mu_k: f64, escape_radius: f64) -> bool {
    peak <= h_star - mu_k * escape_radius
}

/// Corollary 3: the object is trapped in **any** contour whose escape radius
/// exceeds `h*/µ_k` — friction alone exhausts its energy budget within that
/// radius. For `µ_k = 0` the bound is infinite (never trapped by radius,
/// Corollary 1).
#[inline]
pub fn trapping_radius(h_star: f64, mu_k: f64) -> f64 {
    if mu_k <= 0.0 {
        f64::INFINITY
    } else {
        h_star / mu_k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surface::AnalyticSurface;

    #[test]
    fn disc_contains_center_and_excludes_far_points() {
        let c = Contour::disc(Vec2::new(5.0, 5.0), 2.0, 0.25);
        assert!(c.contains(Vec2::new(5.0, 5.0)));
        assert!(c.contains(Vec2::new(6.5, 5.0)));
        assert!(!c.contains(Vec2::new(9.0, 5.0)));
        assert!(c.area_cells() > 0);
    }

    #[test]
    fn disc_escape_radius_close_to_geometric() {
        let c = Contour::disc(Vec2::new(0.0, 0.0), 3.0, 0.1);
        // From the centre, escape distance ≈ the radius (± a couple cells).
        let r = c.escape_radius(Vec2::ZERO);
        assert!((r - 3.0).abs() < 0.3, "escape radius {r}");
        // From near the edge, escape is cheap.
        let r_edge = c.escape_radius(Vec2::new(2.8, 0.0));
        assert!(r_edge < 0.6, "edge escape radius {r_edge}");
    }

    #[test]
    fn escape_radius_outside_is_zero() {
        let c = Contour::disc(Vec2::ZERO, 1.0, 0.1);
        assert_eq!(c.escape_radius(Vec2::new(10.0, 0.0)), 0.0);
    }

    #[test]
    fn crater_basin_is_bounded_by_the_rim() {
        let s = AnalyticSurface::Crater {
            center: Vec2::ZERO,
            floor_r: 2.0,
            rim_r: 4.0,
            rim_height: 5.0,
        };
        // Basin below level 2.5 from the crater centre: extends up the inner
        // rim to where height reaches 2.5, i.e. radius 2 + 2·(2.5/5) = 3.
        let c = Contour::basin(&s, Vec2::ZERO, 2.5, 0.2, 100);
        assert!(c.contains(Vec2::ZERO));
        assert!(c.contains(Vec2::new(2.5, 0.0)));
        assert!(!c.contains(Vec2::new(3.5, 0.0)));
        let r = c.escape_radius(Vec2::ZERO);
        assert!((r - 3.0).abs() < 0.5, "escape radius {r}");
    }

    #[test]
    fn crater_basin_peak_is_below_level() {
        let s = AnalyticSurface::Crater {
            center: Vec2::ZERO,
            floor_r: 2.0,
            rim_r: 4.0,
            rim_height: 5.0,
        };
        let c = Contour::basin(&s, Vec2::ZERO, 2.5, 0.2, 100);
        let peak = c.peak(&s);
        assert!(peak < 2.5 && peak > 2.0, "peak {peak}");
    }

    #[test]
    fn basin_above_everything_escapes_the_box() {
        // With level above the rim the basin spills outside; its escape
        // radius from the centre is then bounded by the search box, and the
        // peak includes the rim height.
        let s = AnalyticSurface::Crater {
            center: Vec2::ZERO,
            floor_r: 2.0,
            rim_r: 4.0,
            rim_height: 5.0,
        };
        let c = Contour::basin(&s, Vec2::ZERO, 6.0, 0.25, 60);
        let peak = c.peak(&s);
        assert!((peak - 5.0).abs() < 0.2, "peak {peak}");
    }

    #[test]
    fn basin_empty_when_start_above_level() {
        let s = AnalyticSurface::Flat { z: 10.0 };
        let c = Contour::basin(&s, Vec2::ZERO, 5.0, 0.5, 10);
        assert_eq!(c.area_cells(), 0);
        assert!(!c.contains(Vec2::ZERO));
    }

    #[test]
    fn theorem1_bound_monotone_in_mu() {
        // Fixing the geometry, increasing µ_k can only flip escape→trapped.
        let peak = 3.0;
        let h_star = 5.0;
        let r = 10.0;
        assert!(escape_possible(peak, h_star, 0.1, r)); // 5 − 1 = 4 ≥ 3
        assert!(!escape_possible(peak, h_star, 0.5, r)); // 5 − 5 = 0 < 3
    }

    #[test]
    fn corollary3_radius() {
        assert_eq!(trapping_radius(4.0, 0.5), 8.0);
        assert_eq!(trapping_radius(4.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn theorem1_consistency_with_corollary3() {
        // If r > h*/µ_k then escape_possible must be false for any peak ≥ 0.
        let h_star = 2.0;
        let mu = 0.25;
        let r = trapping_radius(h_star, mu) + 0.1;
        assert!(!escape_possible(0.0, h_star, mu, r));
    }
}
