//! Minimal 2-D/3-D vector types used throughout the physical model.
//!
//! The particle moves on the *xy* plane of the yard; heights live on the *z*
//! axis. We deliberately keep these types tiny (two/three `f64`s, `Copy`)
//! so that particle state stays well under the 128-byte `memcpy` threshold.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-D vector (position or velocity on the yard's ground plane).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec2) -> f64 {
        self.x * rhs.x + self.y * rhs.y
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared norm (avoids the square root when only comparing magnitudes).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Unit vector in the same direction, or zero if the vector is
    /// (numerically) zero.
    #[inline]
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        if n <= f64::EPSILON {
            Vec2::ZERO
        } else {
            self / n
        }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

/// A 3-D vector; used for full positions `(x, y, z)` on the yard where `z`
/// is the height returned by the surface (the paper's `M3` mapping image).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z (height) component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Builds a 3-D point from a ground-plane point and a height.
    #[inline]
    pub fn from_ground(p: Vec2, z: f64) -> Self {
        Vec3::new(p.x, p.y, z)
    }

    /// Projects back onto the ground plane, dropping the height.
    #[inline]
    pub fn ground(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_has_zero_norm() {
        assert_eq!(Vec2::ZERO.norm(), 0.0);
        assert_eq!(Vec3::ZERO.norm(), 0.0);
    }

    #[test]
    fn pythagoras() {
        assert_eq!(Vec2::new(3.0, 4.0).norm(), 5.0);
        assert_eq!(Vec3::new(2.0, 3.0, 6.0).norm(), 7.0);
    }

    #[test]
    fn dot_of_orthogonal_vectors_is_zero() {
        assert_eq!(Vec2::new(1.0, 0.0).dot(Vec2::new(0.0, 5.0)), 0.0);
    }

    #[test]
    fn normalized_is_unit_length() {
        let v = Vec2::new(-7.5, 2.25).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_zero_stays_zero() {
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(-0.5, 4.0);
        assert_eq!(a + b - b, a);
        assert_eq!((a * 2.0) / 2.0, a);
        assert_eq!(-(-a), a);
    }

    #[test]
    fn add_assign_matches_add() {
        let mut a = Vec2::new(1.0, 1.0);
        a += Vec2::new(2.0, 3.0);
        assert_eq!(a, Vec2::new(3.0, 4.0));
        a -= Vec2::new(1.0, 1.0);
        assert_eq!(a, Vec2::new(2.0, 3.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(10.0, -2.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(5.0, -1.0));
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(4.0, 6.0);
        assert_eq!(a.distance(b), b.distance(a));
        assert_eq!(a.distance(b), 5.0);
    }

    #[test]
    fn ground_projection_roundtrip() {
        let p = Vec2::new(3.5, -1.5);
        let q = Vec3::from_ground(p, 9.0);
        assert_eq!(q.ground(), p);
        assert_eq!(q.z, 9.0);
    }

    #[test]
    fn is_finite_detects_nan_and_inf() {
        assert!(Vec2::new(1.0, 2.0).is_finite());
        assert!(!Vec2::new(f64::NAN, 0.0).is_finite());
        assert!(!Vec2::new(0.0, f64::INFINITY).is_finite());
    }
}
