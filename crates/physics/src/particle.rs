//! Particle kinematics on a bumpy surface (§3.1–3.2).
//!
//! The object slides on the height field under gravity, opposed by static
//! friction (which keeps it parked on shallow slopes, Eq. 1) and kinetic
//! friction (which drains its energy into heat while it moves, §3.3).
//!
//! # Dynamics
//!
//! For a point mass constrained to `z = h(x, y)` the exact Lagrangian
//! equations of motion, projected on the ground plane with velocity `w`, are
//!
//! ```text
//! ẇ = −(g + wᵀHw)·∇h / (1 + |∇h|²)  +  friction,
//! ```
//!
//! where `H` is the Hessian of `h` (the `wᵀHw` term is the centripetal part
//! of the constraint force). The normal force magnitude is
//! `N = m·cos θ·(g + wᵀHw)` with `cos θ = 1/√(1 + |∇h|²)`, clamped at zero
//! (the object never pushes the ground upward). Kinetic friction acts along
//! the 3-D velocity `v₃ = (w, ∇h·w)` with magnitude `µ_k·N`; in ground
//! projection this decelerates `w` by `µ_k·N/(m·|v₃|)·w`, and the heat
//! produced per unit time is `µ_k·N·|v₃|`. For motion along the line of
//! steepest descent this integrates to the paper's `E_h = µ_k·m·g·d⊥` —
//! heat depends only on the horizontal distance covered (§3.3, Fig. 2).
//!
//! The integrator is semi-implicit (symplectic) Euler with a friction clamp
//! so a single step can never reverse the direction of motion.

use crate::energy::EnergyLedger;
use crate::friction::Friction;
use crate::surface::Surface;
use crate::vec::Vec2;

/// The state of the sliding object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Particle {
    /// Ground-plane position.
    pub pos: Vec2,
    /// Ground-plane velocity.
    pub vel: Vec2,
    /// Mass (the paper's load quantity `m`).
    pub mass: f64,
}

impl Particle {
    /// Places a stationary particle of the given mass at `pos`.
    pub fn at_rest(pos: Vec2, mass: f64) -> Self {
        assert!(mass > 0.0, "mass must be positive");
        Particle { pos, vel: Vec2::ZERO, mass }
    }

    /// Ground speed `|w|`.
    #[inline]
    pub fn ground_speed(&self) -> f64 {
        self.vel.norm()
    }

    /// Full 3-D surface speed `|v₃| = √(|w|² + (∇h·w)²)`.
    #[inline]
    pub fn surface_speed(&self, grad: Vec2) -> f64 {
        let climb = grad.dot(self.vel);
        (self.vel.norm_sq() + climb * climb).sqrt()
    }
}

/// Integration and termination parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Gravitational acceleration.
    pub g: f64,
    /// Time step.
    pub dt: f64,
    /// Ground-speed threshold below which the object is considered at rest
    /// (it then actually stops iff static friction holds the local slope).
    pub stop_speed: f64,
    /// Hard cap on the number of steps for [`Simulation::run_until_rest`].
    pub max_steps: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { g: 9.81, dt: 1e-3, stop_speed: 1e-4, max_steps: 2_000_000 }
    }
}

/// Why a run terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The object came to rest (static friction holds it).
    AtRest,
    /// The step budget was exhausted while still moving.
    StepLimit,
    /// A caller-supplied predicate requested the stop.
    Predicate,
}

/// Summary of a finished run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Final particle state.
    pub particle: Particle,
    /// Why the run stopped.
    pub reason: StopReason,
    /// Steps executed.
    pub steps: usize,
    /// Simulated time elapsed.
    pub time: f64,
    /// Total horizontal (ground-plane) path length `d⊥`.
    pub ground_distance: f64,
    /// Heat dissipated, from the ledger.
    pub heat: f64,
}

/// A particle bound to a surface with friction, stepped through time.
pub struct Simulation<'a, S: Surface> {
    surface: &'a S,
    friction: Friction,
    config: SimConfig,
    particle: Particle,
    ledger: EnergyLedger,
    time: f64,
    ground_distance: f64,
    at_rest: bool,
}

impl<'a, S: Surface> Simulation<'a, S> {
    /// Creates a simulation for `particle` on `surface`.
    pub fn new(surface: &'a S, friction: Friction, config: SimConfig, particle: Particle) -> Self {
        let h0 = surface.height(particle.pos);
        let ledger = EnergyLedger::new(particle.mass, config.g, h0, particle.ground_speed());
        Simulation {
            surface,
            friction,
            config,
            particle,
            ledger,
            time: 0.0,
            ground_distance: 0.0,
            at_rest: false,
        }
    }

    /// Current particle state.
    pub fn particle(&self) -> Particle {
        self.particle
    }

    /// Current surface height under the particle.
    pub fn height(&self) -> f64 {
        self.surface.height(self.particle.pos)
    }

    /// Energy ledger (kinetic/potential/heat accounts).
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Elapsed simulated time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Total horizontal path length so far (`d⊥` in §3.3).
    pub fn ground_distance(&self) -> f64 {
        self.ground_distance
    }

    /// Whether the object is currently held at rest by static friction.
    pub fn is_at_rest(&self) -> bool {
        self.at_rest
    }

    /// The *potential height* `h*` of the object in its current state.
    pub fn potential_height(&self) -> f64 {
        let grad = self.surface.gradient(self.particle.pos);
        let v3 = self.particle.surface_speed(grad);
        self.ledger.potential_height(self.height(), v3)
    }

    /// Advances one time step. Returns `false` if the object is (now) at
    /// rest, `true` if it is still in motion.
    pub fn step(&mut self) -> bool {
        let p = self.particle.pos;
        let grad = self.surface.gradient(p);
        let grad_sq = grad.norm_sq();
        let denom = 1.0 + grad_sq;
        let cos_theta = 1.0 / denom.sqrt();
        let g = self.config.g;
        let dt = self.config.dt;

        let moving = self.particle.ground_speed() > self.config.stop_speed;
        if !moving {
            // Stationary: Eq. (1) decides whether it starts to move.
            let tan_theta = grad.norm();
            if !self.friction.slope_moves(tan_theta) {
                self.particle.vel = Vec2::ZERO;
                self.at_rest = true;
                return false;
            }
        }
        self.at_rest = false;

        let w = self.particle.vel;
        // Centripetal term wᵀHw from the surface curvature.
        let (hxx, hxy, hyy) = self.surface.hessian(p);
        let w_h_w = hxx * w.x * w.x + 2.0 * hxy * w.x * w.y + hyy * w.y * w.y;
        // Normal force per unit mass, clamped: the ground only pushes.
        let n_per_m = (cos_theta * (g + w_h_w)).max(0.0);

        // Tangential gravity + centripetal correction, ground projection.
        let a_gravity = -grad * ((g + w_h_w) / denom);

        // Semi-implicit: apply gravity to the velocity first …
        let mut vel = w + a_gravity * dt;
        // … then kinetic friction, clamped so a single step cannot reverse
        // the direction of motion. Ground-projected friction deceleration is
        // µ_k·N/(m·|v₃|)·w, i.e. magnitude µ_k·N/m · |w|/|v₃| along −ŵ.
        let v3 = self.particle.surface_speed(grad);
        if v3 > 0.0 {
            let decel = self.friction.mu_k() * n_per_m * (vel.norm() / v3.max(vel.norm()));
            let speed = vel.norm();
            if speed > 0.0 {
                let dv = (decel * dt).min(speed);
                vel -= vel.normalized() * dv;
            }
        }

        // Heat produced this step: f_k · (surface distance travelled).
        let heat = self.friction.mu_k() * self.particle.mass * n_per_m * v3 * dt;
        self.ledger.dissipate(heat);

        let step_vec = vel * dt;
        self.ground_distance += step_vec.norm();
        self.particle.pos += step_vec;
        self.particle.vel = vel;
        self.time += dt;
        true
    }

    /// Runs until the object rests, the step budget is exhausted, or
    /// `stop_when` returns `true` (checked after every step).
    pub fn run_until<F: FnMut(&Simulation<'a, S>) -> bool>(
        &mut self,
        mut stop_when: F,
    ) -> RunOutcome {
        let mut steps = 0usize;
        let reason = loop {
            if steps >= self.config.max_steps {
                break StopReason::StepLimit;
            }
            let moving = self.step();
            steps += 1;
            if stop_when(self) {
                break StopReason::Predicate;
            }
            if !moving {
                break StopReason::AtRest;
            }
        };
        RunOutcome {
            particle: self.particle,
            reason,
            steps,
            time: self.time,
            ground_distance: self.ground_distance,
            heat: self.ledger.heat(),
        }
    }

    /// Runs until the object comes to rest (or the step budget runs out).
    pub fn run_until_rest(&mut self) -> RunOutcome {
        self.run_until(|_| false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surface::AnalyticSurface;

    fn cfg() -> SimConfig {
        SimConfig { g: 10.0, dt: 1e-3, stop_speed: 1e-4, max_steps: 2_000_000 }
    }

    #[test]
    fn object_on_flat_ground_stays_put() {
        let s = AnalyticSurface::Flat { z: 0.0 };
        let mut sim =
            Simulation::new(&s, Friction::uniform(0.2), cfg(), Particle::at_rest(Vec2::ZERO, 1.0));
        let out = sim.run_until_rest();
        assert_eq!(out.reason, StopReason::AtRest);
        assert_eq!(out.particle.pos, Vec2::ZERO);
        assert_eq!(out.heat, 0.0);
    }

    #[test]
    fn shallow_slope_holds_object_eq1() {
        // tan θ = 0.3 < µ_s = 0.5 ⇒ no movement (Eq. 1).
        let s = AnalyticSurface::Incline { z0: 10.0, slope: 0.3 };
        let mut sim = Simulation::new(
            &s,
            Friction::new(0.5, 0.2),
            cfg(),
            Particle::at_rest(Vec2::new(1.0, 0.0), 1.0),
        );
        let out = sim.run_until_rest();
        assert_eq!(out.reason, StopReason::AtRest);
        assert_eq!(out.steps, 1);
        assert_eq!(out.particle.pos, Vec2::new(1.0, 0.0));
    }

    #[test]
    fn steep_slope_releases_object_eq1() {
        // tan θ = 0.8 > µ_s = 0.5 ⇒ the object accelerates downhill (−x).
        let s = AnalyticSurface::Incline { z0: 10.0, slope: 0.8 };
        let mut sim = Simulation::new(
            &s,
            Friction::new(0.5, 0.2),
            cfg(),
            Particle::at_rest(Vec2::new(1.0, 0.0), 1.0),
        );
        for _ in 0..100 {
            sim.step();
        }
        assert!(sim.particle().pos.x < 1.0);
        assert!(sim.particle().vel.x < 0.0);
        assert!(sim.ledger().heat() > 0.0);
    }

    #[test]
    fn frictionless_bowl_conserves_energy() {
        let s = AnalyticSurface::Bowl { center: Vec2::ZERO, curvature: 0.5 };
        let start = Vec2::new(1.0, 0.0);
        let mut sim = Simulation::new(
            &s,
            Friction::FRICTIONLESS,
            SimConfig { dt: 1e-4, ..cfg() },
            Particle::at_rest(start, 1.0),
        );
        for _ in 0..200_000 {
            sim.step();
        }
        let grad = s.gradient(sim.particle().pos);
        let v3 = sim.particle().surface_speed(grad);
        // With the exact constrained dynamics the semi-implicit integrator
        // keeps the defect small relative to the initial 5 J.
        let defect = sim.ledger().conservation_defect(sim.height(), v3);
        assert!(defect < 0.05, "defect {defect}");
    }

    #[test]
    fn friction_on_bowl_eventually_traps_at_bottom() {
        // Corollary 2 in miniature: with µ_k ≠ 0 the object stops, near the
        // bowl's minimum.
        let s = AnalyticSurface::Bowl { center: Vec2::ZERO, curvature: 0.5 };
        let mut sim = Simulation::new(
            &s,
            Friction::uniform(0.15),
            cfg(),
            Particle::at_rest(Vec2::new(2.0, 0.0), 1.0),
        );
        let out = sim.run_until_rest();
        assert_eq!(out.reason, StopReason::AtRest);
        // Static friction can hold it slightly up-slope of the exact centre:
        // anywhere with |∇h| ≤ µ_s, i.e. |p| ≤ µ_s/(2·curvature) = 0.15.
        assert!(out.particle.pos.norm() <= 0.15 + 1e-6, "stopped at {:?}", out.particle.pos);
        assert!(out.heat > 0.0);
    }

    #[test]
    fn heat_equals_mu_m_g_dperp_on_incline() {
        // §3.3: sliding down a straight slope, heat = µ_k·m·g·d⊥ exactly.
        let s = AnalyticSurface::Incline { z0: 100.0, slope: 1.0 };
        let m = 2.0;
        let mu = 0.2;
        let mut sim = Simulation::new(
            &s,
            Friction::new(0.3, mu),
            cfg(),
            Particle::at_rest(Vec2::new(50.0, 0.0), m),
        );
        for _ in 0..50_000 {
            sim.step();
        }
        let d_perp = (Vec2::new(50.0, 0.0) - sim.particle().pos).norm();
        let predicted = mu * m * 10.0 * d_perp;
        let got = sim.ledger().heat();
        let rel = (got - predicted).abs() / predicted;
        assert!(rel < 0.02, "heat {got} vs predicted {predicted} (rel {rel})");
    }

    #[test]
    fn heavier_object_same_trajectory_more_heat() {
        // Kinematics are mass-independent; heat scales with mass.
        let s = AnalyticSurface::Incline { z0: 10.0, slope: 1.0 };
        let run = |mass: f64| {
            let mut sim = Simulation::new(
                &s,
                Friction::uniform(0.2),
                cfg(),
                Particle::at_rest(Vec2::new(5.0, 0.0), mass),
            );
            for _ in 0..5000 {
                sim.step();
            }
            (sim.particle().pos, sim.ledger().heat())
        };
        let (p1, h1) = run(1.0);
        let (p2, h2) = run(3.0);
        assert!((p1 - p2).norm() < 1e-9);
        assert!((h2 / h1 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn potential_height_never_increases_with_friction() {
        let s = AnalyticSurface::Bowl { center: Vec2::ZERO, curvature: 1.0 };
        let mut sim = Simulation::new(
            &s,
            Friction::uniform(0.1),
            cfg(),
            Particle::at_rest(Vec2::new(1.5, 0.5), 1.0),
        );
        let mut last = sim.ledger().potential_height_from_ledger();
        for _ in 0..10_000 {
            if !sim.step() {
                break;
            }
            let now = sim.ledger().potential_height_from_ledger();
            assert!(now <= last + 1e-12, "h* increased: {last} -> {now}");
            last = now;
        }
    }

    #[test]
    fn run_until_predicate_stops_early() {
        let s = AnalyticSurface::Incline { z0: 10.0, slope: 1.0 };
        let mut sim = Simulation::new(
            &s,
            Friction::FRICTIONLESS,
            cfg(),
            Particle::at_rest(Vec2::new(5.0, 0.0), 1.0),
        );
        let out = sim.run_until(|sim| sim.particle().pos.x < 4.0);
        assert_eq!(out.reason, StopReason::Predicate);
        assert!(out.particle.pos.x < 4.0);
    }

    #[test]
    fn step_limit_reported() {
        let s = AnalyticSurface::Incline { z0: 10.0, slope: 1.0 };
        let mut config = cfg();
        config.max_steps = 10;
        let mut sim = Simulation::new(
            &s,
            Friction::FRICTIONLESS,
            config,
            Particle::at_rest(Vec2::new(5.0, 0.0), 1.0),
        );
        let out = sim.run_until_rest();
        assert_eq!(out.reason, StopReason::StepLimit);
        assert_eq!(out.steps, 10);
    }

    #[test]
    fn double_well_oscillation_settles_in_a_valley() {
        let s = AnalyticSurface::DoubleWell { a: 2.0, barrier: 1.0 };
        let mut sim = Simulation::new(
            &s,
            Friction::uniform(0.05),
            cfg(),
            Particle::at_rest(Vec2::new(3.5, 0.0), 1.0),
        );
        let out = sim.run_until_rest();
        assert_eq!(out.reason, StopReason::AtRest);
        // Must end near one of the two well bottoms x = ±2.
        let d = (out.particle.pos.x.abs() - 2.0).abs();
        assert!(d < 0.5, "stopped at {:?}", out.particle.pos);
    }
}
