//! # pp-physics — the particle & plane physical model
//!
//! This crate implements §3 of Imani & Sarbazi-Azad's *"A Physical Particle
//! and Plane Framework for Load Balancing in Multiprocessors"* (IPPS 2006):
//! an object sliding on a bumpy yard under gravity, static/kinetic friction
//! and an energy ledger, together with the contour/escape-radius machinery of
//! the paper's Definitions 1–3 and executable forms of Eq. (1),
//! Corollaries 1–3 and Theorem 1.
//!
//! The load-balancing analogy (crate `pp-core`) maps network state onto this
//! model; keeping the physics standalone lets the test-suite verify the
//! physical claims *independently* of the load balancer built on them.
//!
//! ## Quick tour
//!
//! ```
//! use pp_physics::prelude::*;
//!
//! // A crater: flat floor, a rim of height 1 peaking at radius 2.
//! let yard = AnalyticSurface::Crater {
//!     center: Vec2::ZERO,
//!     floor_r: 1.0,
//!     rim_r: 2.0,
//!     rim_height: 1.0,
//! };
//! // Release an object on the inner rim with moderate friction.
//! let mut sim = Simulation::new(
//!     &yard,
//!     Friction::uniform(0.3),
//!     SimConfig::default(),
//!     Particle::at_rest(Vec2::new(1.5, 0.0), 1.0),
//! );
//! let outcome = sim.run_until_rest();
//! // Friction eventually traps the object (Corollary 2).
//! assert_eq!(outcome.reason, StopReason::AtRest);
//! assert!(outcome.heat > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contour;
pub mod energy;
pub mod friction;
pub mod particle;
pub mod surface;
pub mod theorems;
pub mod trajectory;
pub mod vec;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::contour::{escape_possible, trapping_radius, Contour};
    pub use crate::energy::EnergyLedger;
    pub use crate::friction::Friction;
    pub use crate::particle::{Particle, RunOutcome, SimConfig, Simulation, StopReason};
    pub use crate::surface::{AnalyticSurface, GridSurface, Surface};
    pub use crate::theorems::{
        max_travel_check, trapping_trial, TheoremVerdict, TrappingTrial, TravelCheck,
    };
    pub use crate::trajectory::{Sample, Trajectory};
    pub use crate::vec::{Vec2, Vec3};
}
