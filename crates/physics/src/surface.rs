//! The bumpy yard: height fields over the ground plane.
//!
//! The paper models the yard as a surface of hills and valleys; each point is
//! an `(x, y, z)` triple (§3.1). We expose the surface as a trait returning a
//! height and a gradient, with two families of implementations:
//!
//! * [`AnalyticSurface`] — closed-form test surfaces (inclined plane, bowl,
//!   crater, double well, sinusoidal bumps) for which the theorems of §3.3
//!   can be checked against exact geometry, and
//! * [`GridSurface`] — a sampled height field with bilinear interpolation,
//!   which is the discrete form used when mapping a network's load
//!   distribution onto the yard (§4.1).

use crate::vec::Vec2;

/// A height field `z = h(x, y)` over the ground plane.
pub trait Surface {
    /// Height of the surface at ground point `p`.
    fn height(&self, p: Vec2) -> f64;

    /// Gradient `∇h` at `p`. The default implementation uses central finite
    /// differences; analytic surfaces override it with the exact gradient.
    fn gradient(&self, p: Vec2) -> Vec2 {
        let eps = 1e-6;
        let dx = (self.height(Vec2::new(p.x + eps, p.y)) - self.height(Vec2::new(p.x - eps, p.y)))
            / (2.0 * eps);
        let dy = (self.height(Vec2::new(p.x, p.y + eps)) - self.height(Vec2::new(p.x, p.y - eps)))
            / (2.0 * eps);
        Vec2::new(dx, dy)
    }

    /// Slope angle `θ` (radians from the horizontal) at `p`; `tan θ = |∇h|`.
    ///
    /// The paper's §3.2 measures the angle `α` from the perpendicular, so its
    /// `cot α` equals our `tan θ`; we use the from-horizontal convention and
    /// note the equivalence wherever a paper formula is implemented.
    fn slope_angle(&self, p: Vec2) -> f64 {
        self.gradient(p).norm().atan()
    }

    /// Hessian `(h_xx, h_xy, h_yy)` at `p` — the surface curvature, needed by
    /// the exact constrained dynamics (centripetal part of the normal force).
    /// The default uses central finite differences of the gradient.
    fn hessian(&self, p: Vec2) -> (f64, f64, f64) {
        let eps = 1e-5;
        let gx1 = self.gradient(Vec2::new(p.x + eps, p.y));
        let gx0 = self.gradient(Vec2::new(p.x - eps, p.y));
        let gy1 = self.gradient(Vec2::new(p.x, p.y + eps));
        let gy0 = self.gradient(Vec2::new(p.x, p.y - eps));
        let hxx = (gx1.x - gx0.x) / (2.0 * eps);
        let hyy = (gy1.y - gy0.y) / (2.0 * eps);
        let hxy = 0.5 * ((gx1.y - gx0.y) / (2.0 * eps) + (gy1.x - gy0.x) / (2.0 * eps));
        (hxx, hxy, hyy)
    }
}

/// Closed-form surfaces with exact gradients.
#[derive(Debug, Clone)]
pub enum AnalyticSurface {
    /// A flat plane of constant height.
    Flat {
        /// Height of the plane.
        z: f64,
    },
    /// An inclined plane `z = z0 + s·x` (slope only along x).
    Incline {
        /// Height at `x = 0`.
        z0: f64,
        /// Slope `dz/dx` (this is `tan θ`).
        slope: f64,
    },
    /// A paraboloid bowl `z = k·|p − c|²` with minimum at `c`.
    Bowl {
        /// Ground-plane centre of the bowl.
        center: Vec2,
        /// Curvature; larger is steeper.
        curvature: f64,
    },
    /// A circular crater: flat floor of radius `floor_r` at height 0, a rim
    /// that rises linearly to `rim_height` at radius `rim_r`, then falls
    /// linearly back to 0 at radius `2·rim_r − floor_r` and stays flat
    /// outside. This is the canonical "valley surrounded by hills" used for
    /// the contour/escape-radius experiments (Fig. 3).
    Crater {
        /// Ground-plane centre.
        center: Vec2,
        /// Radius of the flat floor.
        floor_r: f64,
        /// Radius at which the rim peaks.
        rim_r: f64,
        /// Height of the rim peak.
        rim_height: f64,
    },
    /// A 1-D double well along x: two valleys at `x = ±a` separated by a hill
    /// of height `barrier` at `x = 0`; `z = barrier·((x/a)² − 1)²`, flat in y.
    DoubleWell {
        /// Half-distance between the two wells.
        a: f64,
        /// Height of the central barrier above the well bottoms.
        barrier: f64,
    },
    /// Sinusoidal bumps `z = amp·(sin(fx·x)·sin(fy·y) + 1)` — a periodic
    /// yard of identical hills and valleys.
    SinBumps {
        /// Amplitude of each bump.
        amp: f64,
        /// Spatial frequency along x.
        fx: f64,
        /// Spatial frequency along y.
        fy: f64,
    },
}

impl Surface for AnalyticSurface {
    fn height(&self, p: Vec2) -> f64 {
        match *self {
            AnalyticSurface::Flat { z } => z,
            AnalyticSurface::Incline { z0, slope } => z0 + slope * p.x,
            AnalyticSurface::Bowl { center, curvature } => curvature * (p - center).norm_sq(),
            AnalyticSurface::Crater { center, floor_r, rim_r, rim_height } => {
                let r = (p - center).norm();
                let outer = 2.0 * rim_r - floor_r;
                if r <= floor_r {
                    0.0
                } else if r <= rim_r {
                    rim_height * (r - floor_r) / (rim_r - floor_r)
                } else if r <= outer {
                    rim_height * (outer - r) / (outer - rim_r)
                } else {
                    0.0
                }
            }
            AnalyticSurface::DoubleWell { a, barrier } => {
                let u = (p.x / a).powi(2) - 1.0;
                barrier * u * u
            }
            AnalyticSurface::SinBumps { amp, fx, fy } => {
                amp * ((fx * p.x).sin() * (fy * p.y).sin() + 1.0)
            }
        }
    }

    fn gradient(&self, p: Vec2) -> Vec2 {
        match *self {
            AnalyticSurface::Flat { .. } => Vec2::ZERO,
            AnalyticSurface::Incline { slope, .. } => Vec2::new(slope, 0.0),
            AnalyticSurface::Bowl { center, curvature } => (p - center) * (2.0 * curvature),
            AnalyticSurface::Crater { center, floor_r, rim_r, rim_height } => {
                let d = p - center;
                let r = d.norm();
                let outer = 2.0 * rim_r - floor_r;
                let radial = if r <= floor_r || r > outer || r == 0.0 {
                    0.0
                } else if r <= rim_r {
                    rim_height / (rim_r - floor_r)
                } else {
                    -rim_height / (outer - rim_r)
                };
                if r == 0.0 {
                    Vec2::ZERO
                } else {
                    d / r * radial
                }
            }
            AnalyticSurface::DoubleWell { a, barrier } => {
                let u = (p.x / a).powi(2) - 1.0;
                Vec2::new(barrier * 2.0 * u * 2.0 * p.x / (a * a), 0.0)
            }
            AnalyticSurface::SinBumps { amp, fx, fy } => Vec2::new(
                amp * fx * (fx * p.x).cos() * (fy * p.y).sin(),
                amp * fy * (fx * p.x).sin() * (fy * p.y).cos(),
            ),
        }
    }

    fn hessian(&self, p: Vec2) -> (f64, f64, f64) {
        match *self {
            AnalyticSurface::Flat { .. } | AnalyticSurface::Incline { .. } => (0.0, 0.0, 0.0),
            AnalyticSurface::Bowl { curvature, .. } => (2.0 * curvature, 0.0, 2.0 * curvature),
            AnalyticSurface::DoubleWell { a, barrier } => {
                let a2 = a * a;
                let hxx = barrier * (12.0 * p.x * p.x / (a2 * a2) - 4.0 / a2);
                (hxx, 0.0, 0.0)
            }
            AnalyticSurface::SinBumps { amp, fx, fy } => {
                let sx = (fx * p.x).sin();
                let cx = (fx * p.x).cos();
                let sy = (fy * p.y).sin();
                let cy = (fy * p.y).cos();
                (-amp * fx * fx * sx * sy, amp * fx * fy * cx * cy, -amp * fy * fy * sx * sy)
            }
            // Piecewise conical: h = c·(r − r₀) radially, whose exact
            // Hessian is (c/r)(I − r̂r̂ᵀ). The delta-function curvature at
            // the kinks is dropped deliberately: finite differences across a
            // kink produce huge spurious centripetal forces that inject
            // energy; dropping the delta only skips the instantaneous
            // velocity redirection (a bounded, energy-safe error).
            AnalyticSurface::Crater { center, floor_r, rim_r, rim_height } => {
                let d = p - center;
                let r = d.norm();
                let outer = 2.0 * rim_r - floor_r;
                let c = if r <= floor_r || r > outer || r == 0.0 {
                    0.0
                } else if r <= rim_r {
                    rim_height / (rim_r - floor_r)
                } else {
                    -rim_height / (outer - rim_r)
                };
                if c == 0.0 {
                    return (0.0, 0.0, 0.0);
                }
                let (rx, ry) = (d.x / r, d.y / r);
                (c / r * (1.0 - rx * rx), -c / r * rx * ry, c / r * (1.0 - ry * ry))
            }
        }
    }
}

/// A sampled height field over a regular grid with bilinear interpolation.
///
/// Cell `(i, j)` covers the ground square `[i·cell, (i+1)·cell) ×
/// [j·cell, (j+1)·cell)`; heights are stored at cell corners. Queries outside
/// the grid clamp to the border (the yard is effectively walled, matching the
/// paper's "positions other than neighbours have infinite height" refinement
/// — see [`GridSurface::with_walls`]).
#[derive(Debug, Clone)]
pub struct GridSurface {
    width: usize,
    height_cells: usize,
    cell: f64,
    z: Vec<f64>,
    walls: bool,
}

impl GridSurface {
    /// Height used for out-of-bounds queries when walls are enabled. Finite
    /// (rather than `f64::INFINITY`) so that gradients stay usable, but far
    /// above any realistic yard.
    pub const WALL_HEIGHT: f64 = 1e9;

    /// Creates a grid of `width × height` corner samples spaced `cell` apart,
    /// with all heights zero.
    pub fn flat(width: usize, height: usize, cell: f64) -> Self {
        assert!(width >= 2 && height >= 2, "grid needs at least 2×2 corners");
        assert!(cell > 0.0, "cell size must be positive");
        GridSurface {
            width,
            height_cells: height,
            cell,
            z: vec![0.0; width * height],
            walls: false,
        }
    }

    /// Samples an arbitrary surface onto a grid.
    pub fn sample<S: Surface>(surface: &S, width: usize, height: usize, cell: f64) -> Self {
        let mut g = GridSurface::flat(width, height, cell);
        for j in 0..height {
            for i in 0..width {
                let p = Vec2::new(i as f64 * cell, j as f64 * cell);
                g.z[j * width + i] = surface.height(p);
            }
        }
        g
    }

    /// Enables walls: queries outside the grid return [`Self::WALL_HEIGHT`].
    pub fn with_walls(mut self) -> Self {
        self.walls = true;
        self
    }

    /// Number of corner samples along x.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of corner samples along y.
    pub fn height_samples(&self) -> usize {
        self.height_cells
    }

    /// Grid spacing.
    pub fn cell(&self) -> f64 {
        self.cell
    }

    /// Height at corner `(i, j)`.
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.z[j * self.width + i]
    }

    /// Sets the height at corner `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, z: f64) {
        self.z[j * self.width + i] = z;
    }

    /// Ground-plane extent `(max_x, max_y)` of the grid.
    pub fn extent(&self) -> Vec2 {
        Vec2::new((self.width - 1) as f64 * self.cell, (self.height_cells - 1) as f64 * self.cell)
    }

    fn clamped_index(&self, p: Vec2) -> Option<(usize, usize, f64, f64)> {
        let ext = self.extent();
        if self.walls && (p.x < 0.0 || p.y < 0.0 || p.x > ext.x || p.y > ext.y) {
            return None;
        }
        let x = p.x.clamp(0.0, ext.x) / self.cell;
        let y = p.y.clamp(0.0, ext.y) / self.cell;
        let i = (x.floor() as usize).min(self.width - 2);
        let j = (y.floor() as usize).min(self.height_cells - 2);
        Some((i, j, x - i as f64, y - j as f64))
    }
}

impl Surface for GridSurface {
    fn height(&self, p: Vec2) -> f64 {
        match self.clamped_index(p) {
            None => Self::WALL_HEIGHT,
            Some((i, j, fx, fy)) => {
                let z00 = self.at(i, j);
                let z10 = self.at(i + 1, j);
                let z01 = self.at(i, j + 1);
                let z11 = self.at(i + 1, j + 1);
                let z0 = z00 + (z10 - z00) * fx;
                let z1 = z01 + (z11 - z01) * fx;
                z0 + (z1 - z0) * fy
            }
        }
    }

    fn gradient(&self, p: Vec2) -> Vec2 {
        match self.clamped_index(p) {
            None => Vec2::ZERO,
            Some((i, j, fx, fy)) => {
                let z00 = self.at(i, j);
                let z10 = self.at(i + 1, j);
                let z01 = self.at(i, j + 1);
                let z11 = self.at(i + 1, j + 1);
                let dzdx = ((z10 - z00) * (1.0 - fy) + (z11 - z01) * fy) / self.cell;
                let dzdy = ((z01 - z00) * (1.0 - fx) + (z11 - z10) * fx) / self.cell;
                Vec2::new(dzdx, dzdy)
            }
        }
    }

    fn hessian(&self, p: Vec2) -> (f64, f64, f64) {
        // Exact in-cell Hessian of the bilinear patch: h_xx = h_yy = 0 and
        // h_xy constant. (Finite differences across cell boundaries would
        // produce spurious curvature spikes — see the Crater note.)
        match self.clamped_index(p) {
            None => (0.0, 0.0, 0.0),
            Some((i, j, _, _)) => {
                let z00 = self.at(i, j);
                let z10 = self.at(i + 1, j);
                let z01 = self.at(i, j + 1);
                let z11 = self.at(i + 1, j + 1);
                let hxy = (z00 - z10 - z01 + z11) / (self.cell * self.cell);
                (0.0, hxy, 0.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} !~ {b}");
    }

    #[test]
    fn flat_surface_has_zero_gradient() {
        let s = AnalyticSurface::Flat { z: 3.0 };
        assert_eq!(s.height(Vec2::new(5.0, -2.0)), 3.0);
        assert_eq!(s.gradient(Vec2::new(5.0, -2.0)), Vec2::ZERO);
        assert_eq!(s.slope_angle(Vec2::ZERO), 0.0);
    }

    #[test]
    fn incline_height_and_gradient() {
        let s = AnalyticSurface::Incline { z0: 1.0, slope: 0.5 };
        assert_eq!(s.height(Vec2::new(2.0, 7.0)), 2.0);
        assert_eq!(s.gradient(Vec2::new(2.0, 7.0)), Vec2::new(0.5, 0.0));
        assert_close(s.slope_angle(Vec2::ZERO).tan(), 0.5, 1e-12);
    }

    #[test]
    fn bowl_gradient_points_away_from_center() {
        let s = AnalyticSurface::Bowl { center: Vec2::new(1.0, 1.0), curvature: 2.0 };
        let g = s.gradient(Vec2::new(3.0, 1.0));
        assert!(g.x > 0.0 && g.y.abs() < 1e-12);
        // Analytic gradient matches the finite-difference default.
        let fd = {
            struct Fd<'a>(&'a AnalyticSurface);
            impl Surface for Fd<'_> {
                fn height(&self, p: Vec2) -> f64 {
                    self.0.height(p)
                }
            }
            Fd(&s).gradient(Vec2::new(3.0, 1.0))
        };
        assert_close(g.x, fd.x, 1e-5);
        assert_close(g.y, fd.y, 1e-5);
    }

    #[test]
    fn crater_profile_shape() {
        let s = AnalyticSurface::Crater {
            center: Vec2::ZERO,
            floor_r: 1.0,
            rim_r: 2.0,
            rim_height: 4.0,
        };
        assert_eq!(s.height(Vec2::ZERO), 0.0);
        assert_eq!(s.height(Vec2::new(0.5, 0.0)), 0.0);
        assert_eq!(s.height(Vec2::new(2.0, 0.0)), 4.0);
        assert_close(s.height(Vec2::new(1.5, 0.0)), 2.0, 1e-12);
        assert_close(s.height(Vec2::new(2.5, 0.0)), 2.0, 1e-12);
        assert_eq!(s.height(Vec2::new(10.0, 0.0)), 0.0);
    }

    #[test]
    fn crater_gradient_signs() {
        let s = AnalyticSurface::Crater {
            center: Vec2::ZERO,
            floor_r: 1.0,
            rim_r: 2.0,
            rim_height: 4.0,
        };
        // Inside the floor: flat.
        assert_eq!(s.gradient(Vec2::new(0.5, 0.0)), Vec2::ZERO);
        // Climbing the inner rim: gradient points outward (uphill).
        assert!(s.gradient(Vec2::new(1.5, 0.0)).x > 0.0);
        // Descending the outer rim: gradient points inward.
        assert!(s.gradient(Vec2::new(2.5, 0.0)).x < 0.0);
    }

    #[test]
    fn double_well_minima_and_barrier() {
        let s = AnalyticSurface::DoubleWell { a: 2.0, barrier: 3.0 };
        assert_close(s.height(Vec2::new(2.0, 0.0)), 0.0, 1e-12);
        assert_close(s.height(Vec2::new(-2.0, 5.0)), 0.0, 1e-12);
        assert_close(s.height(Vec2::new(0.0, 0.0)), 3.0, 1e-12);
        // Gradient is zero at both minima and at the barrier top.
        for x in [-2.0, 0.0, 2.0] {
            assert_close(s.gradient(Vec2::new(x, 1.0)).x, 0.0, 1e-12);
        }
    }

    #[test]
    fn sin_bumps_nonnegative_and_periodic() {
        let s = AnalyticSurface::SinBumps { amp: 2.0, fx: 1.0, fy: 1.0 };
        let p = Vec2::new(0.3, 0.7);
        let q = Vec2::new(0.3 + 2.0 * std::f64::consts::PI, 0.7);
        assert!(s.height(p) >= 0.0);
        assert_close(s.height(p), s.height(q), 1e-9);
    }

    #[test]
    fn analytic_gradients_match_finite_differences() {
        struct Fd<'a, S: Surface>(&'a S);
        impl<S: Surface> Surface for Fd<'_, S> {
            fn height(&self, p: Vec2) -> f64 {
                self.0.height(p)
            }
        }
        let surfaces: Vec<AnalyticSurface> = vec![
            AnalyticSurface::Bowl { center: Vec2::new(0.5, -0.5), curvature: 1.3 },
            AnalyticSurface::DoubleWell { a: 1.5, barrier: 2.0 },
            AnalyticSurface::SinBumps { amp: 1.0, fx: 2.0, fy: 3.0 },
        ];
        for s in &surfaces {
            for &(x, y) in &[(0.1, 0.2), (1.0, -1.0), (-2.3, 0.4)] {
                let p = Vec2::new(x, y);
                let exact = s.gradient(p);
                let approx = Fd(s).gradient(p);
                assert_close(exact.x, approx.x, 1e-4);
                assert_close(exact.y, approx.y, 1e-4);
            }
        }
    }

    #[test]
    fn grid_interpolates_bilinearly() {
        let mut g = GridSurface::flat(3, 3, 1.0);
        g.set(1, 1, 4.0);
        // At the sample point itself.
        assert_eq!(g.height(Vec2::new(1.0, 1.0)), 4.0);
        // Halfway between a zero corner and the raised corner.
        assert_close(g.height(Vec2::new(0.5, 1.0)), 2.0, 1e-12);
        assert_close(g.height(Vec2::new(1.0, 0.5)), 2.0, 1e-12);
        // Centre of a cell: average of its 4 corners.
        assert_close(g.height(Vec2::new(0.5, 0.5)), 1.0, 1e-12);
    }

    #[test]
    fn grid_clamps_without_walls() {
        let mut g = GridSurface::flat(2, 2, 1.0);
        g.set(0, 0, 5.0);
        assert_eq!(g.height(Vec2::new(-10.0, -10.0)), 5.0);
    }

    #[test]
    fn grid_walls_return_wall_height() {
        let g = GridSurface::flat(2, 2, 1.0).with_walls();
        assert_eq!(g.height(Vec2::new(-0.1, 0.0)), GridSurface::WALL_HEIGHT);
        assert_eq!(g.height(Vec2::new(0.5, 0.5)), 0.0);
    }

    #[test]
    fn grid_sampling_reproduces_analytic_heights() {
        let s = AnalyticSurface::Bowl { center: Vec2::new(2.0, 2.0), curvature: 1.0 };
        let g = GridSurface::sample(&s, 5, 5, 1.0);
        // Exact at sample corners.
        assert_close(g.height(Vec2::new(0.0, 2.0)), 4.0, 1e-12);
        assert_close(g.height(Vec2::new(2.0, 2.0)), 0.0, 1e-12);
    }

    #[test]
    fn grid_gradient_matches_slope_on_incline() {
        let s = AnalyticSurface::Incline { z0: 0.0, slope: 0.75 };
        let g = GridSurface::sample(&s, 10, 4, 0.5);
        let grad = g.gradient(Vec2::new(2.3, 0.8));
        assert_close(grad.x, 0.75, 1e-9);
        assert_close(grad.y, 0.0, 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn grid_rejects_degenerate_dimensions() {
        let _ = GridSurface::flat(1, 5, 1.0);
    }
}
