//! The energy model of §3.3: kinetic + potential energy, heat accounting,
//! and the *potential height* `h*` that bounds which hills the object can
//! still climb.

/// Running energy accounts of a single object.
///
/// Conservation invariant: `kinetic + potential + heat` is constant over a
/// trajectory (up to integrator error); the ledger exposes it as
/// [`EnergyLedger::total_with_heat`] so tests and experiments can assert it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyLedger {
    mass: f64,
    g: f64,
    /// Cumulative energy dissipated as heat by kinetic friction.
    heat: f64,
    /// Initial mechanical energy at the start of the trajectory.
    initial_mechanical: f64,
}

impl EnergyLedger {
    /// Opens a ledger for an object of mass `m` under gravity `g`, starting
    /// at height `h0` with speed `v0`.
    pub fn new(mass: f64, g: f64, h0: f64, v0: f64) -> Self {
        assert!(mass > 0.0, "mass must be positive");
        assert!(g > 0.0, "gravity must be positive");
        EnergyLedger {
            mass,
            g,
            heat: 0.0,
            initial_mechanical: 0.5 * mass * v0 * v0 + mass * g * h0,
        }
    }

    /// Kinetic energy at speed `v`: `E_k = m·v²/2`.
    #[inline]
    pub fn kinetic(&self, v: f64) -> f64 {
        0.5 * self.mass * v * v
    }

    /// Potential energy at height `h`: `E_p = m·g·h`.
    #[inline]
    pub fn potential(&self, h: f64) -> f64 {
        self.mass * self.g * h
    }

    /// Records `joules` of friction heat.
    pub fn dissipate(&mut self, joules: f64) {
        debug_assert!(joules >= -1e-12, "heat cannot be negative");
        self.heat += joules.max(0.0);
    }

    /// Total heat dissipated so far.
    #[inline]
    pub fn heat(&self) -> f64 {
        self.heat
    }

    /// Mechanical energy at the given state.
    #[inline]
    pub fn mechanical(&self, h: f64, v: f64) -> f64 {
        self.kinetic(v) + self.potential(h)
    }

    /// Mechanical energy plus dissipated heat — conserved along the
    /// trajectory (equals the initial mechanical energy).
    #[inline]
    pub fn total_with_heat(&self, h: f64, v: f64) -> f64 {
        self.mechanical(h, v) + self.heat
    }

    /// The initial mechanical energy.
    #[inline]
    pub fn initial(&self) -> f64 {
        self.initial_mechanical
    }

    /// Conservation defect `|E(t) + heat − E(0)|`; should be ~0 for an exact
    /// integrator and small for a numerical one.
    #[inline]
    pub fn conservation_defect(&self, h: f64, v: f64) -> f64 {
        (self.total_with_heat(h, v) - self.initial_mechanical).abs()
    }

    /// The *potential height* `h*` at the given state: the height of the
    /// highest point the object could still reach if all kinetic energy were
    /// converted back to potential energy (§3.3):
    ///
    /// `h* = h + v²/(2g)`
    ///
    /// Equivalently `h* = h0 − Σ E_h/(m·g)` along the trajectory, which is
    /// the form the load-balancing algorithm tracks as a flag on each load.
    #[inline]
    pub fn potential_height(&self, h: f64, v: f64) -> f64 {
        h + v * v / (2.0 * self.g)
    }

    /// `h*` computed from the ledger instead of the instantaneous state:
    /// `h* = E_initial/(m·g) − heat/(m·g)`. Identical to
    /// [`Self::potential_height`] when energy is conserved; the difference
    /// between the two is exactly the integrator's conservation defect.
    #[inline]
    pub fn potential_height_from_ledger(&self) -> f64 {
        (self.initial_mechanical - self.heat) / (self.mass * self.g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinetic_and_potential_formulas() {
        let l = EnergyLedger::new(2.0, 10.0, 0.0, 0.0);
        assert_eq!(l.kinetic(3.0), 9.0);
        assert_eq!(l.potential(5.0), 100.0);
    }

    #[test]
    fn stationary_object_has_no_kinetic_energy() {
        let l = EnergyLedger::new(1.0, 9.8, 7.0, 0.0);
        assert_eq!(l.kinetic(0.0), 0.0);
        assert_eq!(l.initial(), l.potential(7.0));
    }

    #[test]
    fn conservation_without_heat() {
        // Drop from h=10: at h=0 all potential energy became kinetic.
        let l = EnergyLedger::new(1.0, 10.0, 10.0, 0.0);
        let v_at_bottom = (2.0f64 * 10.0 * 10.0).sqrt();
        assert!(l.conservation_defect(0.0, v_at_bottom) < 1e-9);
    }

    #[test]
    fn heat_accumulates_and_closes_the_books() {
        let mut l = EnergyLedger::new(1.0, 10.0, 10.0, 0.0);
        l.dissipate(30.0);
        l.dissipate(20.0);
        assert_eq!(l.heat(), 50.0);
        // Remaining mechanical energy must be 100 − 50 = 50 J, e.g. at
        // h = 5, v = 0.
        assert!(l.conservation_defect(5.0, 0.0) < 1e-9);
    }

    #[test]
    fn potential_height_combines_height_and_speed() {
        let l = EnergyLedger::new(1.0, 10.0, 0.0, 0.0);
        // At h = 3 with v² = 40 ⇒ extra height 2 ⇒ h* = 5.
        let v = 40.0f64.sqrt();
        assert!((l.potential_height(3.0, v) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn ledger_potential_height_tracks_heat() {
        let mut l = EnergyLedger::new(2.0, 10.0, 10.0, 0.0);
        assert_eq!(l.potential_height_from_ledger(), 10.0);
        // Losing 40 J with m·g = 20 lowers h* by 2.
        l.dissipate(40.0);
        assert!((l.potential_height_from_ledger() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn ledger_and_state_potential_heights_agree_when_conserved() {
        let mut l = EnergyLedger::new(1.0, 10.0, 10.0, 0.0);
        // Object slid to h = 6 losing 10 J to heat; speed from conservation:
        // E_k = 100 − 60 − 10 = 30 ⇒ v = sqrt(60).
        l.dissipate(10.0);
        let v = 60.0f64.sqrt();
        let a = l.potential_height(6.0, v);
        let b = l.potential_height_from_ledger();
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "mass must be positive")]
    fn rejects_nonpositive_mass() {
        let _ = EnergyLedger::new(0.0, 9.8, 0.0, 0.0);
    }
}
