//! Executable statements of the paper's §3.3 results (Corollaries 1–3,
//! Theorem 1), used by the test suite and by experiment binaries `exp3` /
//! `exp4` to check the physical model against its own theory.
//!
//! # What is rigorously checkable
//!
//! Theorem 1 (`P_c ≤ h* − µ_k·r` ⇒ not trapped) is a *sufficient energy*
//! condition: when it fails, the object may still escape through a boundary
//! point lower than the peak, and when it holds, real dynamics may still
//! fail to find the exit (oscillation). The *invariants* that can never be
//! violated by a correct implementation are:
//!
//! 1. **Height bound** — the object's height never exceeds its current
//!    potential height `h*` (energy cannot be created);
//! 2. **Radius bound** (Corollary 3) — the object cannot escape a contour
//!    whose escape radius exceeds `h*/µ_k` by more than the slope-geometry
//!    slack (the paper's bound uses the flat-ground distance `d⊥`; on a
//!    slope of gradient `s`, the friction toll per unit ground distance is
//!    reduced by `cos θ ≥ 1/√(1+s²)`, so the certified trapping radius is
//!    `√(1+s_max²)·h*/µ_k`).
//!
//! [`trapping_trial`] checks both and reports a [`TheoremVerdict`].

use crate::contour::{escape_possible, trapping_radius, Contour};
use crate::friction::Friction;
use crate::particle::{Particle, SimConfig, Simulation, StopReason};
use crate::surface::Surface;
use crate::vec::Vec2;

/// Result of checking one trapping experiment against the theory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TheoremVerdict {
    /// Simulation and theory agree.
    Consistent,
    /// An energy invariant was violated (height above `h*`, or escape beyond
    /// the slack-adjusted Corollary 3 radius) — implementation bug.
    Violation,
    /// Theorem 1's energy budget permitted escape but the object stayed —
    /// allowed: the theorem is sufficient-energy only, dynamics may not find
    /// the exit.
    ConservativelyTrapped,
}

/// Outcome of a single trapping trial.
#[derive(Debug, Clone)]
pub struct TrappingTrial {
    /// Potential height `h*` at the start of the trial.
    pub h_star: f64,
    /// Contour peak `P_c`.
    pub peak: f64,
    /// Escape radius `r_{c,p}` from the start position.
    pub escape_radius: f64,
    /// Whether Theorem 1's energy budget permits escape (`P_c ≤ h*−µ_k·r`).
    pub theory_escape_possible: bool,
    /// Whether the simulated object actually left the contour.
    pub escaped: bool,
    /// The verdict (see module docs for what counts as a violation).
    pub verdict: TheoremVerdict,
    /// Where the object came to rest (if it did).
    pub rest_pos: Option<Vec2>,
}

/// Runs an object from rest at `start` on `surface` with `friction` and
/// checks the §3.3 energy invariants against the given `contour`.
///
/// `max_slope` is the largest gradient magnitude the object will encounter;
/// it sets the `cos θ` slack on Corollary 3's radius bound (pass the exact
/// maximum if known, or a safe upper bound).
pub fn trapping_trial<S: Surface>(
    surface: &S,
    friction: Friction,
    config: SimConfig,
    start: Vec2,
    mass: f64,
    contour: &Contour,
    max_slope: f64,
) -> TrappingTrial {
    let mut sim = Simulation::new(surface, friction, config, Particle::at_rest(start, mass));
    let h_star0 = sim.potential_height();
    let peak = contour.peak(surface);
    let r = contour.escape_radius(start);
    let theory = escape_possible(peak, h_star0, friction.mu_k(), r);

    // Height invariant is monitored along the whole run.
    let tol = 1e-6 * (1.0 + h_star0.abs());
    let mut height_violated = false;
    let out = sim.run_until(|s| {
        if s.height() > s.ledger().potential_height_from_ledger() + tol + 1e-2 {
            height_violated = true;
            return true;
        }
        !contour.contains(s.particle().pos)
    });
    let escaped = out.reason == StopReason::Predicate && !height_violated;

    // Corollary 3 with slope slack.
    let slack = (1.0 + max_slope * max_slope).sqrt();
    let certified_trap_radius = slack * trapping_radius(h_star0, friction.mu_k());
    let radius_violated = escaped && r > certified_trap_radius * (1.0 + 1e-9);

    let verdict = if height_violated || radius_violated {
        TheoremVerdict::Violation
    } else if theory && !escaped {
        TheoremVerdict::ConservativelyTrapped
    } else {
        TheoremVerdict::Consistent
    };
    TrappingTrial {
        h_star: h_star0,
        peak,
        escape_radius: r,
        theory_escape_possible: theory,
        escaped,
        verdict,
        rest_pos: (out.reason == StopReason::AtRest).then_some(out.particle.pos),
    }
}

/// Outcome of [`max_travel_check`].
#[derive(Debug, Clone, Copy)]
pub struct TravelCheck {
    /// The Corollary 3 bound `h*/µ_k` (no slack applied).
    pub bound: f64,
    /// Straight-line displacement from start to rest.
    pub displacement: f64,
    /// Total ground path length travelled.
    pub path: f64,
    /// Whether the slack-adjusted bound holds for the displacement.
    pub ok: bool,
}

/// Corollary 3 check on surfaces with heights ≥ 0: displacement from the
/// start can never exceed `√(1+s_max²)·h*/µ_k`.
pub fn max_travel_check<S: Surface>(
    surface: &S,
    friction: Friction,
    config: SimConfig,
    start: Vec2,
    mass: f64,
    max_slope: f64,
) -> TravelCheck {
    let mut sim = Simulation::new(surface, friction, config, Particle::at_rest(start, mass));
    let bound = trapping_radius(sim.potential_height(), friction.mu_k());
    let out = sim.run_until_rest();
    let displacement = start.distance(out.particle.pos);
    let slack = (1.0 + max_slope * max_slope).sqrt();
    TravelCheck {
        bound,
        displacement,
        path: out.ground_distance,
        ok: displacement <= slack * bound * (1.0 + 1e-6),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surface::AnalyticSurface;

    fn crater() -> AnalyticSurface {
        AnalyticSurface::Crater { center: Vec2::ZERO, floor_r: 1.0, rim_r: 2.0, rim_height: 1.0 }
    }

    fn cfg() -> SimConfig {
        SimConfig { g: 10.0, dt: 1e-3, stop_speed: 1e-4, max_steps: 400_000 }
    }

    #[test]
    fn corollary2_friction_traps_inside_crater() {
        // Start on the inner rim below the peak; with strong friction the
        // object cannot leave the crater basin.
        let s = crater();
        let contour = Contour::disc(Vec2::ZERO, 3.0, 0.1);
        let trial = trapping_trial(
            &s,
            Friction::uniform(0.6),
            cfg(),
            Vec2::new(1.6, 0.0),
            1.0,
            &contour,
            1.0,
        );
        assert!(!trial.escaped);
        assert_ne!(trial.verdict, TheoremVerdict::Violation);
    }

    #[test]
    fn corollary1_no_friction_escapes_downhill() {
        // Frictionless object on a slope leaves any finite contour (it keeps
        // gaining speed downhill); Corollary 1 with the contour's exit lower
        // than the start.
        let s = AnalyticSurface::Incline { z0: 5.0, slope: 1.0 };
        let contour = Contour::disc(Vec2::new(4.0, 0.0), 2.0, 0.1);
        let trial = trapping_trial(
            &s,
            Friction::FRICTIONLESS,
            cfg(),
            Vec2::new(4.0, 0.0),
            1.0,
            &contour,
            1.0,
        );
        assert!(trial.escaped);
        assert_eq!(trial.verdict, TheoremVerdict::Consistent);
    }

    #[test]
    fn energy_invariants_hold_on_crater_sweep() {
        let s = crater();
        let contour = Contour::basin(&s, Vec2::ZERO, 0.99, 0.1, 100);
        for mu in [0.05, 0.1, 0.2, 0.4, 0.8] {
            for x0 in [0.2, 0.8, 1.4] {
                let trial = trapping_trial(
                    &s,
                    Friction::uniform(mu),
                    cfg(),
                    Vec2::new(x0, 0.0),
                    1.0,
                    &contour,
                    1.0, // crater rim slope = rim_height/(rim_r−floor_r) = 1
                );
                assert_ne!(trial.verdict, TheoremVerdict::Violation, "µ={mu} x0={x0}: {trial:?}");
            }
        }
    }

    #[test]
    fn corollary3_travel_bound_holds_on_bowl() {
        // Bowl heights are ≥ 0 and the start is on the rim: motion is radial
        // (1-D), so the flat-distance bound with slope slack must hold.
        let s = AnalyticSurface::Bowl { center: Vec2::ZERO, curvature: 0.25 };
        let start = Vec2::new(2.0, 0.0);
        let max_slope = 2.0 * 0.25 * 2.0; // |∇h| at the start radius
        let check = max_travel_check(&s, Friction::new(0.3, 0.3), cfg(), start, 1.0, max_slope);
        assert!(check.ok, "displacement {} > bound {}", check.displacement, check.bound);
        assert!(check.displacement > 0.0);
    }

    #[test]
    fn corollary3_more_friction_shorter_path() {
        // On the 1-D double well, a larger µ_k dissipates faster, so the
        // total path length shrinks.
        let s = AnalyticSurface::DoubleWell { a: 2.0, barrier: 1.0 };
        let run = |mu: f64| {
            let check =
                max_travel_check(&s, Friction::uniform(mu), cfg(), Vec2::new(3.5, 0.0), 1.0, 2.0);
            assert!(check.ok, "µ={mu}: {check:?}");
            check.path
        };
        assert!(run(0.05) > run(0.3), "path not shrinking with friction");
    }

    #[test]
    fn height_never_exceeds_potential_height() {
        // Release into a double well: the object oscillates across the
        // barrier region; its height must stay below h* throughout.
        let s = AnalyticSurface::DoubleWell { a: 2.0, barrier: 2.0 };
        let contour = Contour::disc(Vec2::new(0.0, 0.0), 50.0, 0.5);
        let trial = trapping_trial(
            &s,
            Friction::uniform(0.02),
            cfg(),
            Vec2::new(3.0, 0.0),
            1.0,
            &contour,
            3.0,
        );
        assert_ne!(trial.verdict, TheoremVerdict::Violation);
    }
}
