//! Trajectory recording: sampled `(t, position, height, h*)` states of a
//! run, for the experiment binaries that plot or post-process particle
//! paths (E3/E4) and for regression tests on path shapes.

use crate::particle::{RunOutcome, Simulation};
use crate::surface::Surface;
use crate::vec::Vec2;

/// One sampled state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Simulated time.
    pub t: f64,
    /// Ground position.
    pub pos: Vec2,
    /// Surface height under the object.
    pub height: f64,
    /// Potential height `h*` (ledger form).
    pub h_star: f64,
}

/// A recorded trajectory.
#[derive(Debug, Clone, Default)]
pub struct Trajectory {
    samples: Vec<Sample>,
}

impl Trajectory {
    /// Records a run until rest (or the step budget), keeping every
    /// `every`-th step plus the final state.
    pub fn record<S: Surface>(
        sim: &mut Simulation<'_, S>,
        every: usize,
    ) -> (Trajectory, RunOutcome) {
        let every = every.max(1);
        let mut samples = vec![Self::sample_of(sim)];
        let mut count = 0usize;
        let out = sim.run_until(|s| {
            count += 1;
            if count.is_multiple_of(every) {
                // Safety: the closure only reads the simulation.
                samples.push(Self::sample_of(s));
            }
            false
        });
        let mut traj = Trajectory { samples };
        traj.samples.push(Self::sample_of(sim));
        (traj, out)
    }

    fn sample_of<S: Surface>(sim: &Simulation<'_, S>) -> Sample {
        Sample {
            t: sim.time(),
            pos: sim.particle().pos,
            height: sim.height(),
            h_star: sim.ledger().potential_height_from_ledger(),
        }
    }

    /// The samples, in time order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Maximum height visited.
    pub fn max_height(&self) -> f64 {
        self.samples.iter().map(|s| s.height).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Total ground path length along the samples (a lower bound of the
    /// true path length).
    pub fn sampled_path_length(&self) -> f64 {
        self.samples.windows(2).map(|w| w[0].pos.distance(w[1].pos)).sum()
    }

    /// Verifies the two §3.3 invariants on every sample pair: `h ≤ h* + tol`
    /// and `h*` non-increasing. Returns the first offending sample index.
    pub fn check_energy_invariants(&self, tol: f64) -> Result<(), usize> {
        for (i, w) in self.samples.windows(2).enumerate() {
            if w[1].h_star > w[0].h_star + tol {
                return Err(i + 1);
            }
        }
        for (i, s) in self.samples.iter().enumerate() {
            if s.height > s.h_star + tol {
                return Err(i);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::friction::Friction;
    use crate::particle::Particle;
    use crate::surface::AnalyticSurface;

    fn cfg() -> crate::particle::SimConfig {
        crate::particle::SimConfig { g: 10.0, dt: 1e-3, stop_speed: 1e-4, max_steps: 100_000 }
    }

    #[test]
    fn records_descent_on_bowl() {
        let s = AnalyticSurface::Bowl { center: Vec2::ZERO, curvature: 0.5 };
        let mut sim = Simulation::new(
            &s,
            Friction::uniform(0.2),
            cfg(),
            Particle::at_rest(Vec2::new(2.0, 0.0), 1.0),
        );
        let (traj, out) = Trajectory::record(&mut sim, 50);
        assert!(traj.len() > 2);
        assert!(out.time > 0.0);
        // Starts high, ends near the bottom.
        assert!(traj.samples().first().unwrap().height > traj.samples().last().unwrap().height);
    }

    #[test]
    fn energy_invariants_hold_along_trajectory() {
        let s = AnalyticSurface::DoubleWell { a: 2.0, barrier: 1.0 };
        let mut sim = Simulation::new(
            &s,
            Friction::uniform(0.05),
            cfg(),
            Particle::at_rest(Vec2::new(3.5, 0.0), 1.0),
        );
        let (traj, _) = Trajectory::record(&mut sim, 10);
        assert_eq!(traj.check_energy_invariants(1e-6), Ok(()));
    }

    #[test]
    fn sampled_path_below_true_path() {
        let s = AnalyticSurface::Bowl { center: Vec2::ZERO, curvature: 0.5 };
        let mut sim = Simulation::new(
            &s,
            Friction::uniform(0.1),
            cfg(),
            Particle::at_rest(Vec2::new(2.0, 1.0), 1.0),
        );
        let (traj, out) = Trajectory::record(&mut sim, 100);
        assert!(traj.sampled_path_length() <= out.ground_distance + 1e-9);
        assert!(traj.sampled_path_length() > 0.0);
    }

    #[test]
    fn max_height_is_start_for_pure_descent() {
        let s = AnalyticSurface::Incline { z0: 5.0, slope: 1.0 };
        let mut sim = Simulation::new(
            &s,
            Friction::uniform(0.3),
            cfg(),
            Particle::at_rest(Vec2::new(1.0, 0.0), 1.0),
        );
        let start_h = sim.height();
        let (traj, _) = Trajectory::record(&mut sim, 20);
        assert!((traj.max_height() - start_h).abs() < 1e-9);
    }
}
