//! Static and kinetic friction (§3.1–3.2 of the paper).
//!
//! The paper measures the slope angle `α` from the perpendicular, giving the
//! movement criterion `1/tan α > µ_s` (its Eq. 1). With the conventional
//! from-horizontal angle `θ` (`θ = π/2 − α`) the same criterion reads
//! `tan θ > µ_s`, which is the form implemented here; the two are identical
//! because `cot α = tan θ`.

/// Friction coefficients of the object/yard pair.
///
/// Invariants: both coefficients are non-negative and `µ_k ≤ µ_s` — kinetic
/// friction never exceeds static friction, in physics as in the paper's load
/// model (`µ_k ∝ µ_s`, §4.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Friction {
    mu_s: f64,
    mu_k: f64,
}

impl Friction {
    /// A frictionless pairing (`µ_s = µ_k = 0`), as used by Corollary 1.
    pub const FRICTIONLESS: Friction = Friction { mu_s: 0.0, mu_k: 0.0 };

    /// Creates a friction model.
    ///
    /// # Panics
    /// Panics if either coefficient is negative, not finite, or if
    /// `mu_k > mu_s`.
    pub fn new(mu_s: f64, mu_k: f64) -> Self {
        assert!(mu_s.is_finite() && mu_s >= 0.0, "µ_s must be finite and ≥ 0");
        assert!(mu_k.is_finite() && mu_k >= 0.0, "µ_k must be finite and ≥ 0");
        assert!(mu_k <= mu_s, "kinetic friction cannot exceed static friction");
        Friction { mu_s, mu_k }
    }

    /// Creates a model where both coefficients are equal.
    pub fn uniform(mu: f64) -> Self {
        Friction::new(mu, mu)
    }

    /// The static coefficient `µ_s`.
    #[inline]
    pub fn mu_s(&self) -> f64 {
        self.mu_s
    }

    /// The kinetic coefficient `µ_k`.
    #[inline]
    pub fn mu_k(&self) -> f64 {
        self.mu_k
    }

    /// Eq. (1): does gravity overcome static friction on a slope of gradient
    /// magnitude `tan_theta = |∇h|`?
    ///
    /// Movement starts iff `tan θ > µ_s`; on the threshold the object stays
    /// put (the inequality in the paper is strict).
    #[inline]
    pub fn slope_moves(&self, tan_theta: f64) -> bool {
        tan_theta > self.mu_s
    }

    /// The threshold slope angle `θ_t = atan(µ_s)`: below it a stationary
    /// object never starts moving (the paper's `α_t`, complemented).
    #[inline]
    pub fn threshold_angle(&self) -> f64 {
        self.mu_s.atan()
    }

    /// Magnitude of the kinetic friction deceleration on a slope of angle
    /// `θ`, per unit mass: `f_k/m = µ_k·g·cos θ`.
    ///
    /// (The paper writes `f_k = µ_k·m·g·sin α` with `α` from the
    /// perpendicular; `sin α = cos θ`.)
    #[inline]
    pub fn kinetic_decel(&self, g: f64, cos_theta: f64) -> f64 {
        self.mu_k * g * cos_theta
    }

    /// Energy lost to heat when sliding a ground-plane distance `d_perp` with
    /// mass `m` under gravity `g` (§3.3):
    ///
    /// `E_h = µ_k · m · g · d⊥`
    ///
    /// The paper's key observation is that the heat depends only on the
    /// *horizontal* distance covered, not on the slope profile.
    #[inline]
    pub fn heat_loss(&self, m: f64, g: f64, d_perp: f64) -> f64 {
        self.mu_k * m * g * d_perp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frictionless_always_moves_on_any_slope() {
        let f = Friction::FRICTIONLESS;
        assert!(f.slope_moves(1e-9));
        assert!(!f.slope_moves(0.0)); // flat ground never moves
    }

    #[test]
    fn movement_threshold_is_strict() {
        let f = Friction::new(0.5, 0.3);
        assert!(!f.slope_moves(0.5));
        assert!(f.slope_moves(0.5 + 1e-12));
        assert!(!f.slope_moves(0.49));
    }

    #[test]
    fn threshold_angle_matches_mu_s() {
        let f = Friction::new(1.0, 0.5);
        assert!((f.threshold_angle() - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn heat_loss_scales_linearly_in_each_factor() {
        let f = Friction::new(0.4, 0.2);
        let base = f.heat_loss(1.0, 9.8, 1.0);
        assert!((f.heat_loss(2.0, 9.8, 1.0) - 2.0 * base).abs() < 1e-12);
        assert!((f.heat_loss(1.0, 9.8, 3.0) - 3.0 * base).abs() < 1e-12);
        assert_eq!(Friction::FRICTIONLESS.heat_loss(5.0, 9.8, 100.0), 0.0);
    }

    #[test]
    fn kinetic_decel_on_flat_ground() {
        let f = Friction::new(0.5, 0.25);
        assert!((f.kinetic_decel(10.0, 1.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "kinetic friction cannot exceed")]
    fn rejects_mu_k_above_mu_s() {
        let _ = Friction::new(0.1, 0.2);
    }

    #[test]
    #[should_panic(expected = "µ_s must be finite")]
    fn rejects_negative_mu_s() {
        let _ = Friction::new(-0.1, 0.0);
    }

    #[test]
    fn uniform_sets_both() {
        let f = Friction::uniform(0.3);
        assert_eq!(f.mu_s(), 0.3);
        assert_eq!(f.mu_k(), 0.3);
    }
}
