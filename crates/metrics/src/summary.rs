//! Cross-run summary statistics and fixed-width text tables for the
//! experiment binaries (`expN`) that regenerate the paper's artifacts.

/// Mean / standard deviation / min / max over repeated runs of a metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarises `samples`; empty input yields zeros.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary { n: 0, mean: 0.0, stddev: 0.0, min: 0.0, max: 0.0 };
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Summary {
            n,
            mean,
            stddev: var.sqrt(),
            min: samples.iter().cloned().fold(f64::INFINITY, f64::min),
            max: samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Half-width of the ~95% confidence interval (1.96·σ/√n; 0 for n < 2).
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.stddev / (self.n as f64).sqrt()
        }
    }
}

/// A fixed-width text table builder (the experiment binaries print the
/// paper's tables with it).
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row; must match the header arity.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[i] - cell.len()));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with the given number of decimals (helper for table
/// cells).
pub fn fmt(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.stddev - 1.0).abs() < 1e-12);
        assert!(s.ci95() > 0.0);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[5.0]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95(), 0.0);
        assert_eq!(s.mean, 5.0);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1"]);
        t.row(vec!["b", "22.5"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_bad_row() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn fmt_decimals() {
        assert_eq!(fmt(2.25916, 2), "2.26");
        assert_eq!(fmt(1.0, 0), "1");
    }
}
