//! Cross-run summary statistics and fixed-width text tables for the
//! experiment binaries (`expN`) and the `pp-lab stats` comparison
//! harness that regenerate the paper's artifacts.

/// Two-sided 97.5th-percentile Student-t critical values for df = 1..=30
/// (so `T975[df - 1]` is the 95%-CI multiplier at that df). Exact table
/// values; beyond df = 30 the normal 1.96 asymptote is close enough for
/// reporting purposes.
const T975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Student-t critical value for a two-sided 95% interval at `df` degrees
/// of freedom: exact table lookup for df ≤ 30, the normal-limit 1.96
/// above. `df = 0` (a single sample carries no spread information)
/// returns infinity.
pub fn t975(df: usize) -> f64 {
    match df {
        0 => f64::INFINITY,
        d if d <= 30 => T975[d - 1],
        _ => 1.96,
    }
}

/// Mean / standard deviation / min / max over repeated runs of a metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarises `samples`; empty input yields zeros. Any NaN sample
    /// poisons *every* field (mean, stddev, min and max are all NaN), so
    /// a corrupted run can never masquerade as a plausible min/max while
    /// the mean is already NaN.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary { n: 0, mean: 0.0, stddev: 0.0, min: 0.0, max: 0.0 };
        }
        let n = samples.len();
        if samples.iter().any(|x| x.is_nan()) {
            return Summary { n, mean: f64::NAN, stddev: f64::NAN, min: f64::NAN, max: f64::NAN };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Summary {
            n,
            mean,
            stddev: var.sqrt(),
            min: samples.iter().cloned().fold(f64::INFINITY, f64::min),
            max: samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Half-width of the 95% confidence interval, `t₀.₉₇₅(n−1)·s/√n`
    /// (0 for n < 2). Uses the Student-t critical value, not the normal
    /// 1.96: at the harness's realistic replicate counts (5–10 seeds)
    /// the t value is 2.78–2.26, so the z approximation understates the
    /// interval by up to ~40%.
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            t975(self.n - 1) * self.stddev / (self.n as f64).sqrt()
        }
    }
}

/// Outcome of a two-sample Welch comparison at the 95% level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The first sample's mean is significantly lower.
    Lower,
    /// The first sample's mean is significantly higher.
    Higher,
    /// No significant difference (or not enough data to tell).
    Indistinguishable,
}

impl Verdict {
    /// Stable machine-readable label (`lower` / `higher` /
    /// `indistinguishable`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Verdict::Lower => "lower",
            Verdict::Higher => "higher",
            Verdict::Indistinguishable => "indistinguishable",
        }
    }
}

/// Welch's unequal-variance t-test between two summarised samples at the
/// 95% level, with the Welch–Satterthwaite degrees of freedom rounded
/// down to stay conservative. Returns the verdict for `a` relative to
/// `b` plus the t statistic and the df used. Degenerate inputs (n < 2 on
/// either side, NaN anywhere, or two zero-variance samples with equal
/// means) come back `Indistinguishable`; two zero-variance samples with
/// *different* means are trivially distinguishable.
pub fn welch_test(a: &Summary, b: &Summary) -> (Verdict, f64, usize) {
    if a.n < 2 || b.n < 2 || a.mean.is_nan() || b.mean.is_nan() {
        return (Verdict::Indistinguishable, 0.0, 0);
    }
    let va = a.stddev * a.stddev / a.n as f64;
    let vb = b.stddev * b.stddev / b.n as f64;
    if va + vb == 0.0 {
        return if a.mean < b.mean {
            (Verdict::Lower, f64::NEG_INFINITY, a.n + b.n - 2)
        } else if a.mean > b.mean {
            (Verdict::Higher, f64::INFINITY, a.n + b.n - 2)
        } else {
            (Verdict::Indistinguishable, 0.0, a.n + b.n - 2)
        };
    }
    let t = (a.mean - b.mean) / (va + vb).sqrt();
    let df_ws = (va + vb) * (va + vb) / (va * va / (a.n - 1) as f64 + vb * vb / (b.n - 1) as f64);
    let df = (df_ws.floor() as usize).max(1);
    let crit = t975(df);
    let verdict = if t < -crit {
        Verdict::Lower
    } else if t > crit {
        Verdict::Higher
    } else {
        Verdict::Indistinguishable
    };
    (verdict, t, df)
}

/// A fixed-width text table builder (the experiment binaries print the
/// paper's tables with it).
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row; must match the header arity.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[i] - cell.len()));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with the given number of decimals (helper for table
/// cells).
pub fn fmt(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.stddev - 1.0).abs() < 1e-12);
        assert!(s.ci95() > 0.0);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[5.0]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95(), 0.0);
        assert_eq!(s.mean, 5.0);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn ci95_uses_student_t_at_small_n() {
        // n = 5 → df = 4 → t₀.₉₇₅ = 2.776, not the normal 1.96. Samples
        // with mean 3, stddev 1 make the expected half-width explicit.
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        let expected = 2.776 * s.stddev / 5f64.sqrt();
        assert!((s.ci95() - expected).abs() < 1e-12, "got {}", s.ci95());
        // The old z-based value would be ~29% smaller.
        assert!(s.ci95() > 1.96 * s.stddev / 5f64.sqrt() * 1.2);
    }

    #[test]
    fn t_table_exact_then_asymptote() {
        assert_eq!(t975(1), 12.706);
        assert_eq!(t975(4), 2.776);
        assert_eq!(t975(9), 2.262);
        assert_eq!(t975(30), 2.042);
        assert_eq!(t975(31), 1.96);
        assert_eq!(t975(1000), 1.96);
        assert!(t975(0).is_infinite());
        // The table is monotone decreasing toward the normal limit.
        for df in 1..30 {
            assert!(t975(df) > t975(df + 1), "df {df}");
        }
    }

    #[test]
    fn nan_sample_poisons_every_field() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.n, 3);
        assert!(s.mean.is_nan());
        assert!(s.stddev.is_nan());
        assert!(s.min.is_nan(), "min must not silently skip the NaN");
        assert!(s.max.is_nan(), "max must not silently skip the NaN");
        assert!(s.ci95().is_nan());
    }

    #[test]
    fn welch_separated_and_overlapping_samples() {
        let low = Summary::of(&[1.0, 1.1, 0.9, 1.05, 0.95]);
        let high = Summary::of(&[5.0, 5.2, 4.8, 5.1, 4.9]);
        let (v, t, df) = welch_test(&low, &high);
        assert_eq!(v, Verdict::Lower);
        assert!(t < -2.0);
        assert!(df >= 1);
        assert_eq!(welch_test(&high, &low).0, Verdict::Higher);
        // Same distribution → indistinguishable.
        let a = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let b = Summary::of(&[1.1, 2.1, 2.9, 4.1, 4.9]);
        assert_eq!(welch_test(&a, &b).0, Verdict::Indistinguishable);
    }

    #[test]
    fn welch_degenerate_inputs() {
        let one = Summary::of(&[2.0]);
        let many = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(welch_test(&one, &many).0, Verdict::Indistinguishable);
        let nan = Summary::of(&[1.0, f64::NAN]);
        assert_eq!(welch_test(&nan, &many).0, Verdict::Indistinguishable);
        // Two zero-variance samples: equal means tie, unequal separate.
        let flat2 = Summary::of(&[2.0, 2.0]);
        let flat2b = Summary::of(&[2.0, 2.0, 2.0]);
        let flat5 = Summary::of(&[5.0, 5.0]);
        assert_eq!(welch_test(&flat2, &flat2b).0, Verdict::Indistinguishable);
        assert_eq!(welch_test(&flat2, &flat5).0, Verdict::Lower);
        assert_eq!(welch_test(&flat5, &flat2).0, Verdict::Higher);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1"]);
        t.row(vec!["b", "22.5"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_bad_row() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn fmt_decimals() {
        assert_eq!(fmt(2.25916, 2), "2.26");
        assert_eq!(fmt(1.0, 0), "1");
    }
}
