//! The traffic ledger: every migration's cost, and the paper's *heat ≡
//! traffic* analogy (§4.1) made measurable.
//!
//! Heat in the physical model is `E_h = g·µ_k·e_{i,j}·l` per hop; network
//! traffic is the bytes (load units) moved times the hops (link weight)
//! used. The ledger records both so experiment `exp10` can correlate them.

/// One recorded migration hop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationRecord {
    /// Simulation time the hop completed.
    pub time: f64,
    /// Source node index.
    pub from: u32,
    /// Destination node index.
    pub to: u32,
    /// Load quantity moved (the object's mass).
    pub size: f64,
    /// Link weight `e_{i,j}` of the hop.
    pub link_weight: f64,
    /// Predicted heat `E_h = g·µ_k·e·l` charged by the balancer for this hop
    /// (0 for balancers without an energy model).
    pub heat: f64,
    /// Whether the transfer had to be retried due to a link fault.
    pub faulted: bool,
}

/// Accumulated migration/traffic statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrafficLedger {
    records: Vec<MigrationRecord>,
    total_load_moved: f64,
    total_weighted_traffic: f64,
    total_heat: f64,
    fault_count: usize,
}

impl TrafficLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        TrafficLedger::default()
    }

    /// Records one migration hop.
    pub fn record(&mut self, rec: MigrationRecord) {
        self.total_load_moved += rec.size;
        self.total_weighted_traffic += rec.size * rec.link_weight;
        self.total_heat += rec.heat;
        if rec.faulted {
            self.fault_count += 1;
        }
        self.records.push(rec);
    }

    /// Number of migration hops.
    pub fn migration_count(&self) -> usize {
        self.records.len()
    }

    /// Total load quantity moved (sum of sizes; a load migrating twice
    /// counts twice — it occupied the network twice).
    pub fn total_load_moved(&self) -> f64 {
        self.total_load_moved
    }

    /// Traffic in load·weight units: `Σ size·e_{i,j}` — the measured
    /// quantity the paper equates with heat.
    pub fn total_weighted_traffic(&self) -> f64 {
        self.total_weighted_traffic
    }

    /// Total predicted heat `Σ E_h` charged by the balancer.
    pub fn total_heat(&self) -> f64 {
        self.total_heat
    }

    /// Number of hops that encountered a link fault.
    pub fn fault_count(&self) -> usize {
        self.fault_count
    }

    /// All records, in arrival order.
    pub fn records(&self) -> &[MigrationRecord] {
        &self.records
    }

    /// Pearson correlation between per-record heat and weighted traffic;
    /// `None` if fewer than two records or zero variance. Experiment `exp10`
    /// expects this to be ≈ 1 for the particle-plane balancer.
    pub fn heat_traffic_correlation(&self) -> Option<f64> {
        let n = self.records.len();
        if n < 2 {
            return None;
        }
        let xs: Vec<f64> = self.records.iter().map(|r| r.heat).collect();
        let ys: Vec<f64> = self.records.iter().map(|r| r.size * r.link_weight).collect();
        pearson(&xs, &ys)
    }
}

/// Pearson correlation of two equal-length samples; `None` on zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "sample size mismatch");
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return None;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(size: f64, weight: f64, heat: f64) -> MigrationRecord {
        MigrationRecord {
            time: 0.0,
            from: 0,
            to: 1,
            size,
            link_weight: weight,
            heat,
            faulted: false,
        }
    }

    #[test]
    fn empty_ledger() {
        let l = TrafficLedger::new();
        assert_eq!(l.migration_count(), 0);
        assert_eq!(l.total_load_moved(), 0.0);
        assert_eq!(l.heat_traffic_correlation(), None);
    }

    #[test]
    fn totals_accumulate() {
        let mut l = TrafficLedger::new();
        l.record(rec(2.0, 3.0, 1.0));
        l.record(rec(1.0, 1.0, 0.5));
        assert_eq!(l.migration_count(), 2);
        assert_eq!(l.total_load_moved(), 3.0);
        assert_eq!(l.total_weighted_traffic(), 7.0);
        assert_eq!(l.total_heat(), 1.5);
    }

    #[test]
    fn fault_counting() {
        let mut l = TrafficLedger::new();
        l.record(MigrationRecord { faulted: true, ..rec(1.0, 1.0, 0.0) });
        l.record(rec(1.0, 1.0, 0.0));
        assert_eq!(l.fault_count(), 1);
    }

    #[test]
    fn perfect_correlation_when_heat_proportional() {
        let mut l = TrafficLedger::new();
        // heat = 0.1·size·weight for every record ⇒ correlation 1.
        for (s, w) in [(1.0, 1.0), (2.0, 1.5), (0.5, 3.0), (4.0, 0.25)] {
            l.record(rec(s, w, 0.1 * s * w));
        }
        let c = l.heat_traffic_correlation().unwrap();
        assert!((c - 1.0).abs() < 1e-12, "correlation {c}");
    }

    #[test]
    fn anticorrelation_detected() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_gives_none() {
        let xs = [1.0, 1.0, 1.0];
        let ys = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&xs, &ys), None);
    }
}
