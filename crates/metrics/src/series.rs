//! Time series of scalar metrics and convergence detection for Theorem 2
//! experiments ("the scheme converges to a nearly perfect load balance").

/// A `(time, value)` series, appended in time order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample; `time` must be non-decreasing.
    pub fn push(&mut self, time: f64, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(time >= last, "samples must arrive in time order");
        }
        self.points.push((time, value));
    }

    /// Pre-reserves room for `extra` further samples, so subsequent pushes
    /// up to that count cannot reallocate.
    pub fn reserve(&mut self, extra: usize) {
        self.points.reserve(extra);
    }

    /// All samples.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// First time at which the value drops to ≤ `threshold` and stays there
    /// for at least `window` consecutive samples. Returns the time of the
    /// first sample of the sustained window.
    pub fn converged_at(&self, threshold: f64, window: usize) -> Option<f64> {
        let window = window.max(1);
        let mut run = 0usize;
        let mut run_start = 0.0;
        for &(t, v) in &self.points {
            if v <= threshold {
                if run == 0 {
                    run_start = t;
                }
                run += 1;
                if run >= window {
                    return Some(run_start);
                }
            } else {
                run = 0;
            }
        }
        None
    }

    /// Whether the series is non-increasing within a tolerance (useful for
    /// "imbalance never gets worse" checks).
    pub fn is_non_increasing(&self, tol: f64) -> bool {
        self.points.windows(2).all(|w| w[1].1 <= w[0].1 + tol)
    }

    /// Area under the curve by trapezoid rule (e.g. cumulative imbalance —
    /// lower is better for comparing balancers).
    pub fn auc(&self) -> f64 {
        self.points.windows(2).map(|w| 0.5 * (w[0].1 + w[1].1) * (w[1].0 - w[0].0)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[f64]) -> TimeSeries {
        let mut s = TimeSeries::new();
        for (i, &v) in values.iter().enumerate() {
            s.push(i as f64, v);
        }
        s
    }

    #[test]
    fn push_and_query() {
        let s = series(&[3.0, 2.0, 1.0]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.last_value(), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn rejects_time_regression() {
        let mut s = TimeSeries::new();
        s.push(1.0, 0.0);
        s.push(0.5, 0.0);
    }

    #[test]
    fn convergence_detection_sustained() {
        // Dips below 1.0 at t=2 but bounces; converges for good at t=4.
        let s = series(&[5.0, 2.0, 0.5, 3.0, 0.8, 0.7, 0.6]);
        assert_eq!(s.converged_at(1.0, 3), Some(4.0));
        assert_eq!(s.converged_at(1.0, 1), Some(2.0));
        assert_eq!(s.converged_at(0.1, 2), None);
    }

    #[test]
    fn convergence_window_longer_than_series() {
        let s = series(&[0.1, 0.1]);
        assert_eq!(s.converged_at(1.0, 5), None);
    }

    #[test]
    fn non_increasing_check() {
        assert!(series(&[3.0, 2.0, 2.0, 1.0]).is_non_increasing(0.0));
        assert!(!series(&[1.0, 2.0]).is_non_increasing(0.0));
        assert!(series(&[1.0, 1.05]).is_non_increasing(0.1));
    }

    #[test]
    fn auc_of_constant_series() {
        let s = series(&[2.0, 2.0, 2.0]); // over t in [0,2]
        assert!((s.auc() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn auc_of_triangle() {
        let mut s = TimeSeries::new();
        s.push(0.0, 0.0);
        s.push(1.0, 1.0);
        assert!((s.auc() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_series_defaults() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.last_value(), None);
        assert_eq!(s.auc(), 0.0);
        assert!(s.is_non_increasing(0.0));
    }
}
