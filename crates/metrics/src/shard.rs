//! Per-shard decision-sweep accounting for the sharded tick pipeline.
//!
//! Each shard of the engine owns one [`ShardAccum`] and feeds it during its
//! own decision sweep with no synchronization; after the sweep the engine
//! merges the shard accumulators **in fixed shard order** into one
//! system-wide view. The counters are diagnostics only — they are kept out
//! of `RunReport`, whose byte-identity between sequential and sharded runs
//! is the pipeline's correctness contract (a K-shard run evaluates and
//! skips different shard counts than a 1-shard run, so these numbers are
//! layout-dependent by design).

/// Additive counters for one shard's (or, after merging, the whole
/// system's) decision sweeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardAccum {
    /// Ticks in which the shard was evaluated (its nodes' `decide` ran).
    pub ticks_evaluated: u64,
    /// Ticks in which the shard was skipped as quiescent.
    pub ticks_skipped: u64,
    /// Total node decisions evaluated.
    pub nodes_evaluated: u64,
    /// Total migration intents emitted.
    pub intents_emitted: u64,
}

impl ShardAccum {
    /// An empty accumulator.
    pub fn new() -> Self {
        ShardAccum::default()
    }

    /// Records one evaluated tick covering `nodes` decisions that emitted
    /// `intents` migration intents.
    pub fn record_evaluated(&mut self, nodes: u64, intents: u64) {
        self.ticks_evaluated += 1;
        self.nodes_evaluated += nodes;
        self.intents_emitted += intents;
    }

    /// Records one tick in which the shard was skipped as quiescent.
    pub fn record_skipped(&mut self) {
        self.ticks_skipped += 1;
    }

    /// Folds another accumulator into this one. Addition is commutative,
    /// but callers merge in fixed shard order anyway so any future
    /// order-sensitive field keeps a defined meaning.
    pub fn merge(&mut self, other: &ShardAccum) {
        self.ticks_evaluated += other.ticks_evaluated;
        self.ticks_skipped += other.ticks_skipped;
        self.nodes_evaluated += other.nodes_evaluated;
        self.intents_emitted += other.intents_emitted;
    }

    /// Fraction of shard-ticks skipped as quiescent (0 when nothing ran).
    pub fn skip_ratio(&self) -> f64 {
        let total = self.ticks_evaluated + self.ticks_skipped;
        if total == 0 {
            return 0.0;
        }
        self.ticks_skipped as f64 / total as f64
    }
}

/// Accumulated wall-clock samples of the shard pool's per-round barrier
/// overhead: a caller times batches of no-op `run_shards` rounds (publish +
/// wake + done-barrier with zero work inside) and records them here.
/// Additive like [`ShardAccum`], so samples from repeated batches — or from
/// pools of different shapes, if the caller wants an aggregate — merge into
/// one ns-per-round figure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BarrierSample {
    /// Barrier round-trips timed.
    pub rounds: u64,
    /// Total wall-clock nanoseconds across those rounds.
    pub total_ns: u64,
}

impl BarrierSample {
    /// An empty sample.
    pub fn new() -> Self {
        BarrierSample::default()
    }

    /// Records a batch of `rounds` no-op barrier round-trips that took
    /// `total_ns` nanoseconds of wall clock together.
    pub fn record(&mut self, rounds: u64, total_ns: u64) {
        self.rounds += rounds;
        self.total_ns += total_ns;
    }

    /// Folds another sample into this one.
    pub fn merge(&mut self, other: &BarrierSample) {
        self.rounds += other.rounds;
        self.total_ns += other.total_ns;
    }

    /// Mean nanoseconds per barrier round-trip (`None` until something was
    /// recorded — an unmeasured barrier has no cost figure, not a zero one).
    pub fn ns_per_round(&self) -> Option<f64> {
        if self.rounds == 0 {
            return None;
        }
        Some(self.total_ns as f64 / self.rounds as f64)
    }
}

/// Max/mean skew of a per-shard load vector: `1.0` is perfectly balanced,
/// `k` is "all load in one of `k` shards". Returns `0.0` for an empty
/// vector or a non-positive total, where no skew is defined — callers
/// comparing against a threshold ≥ 1 then correctly see "not skewed".
/// Non-finite entries count as zero so a poisoned counter can never
/// trigger (or suppress) a repartition nondeterministically.
pub fn load_skew(loads: &[f64]) -> f64 {
    let clean = |w: f64| if w.is_finite() && w > 0.0 { w } else { 0.0 };
    let total: f64 = loads.iter().map(|&w| clean(w)).sum();
    if loads.is_empty() || total <= 0.0 {
        return 0.0;
    }
    let mean = total / loads.len() as f64;
    loads.iter().fold(0.0f64, |m, &w| m.max(clean(w))) / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut a = ShardAccum::new();
        a.record_evaluated(16, 3);
        a.record_evaluated(16, 0);
        a.record_skipped();
        assert_eq!(a.ticks_evaluated, 2);
        assert_eq!(a.ticks_skipped, 1);
        assert_eq!(a.nodes_evaluated, 32);
        assert_eq!(a.intents_emitted, 3);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = ShardAccum::new();
        a.record_evaluated(8, 1);
        let mut b = ShardAccum::new();
        b.record_evaluated(4, 2);
        b.record_skipped();
        a.merge(&b);
        assert_eq!(
            a,
            ShardAccum {
                ticks_evaluated: 2,
                ticks_skipped: 1,
                nodes_evaluated: 12,
                intents_emitted: 3,
            }
        );
    }

    #[test]
    fn merge_order_independent_for_sums() {
        let parts = [
            ShardAccum {
                ticks_evaluated: 1,
                ticks_skipped: 2,
                nodes_evaluated: 3,
                intents_emitted: 4,
            },
            ShardAccum {
                ticks_evaluated: 5,
                ticks_skipped: 0,
                nodes_evaluated: 7,
                intents_emitted: 0,
            },
            ShardAccum {
                ticks_evaluated: 0,
                ticks_skipped: 9,
                nodes_evaluated: 0,
                intents_emitted: 1,
            },
        ];
        let mut fwd = ShardAccum::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = ShardAccum::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev);
    }

    #[test]
    fn barrier_sample_accumulates_and_averages() {
        let mut s = BarrierSample::new();
        assert_eq!(s.ns_per_round(), None);
        s.record(100, 50_000);
        s.record(100, 30_000);
        assert_eq!(s.rounds, 200);
        assert_eq!(s.ns_per_round(), Some(400.0));
        let mut other = BarrierSample::new();
        other.record(200, 160_000);
        s.merge(&other);
        assert_eq!(s.ns_per_round(), Some(600.0));
    }

    #[test]
    fn load_skew_basics() {
        assert_eq!(load_skew(&[]), 0.0);
        assert_eq!(load_skew(&[0.0, 0.0]), 0.0);
        assert_eq!(load_skew(&[4.0, 4.0, 4.0, 4.0]), 1.0);
        // All load in one of four shards: skew = k.
        assert_eq!(load_skew(&[12.0, 0.0, 0.0, 0.0]), 4.0);
        // max 6, mean 3 → 2.
        assert_eq!(load_skew(&[6.0, 2.0, 2.0, 2.0]), 2.0);
    }

    #[test]
    fn load_skew_ignores_poisoned_entries() {
        assert_eq!(load_skew(&[f64::NAN, f64::INFINITY, -3.0]), 0.0);
        assert_eq!(load_skew(&[f64::NAN, 5.0]), 2.0);
    }

    #[test]
    fn skip_ratio_bounds() {
        let mut a = ShardAccum::new();
        assert_eq!(a.skip_ratio(), 0.0);
        a.record_skipped();
        assert_eq!(a.skip_ratio(), 1.0);
        a.record_evaluated(1, 0);
        assert_eq!(a.skip_ratio(), 0.5);
    }
}
