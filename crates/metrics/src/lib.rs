//! # pp-metrics — measurement for load-balancing experiments
//!
//! Everything the experiments measure: instantaneous [`imbalance::Imbalance`]
//! statistics of a load distribution, the [`ledger::TrafficLedger`] recording
//! every migration (and the paper's *heat ≡ traffic* analogy, §4.1),
//! [`series::TimeSeries`] with convergence detection for Theorem 2,
//! [`shard::ShardAccum`] mergeable per-shard sweep counters for the sharded
//! tick pipeline, and [`summary`] helpers for multi-run tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod imbalance;
pub mod ledger;
pub mod series;
pub mod shard;
pub mod summary;

/// One-stop imports.
pub mod prelude {
    pub use crate::imbalance::{rmse_vs_ideal, Imbalance};
    pub use crate::ledger::{pearson, MigrationRecord, TrafficLedger};
    pub use crate::series::TimeSeries;
    pub use crate::shard::ShardAccum;
    pub use crate::summary::{fmt, Summary, TextTable};
}
