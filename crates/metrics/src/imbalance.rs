//! Load imbalance statistics over the per-node height vector `h(v)`.

/// Summary statistics of a load distribution at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Imbalance {
    /// Smallest node load.
    pub min: f64,
    /// Largest node load.
    pub max: f64,
    /// Mean node load.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Coefficient of variation `σ/µ` (0 when the mean is 0).
    pub cov: f64,
    /// `max − min` spread.
    pub spread: f64,
    /// `max/mean` ratio (1 when perfectly balanced; 0 mean ⇒ 1).
    pub max_over_mean: f64,
}

impl Imbalance {
    /// Computes the statistics of `loads`. Empty input yields all-zero stats.
    pub fn of(loads: &[f64]) -> Imbalance {
        if loads.is_empty() {
            return Imbalance {
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                stddev: 0.0,
                cov: 0.0,
                spread: 0.0,
                max_over_mean: 1.0,
            };
        }
        let n = loads.len() as f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &l in loads {
            min = min.min(l);
            max = max.max(l);
            sum += l;
        }
        let mean = sum / n;
        let var = loads.iter().map(|&l| (l - mean) * (l - mean)).sum::<f64>() / n;
        let stddev = var.sqrt();
        Imbalance {
            min,
            max,
            mean,
            stddev,
            cov: if mean.abs() > 0.0 { stddev / mean } else { 0.0 },
            spread: max - min,
            max_over_mean: if mean.abs() > 0.0 { max / mean } else { 1.0 },
        }
    }

    /// Whether the distribution is balanced to within a CoV of `epsilon`.
    pub fn is_balanced(&self, epsilon: f64) -> bool {
        self.cov <= epsilon
    }
}

/// Root-mean-square error of `loads` against the perfectly balanced
/// distribution (every node at the mean).
pub fn rmse_vs_ideal(loads: &[f64]) -> f64 {
    Imbalance::of(loads).stddev
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_loads_are_perfectly_balanced() {
        let im = Imbalance::of(&[4.0; 8]);
        assert_eq!(im.min, 4.0);
        assert_eq!(im.max, 4.0);
        assert_eq!(im.stddev, 0.0);
        assert_eq!(im.cov, 0.0);
        assert_eq!(im.spread, 0.0);
        assert_eq!(im.max_over_mean, 1.0);
        assert!(im.is_balanced(0.0));
    }

    #[test]
    fn hotspot_statistics() {
        // One node with everything: mean = 1, max = 8 over 8 nodes.
        let mut loads = vec![0.0; 8];
        loads[3] = 8.0;
        let im = Imbalance::of(&loads);
        assert_eq!(im.mean, 1.0);
        assert_eq!(im.max_over_mean, 8.0);
        assert_eq!(im.spread, 8.0);
        assert!(!im.is_balanced(0.5));
    }

    #[test]
    fn known_variance() {
        let im = Imbalance::of(&[1.0, 3.0]);
        assert_eq!(im.mean, 2.0);
        assert_eq!(im.stddev, 1.0);
        assert_eq!(im.cov, 0.5);
    }

    #[test]
    fn zero_mean_cov_is_zero() {
        let im = Imbalance::of(&[0.0, 0.0, 0.0]);
        assert_eq!(im.cov, 0.0);
        assert_eq!(im.max_over_mean, 1.0);
        assert!(im.is_balanced(0.1));
    }

    #[test]
    fn empty_input_is_all_zero() {
        let im = Imbalance::of(&[]);
        assert_eq!(im.mean, 0.0);
        assert_eq!(im.spread, 0.0);
    }

    #[test]
    fn rmse_matches_stddev() {
        let loads = [2.0, 4.0, 6.0, 8.0];
        assert_eq!(rmse_vs_ideal(&loads), Imbalance::of(&loads).stddev);
    }

    #[test]
    fn balance_improves_monotonically_under_averaging() {
        // Pairwise averaging (what dimension exchange does) may not increase
        // the CoV.
        let mut loads = vec![10.0, 0.0, 6.0, 2.0];
        let before = Imbalance::of(&loads).cov;
        let avg = (loads[0] + loads[1]) / 2.0;
        loads[0] = avg;
        loads[1] = avg;
        let after = Imbalance::of(&loads).cov;
        assert!(after <= before);
    }
}
