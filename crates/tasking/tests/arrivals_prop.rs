//! Property-based tests for the dynamic arrival models: bursty ON/OFF,
//! diurnal sine-wave and the adversarial moving hotspot. Each generator
//! must (a) keep its arrivals inside the windows its parameters define,
//! (b) pin its long-run mean arrival rate to the analytic value, and
//! (c) be bit-deterministic per seed (the foundation of the golden-report
//! CI gate).

use pp_tasking::workload::{record_trace, validate_trace, ArrivalProcess};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Samples arrivals until `horizon`, returning the count.
fn count_until(p: &ArrivalProcess, horizon: f64, seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    let mut count = 0u64;
    while let Some((next, _)) = p.next_after(t, &mut rng) {
        if next > horizon {
            break;
        }
        t = next;
        count += 1;
    }
    count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bursty_arrivals_stay_inside_bursts(
        rate in 2.0f64..20.0,
        burst_len in 0.5f64..4.0,
        quiet_len in 0.5f64..10.0,
        seed in 0u64..1000,
    ) {
        let p = ArrivalProcess::Bursty { rate, burst_len, quiet_len, size: 1.0 };
        let cycle = burst_len + quiet_len;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0;
        for _ in 0..200 {
            let (next, size) = p.next_after(t, &mut rng).unwrap();
            prop_assert!(next > t, "time must advance");
            prop_assert_eq!(size, 1.0);
            let phase = next % cycle;
            // An arrival pushed to the next burst start may land at phase
            // ≈ cycle − ε through float rounding; that is the burst
            // boundary, not the quiet window.
            let eps = 1e-9 * next.abs().max(1.0);
            prop_assert!(
                phase <= burst_len + eps || cycle - phase <= eps,
                "arrival at quiet phase {} (cycle {})", phase, cycle
            );
            t = next;
        }
    }

    #[test]
    fn diurnal_long_run_rate_is_base_rate(
        base_rate in 1.0f64..6.0,
        amplitude in 0.0f64..1.0,
        period in 5.0f64..20.0,
        seed in 0u64..1000,
    ) {
        // Over whole periods the sine integrates to zero, so the mean rate
        // is base_rate for any amplitude. 400 periods keeps the sampling
        // error well under the 10% tolerance.
        let p = ArrivalProcess::Diurnal {
            base_rate, amplitude, period, size_min: 1.0, size_max: 1.0,
        };
        let horizon = 400.0 * period;
        let mean = count_until(&p, horizon, seed) as f64 / horizon;
        prop_assert!(
            (mean - base_rate).abs() < 0.1 * base_rate,
            "mean rate {} vs base {}", mean, base_rate
        );
    }

    #[test]
    fn diurnal_deterministic_per_seed(
        base_rate in 1.0f64..6.0,
        amplitude in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let p = ArrivalProcess::Diurnal {
            base_rate, amplitude, period: 10.0, size_min: 0.5, size_max: 1.5,
        };
        let a = record_trace(&p, 8, 50.0, seed);
        let b = record_trace(&p, 8, 50.0, seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn moving_hotspot_rate_and_schedule(
        rate in 1.0f64..10.0,
        dwell in 1.0f64..20.0,
        stride in 1u32..16,
        seed in 0u64..1000,
    ) {
        // Arrival times are plain Poisson: the long-run rate is `rate`.
        let p = ArrivalProcess::MovingHotspot { rate, size: 1.0, dwell, stride };
        let horizon = 2000.0;
        let mean = count_until(&p, horizon, seed) as f64 / horizon;
        prop_assert!((mean - rate).abs() < 0.1 * rate, "mean rate {} vs {}", mean, rate);

        // Targets follow the deterministic dwell schedule, independent of
        // the RNG, and never leave the node range.
        let n = 16usize;
        let mut rng = StdRng::seed_from_u64(seed);
        for k in 0..50u64 {
            let t = k as f64 * dwell + 0.5 * dwell;
            let expect = ((k * u64::from(stride)) % n as u64) as u32;
            prop_assert_eq!(p.target_node(t, n, &mut rng), expect);
        }
    }

    #[test]
    fn recorded_traces_always_validate_and_replay_identically(
        rate in 1.0f64..8.0,
        nodes in 2usize..32,
        seed in 0u64..1000,
    ) {
        let p = ArrivalProcess::Poisson { rate, size_min: 0.5, size_max: 1.5 };
        let trace = record_trace(&p, nodes, 40.0, seed);
        prop_assert!(validate_trace(&trace, nodes).is_ok());
        prop_assert_eq!(record_trace(&p, nodes, 40.0, seed), trace);
    }
}
