//! # pp-tasking — tasks, dependencies, resources and workloads
//!
//! The paper's system model (§4.2) has three inputs besides the network:
//! the tasks themselves (loads with a size/mass), the task-dependency graph
//! `T` whose edge weights are inter-task communication volumes, and the
//! resource matrix `R` tying tasks to nodes holding resources they need.
//! This crate provides all three plus the synthetic workload generators the
//! experiments run on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod resources;
pub mod task;
pub mod workload;

/// One-stop imports.
pub mod prelude {
    pub use crate::graph::TaskGraph;
    pub use crate::resources::ResourceMatrix;
    pub use crate::task::{Task, TaskId, TaskIdGen};
    pub use crate::workload::{record_trace, validate_trace, ArrivalProcess, TraceEvent, Workload};
}
