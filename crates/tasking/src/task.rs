//! Tasks — the paper's *loads* (it uses the two words interchangeably; the
//! word *task* stresses affinity/dependency, *load* stresses size, §1).

use std::fmt;

/// Globally unique task identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A unit of work assigned to some processor.
///
/// `size` is the paper's mass `m` — "the computational complexity or the
/// mnemonic size of the load" (Table 1). `work` is the remaining execution
/// demand, consumed by the owning node at unit rate; for pure redistribution
/// experiments (the quiescent assumption of §2) `work` is ignored.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Task {
    /// Identifier.
    pub id: TaskId,
    /// Load quantity / mass `m` (> 0).
    pub size: f64,
    /// Remaining execution demand (≥ 0).
    pub work: f64,
    /// Simulation time at which the task entered the system.
    pub created_at: f64,
    /// Node index where the task was created (its origin; `h₀` is the origin
    /// node's height at departure time).
    pub origin: u32,
}

impl Task {
    /// Creates a task with `work == size` (the common case: demand equals
    /// size).
    pub fn new(id: TaskId, size: f64, origin: u32) -> Self {
        assert!(size > 0.0, "task size must be positive");
        Task { id, size, work: size, created_at: 0.0, origin }
    }

    /// Sets the creation time (builder style).
    pub fn created_at(mut self, t: f64) -> Self {
        self.created_at = t;
        self
    }

    /// Sets an explicit work demand (builder style).
    pub fn with_work(mut self, work: f64) -> Self {
        assert!(work >= 0.0, "work must be non-negative");
        self.work = work;
        self
    }

    /// Whether the task has finished executing.
    pub fn is_done(&self) -> bool {
        self.work <= 0.0
    }
}

/// Hands out sequential [`TaskId`]s.
#[derive(Debug, Default, Clone)]
pub struct TaskIdGen {
    next: u64,
}

impl TaskIdGen {
    /// A generator starting at id 0.
    pub fn new() -> Self {
        TaskIdGen::default()
    }

    /// Returns the next fresh id.
    pub fn next_id(&mut self) -> TaskId {
        let id = TaskId(self.next);
        self.next += 1;
        id
    }

    /// The id the next [`TaskIdGen::next_id`] call will hand out —
    /// the generator's checkpointable position.
    pub fn position(&self) -> u64 {
        self.next
    }

    /// A generator resuming at `next` (inverse of [`TaskIdGen::position`]).
    pub fn starting_at(next: u64) -> Self {
        TaskIdGen { next }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_task_defaults() {
        let t = Task::new(TaskId(1), 2.5, 7);
        assert_eq!(t.work, 2.5);
        assert_eq!(t.origin, 7);
        assert_eq!(t.created_at, 0.0);
        assert!(!t.is_done());
    }

    #[test]
    fn builders() {
        let t = Task::new(TaskId(0), 1.0, 0).created_at(5.0).with_work(0.0);
        assert_eq!(t.created_at, 5.0);
        assert!(t.is_done());
    }

    #[test]
    #[should_panic(expected = "size must be positive")]
    fn zero_size_rejected() {
        let _ = Task::new(TaskId(0), 0.0, 0);
    }

    #[test]
    fn id_generator_is_sequential() {
        let mut g = TaskIdGen::new();
        assert_eq!(g.next_id(), TaskId(0));
        assert_eq!(g.next_id(), TaskId(1));
        assert_eq!(g.next_id(), TaskId(2));
    }

    #[test]
    fn id_generator_position_round_trips() {
        let mut g = TaskIdGen::new();
        for _ in 0..5 {
            g.next_id();
        }
        assert_eq!(g.position(), 5);
        let mut resumed = TaskIdGen::starting_at(g.position());
        assert_eq!(resumed.next_id(), g.next_id());
    }

    #[test]
    fn display() {
        assert_eq!(TaskId(42).to_string(), "t42");
    }
}
