//! The task-dependency graph `T` (§4.2): vertices are tasks, weighted edges
//! are the communication volumes between dependent tasks. `T_{i,j}` feeds
//! the static friction `µ_s` — a task talking heavily to tasks on its node
//! resists migration.

use crate::task::TaskId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Sparse symmetric task dependency matrix.
///
/// Stored twice for the two access patterns: a pair-keyed map for point
/// lookups, and a weighted adjacency list so the `µ_s` hot path can walk a
/// task's (usually short) partner list with one hash lookup instead of
/// hashing every co-located pair.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    edges: HashMap<(u64, u64), f64>,
    adj: HashMap<u64, Vec<(TaskId, f64)>>,
}

fn key(a: TaskId, b: TaskId) -> (u64, u64) {
    if a.0 <= b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

impl TaskGraph {
    /// An empty graph (all tasks independent).
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Sets the dependency weight `T_{a,b}` (symmetric; weight must be ≥ 0;
    /// 0 removes the edge).
    pub fn set_dependency(&mut self, a: TaskId, b: TaskId, weight: f64) {
        assert!(weight >= 0.0, "dependency weight must be ≥ 0");
        assert_ne!(a, b, "a task does not depend on itself");
        let k = key(a, b);
        if weight == 0.0 {
            if self.edges.remove(&k).is_some() {
                if let Some(l) = self.adj.get_mut(&a.0) {
                    l.retain(|(t, _)| *t != b);
                }
                if let Some(l) = self.adj.get_mut(&b.0) {
                    l.retain(|(t, _)| *t != a);
                }
            }
            return;
        }
        if self.edges.insert(k, weight).is_none() {
            self.adj.entry(a.0).or_default().push((b, weight));
            self.adj.entry(b.0).or_default().push((a, weight));
        } else {
            for (from, to) in [(a, b), (b, a)] {
                if let Some(l) = self.adj.get_mut(&from.0) {
                    if let Some(entry) = l.iter_mut().find(|(t, _)| *t == to) {
                        entry.1 = weight;
                    }
                }
            }
        }
    }

    /// The dependency weight `T_{a,b}` (0 when independent).
    pub fn dependency(&self, a: TaskId, b: TaskId) -> f64 {
        if a == b {
            return 0.0;
        }
        self.edges.get(&key(a, b)).copied().unwrap_or(0.0)
    }

    /// Tasks directly dependent on `t`, with their weights `T_{t,x}`.
    pub fn partners_weighted(&self, t: TaskId) -> &[(TaskId, f64)] {
        self.adj.get(&t.0).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Sum of `T_{t,x}` over the given set of co-located tasks — the raw
    /// ingredient of `µ_s` (§4.2).
    pub fn affinity_to(&self, t: TaskId, colocated: &[TaskId]) -> f64 {
        if self.edges.is_empty() {
            return 0.0;
        }
        self.partners_weighted(t)
            .iter()
            .filter(|(p, _)| colocated.contains(p))
            .map(|&(_, w)| w)
            .sum()
    }

    /// Total communication weight incident to `t`.
    pub fn total_dependency(&self, t: TaskId) -> f64 {
        self.partners_weighted(t).iter().map(|&(_, w)| w).sum()
    }

    /// Number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no edges (every task independent).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Builds a chain `t0 — t1 — … — tn` with uniform weight (a pipeline).
    pub fn chain(tasks: &[TaskId], weight: f64) -> Self {
        let mut g = TaskGraph::new();
        for w in tasks.windows(2) {
            g.set_dependency(w[0], w[1], weight);
        }
        g
    }

    /// Random clustered dependencies: tasks are split into `clusters`
    /// round-robin; within a cluster each pair is linked with probability
    /// `p_intra` and weight drawn from `[0, w_max]`. Models the paper's
    /// communicating task groups. Deterministic for a given seed.
    pub fn clustered(
        tasks: &[TaskId],
        clusters: usize,
        p_intra: f64,
        w_max: f64,
        seed: u64,
    ) -> Self {
        assert!(clusters >= 1);
        assert!((0.0..=1.0).contains(&p_intra));
        let mut g = TaskGraph::new();
        let mut rng = StdRng::seed_from_u64(seed);
        for (i, &a) in tasks.iter().enumerate() {
            for (j, &b) in tasks.iter().enumerate().skip(i + 1) {
                if i % clusters == j % clusters && rng.gen_bool(p_intra) {
                    g.set_dependency(a, b, rng.gen_range(0.0..=w_max));
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_tasks_have_zero_dependency() {
        let g = TaskGraph::new();
        assert_eq!(g.dependency(TaskId(0), TaskId(1)), 0.0);
        assert!(g.partners_weighted(TaskId(0)).is_empty());
    }

    #[test]
    fn set_and_get_symmetric() {
        let mut g = TaskGraph::new();
        g.set_dependency(TaskId(0), TaskId(1), 2.5);
        assert_eq!(g.dependency(TaskId(0), TaskId(1)), 2.5);
        assert_eq!(g.dependency(TaskId(1), TaskId(0)), 2.5);
        assert_eq!(g.partners_weighted(TaskId(0)), &[(TaskId(1), 2.5)]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn zero_weight_removes_edge() {
        let mut g = TaskGraph::new();
        g.set_dependency(TaskId(0), TaskId(1), 1.0);
        g.set_dependency(TaskId(0), TaskId(1), 0.0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.partners_weighted(TaskId(0)).is_empty());
        assert!(g.partners_weighted(TaskId(1)).is_empty());
    }

    #[test]
    fn affinity_sums_colocated_weights() {
        let mut g = TaskGraph::new();
        g.set_dependency(TaskId(0), TaskId(1), 1.0);
        g.set_dependency(TaskId(0), TaskId(2), 2.0);
        g.set_dependency(TaskId(0), TaskId(3), 4.0);
        // Only tasks 1 and 3 are co-located.
        assert_eq!(g.affinity_to(TaskId(0), &[TaskId(1), TaskId(3)]), 5.0);
        assert_eq!(g.total_dependency(TaskId(0)), 7.0);
    }

    #[test]
    fn self_dependency_is_zero() {
        let g = TaskGraph::new();
        assert_eq!(g.dependency(TaskId(5), TaskId(5)), 0.0);
    }

    #[test]
    #[should_panic(expected = "does not depend on itself")]
    fn self_edge_rejected() {
        let mut g = TaskGraph::new();
        g.set_dependency(TaskId(1), TaskId(1), 1.0);
    }

    #[test]
    fn chain_links_consecutive() {
        let ids: Vec<TaskId> = (0..4).map(TaskId).collect();
        let g = TaskGraph::chain(&ids, 1.5);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.dependency(TaskId(0), TaskId(1)), 1.5);
        assert_eq!(g.dependency(TaskId(0), TaskId(2)), 0.0);
    }

    #[test]
    fn clustered_is_deterministic_and_intra_only() {
        let ids: Vec<TaskId> = (0..12).map(TaskId).collect();
        let a = TaskGraph::clustered(&ids, 3, 0.8, 2.0, 42);
        let b = TaskGraph::clustered(&ids, 3, 0.8, 2.0, 42);
        assert_eq!(a.edge_count(), b.edge_count());
        // Only same-cluster pairs (i ≡ j mod 3) may be linked.
        for i in 0..12u64 {
            for j in (i + 1)..12 {
                if i % 3 != j % 3 {
                    assert_eq!(a.dependency(TaskId(i), TaskId(j)), 0.0);
                }
            }
        }
    }
}
