//! Synthetic workload generators: initial load placements (uniform-random,
//! hotspot, bimodal, ramp) and dynamic arrival processes (Poisson, bursty)
//! for the §1 scenario of "new tasks entering the system at any time and at
//! any node".

use crate::task::{Task, TaskIdGen};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An initial placement of tasks onto nodes.
#[derive(Debug, Clone)]
pub struct Workload {
    /// `tasks[i]` is the list of tasks initially on node `i`.
    pub tasks: Vec<Vec<Task>>,
    /// Id generator positioned after the highest id already used (so dynamic
    /// arrivals can continue the sequence).
    pub idgen: TaskIdGen,
}

impl Workload {
    /// Builds a workload from explicit per-node load quantities; each node's
    /// quantity is split into tasks of roughly `task_size` each.
    pub fn from_loads(loads: &[f64], task_size: f64) -> Workload {
        assert!(task_size > 0.0, "task size must be positive");
        let mut idgen = TaskIdGen::new();
        let tasks = loads
            .iter()
            .enumerate()
            .map(|(node, &quantity)| {
                assert!(quantity >= 0.0, "load quantity must be ≥ 0");
                let mut rest = quantity;
                let mut list = Vec::new();
                while rest > 1e-12 {
                    let s = rest.min(task_size);
                    list.push(Task::new(idgen.next_id(), s, node as u32));
                    rest -= s;
                }
                list
            })
            .collect();
        Workload { tasks, idgen }
    }

    /// Everything on one node: the paper's canonical worst case (a single
    /// hill on a flat yard). `total` load on `hot`, split into `task_size`
    /// chunks.
    pub fn hotspot(nodes: usize, hot: usize, total: f64) -> Workload {
        Self::hotspot_sized(nodes, hot, total, 1.0)
    }

    /// [`Workload::hotspot`] with an explicit task size.
    pub fn hotspot_sized(nodes: usize, hot: usize, total: f64, task_size: f64) -> Workload {
        assert!(hot < nodes, "hot node out of range");
        let mut loads = vec![0.0; nodes];
        loads[hot] = total;
        Self::from_loads(&loads, task_size)
    }

    /// Several hotspots of equal height on the given nodes.
    pub fn multi_hotspot(nodes: usize, hot: &[usize], total: f64) -> Workload {
        assert!(!hot.is_empty());
        let mut loads = vec![0.0; nodes];
        for &h in hot {
            assert!(h < nodes, "hot node out of range");
            loads[h] += total / hot.len() as f64;
        }
        Self::from_loads(&loads, 1.0)
    }

    /// Independent uniform loads in `[0, max_per_node]` per node (seeded).
    pub fn uniform_random(nodes: usize, max_per_node: f64, seed: u64) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed);
        let loads: Vec<f64> = (0..nodes).map(|_| rng.gen_range(0.0..max_per_node)).collect();
        Self::from_loads(&loads, 1.0)
    }

    /// Bimodal: a `fraction` of nodes get `high`, the rest get `low`
    /// (seeded shuffle).
    pub fn bimodal(nodes: usize, fraction: f64, high: f64, low: f64, seed: u64) -> Workload {
        assert!((0.0..=1.0).contains(&fraction));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..nodes).collect();
        // Fisher–Yates.
        for i in (1..nodes).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        let cut = (nodes as f64 * fraction).round() as usize;
        let mut loads = vec![low; nodes];
        for &i in idx.iter().take(cut) {
            loads[i] = high;
        }
        Self::from_loads(&loads, 1.0)
    }

    /// Linear ramp: node `i` gets `i · step` load.
    pub fn ramp(nodes: usize, step: f64) -> Workload {
        let loads: Vec<f64> = (0..nodes).map(|i| i as f64 * step).collect();
        Self::from_loads(&loads, 1.0)
    }

    /// Zipf-distributed task sizes: `count` tasks with sizes
    /// `base/(rank^skew)` (rank 1..=count), dealt round-robin onto nodes in
    /// a seeded random order. Models the heavy-tailed job mixes of real
    /// schedulers — a few huge tasks and a long tail of small ones.
    pub fn zipf(nodes: usize, count: usize, base: f64, skew: f64, seed: u64) -> Workload {
        assert!(nodes > 0 && count > 0 && base > 0.0 && skew >= 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idgen = TaskIdGen::new();
        let mut tasks: Vec<Vec<Task>> = vec![Vec::new(); nodes];
        for rank in 1..=count {
            let size = base / (rank as f64).powf(skew);
            let node = rng.gen_range(0..nodes);
            tasks[node].push(Task::new(idgen.next_id(), size, node as u32));
        }
        Workload { tasks, idgen }
    }

    /// Builds a workload from an explicit trace of `(node, size)` records,
    /// in order (record/replay for regression experiments).
    pub fn from_trace(nodes: usize, trace: &[(usize, f64)]) -> Workload {
        let mut idgen = TaskIdGen::new();
        let mut tasks: Vec<Vec<Task>> = vec![Vec::new(); nodes];
        for &(node, size) in trace {
            assert!(node < nodes, "trace node out of range");
            tasks[node].push(Task::new(idgen.next_id(), size, node as u32));
        }
        Workload { tasks, idgen }
    }

    /// Serialises the placement back to a `(node, size)` trace, grouped by
    /// node (inverse of [`Workload::from_trace`] up to record order).
    pub fn to_trace(&self) -> Vec<(usize, f64)> {
        self.tasks
            .iter()
            .enumerate()
            .flat_map(|(n, list)| list.iter().map(move |t| (n, t.size)))
            .collect()
    }

    /// Total load across all nodes.
    pub fn total_load(&self) -> f64 {
        self.tasks.iter().flatten().map(|t| t.size).sum()
    }

    /// Per-node load quantities (the initial height map `h(v)`).
    pub fn heights(&self) -> Vec<f64> {
        self.tasks.iter().map(|l| l.iter().map(|t| t.size).sum()).collect()
    }

    /// Total number of tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.iter().map(Vec::len).sum()
    }
}

/// A dynamic task arrival process (§1: "new tasks may enter the system at
/// any time and at any node").
#[derive(Debug, Clone, Copy)]
pub enum ArrivalProcess {
    /// No arrivals — the quiescent assumption of the convergence proofs.
    Quiescent,
    /// Poisson arrivals: exponential inter-arrival times with the given
    /// rate (events per time unit); sizes uniform in `[size_min, size_max]`;
    /// target node uniform.
    Poisson {
        /// Average arrivals per time unit.
        rate: f64,
        /// Minimum task size.
        size_min: f64,
        /// Maximum task size.
        size_max: f64,
    },
    /// On/off bursts: during a burst of `burst_len` time units arrivals
    /// follow `rate`, then a quiet period of `quiet_len`; the cycle repeats.
    Bursty {
        /// Arrival rate inside a burst.
        rate: f64,
        /// Burst duration.
        burst_len: f64,
        /// Quiet duration.
        quiet_len: f64,
        /// Task size during bursts.
        size: f64,
    },
}

impl ArrivalProcess {
    /// Samples the next arrival after absolute time `now`:
    /// `(arrival_time, size)`, or `None` for the quiescent process.
    pub fn next_after(&self, now: f64, rng: &mut StdRng) -> Option<(f64, f64)> {
        match *self {
            ArrivalProcess::Quiescent => None,
            ArrivalProcess::Poisson { rate, size_min, size_max } => {
                assert!(rate > 0.0 && size_max >= size_min && size_min > 0.0);
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let dt = -u.ln() / rate;
                let size =
                    if size_max > size_min { rng.gen_range(size_min..=size_max) } else { size_min };
                Some((now + dt, size))
            }
            ArrivalProcess::Bursty { rate, burst_len, quiet_len, size } => {
                assert!(rate > 0.0 && burst_len > 0.0 && quiet_len >= 0.0 && size > 0.0);
                let cycle = burst_len + quiet_len;
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let mut t = now + (-u.ln() / rate);
                // Push arrivals landing in a quiet window to the next burst.
                let phase = t % cycle;
                if phase >= burst_len {
                    t += cycle - phase;
                }
                Some((t, size))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_loads_splits_into_unit_tasks() {
        let w = Workload::from_loads(&[2.5, 0.0, 1.0], 1.0);
        assert_eq!(w.tasks[0].len(), 3); // 1 + 1 + 0.5
        assert_eq!(w.tasks[1].len(), 0);
        assert_eq!(w.tasks[2].len(), 1);
        assert!((w.total_load() - 3.5).abs() < 1e-9);
        assert_eq!(w.heights(), vec![2.5, 0.0, 1.0]);
    }

    #[test]
    fn task_ids_unique_and_origin_recorded() {
        let w = Workload::from_loads(&[2.0, 2.0], 1.0);
        let mut ids: Vec<u64> = w.tasks.iter().flatten().map(|t| t.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), w.task_count());
        for (node, list) in w.tasks.iter().enumerate() {
            for t in list {
                assert_eq!(t.origin, node as u32);
            }
        }
    }

    #[test]
    fn hotspot_places_everything_on_one_node() {
        let w = Workload::hotspot(8, 3, 64.0);
        let h = w.heights();
        assert_eq!(h[3], 64.0);
        assert_eq!(h.iter().sum::<f64>(), 64.0);
        assert_eq!(w.task_count(), 64);
    }

    #[test]
    fn multi_hotspot_splits_evenly() {
        let w = Workload::multi_hotspot(8, &[0, 4], 32.0);
        let h = w.heights();
        assert_eq!(h[0], 16.0);
        assert_eq!(h[4], 16.0);
        assert_eq!(h[1], 0.0);
    }

    #[test]
    fn uniform_random_seeded() {
        let a = Workload::uniform_random(16, 10.0, 5);
        let b = Workload::uniform_random(16, 10.0, 5);
        assert_eq!(a.heights(), b.heights());
        let c = Workload::uniform_random(16, 10.0, 6);
        assert_ne!(a.heights(), c.heights());
        assert!(a.heights().iter().all(|&h| (0.0..10.0).contains(&h)));
    }

    #[test]
    fn bimodal_counts() {
        let w = Workload::bimodal(10, 0.3, 9.0, 1.0, 2);
        let h = w.heights();
        let high = h.iter().filter(|&&x| x == 9.0).count();
        assert_eq!(high, 3);
        assert_eq!(h.iter().filter(|&&x| x == 1.0).count(), 7);
    }

    #[test]
    fn ramp_is_linear() {
        let w = Workload::ramp(4, 2.0);
        assert_eq!(w.heights(), vec![0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn zipf_sizes_follow_power_law() {
        let w = Workload::zipf(8, 100, 10.0, 1.0, 3);
        assert_eq!(w.task_count(), 100);
        let mut sizes: Vec<f64> = w.tasks.iter().flatten().map(|t| t.size).collect();
        sizes.sort_by(|a, b| b.total_cmp(a));
        assert_eq!(sizes[0], 10.0);
        assert!((sizes[1] - 5.0).abs() < 1e-12);
        assert!((sizes[99] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zipf_deterministic_per_seed() {
        let a = Workload::zipf(8, 50, 4.0, 0.8, 7);
        let b = Workload::zipf(8, 50, 4.0, 0.8, 7);
        assert_eq!(a.heights(), b.heights());
        let c = Workload::zipf(8, 50, 4.0, 0.8, 8);
        assert_ne!(a.heights(), c.heights());
    }

    #[test]
    fn trace_roundtrip() {
        let trace = vec![(0usize, 2.0), (3, 1.5), (0, 0.5)];
        let w = Workload::from_trace(4, &trace);
        assert_eq!(w.heights(), vec![2.5, 0.0, 0.0, 1.5]);
        // Round trip groups by node but preserves the multiset.
        let mut got = w.to_trace();
        let mut want = trace;
        got.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        want.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "trace node out of range")]
    fn trace_rejects_bad_node() {
        let _ = Workload::from_trace(2, &[(5, 1.0)]);
    }

    #[test]
    fn quiescent_never_arrives() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(ArrivalProcess::Quiescent.next_after(0.0, &mut rng).is_none());
    }

    #[test]
    fn poisson_mean_interarrival_close_to_inverse_rate() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = ArrivalProcess::Poisson { rate: 2.0, size_min: 1.0, size_max: 1.0 };
        let mut t = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let (next, size) = p.next_after(t, &mut rng).unwrap();
            assert!(next > t);
            assert_eq!(size, 1.0);
            t = next;
        }
        let mean = t / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean inter-arrival {mean}");
    }

    #[test]
    fn bursty_arrivals_only_in_bursts() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = ArrivalProcess::Bursty { rate: 5.0, burst_len: 1.0, quiet_len: 4.0, size: 1.0 };
        let mut t = 0.0;
        for _ in 0..500 {
            let (next, _) = p.next_after(t, &mut rng).unwrap();
            let phase = next % 5.0;
            assert!(phase < 1.0 + 1e-9, "arrival in quiet window at phase {phase}");
            t = next;
        }
    }
}
