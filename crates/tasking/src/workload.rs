//! Synthetic workload generators: initial load placements (uniform-random,
//! hotspot, bimodal, ramp, zipf, trace) and dynamic arrival processes
//! (Poisson, bursty ON/OFF, diurnal sine-wave, adversarial moving hotspot,
//! recorded-trace replay) for the §1 scenario of "new tasks entering the
//! system at any time and at any node".

use crate::task::{Task, TaskIdGen};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An initial placement of tasks onto nodes.
#[derive(Debug, Clone)]
pub struct Workload {
    /// `tasks[i]` is the list of tasks initially on node `i`.
    pub tasks: Vec<Vec<Task>>,
    /// Id generator positioned after the highest id already used (so dynamic
    /// arrivals can continue the sequence).
    pub idgen: TaskIdGen,
}

impl Workload {
    /// Builds a workload from explicit per-node load quantities; each node's
    /// quantity is split into tasks of roughly `task_size` each.
    pub fn from_loads(loads: &[f64], task_size: f64) -> Workload {
        assert!(task_size > 0.0, "task size must be positive");
        let mut idgen = TaskIdGen::new();
        let tasks = loads
            .iter()
            .enumerate()
            .map(|(node, &quantity)| {
                assert!(quantity >= 0.0, "load quantity must be ≥ 0");
                let mut rest = quantity;
                let mut list = Vec::new();
                while rest > 1e-12 {
                    let s = rest.min(task_size);
                    list.push(Task::new(idgen.next_id(), s, node as u32));
                    rest -= s;
                }
                list
            })
            .collect();
        Workload { tasks, idgen }
    }

    /// Everything on one node: the paper's canonical worst case (a single
    /// hill on a flat yard). `total` load on `hot`, split into `task_size`
    /// chunks.
    pub fn hotspot(nodes: usize, hot: usize, total: f64) -> Workload {
        Self::hotspot_sized(nodes, hot, total, 1.0)
    }

    /// [`Workload::hotspot`] with an explicit task size.
    pub fn hotspot_sized(nodes: usize, hot: usize, total: f64, task_size: f64) -> Workload {
        assert!(hot < nodes, "hot node out of range");
        let mut loads = vec![0.0; nodes];
        loads[hot] = total;
        Self::from_loads(&loads, task_size)
    }

    /// Several hotspots of equal height on the given nodes.
    pub fn multi_hotspot(nodes: usize, hot: &[usize], total: f64) -> Workload {
        assert!(!hot.is_empty());
        let mut loads = vec![0.0; nodes];
        for &h in hot {
            assert!(h < nodes, "hot node out of range");
            loads[h] += total / hot.len() as f64;
        }
        Self::from_loads(&loads, 1.0)
    }

    /// Independent uniform loads in `[0, max_per_node]` per node (seeded).
    pub fn uniform_random(nodes: usize, max_per_node: f64, seed: u64) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed);
        let loads: Vec<f64> = (0..nodes).map(|_| rng.gen_range(0.0..max_per_node)).collect();
        Self::from_loads(&loads, 1.0)
    }

    /// Bimodal: a `fraction` of nodes get `high`, the rest get `low`
    /// (seeded shuffle).
    pub fn bimodal(nodes: usize, fraction: f64, high: f64, low: f64, seed: u64) -> Workload {
        assert!((0.0..=1.0).contains(&fraction));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..nodes).collect();
        // Fisher–Yates.
        for i in (1..nodes).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        let cut = (nodes as f64 * fraction).round() as usize;
        let mut loads = vec![low; nodes];
        for &i in idx.iter().take(cut) {
            loads[i] = high;
        }
        Self::from_loads(&loads, 1.0)
    }

    /// Linear ramp: node `i` gets `i · step` load.
    pub fn ramp(nodes: usize, step: f64) -> Workload {
        let loads: Vec<f64> = (0..nodes).map(|i| i as f64 * step).collect();
        Self::from_loads(&loads, 1.0)
    }

    /// Zipf-distributed task sizes: `count` tasks with sizes
    /// `base/(rank^skew)` (rank 1..=count), dealt round-robin onto nodes in
    /// a seeded random order. Models the heavy-tailed job mixes of real
    /// schedulers — a few huge tasks and a long tail of small ones.
    pub fn zipf(nodes: usize, count: usize, base: f64, skew: f64, seed: u64) -> Workload {
        assert!(nodes > 0 && count > 0 && base > 0.0 && skew >= 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idgen = TaskIdGen::new();
        let mut tasks: Vec<Vec<Task>> = vec![Vec::new(); nodes];
        for rank in 1..=count {
            let size = base / (rank as f64).powf(skew);
            let node = rng.gen_range(0..nodes);
            tasks[node].push(Task::new(idgen.next_id(), size, node as u32));
        }
        Workload { tasks, idgen }
    }

    /// Builds a workload from an explicit trace of `(node, size)` records,
    /// in order (record/replay for regression experiments).
    pub fn from_trace(nodes: usize, trace: &[(usize, f64)]) -> Workload {
        let mut idgen = TaskIdGen::new();
        let mut tasks: Vec<Vec<Task>> = vec![Vec::new(); nodes];
        for &(node, size) in trace {
            assert!(node < nodes, "trace node out of range");
            tasks[node].push(Task::new(idgen.next_id(), size, node as u32));
        }
        Workload { tasks, idgen }
    }

    /// Serialises the placement back to a `(node, size)` trace, grouped by
    /// node (inverse of [`Workload::from_trace`] up to record order).
    pub fn to_trace(&self) -> Vec<(usize, f64)> {
        self.tasks
            .iter()
            .enumerate()
            .flat_map(|(n, list)| list.iter().map(move |t| (n, t.size)))
            .collect()
    }

    /// Total load across all nodes.
    pub fn total_load(&self) -> f64 {
        self.tasks.iter().flatten().map(|t| t.size).sum()
    }

    /// Per-node load quantities (the initial height map `h(v)`).
    pub fn heights(&self) -> Vec<f64> {
        self.tasks.iter().map(|l| l.iter().map(|t| t.size).sum()).collect()
    }

    /// Total number of tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.iter().map(Vec::len).sum()
    }
}

/// A dynamic task arrival process (§1: "new tasks may enter the system at
/// any time and at any node").
#[derive(Debug, Clone, Copy)]
pub enum ArrivalProcess {
    /// No arrivals — the quiescent assumption of the convergence proofs.
    Quiescent,
    /// Poisson arrivals: exponential inter-arrival times with the given
    /// rate (events per time unit); sizes uniform in `[size_min, size_max]`;
    /// target node uniform.
    Poisson {
        /// Average arrivals per time unit.
        rate: f64,
        /// Minimum task size.
        size_min: f64,
        /// Maximum task size.
        size_max: f64,
    },
    /// On/off bursts: during a burst of `burst_len` time units arrivals
    /// follow `rate`, then a quiet period of `quiet_len`; the cycle repeats.
    Bursty {
        /// Arrival rate inside a burst.
        rate: f64,
        /// Burst duration.
        burst_len: f64,
        /// Quiet duration.
        quiet_len: f64,
        /// Task size during bursts.
        size: f64,
    },
    /// Diurnal load: an inhomogeneous Poisson process whose rate follows a
    /// sine wave, `λ(t) = base_rate·(1 + amplitude·sin(2πt/period))` —
    /// the day/night cycle of user-facing services. Sampled by thinning
    /// against the peak rate, so arrivals stay exact for any `amplitude`.
    Diurnal {
        /// Mean arrival rate over a full period.
        base_rate: f64,
        /// Relative swing in `[0, 1]`; 1 means the trough is silent.
        amplitude: f64,
        /// Cycle length in time units.
        period: f64,
        /// Minimum task size.
        size_min: f64,
        /// Maximum task size.
        size_max: f64,
    },
    /// Adversarial moving hotspot: Poisson arrivals in time, but every task
    /// lands on one *current* hot node that jumps by `stride` every `dwell`
    /// time units — the worst case for any balancer that assumes the
    /// imbalance stays where it last was.
    MovingHotspot {
        /// Arrival rate while the hotspot sits anywhere.
        rate: f64,
        /// Task size.
        size: f64,
        /// Time the hotspot stays on one node.
        dwell: f64,
        /// Node-index jump between consecutive hotspot positions (taken
        /// modulo the node count; pick it co-prime to the node count to
        /// sweep the whole machine).
        stride: u32,
    },
}

impl ArrivalProcess {
    /// Samples the next arrival after absolute time `now`:
    /// `(arrival_time, size)`, or `None` for the quiescent process.
    pub fn next_after(&self, now: f64, rng: &mut StdRng) -> Option<(f64, f64)> {
        match *self {
            ArrivalProcess::Quiescent => None,
            ArrivalProcess::Poisson { rate, size_min, size_max } => {
                assert!(rate > 0.0 && size_max >= size_min && size_min > 0.0);
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let dt = -u.ln() / rate;
                let size =
                    if size_max > size_min { rng.gen_range(size_min..=size_max) } else { size_min };
                Some((now + dt, size))
            }
            ArrivalProcess::Bursty { rate, burst_len, quiet_len, size } => {
                assert!(rate > 0.0 && burst_len > 0.0 && quiet_len >= 0.0 && size > 0.0);
                let cycle = burst_len + quiet_len;
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let mut t = now + (-u.ln() / rate);
                // Push arrivals landing in a quiet window to the next burst.
                let phase = t % cycle;
                if phase >= burst_len {
                    t += cycle - phase;
                }
                Some((t, size))
            }
            ArrivalProcess::Diurnal { base_rate, amplitude, period, size_min, size_max } => {
                assert!(base_rate > 0.0 && period > 0.0, "rate and period must be positive");
                assert!((0.0..=1.0).contains(&amplitude), "amplitude must be in [0, 1]");
                assert!(size_max >= size_min && size_min > 0.0);
                // Thinning (Lewis–Shedler): candidates at the peak rate
                // λ_max, each kept with probability λ(t)/λ_max. Exact for
                // an inhomogeneous Poisson process.
                let rate_max = base_rate * (1.0 + amplitude);
                let mut t = now;
                let tau = 2.0 * std::f64::consts::PI / period;
                loop {
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    t += -u.ln() / rate_max;
                    let rate_t = base_rate * (1.0 + amplitude * (tau * t).sin());
                    let accept: f64 = rng.gen_range(0.0..1.0);
                    if accept * rate_max <= rate_t {
                        let size = if size_max > size_min {
                            rng.gen_range(size_min..=size_max)
                        } else {
                            size_min
                        };
                        return Some((t, size));
                    }
                }
            }
            ArrivalProcess::MovingHotspot { rate, size, dwell, .. } => {
                assert!(rate > 0.0 && size > 0.0 && dwell > 0.0);
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                Some((now + (-u.ln() / rate), size))
            }
        }
    }

    /// Picks the node an arrival at time `now` lands on, for a system of
    /// `n` nodes. Uniform for every process except the moving hotspot,
    /// whose target is a deterministic function of time. Always consumes
    /// exactly one RNG draw for the uniform processes, so swapping
    /// processes does not shift the caller's RNG stream shape.
    pub fn target_node(&self, now: f64, n: usize, rng: &mut StdRng) -> u32 {
        assert!(n > 0, "need at least one node");
        match *self {
            ArrivalProcess::MovingHotspot { dwell, stride, .. } => {
                let epoch = (now.max(0.0) / dwell) as u64;
                ((epoch * u64::from(stride)) % n as u64) as u32
            }
            _ => rng.gen_range(0..n as u32),
        }
    }
}

/// One record of a timed arrival trace: at `time`, a task of `size` lands
/// on `node`. Traces recorded from one run (or from production logs) can be
/// replayed bit-exactly through `pp-sim`'s builder, which turns each record
/// into a scheduled arrival event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Absolute arrival time (≥ 0).
    pub time: f64,
    /// Destination node index.
    pub node: u32,
    /// Task size (> 0).
    pub size: f64,
}

/// Validates a trace against a node count: times finite and non-negative,
/// nodes in range, sizes positive. Order does not matter (the event queue
/// sorts), but a sorted trace is easier to diff.
pub fn validate_trace(trace: &[TraceEvent], nodes: usize) -> Result<(), String> {
    for (i, ev) in trace.iter().enumerate() {
        if !ev.time.is_finite() || ev.time < 0.0 {
            return Err(format!("trace[{i}]: time {} must be finite and ≥ 0", ev.time));
        }
        if ev.node as usize >= nodes {
            return Err(format!("trace[{i}]: node {} out of range (n={nodes})", ev.node));
        }
        if !ev.size.is_finite() || ev.size <= 0.0 {
            return Err(format!("trace[{i}]: size {} must be finite and > 0", ev.size));
        }
    }
    Ok(())
}

/// Records a trace by sampling `process` until `horizon`: the offline
/// "record" half of record/replay regression testing. Deterministic per
/// seed.
pub fn record_trace(
    process: &ArrivalProcess,
    nodes: usize,
    horizon: f64,
    seed: u64,
) -> Vec<TraceEvent> {
    assert!(horizon >= 0.0 && horizon.is_finite());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Vec::new();
    let mut t = 0.0;
    while let Some((next, size)) = process.next_after(t, &mut rng) {
        if next > horizon {
            break;
        }
        let node = process.target_node(next, nodes, &mut rng);
        trace.push(TraceEvent { time: next, node, size });
        t = next;
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_loads_splits_into_unit_tasks() {
        let w = Workload::from_loads(&[2.5, 0.0, 1.0], 1.0);
        assert_eq!(w.tasks[0].len(), 3); // 1 + 1 + 0.5
        assert_eq!(w.tasks[1].len(), 0);
        assert_eq!(w.tasks[2].len(), 1);
        assert!((w.total_load() - 3.5).abs() < 1e-9);
        assert_eq!(w.heights(), vec![2.5, 0.0, 1.0]);
    }

    #[test]
    fn task_ids_unique_and_origin_recorded() {
        let w = Workload::from_loads(&[2.0, 2.0], 1.0);
        let mut ids: Vec<u64> = w.tasks.iter().flatten().map(|t| t.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), w.task_count());
        for (node, list) in w.tasks.iter().enumerate() {
            for t in list {
                assert_eq!(t.origin, node as u32);
            }
        }
    }

    #[test]
    fn hotspot_places_everything_on_one_node() {
        let w = Workload::hotspot(8, 3, 64.0);
        let h = w.heights();
        assert_eq!(h[3], 64.0);
        assert_eq!(h.iter().sum::<f64>(), 64.0);
        assert_eq!(w.task_count(), 64);
    }

    #[test]
    fn multi_hotspot_splits_evenly() {
        let w = Workload::multi_hotspot(8, &[0, 4], 32.0);
        let h = w.heights();
        assert_eq!(h[0], 16.0);
        assert_eq!(h[4], 16.0);
        assert_eq!(h[1], 0.0);
    }

    #[test]
    fn uniform_random_seeded() {
        let a = Workload::uniform_random(16, 10.0, 5);
        let b = Workload::uniform_random(16, 10.0, 5);
        assert_eq!(a.heights(), b.heights());
        let c = Workload::uniform_random(16, 10.0, 6);
        assert_ne!(a.heights(), c.heights());
        assert!(a.heights().iter().all(|&h| (0.0..10.0).contains(&h)));
    }

    #[test]
    fn bimodal_counts() {
        let w = Workload::bimodal(10, 0.3, 9.0, 1.0, 2);
        let h = w.heights();
        let high = h.iter().filter(|&&x| x == 9.0).count();
        assert_eq!(high, 3);
        assert_eq!(h.iter().filter(|&&x| x == 1.0).count(), 7);
    }

    #[test]
    fn ramp_is_linear() {
        let w = Workload::ramp(4, 2.0);
        assert_eq!(w.heights(), vec![0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn zipf_sizes_follow_power_law() {
        let w = Workload::zipf(8, 100, 10.0, 1.0, 3);
        assert_eq!(w.task_count(), 100);
        let mut sizes: Vec<f64> = w.tasks.iter().flatten().map(|t| t.size).collect();
        sizes.sort_by(|a, b| b.total_cmp(a));
        assert_eq!(sizes[0], 10.0);
        assert!((sizes[1] - 5.0).abs() < 1e-12);
        assert!((sizes[99] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zipf_deterministic_per_seed() {
        let a = Workload::zipf(8, 50, 4.0, 0.8, 7);
        let b = Workload::zipf(8, 50, 4.0, 0.8, 7);
        assert_eq!(a.heights(), b.heights());
        let c = Workload::zipf(8, 50, 4.0, 0.8, 8);
        assert_ne!(a.heights(), c.heights());
    }

    #[test]
    fn trace_roundtrip() {
        let trace = vec![(0usize, 2.0), (3, 1.5), (0, 0.5)];
        let w = Workload::from_trace(4, &trace);
        assert_eq!(w.heights(), vec![2.5, 0.0, 0.0, 1.5]);
        // Round trip groups by node but preserves the multiset.
        let mut got = w.to_trace();
        let mut want = trace;
        got.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        want.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "trace node out of range")]
    fn trace_rejects_bad_node() {
        let _ = Workload::from_trace(2, &[(5, 1.0)]);
    }

    #[test]
    fn quiescent_never_arrives() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(ArrivalProcess::Quiescent.next_after(0.0, &mut rng).is_none());
    }

    #[test]
    fn poisson_mean_interarrival_close_to_inverse_rate() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = ArrivalProcess::Poisson { rate: 2.0, size_min: 1.0, size_max: 1.0 };
        let mut t = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let (next, size) = p.next_after(t, &mut rng).unwrap();
            assert!(next > t);
            assert_eq!(size, 1.0);
            t = next;
        }
        let mean = t / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean inter-arrival {mean}");
    }

    #[test]
    fn bursty_arrivals_only_in_bursts() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = ArrivalProcess::Bursty { rate: 5.0, burst_len: 1.0, quiet_len: 4.0, size: 1.0 };
        let mut t = 0.0;
        for _ in 0..500 {
            let (next, _) = p.next_after(t, &mut rng).unwrap();
            let phase = next % 5.0;
            assert!(phase < 1.0 + 1e-9, "arrival in quiet window at phase {phase}");
            t = next;
        }
    }

    #[test]
    fn diurnal_mean_rate_matches_base_rate() {
        // Over whole periods the sine integrates away: the long-run mean
        // arrival rate is base_rate regardless of amplitude.
        let mut rng = StdRng::seed_from_u64(11);
        let p = ArrivalProcess::Diurnal {
            base_rate: 4.0,
            amplitude: 0.9,
            period: 10.0,
            size_min: 1.0,
            size_max: 1.0,
        };
        let horizon = 5_000.0; // 500 whole periods
        let mut t = 0.0;
        let mut count = 0u64;
        while let Some((next, _)) = p.next_after(t, &mut rng) {
            if next > horizon {
                break;
            }
            t = next;
            count += 1;
        }
        let mean_rate = count as f64 / horizon;
        assert!((mean_rate - 4.0).abs() < 0.15, "mean rate {mean_rate}");
    }

    #[test]
    fn diurnal_peak_outdraws_trough() {
        // Count arrivals landing in the peak half vs the trough half of the
        // cycle; with amplitude 0.9 the ratio must be decisive.
        let mut rng = StdRng::seed_from_u64(4);
        let p = ArrivalProcess::Diurnal {
            base_rate: 2.0,
            amplitude: 0.9,
            period: 20.0,
            size_min: 0.5,
            size_max: 1.5,
        };
        let (mut peak, mut trough) = (0u64, 0u64);
        let mut t = 0.0;
        for _ in 0..20_000 {
            let (next, size) = p.next_after(t, &mut rng).unwrap();
            assert!(next > t);
            assert!((0.5..=1.5).contains(&size));
            // sin > 0 on the first half of each period.
            if (next % 20.0) < 10.0 {
                peak += 1;
            } else {
                trough += 1;
            }
            t = next;
        }
        assert!(peak > 3 * trough, "peak {peak} vs trough {trough}");
    }

    #[test]
    fn moving_hotspot_targets_follow_schedule() {
        let mut rng = StdRng::seed_from_u64(0);
        let p = ArrivalProcess::MovingHotspot { rate: 1.0, size: 1.0, dwell: 5.0, stride: 3 };
        // Within one dwell window the target is fixed; across windows it
        // advances by the stride (mod n).
        assert_eq!(p.target_node(0.0, 16, &mut rng), 0);
        assert_eq!(p.target_node(4.9, 16, &mut rng), 0);
        assert_eq!(p.target_node(5.1, 16, &mut rng), 3);
        assert_eq!(p.target_node(10.1, 16, &mut rng), 6);
        assert_eq!(p.target_node(27.5, 16, &mut rng), 15); // epoch 5 · 3 = 15
        assert_eq!(p.target_node(30.0, 16, &mut rng), 2); // 18 mod 16
    }

    #[test]
    fn uniform_processes_target_uniformly() {
        let mut rng = StdRng::seed_from_u64(8);
        let p = ArrivalProcess::Poisson { rate: 1.0, size_min: 1.0, size_max: 1.0 };
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[p.target_node(0.0, 4, &mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn record_trace_is_deterministic_and_valid() {
        let p = ArrivalProcess::MovingHotspot { rate: 3.0, size: 0.5, dwell: 2.0, stride: 5 };
        let a = record_trace(&p, 16, 50.0, 7);
        let b = record_trace(&p, 16, 50.0, 7);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.iter().all(|ev| ev.time <= 50.0));
        validate_trace(&a, 16).expect("recorded trace validates");
        // Times are strictly increasing (each sample continues from the
        // previous arrival).
        for w in a.windows(2) {
            assert!(w[1].time > w[0].time);
        }
        let c = record_trace(&p, 16, 50.0, 8);
        assert_ne!(a, c, "different seed, different trace");
    }

    #[test]
    fn validate_trace_rejects_bad_records() {
        let ok = TraceEvent { time: 1.0, node: 0, size: 1.0 };
        assert!(validate_trace(&[ok], 4).is_ok());
        assert!(validate_trace(&[TraceEvent { time: -1.0, ..ok }], 4).is_err());
        assert!(validate_trace(&[TraceEvent { node: 4, ..ok }], 4).is_err());
        assert!(validate_trace(&[TraceEvent { size: 0.0, ..ok }], 4).is_err());
        assert!(validate_trace(&[TraceEvent { time: f64::NAN, ..ok }], 4).is_err());
    }
}
