//! The resource dependency matrix `R_{|L|×|V|}` (§4.2): `R_{k,i}` is how
//! strongly task `k` depends on resources physically present at node `i`
//! (disks, devices, pinned memory). It feeds the static friction `µ_s` at
//! the node holding the resource.

use crate::task::TaskId;
use pp_topology::graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Sparse task×node resource affinity matrix.
#[derive(Debug, Clone, Default)]
pub struct ResourceMatrix {
    entries: HashMap<(u64, u32), f64>,
}

impl ResourceMatrix {
    /// No resource dependencies at all.
    pub fn none() -> Self {
        ResourceMatrix::default()
    }

    /// Sets `R_{task,node}` (≥ 0; 0 removes the entry).
    pub fn set(&mut self, task: TaskId, node: NodeId, affinity: f64) {
        assert!(affinity >= 0.0, "affinity must be ≥ 0");
        if affinity == 0.0 {
            self.entries.remove(&(task.0, node.0));
        } else {
            self.entries.insert((task.0, node.0), affinity);
        }
    }

    /// `R_{task,node}` (0 when absent).
    pub fn get(&self, task: TaskId, node: NodeId) -> f64 {
        self.entries.get(&(task.0, node.0)).copied().unwrap_or(0.0)
    }

    /// Number of non-zero entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Pins a random `fraction` of `tasks` to their origin node with the
    /// given affinity (models device-bound tasks). Deterministic per seed.
    pub fn pin_fraction(
        tasks: &[(TaskId, NodeId)],
        fraction: f64,
        affinity: f64,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = ResourceMatrix::none();
        for &(t, n) in tasks {
            if rng.gen_bool(fraction) {
                m.set(t, n, affinity);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let m = ResourceMatrix::none();
        assert_eq!(m.get(TaskId(1), NodeId(2)), 0.0);
        assert!(m.is_empty());
    }

    #[test]
    fn set_get_remove() {
        let mut m = ResourceMatrix::none();
        m.set(TaskId(1), NodeId(2), 3.0);
        assert_eq!(m.get(TaskId(1), NodeId(2)), 3.0);
        assert_eq!(m.get(TaskId(1), NodeId(3)), 0.0);
        assert_eq!(m.len(), 1);
        m.set(TaskId(1), NodeId(2), 0.0);
        assert!(m.is_empty());
    }

    #[test]
    fn pin_fraction_bounds() {
        let tasks: Vec<(TaskId, NodeId)> =
            (0..100).map(|i| (TaskId(i), NodeId((i % 4) as u32))).collect();
        let all = ResourceMatrix::pin_fraction(&tasks, 1.0, 2.0, 1);
        assert_eq!(all.len(), 100);
        let none = ResourceMatrix::pin_fraction(&tasks, 0.0, 2.0, 1);
        assert!(none.is_empty());
        let half = ResourceMatrix::pin_fraction(&tasks, 0.5, 2.0, 1);
        assert!(half.len() > 20 && half.len() < 80, "got {}", half.len());
    }

    #[test]
    fn pin_fraction_deterministic() {
        let tasks: Vec<(TaskId, NodeId)> = (0..50).map(|i| (TaskId(i), NodeId(0))).collect();
        let a = ResourceMatrix::pin_fraction(&tasks, 0.3, 1.0, 9);
        let b = ResourceMatrix::pin_fraction(&tasks, 0.3, 1.0, 9);
        for i in 0..50 {
            assert_eq!(a.get(TaskId(i), NodeId(0)), b.get(TaskId(i), NodeId(0)));
        }
    }

    #[test]
    #[should_panic(expected = "affinity must be ≥ 0")]
    fn negative_affinity_rejected() {
        let mut m = ResourceMatrix::none();
        m.set(TaskId(0), NodeId(0), -1.0);
    }
}
