//! The golden report: a deterministic, byte-stable JSON rendering of a
//! scenario run. Two runs of the same spec must produce byte-identical
//! golden reports (floats render value-exactly via the vendored writer),
//! which is what the CI scenario matrix asserts; a pinned subset is
//! committed under `golden/` and diffed on every push.

use pp_sim::engine::RunReport;
use serde::{Serialize, Value};

/// Everything observable about a finished run, flattened for JSON. Field
/// order is fixed — the report is compared byte-for-byte. `Serialize` is
/// hand-written so that `shard_layout` is *omitted* (not `null`) when the
/// scenario does not request explicit sharding, keeping default-layout
/// goldens byte-identical to those emitted before the field existed.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenReport {
    /// Scenario name.
    pub scenario: String,
    /// Policy display name.
    pub balancer: String,
    /// Master seed.
    pub seed: u64,
    /// Node count.
    pub nodes: usize,
    /// Balance rounds executed.
    pub rounds: u64,
    /// Final simulation time.
    pub time: f64,
    /// Final coefficient of variation of the height map.
    pub final_cov: f64,
    /// Final mean height.
    pub final_mean: f64,
    /// Final max−min height spread.
    pub final_spread: f64,
    /// Migration hops recorded.
    pub migrations: usize,
    /// Total load moved across links.
    pub load_moved: f64,
    /// Σ size·e_{i,j} over all hops.
    pub weighted_traffic: f64,
    /// Σ E_h billed by the energy model.
    pub heat: f64,
    /// Hops that hit at least one link fault.
    pub hop_faults: usize,
    /// Resident load at the end.
    pub total_load: f64,
    /// Load still in flight at the end.
    pub in_flight_load: f64,
    /// Tasks completed by work consumption.
    pub completed_tasks: usize,
    /// The shard layout, when the scenario requests explicit sharding
    /// (`engine.shards ≥ 2`): `"shards=K boundary=B"`. `None` (and absent
    /// from the JSON) otherwise. Machine-independent: derived from the
    /// spec's shard count and the topology, never from the core count.
    pub shard_layout: Option<String>,
    /// The full CoV time series, `(time, cov)` per sample.
    pub cov_series: Vec<(f64, f64)>,
}

impl Serialize for GoldenReport {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("scenario".to_string(), self.scenario.to_value()),
            ("balancer".to_string(), self.balancer.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            ("nodes".to_string(), self.nodes.to_value()),
            ("rounds".to_string(), self.rounds.to_value()),
            ("time".to_string(), self.time.to_value()),
            ("final_cov".to_string(), self.final_cov.to_value()),
            ("final_mean".to_string(), self.final_mean.to_value()),
            ("final_spread".to_string(), self.final_spread.to_value()),
            ("migrations".to_string(), self.migrations.to_value()),
            ("load_moved".to_string(), self.load_moved.to_value()),
            ("weighted_traffic".to_string(), self.weighted_traffic.to_value()),
            ("heat".to_string(), self.heat.to_value()),
            ("hop_faults".to_string(), self.hop_faults.to_value()),
            ("total_load".to_string(), self.total_load.to_value()),
            ("in_flight_load".to_string(), self.in_flight_load.to_value()),
            ("completed_tasks".to_string(), self.completed_tasks.to_value()),
        ];
        if let Some(layout) = &self.shard_layout {
            entries.push(("shard_layout".to_string(), layout.to_value()));
        }
        entries.push(("cov_series".to_string(), self.cov_series.to_value()));
        Value::Object(entries)
    }
}

impl GoldenReport {
    /// Flattens a [`RunReport`].
    pub fn from_run(scenario: &str, seed: u64, nodes: usize, r: &RunReport) -> GoldenReport {
        GoldenReport {
            scenario: scenario.to_string(),
            balancer: r.balancer.clone(),
            seed,
            nodes,
            rounds: r.rounds,
            time: r.time,
            final_cov: r.final_imbalance.cov,
            final_mean: r.final_imbalance.mean,
            final_spread: r.final_imbalance.spread,
            migrations: r.ledger.migration_count(),
            load_moved: r.ledger.total_load_moved(),
            weighted_traffic: r.ledger.total_weighted_traffic(),
            heat: r.ledger.total_heat(),
            hop_faults: r.ledger.fault_count(),
            total_load: r.total_load,
            in_flight_load: r.in_flight_load,
            completed_tasks: r.completed_tasks,
            shard_layout: None,
            cov_series: r.series.points().to_vec(),
        }
    }

    /// Attaches shard-layout metadata (`"shards=K boundary=B"`). Only
    /// called for scenarios whose spec requests `engine.shards ≥ 2`.
    pub fn with_shard_layout(mut self, layout: String) -> GoldenReport {
        self.shard_layout = Some(layout);
        self
    }

    /// The canonical byte-stable rendering (pretty JSON + trailing
    /// newline, so committed files diff cleanly).
    pub fn to_canonical_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serialization is total");
        s.push('\n');
        s
    }

    /// Checks that `text` parses as a golden report: valid JSON carrying
    /// every required field with the right shape. Returns the scenario
    /// name.
    pub fn check_text(text: &str) -> Result<String, String> {
        let v = serde_json::from_str(text).map_err(|e| e.to_string())?;
        let name: String = v.field("scenario")?;
        for key in
            ["balancer", "rounds", "time", "final_cov", "migrations", "total_load", "cov_series"]
        {
            if v.get(key).is_none() {
                return Err(format!("missing field `{key}`"));
            }
        }
        let _: Vec<(f64, f64)> = v.field("cov_series")?;
        Ok(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn golden_report_is_byte_deterministic() {
        let spec = registry::by_name("hotspot-torus").expect("registered").smoke(5, 20.0);
        let a = spec.run().expect("run");
        let b = spec.run().expect("run");
        let ga = GoldenReport::from_run(&spec.name, spec.seed, spec.topology.node_count(), &a);
        let gb = GoldenReport::from_run(&spec.name, spec.seed, spec.topology.node_count(), &b);
        assert_eq!(ga, gb);
        assert_eq!(ga.to_canonical_json(), gb.to_canonical_json());
    }

    #[test]
    fn shard_layout_field_omitted_unless_set() {
        let spec = registry::by_name("hotspot-torus").expect("registered").smoke(3, 10.0);
        let r = spec.run().expect("run");
        let plain = GoldenReport::from_run(&spec.name, spec.seed, spec.topology.node_count(), &r);
        assert!(!plain.to_canonical_json().contains("shard_layout"));
        let tagged = plain.clone().with_shard_layout("shards=4 boundary=32".into());
        let text = tagged.to_canonical_json();
        assert!(text.contains("\"shard_layout\": \"shards=4 boundary=32\""));
        // Metadata rides along without disturbing the checker.
        assert_eq!(GoldenReport::check_text(&text).expect("checks"), "hotspot-torus");
    }

    #[test]
    fn canonical_json_round_checks() {
        let spec = registry::by_name("hotspot-torus").expect("registered").smoke(3, 10.0);
        let r = spec.run().expect("run");
        let g = GoldenReport::from_run(&spec.name, spec.seed, spec.topology.node_count(), &r);
        let text = g.to_canonical_json();
        assert_eq!(GoldenReport::check_text(&text).expect("checks"), "hotspot-torus");
        assert!(GoldenReport::check_text("{}").is_err());
        assert!(GoldenReport::check_text("not json").is_err());
    }
}
