//! JSON lowering and lifting for every spec type, over the vendored
//! `serde`/`serde_json` value model. Enums serialize as tagged objects
//! (`{"kind": "...", ...fields}`); structs as plain objects. The pair is
//! exercised by the `spec -> JSON -> spec` round-trip tests.

use crate::spec::{
    ArrivalSpec, BalancerSpec, CheckpointSpec, ChurnSpec, DiffusionAlpha, DurationSpec,
    EngineKnobs, FaultPlanSpec, LinkSpec, ResourceSpec, ScenarioSpec, SpeedSpec, TaskGraphSpec,
    WorkloadSpec,
};
use pp_sim::engine::RepartitionConfig;
use pp_sim::strategy::SimulationStrategy;
use serde::{Deserialize, Serialize, Value};

/// Builds a tagged object: `{"kind": kind, ...fields}`.
fn tagged(kind: &str, fields: Vec<(String, Value)>) -> Value {
    let mut entries = vec![("kind".to_string(), Value::Str(kind.to_string()))];
    entries.extend(fields);
    Value::Object(entries)
}

/// Shorthand for one object entry.
fn entry<T: Serialize>(key: &str, v: T) -> (String, Value) {
    (key.to_string(), v.to_value())
}

/// Reads the `kind` tag of a tagged object.
fn kind_of(v: &Value) -> Result<String, String> {
    v.field("kind")
}

impl Serialize for ScenarioSpec {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            entry("name", &self.name),
            entry("description", &self.description),
            entry("topology", &self.topology),
            entry("links", &self.links),
            entry("workload", &self.workload),
            entry("task_graph", &self.task_graph),
            entry("resources", &self.resources),
            entry("balancer", &self.balancer),
            entry("arrival", &self.arrival),
            entry("faults", self.faults),
        ];
        // Omitted (not null) at the static-membership default, so every
        // spec written before the churn knob existed stays canonical.
        if self.churn != ChurnSpec::None {
            entries.push(entry("churn", self.churn));
        }
        entries.extend([
            entry("speeds", &self.speeds),
            entry("engine", self.engine),
            entry("duration", self.duration),
        ]);
        // Omitted (not null) when off, so pre-checkpoint spec JSON stays
        // canonical byte-for-byte.
        if let Some(ck) = &self.checkpoint {
            entries.push(entry("checkpoint", ck));
        }
        entries.push(entry("seed", self.seed));
        Value::Object(entries)
    }
}

impl Deserialize for ScenarioSpec {
    fn from_value(v: &Value) -> Result<Self, String> {
        let d = ScenarioSpec::default();
        Ok(ScenarioSpec {
            name: v.field("name")?,
            description: v.field_opt("description")?.unwrap_or_default(),
            topology: v.field("topology")?,
            links: v.field_opt("links")?.unwrap_or_default(),
            workload: v.field_opt("workload")?.unwrap_or(WorkloadSpec::Empty),
            task_graph: v.field_opt("task_graph")?.unwrap_or_default(),
            resources: v.field_opt("resources")?.unwrap_or_default(),
            balancer: v.field_opt("balancer")?.unwrap_or_default(),
            arrival: v.field_opt("arrival")?.unwrap_or_default(),
            faults: v.field_opt("faults")?.unwrap_or_default(),
            churn: v.field_opt("churn")?.unwrap_or_default(),
            speeds: v.field_opt("speeds")?.unwrap_or_default(),
            engine: v.field_opt("engine")?.unwrap_or_default(),
            duration: v.field_opt("duration")?.unwrap_or_default(),
            checkpoint: v.field_opt("checkpoint")?,
            seed: v.field_opt("seed")?.unwrap_or(d.seed),
        })
    }
}

impl Serialize for CheckpointSpec {
    fn to_value(&self) -> Value {
        Value::Object(vec![entry("every", self.every), entry("path", &self.path)])
    }
}

impl Deserialize for CheckpointSpec {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(CheckpointSpec { every: v.field("every")?, path: v.field("path")? })
    }
}

impl ScenarioSpec {
    /// Pretty JSON text of the spec.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario serialization is total")
    }

    /// Parses a spec from JSON text (does not validate; call
    /// [`ScenarioSpec::validate`] after).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = serde_json::from_str(text).map_err(|e| e.to_string())?;
        Self::from_value(&v)
    }
}

impl Serialize for LinkSpec {
    fn to_value(&self) -> Value {
        match *self {
            LinkSpec::Uniform { bandwidth, distance, fault_prob } => tagged(
                "uniform",
                vec![
                    entry("bandwidth", bandwidth),
                    entry("distance", distance),
                    entry("fault_prob", fault_prob),
                ],
            ),
            LinkSpec::Instant => tagged("instant", vec![]),
            LinkSpec::Random { seed, bw, d, f_max } => tagged(
                "random",
                vec![entry("seed", seed), entry("bw", bw), entry("d", d), entry("f_max", f_max)],
            ),
        }
    }
}

impl Deserialize for LinkSpec {
    fn from_value(v: &Value) -> Result<Self, String> {
        match kind_of(v)?.as_str() {
            "uniform" => Ok(LinkSpec::Uniform {
                bandwidth: v.field("bandwidth")?,
                distance: v.field("distance")?,
                fault_prob: v.field("fault_prob")?,
            }),
            "instant" => Ok(LinkSpec::Instant),
            "random" => Ok(LinkSpec::Random {
                seed: v.field("seed")?,
                bw: v.field("bw")?,
                d: v.field("d")?,
                f_max: v.field("f_max")?,
            }),
            other => Err(format!("unknown link kind `{other}`")),
        }
    }
}

impl Serialize for WorkloadSpec {
    fn to_value(&self) -> Value {
        match self {
            WorkloadSpec::Empty => tagged("empty", vec![]),
            WorkloadSpec::Hotspot { node, total, task_size } => tagged(
                "hotspot",
                vec![entry("node", node), entry("total", total), entry("task_size", task_size)],
            ),
            WorkloadSpec::MultiHotspot { nodes, total } => {
                tagged("multi-hotspot", vec![entry("nodes", nodes), entry("total", total)])
            }
            WorkloadSpec::UniformRandom { max_per_node, seed } => tagged(
                "uniform-random",
                vec![entry("max_per_node", max_per_node), entry("seed", seed)],
            ),
            WorkloadSpec::Bimodal { fraction, high, low, seed } => tagged(
                "bimodal",
                vec![
                    entry("fraction", fraction),
                    entry("high", high),
                    entry("low", low),
                    entry("seed", seed),
                ],
            ),
            WorkloadSpec::Ramp { step } => tagged("ramp", vec![entry("step", step)]),
            WorkloadSpec::Zipf { count, base, skew, seed } => tagged(
                "zipf",
                vec![
                    entry("count", count),
                    entry("base", base),
                    entry("skew", skew),
                    entry("seed", seed),
                ],
            ),
            WorkloadSpec::Loads { loads, task_size } => {
                tagged("loads", vec![entry("loads", loads), entry("task_size", task_size)])
            }
            WorkloadSpec::Trace { records } => tagged("trace", vec![entry("records", records)]),
        }
    }
}

impl Deserialize for WorkloadSpec {
    fn from_value(v: &Value) -> Result<Self, String> {
        match kind_of(v)?.as_str() {
            "empty" => Ok(WorkloadSpec::Empty),
            "hotspot" => Ok(WorkloadSpec::Hotspot {
                node: v.field("node")?,
                total: v.field("total")?,
                task_size: v.field("task_size")?,
            }),
            "multi-hotspot" => Ok(WorkloadSpec::MultiHotspot {
                nodes: v.field("nodes")?,
                total: v.field("total")?,
            }),
            "uniform-random" => Ok(WorkloadSpec::UniformRandom {
                max_per_node: v.field("max_per_node")?,
                seed: v.field("seed")?,
            }),
            "bimodal" => Ok(WorkloadSpec::Bimodal {
                fraction: v.field("fraction")?,
                high: v.field("high")?,
                low: v.field("low")?,
                seed: v.field("seed")?,
            }),
            "ramp" => Ok(WorkloadSpec::Ramp { step: v.field("step")? }),
            "zipf" => Ok(WorkloadSpec::Zipf {
                count: v.field("count")?,
                base: v.field("base")?,
                skew: v.field("skew")?,
                seed: v.field("seed")?,
            }),
            "loads" => Ok(WorkloadSpec::Loads {
                loads: v.field("loads")?,
                task_size: v.field("task_size")?,
            }),
            "trace" => Ok(WorkloadSpec::Trace { records: v.field("records")? }),
            other => Err(format!("unknown workload kind `{other}`")),
        }
    }
}

impl Serialize for TaskGraphSpec {
    fn to_value(&self) -> Value {
        match *self {
            TaskGraphSpec::None => tagged("none", vec![]),
            TaskGraphSpec::Chain { count, weight } => {
                tagged("chain", vec![entry("count", count), entry("weight", weight)])
            }
        }
    }
}

impl Deserialize for TaskGraphSpec {
    fn from_value(v: &Value) -> Result<Self, String> {
        match kind_of(v)?.as_str() {
            "none" => Ok(TaskGraphSpec::None),
            "chain" => {
                Ok(TaskGraphSpec::Chain { count: v.field("count")?, weight: v.field("weight")? })
            }
            other => Err(format!("unknown task-graph kind `{other}`")),
        }
    }
}

impl Serialize for ResourceSpec {
    fn to_value(&self) -> Value {
        match *self {
            ResourceSpec::None => tagged("none", vec![]),
            ResourceSpec::PinFirst { count, node, strength } => tagged(
                "pin-first",
                vec![entry("count", count), entry("node", node), entry("strength", strength)],
            ),
        }
    }
}

impl Deserialize for ResourceSpec {
    fn from_value(v: &Value) -> Result<Self, String> {
        match kind_of(v)?.as_str() {
            "none" => Ok(ResourceSpec::None),
            "pin-first" => Ok(ResourceSpec::PinFirst {
                count: v.field("count")?,
                node: v.field("node")?,
                strength: v.field("strength")?,
            }),
            other => Err(format!("unknown resource kind `{other}`")),
        }
    }
}

impl Serialize for BalancerSpec {
    fn to_value(&self) -> Value {
        match self {
            BalancerSpec::ParticlePlane { config, arbiter, name } => tagged(
                "particle-plane",
                vec![
                    entry("config", config),
                    entry("arbiter", arbiter.as_ref().map(|a| a.to_value())),
                    entry("name", name),
                ],
            ),
            BalancerSpec::Diffusion { alpha } => {
                let alpha = match alpha {
                    DiffusionAlpha::Optimal => Value::Str("optimal".to_string()),
                    DiffusionAlpha::Safe => Value::Str("safe".to_string()),
                    DiffusionAlpha::Fixed(a) => Value::Float(*a),
                };
                tagged("diffusion", vec![("alpha".to_string(), alpha)])
            }
            BalancerSpec::DimensionExchange => tagged("dimension-exchange", vec![]),
            BalancerSpec::GradientModel { low, high } => {
                tagged("gradient-model", vec![entry("low", low), entry("high", high)])
            }
            BalancerSpec::Cwn { threshold } => tagged("cwn", vec![entry("threshold", threshold)]),
            BalancerSpec::RandomNeighbor { threshold } => {
                tagged("random-neighbor", vec![entry("threshold", threshold)])
            }
            BalancerSpec::SenderInitiated { t_high, t_accept, probes } => tagged(
                "sender-initiated",
                vec![entry("t_high", t_high), entry("t_accept", t_accept), entry("probes", probes)],
            ),
            BalancerSpec::Null => tagged("null", vec![]),
        }
    }
}

impl Deserialize for BalancerSpec {
    fn from_value(v: &Value) -> Result<Self, String> {
        match kind_of(v)?.as_str() {
            "particle-plane" => Ok(BalancerSpec::ParticlePlane {
                config: v.field_opt("config")?.unwrap_or_default(),
                arbiter: v.field_opt("arbiter")?,
                name: v.field_opt("name")?,
            }),
            "diffusion" => {
                let alpha = match v.get("alpha") {
                    Some(Value::Str(s)) if s == "optimal" => DiffusionAlpha::Optimal,
                    Some(Value::Str(s)) if s == "safe" => DiffusionAlpha::Safe,
                    Some(other) => DiffusionAlpha::Fixed(
                        other.as_f64().ok_or_else(|| format!("bad diffusion alpha {other:?}"))?,
                    ),
                    None => DiffusionAlpha::Optimal,
                };
                Ok(BalancerSpec::Diffusion { alpha })
            }
            "dimension-exchange" => Ok(BalancerSpec::DimensionExchange),
            "gradient-model" => {
                Ok(BalancerSpec::GradientModel { low: v.field("low")?, high: v.field("high")? })
            }
            "cwn" => Ok(BalancerSpec::Cwn { threshold: v.field("threshold")? }),
            "random-neighbor" => {
                Ok(BalancerSpec::RandomNeighbor { threshold: v.field("threshold")? })
            }
            "sender-initiated" => Ok(BalancerSpec::SenderInitiated {
                t_high: v.field("t_high")?,
                t_accept: v.field("t_accept")?,
                probes: v.field("probes")?,
            }),
            "null" => Ok(BalancerSpec::Null),
            other => Err(format!("unknown balancer kind `{other}`")),
        }
    }
}

impl Serialize for ArrivalSpec {
    fn to_value(&self) -> Value {
        match self {
            ArrivalSpec::Quiescent => tagged("quiescent", vec![]),
            ArrivalSpec::Poisson { rate, size_min, size_max } => tagged(
                "poisson",
                vec![entry("rate", rate), entry("size_min", size_min), entry("size_max", size_max)],
            ),
            ArrivalSpec::Bursty { rate, burst_len, quiet_len, size } => tagged(
                "bursty",
                vec![
                    entry("rate", rate),
                    entry("burst_len", burst_len),
                    entry("quiet_len", quiet_len),
                    entry("size", size),
                ],
            ),
            ArrivalSpec::Diurnal { base_rate, amplitude, period, size_min, size_max } => tagged(
                "diurnal",
                vec![
                    entry("base_rate", base_rate),
                    entry("amplitude", amplitude),
                    entry("period", period),
                    entry("size_min", size_min),
                    entry("size_max", size_max),
                ],
            ),
            ArrivalSpec::MovingHotspot { rate, size, dwell, stride } => tagged(
                "moving-hotspot",
                vec![
                    entry("rate", rate),
                    entry("size", size),
                    entry("dwell", dwell),
                    entry("stride", stride),
                ],
            ),
            ArrivalSpec::Replay { events } => tagged("replay", vec![entry("events", events)]),
        }
    }
}

impl Deserialize for ArrivalSpec {
    fn from_value(v: &Value) -> Result<Self, String> {
        match kind_of(v)?.as_str() {
            "quiescent" => Ok(ArrivalSpec::Quiescent),
            "poisson" => Ok(ArrivalSpec::Poisson {
                rate: v.field("rate")?,
                size_min: v.field("size_min")?,
                size_max: v.field("size_max")?,
            }),
            "bursty" => Ok(ArrivalSpec::Bursty {
                rate: v.field("rate")?,
                burst_len: v.field("burst_len")?,
                quiet_len: v.field("quiet_len")?,
                size: v.field("size")?,
            }),
            "diurnal" => Ok(ArrivalSpec::Diurnal {
                base_rate: v.field("base_rate")?,
                amplitude: v.field("amplitude")?,
                period: v.field("period")?,
                size_min: v.field("size_min")?,
                size_max: v.field("size_max")?,
            }),
            "moving-hotspot" => Ok(ArrivalSpec::MovingHotspot {
                rate: v.field("rate")?,
                size: v.field("size")?,
                dwell: v.field("dwell")?,
                stride: v.field("stride")?,
            }),
            "replay" => Ok(ArrivalSpec::Replay { events: v.field("events")? }),
            other => Err(format!("unknown arrival kind `{other}`")),
        }
    }
}

impl Serialize for SpeedSpec {
    fn to_value(&self) -> Value {
        match *self {
            SpeedSpec::Uniform => tagged("uniform", vec![]),
            SpeedSpec::TwoTier { fast_fraction, fast, slow, seed } => tagged(
                "two-tier",
                vec![
                    entry("fast_fraction", fast_fraction),
                    entry("fast", fast),
                    entry("slow", slow),
                    entry("seed", seed),
                ],
            ),
            SpeedSpec::LinearRamp { min, max } => {
                tagged("linear-ramp", vec![entry("min", min), entry("max", max)])
            }
        }
    }
}

impl Deserialize for SpeedSpec {
    fn from_value(v: &Value) -> Result<Self, String> {
        match kind_of(v)?.as_str() {
            "uniform" => Ok(SpeedSpec::Uniform),
            "two-tier" => Ok(SpeedSpec::TwoTier {
                fast_fraction: v.field("fast_fraction")?,
                fast: v.field("fast")?,
                slow: v.field("slow")?,
                seed: v.field("seed")?,
            }),
            "linear-ramp" => {
                Ok(SpeedSpec::LinearRamp { min: v.field("min")?, max: v.field("max")? })
            }
            other => Err(format!("unknown speed kind `{other}`")),
        }
    }
}

impl Serialize for FaultPlanSpec {
    fn to_value(&self) -> Value {
        Value::Object(vec![entry("model", self.model)])
    }
}

impl Deserialize for FaultPlanSpec {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(FaultPlanSpec { model: v.field_opt("model")? })
    }
}

impl Serialize for ChurnSpec {
    fn to_value(&self) -> Value {
        match *self {
            ChurnSpec::None => tagged("none", vec![]),
            ChurnSpec::Markov { leave, join, seed } => tagged(
                "markov",
                vec![entry("leave", leave), entry("join", join), entry("seed", seed)],
            ),
        }
    }
}

impl Deserialize for ChurnSpec {
    fn from_value(v: &Value) -> Result<Self, String> {
        match kind_of(v)?.as_str() {
            "none" => Ok(ChurnSpec::None),
            "markov" => Ok(ChurnSpec::Markov {
                leave: v.field("leave")?,
                join: v.field("join")?,
                seed: v.field("seed")?,
            }),
            other => Err(format!("unknown churn kind `{other}`")),
        }
    }
}

impl Serialize for EngineKnobs {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            entry("tick", self.tick),
            entry("weight_c", self.weight_c),
            entry("consume_rate", self.consume_rate),
            entry("max_attempts", self.max_attempts),
            entry("parallel_decide", self.parallel_decide),
            entry("shards", self.shards),
            entry("threads", self.threads),
        ];
        // Omitted (not null) at the Tick default, so every spec written
        // before the strategy knob existed stays canonical byte-for-byte.
        if self.strategy != SimulationStrategy::Tick {
            entries.push(entry("strategy", self.strategy.as_str()));
        }
        // Same pattern for the adaptive-repartitioning knob: omitted (not
        // null) when off, so pre-repartition spec JSON stays canonical.
        if let Some(rp) = self.repartition {
            entries.push(entry(
                "repartition",
                Value::Object(vec![
                    entry("every", rp.every),
                    entry("skew_threshold", rp.skew_threshold),
                ]),
            ));
        }
        Value::Object(entries)
    }
}

impl Deserialize for EngineKnobs {
    fn from_value(v: &Value) -> Result<Self, String> {
        let d = EngineKnobs::default();
        let strategy = match v.field_opt::<String>("strategy")? {
            None => d.strategy,
            Some(s) => s.parse::<SimulationStrategy>()?,
        };
        let repartition = match v.field_opt::<Value>("repartition")? {
            None => None,
            Some(rp) => Some(RepartitionConfig {
                every: rp.field("every").map_err(|e| format!("field `repartition`: {e}"))?,
                skew_threshold: rp
                    .field("skew_threshold")
                    .map_err(|e| format!("field `repartition`: {e}"))?,
            }),
        };
        Ok(EngineKnobs {
            tick: v.field_opt("tick")?.unwrap_or(d.tick),
            weight_c: v.field_opt("weight_c")?.unwrap_or(d.weight_c),
            consume_rate: v.field_opt("consume_rate")?.unwrap_or(d.consume_rate),
            max_attempts: v.field_opt("max_attempts")?.unwrap_or(d.max_attempts),
            parallel_decide: v.field_opt("parallel_decide")?.unwrap_or(d.parallel_decide),
            shards: v.field_opt("shards")?.unwrap_or(d.shards),
            threads: v.field_opt("threads")?.unwrap_or(d.threads),
            strategy,
            repartition,
        })
    }
}

impl Serialize for DurationSpec {
    fn to_value(&self) -> Value {
        Value::Object(vec![entry("rounds", self.rounds), entry("drain", self.drain)])
    }
}

impl Deserialize for DurationSpec {
    fn from_value(v: &Value) -> Result<Self, String> {
        let d = DurationSpec::default();
        Ok(DurationSpec {
            rounds: v.field_opt("rounds")?.unwrap_or(d.rounds),
            drain: v.field_opt("drain")?.unwrap_or(d.drain),
        })
    }
}
