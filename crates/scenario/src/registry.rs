//! The registry of named, validated scenarios: the paper's experiment
//! setups plus the workload families the ROADMAP asks for (bursty ON/OFF,
//! diurnal sine-wave, adversarial moving hotspot, heterogeneous node
//! speeds, recorded-trace replay). Every entry is a plain [`ScenarioSpec`]
//! — runnable from `pp-lab`, tests, benches and CI alike, and printable
//! as JSON with `pp-lab <name> --spec`.

use crate::spec::{
    ArrivalSpec, BalancerSpec, CheckpointSpec, ChurnSpec, DiffusionAlpha, DurationSpec,
    EngineKnobs, FaultPlanSpec, LinkSpec, ResourceSpec, ScenarioSpec, SpeedSpec, TaskGraphSpec,
    WorkloadSpec,
};
use pp_sim::engine::RepartitionConfig;
use pp_sim::strategy::SimulationStrategy;
use pp_tasking::workload::{record_trace, ArrivalProcess};
use pp_topology::spec::TopologySpec;

fn base(name: &str, description: &str) -> ScenarioSpec {
    ScenarioSpec {
        name: name.to_string(),
        description: description.to_string(),
        ..ScenarioSpec::default()
    }
}

/// All registered scenarios, in display order. Names are unique; every
/// entry validates (enforced by a test).
pub fn registry() -> Vec<ScenarioSpec> {
    // The replay scenario's recorded trace (deterministic per seed).
    let trace = record_trace(
        &ArrivalProcess::MovingHotspot { rate: 4.0, size: 1.0, dwell: 10.0, stride: 5 },
        16,
        60.0,
        7,
    );
    let all = vec![
        // 1. The paper's canonical worst case: one hill on a flat yard.
        ScenarioSpec {
            topology: TopologySpec::Torus { dims: vec![8, 8] },
            workload: WorkloadSpec::Hotspot { node: 0, total: 128.0, task_size: 1.0 },
            ..base("hotspot-torus", "single 128-unit hotspot on an 8x8 torus (Theorem 2 in action)")
        },
        // 2. Uniform random initial imbalance on a hypercube.
        ScenarioSpec {
            topology: TopologySpec::Hypercube { dim: 6 },
            workload: WorkloadSpec::UniformRandom { max_per_node: 12.0, seed: 5 },
            ..base("uniform-hypercube", "uniform-random loads on a 6-cube")
        },
        // 3. Bimodal split on a mesh (no wraparound shortcuts).
        ScenarioSpec {
            topology: TopologySpec::Mesh { dims: vec![8, 8] },
            workload: WorkloadSpec::Bimodal { fraction: 0.25, high: 16.0, low: 2.0, seed: 5 },
            ..base("bimodal-mesh", "25% of nodes at 16 units, the rest at 2, on an 8x8 mesh")
        },
        // 4. Linear ramp on a ring — the slowest-mixing family.
        ScenarioSpec {
            topology: TopologySpec::Ring { n: 32 },
            workload: WorkloadSpec::Ramp { step: 0.5 },
            duration: DurationSpec { rounds: 400, drain: 100.0 },
            ..base("ramp-ring", "linear load ramp around a 32-ring (diameter-limited mixing)")
        },
        // 5. Heavy-tailed tasks over heterogeneous faulty links.
        ScenarioSpec {
            topology: TopologySpec::Torus { dims: vec![8, 8] },
            links: LinkSpec::Random { seed: 21, bw: (0.5, 2.0), d: (0.5, 2.0), f_max: 0.02 },
            workload: WorkloadSpec::Zipf { count: 1024, base: 1.0, skew: 0.3, seed: 21 },
            duration: DurationSpec { rounds: 300, drain: 500.0 },
            ..base("zipf-heterogeneous", "1024 zipf tasks over random link attributes")
        },
        // 6. Bursty ON/OFF arrivals against a consuming system.
        ScenarioSpec {
            topology: TopologySpec::Torus { dims: vec![6, 6] },
            arrival: ArrivalSpec::Bursty { rate: 12.0, burst_len: 5.0, quiet_len: 20.0, size: 1.0 },
            engine: EngineKnobs { consume_rate: 0.3, ..EngineKnobs::default() },
            duration: DurationSpec { rounds: 500, drain: 100.0 },
            ..base(
                "bursty-onoff",
                "ON/OFF arrival bursts (12/s for 5s, quiet 20s) with consumption",
            )
        },
        // 7. Diurnal sine-wave load — the day/night cycle.
        ScenarioSpec {
            topology: TopologySpec::Torus { dims: vec![6, 6] },
            arrival: ArrivalSpec::Diurnal {
                base_rate: 6.0,
                amplitude: 0.8,
                period: 100.0,
                size_min: 0.5,
                size_max: 1.5,
            },
            engine: EngineKnobs { consume_rate: 0.2, ..EngineKnobs::default() },
            duration: DurationSpec { rounds: 500, drain: 100.0 },
            ..base(
                "diurnal-wave",
                "sine-wave arrival rate (amplitude 0.8, period 100) with consumption",
            )
        },
        // 8. The adversarial moving hotspot: arrivals chase the balancer.
        ScenarioSpec {
            topology: TopologySpec::Torus { dims: vec![8, 8] },
            arrival: ArrivalSpec::MovingHotspot { rate: 10.0, size: 1.0, dwell: 25.0, stride: 27 },
            engine: EngineKnobs { consume_rate: 0.15, ..EngineKnobs::default() },
            duration: DurationSpec { rounds: 400, drain: 100.0 },
            ..base("moving-hotspot", "all arrivals target one node that jumps every 25 time units")
        },
        // 9. Heterogeneous node speeds: fast nodes drain, slow nodes pile up.
        ScenarioSpec {
            topology: TopologySpec::Mesh { dims: vec![8, 8] },
            workload: WorkloadSpec::UniformRandom { max_per_node: 10.0, seed: 9 },
            arrival: ArrivalSpec::Poisson { rate: 6.0, size_min: 0.5, size_max: 1.5 },
            speeds: SpeedSpec::TwoTier { fast_fraction: 0.25, fast: 3.0, slow: 0.75, seed: 9 },
            engine: EngineKnobs { consume_rate: 0.25, ..EngineKnobs::default() },
            duration: DurationSpec { rounds: 400, drain: 100.0 },
            ..base(
                "hetero-speeds",
                "25% of nodes consume 4x faster (two-tier speeds) under arrivals",
            )
        },
        // 10. Recorded-trace replay: a moving-hotspot trace captured once,
        // replayed record-for-record (the regression-testing workhorse).
        ScenarioSpec {
            topology: TopologySpec::Torus { dims: vec![4, 4] },
            arrival: ArrivalSpec::Replay {
                events: trace.iter().map(|ev| (ev.time, ev.node, ev.size)).collect(),
            },
            engine: EngineKnobs { consume_rate: 0.1, ..EngineKnobs::default() },
            duration: DurationSpec { rounds: 120, drain: 100.0 },
            ..base("trace-replay", "replays a recorded 60-time-unit moving-hotspot arrival trace")
        },
        // 11. Fault tolerance: per-transfer faults + dynamic up/down links.
        ScenarioSpec {
            topology: TopologySpec::Torus { dims: vec![8, 8] },
            links: LinkSpec::Uniform { bandwidth: 1.0, distance: 1.0, fault_prob: 0.1 },
            workload: WorkloadSpec::Bimodal { fraction: 0.25, high: 6.0, low: 0.5, seed: 11 },
            faults: FaultPlanSpec { model: Some((0.05, 0.5)) },
            duration: DurationSpec { rounds: 250, drain: 200.0 },
            ..base("faulty-torus", "10% per-transfer link faults plus a Markov up/down process")
        },
        // 12. Dependency pipeline: chained tasks resist migration.
        ScenarioSpec {
            topology: TopologySpec::Mesh { dims: vec![4, 4] },
            workload: WorkloadSpec::Hotspot { node: 0, total: 32.0, task_size: 1.0 },
            task_graph: TaskGraphSpec::Chain { count: 16, weight: 8.0 },
            duration: DurationSpec { rounds: 200, drain: 200.0 },
            ..base("dependency-pipeline", "16 chained + 16 free tasks on one node of a 4x4 mesh")
        },
        // 13. Resource pinning: half the hotspot is nailed to its node.
        ScenarioSpec {
            topology: TopologySpec::Mesh { dims: vec![4, 4] },
            workload: WorkloadSpec::Hotspot { node: 0, total: 32.0, task_size: 1.0 },
            resources: ResourceSpec::PinFirst { count: 16, node: 0, strength: 8.0 },
            duration: DurationSpec { rounds: 200, drain: 200.0 },
            ..base("pinned-resources", "16 of 32 hotspot tasks pinned to node 0 (µ_s ∝ R_{k,i})")
        },
        // 14. Classical baseline: Xu–Lau optimal diffusion on the same hotspot.
        ScenarioSpec {
            topology: TopologySpec::Mesh { dims: vec![8, 8] },
            links: LinkSpec::Instant,
            workload: WorkloadSpec::Hotspot { node: 0, total: 128.0, task_size: 1.0 },
            balancer: BalancerSpec::Diffusion { alpha: DiffusionAlpha::Optimal },
            ..base("diffusion-baseline", "Xu-Lau optimal diffusion on the mesh hotspot (reference)")
        },
        // 15. Classical baseline: dimension exchange on its home topology.
        ScenarioSpec {
            topology: TopologySpec::Hypercube { dim: 5 },
            links: LinkSpec::Instant,
            workload: WorkloadSpec::UniformRandom { max_per_node: 12.0, seed: 3 },
            balancer: BalancerSpec::DimensionExchange,
            ..base("dimension-exchange-cube", "Cybenko dimension exchange on a 5-cube (reference)")
        },
        // 16. Big parallel sweep: the 1k-node scale point with the parallel
        // decision path on (what bench_ticks measures, as a scenario).
        ScenarioSpec {
            topology: TopologySpec::Torus { dims: vec![32, 32] },
            workload: WorkloadSpec::UniformRandom { max_per_node: 10.0, seed: 42 },
            engine: EngineKnobs { parallel_decide: true, ..EngineKnobs::default() },
            duration: DurationSpec { rounds: 100, drain: 100.0 },
            ..base("torus1k-parallel", "1024-node torus with the parallel decision sweep")
        },
        // 17. Production scale, explicitly sharded: the 16k-node torus
        // split into 64 row bands (what BENCH_4 measures, as a scenario).
        ScenarioSpec {
            topology: TopologySpec::Torus { dims: vec![128, 128] },
            workload: WorkloadSpec::UniformRandom { max_per_node: 8.0, seed: 42 },
            engine: EngineKnobs { shards: 64, ..EngineKnobs::default() },
            duration: DurationSpec { rounds: 60, drain: 100.0 },
            ..base("torus16k-sharded", "16,384-node torus on the 64-shard tick pipeline")
        },
        // 18. The 65,536-node scale point: one hotspot on a 256×256 torus,
        // 128 shards — far shards sleep until the balancing wave reaches
        // their halo (the shard-level activity tracking showcase).
        ScenarioSpec {
            topology: TopologySpec::Torus { dims: vec![256, 256] },
            workload: WorkloadSpec::Hotspot { node: 0, total: 2048.0, task_size: 1.0 },
            engine: EngineKnobs { shards: 128, ..EngineKnobs::default() },
            duration: DurationSpec { rounds: 40, drain: 100.0 },
            ..base("torus65536-sharded", "65,536-node torus, 128 shards, spreading hotspot")
        },
        // 19. Checkpoint/resume under fire: Markov link faults, Poisson
        // arrivals and consumption all active when the run is split — the
        // kill/resume-mid-fault chaos case the `--verify-resume` CI gate
        // replays against its straight-run twin.
        ScenarioSpec {
            topology: TopologySpec::Torus { dims: vec![32, 32] },
            workload: WorkloadSpec::UniformRandom { max_per_node: 6.0, seed: 19 },
            arrival: ArrivalSpec::Poisson { rate: 8.0, size_min: 0.5, size_max: 1.5 },
            faults: FaultPlanSpec { model: Some((0.08, 0.4)) },
            engine: EngineKnobs { consume_rate: 0.2, shards: 4, ..EngineKnobs::default() },
            duration: DurationSpec { rounds: 200, drain: 100.0 },
            ..base(
                "torus1k-resume-midfault",
                "1024-node torus split mid-run with faults + arrivals in flight",
            )
        },
        // 20. Long-horizon production scale with periodic checkpointing:
        // the 16k-node sharded torus writing a restart point every 16
        // rounds (capture is read-only, so the report is identical to an
        // uncheckpointed run — asserted by the golden gate). Redistribution
        // only (no consumption): with consume_rate > 0 every arrival event
        // pays an O(n) consume sweep, which at 16k nodes dominates the run.
        ScenarioSpec {
            topology: TopologySpec::Torus { dims: vec![128, 128] },
            workload: WorkloadSpec::UniformRandom { max_per_node: 8.0, seed: 20 },
            arrival: ArrivalSpec::Bursty { rate: 20.0, burst_len: 4.0, quiet_len: 12.0, size: 1.0 },
            engine: EngineKnobs { shards: 16, ..EngineKnobs::default() },
            duration: DurationSpec { rounds: 120, drain: 100.0 },
            checkpoint: Some(CheckpointSpec {
                every: 16,
                path: "target/ckpt/torus16k-checkpointed.ckpt.json".to_string(),
            }),
            ..base("torus16k-checkpointed", "16,384-node torus checkpointing every 16 rounds")
        },
        // 21. The event-strategy showcase: a million-node torus over a
        // 50,000-round horizon. The small hotspot drains (and the balancer
        // quiesces) within tens of rounds; the event strategy fast-forwards
        // everything after in closed form. With consume_rate > 0 the tick
        // strategy pays an O(n) consume sweep on every one of the 50,000
        // rounds — ~5·10^10 node visits — so this entry completes in CI
        // smoke mode under `--strategy event` where Tick cannot.
        ScenarioSpec {
            topology: TopologySpec::Torus { dims: vec![1024, 1024] },
            workload: WorkloadSpec::Hotspot { node: 0, total: 64.0, task_size: 1.0 },
            engine: EngineKnobs {
                consume_rate: 1.0,
                shards: 256,
                strategy: SimulationStrategy::Event,
                ..EngineKnobs::default()
            },
            duration: DurationSpec { rounds: 50_000, drain: 100.0 },
            ..base(
                "torus1m-event",
                "1,048,576-node torus over 50,000 rounds via event-driven time skipping",
            )
        },
        // 22./23. The adaptive-repartitioning A/B pair: a moving hotspot on
        // the 16k-node torus, 64 shards, redistribution only (consume_rate
        // 0 — a consume sweep would pay O(n) per round and drown the sweep
        // savings the pair exists to measure). The specs differ in exactly
        // one knob, so their reports are byte-identical (repartitioning is
        // unobservable in report bytes, ADR-008); only the sweep cost —
        // what BENCH_8 measures — differs.
        hotspot16k(
            "hotspot16k-static",
            "moving hotspot on the 64-shard 16k torus, fixed uniform layout",
            None,
        ),
        hotspot16k(
            "hotspot16k-adaptive",
            "moving hotspot on the 64-shard 16k torus, adaptive repartitioning",
            Some(RepartitionConfig { every: 8, skew_threshold: 2.0 }),
        ),
        // 24. Irregular topology I: preferential-attachment hubs. The
        // hotspot's escape routes all funnel through a few high-degree
        // nodes — the opposite of the torus's uniform degree.
        ScenarioSpec {
            topology: TopologySpec::ScaleFree { n: 256, m: 3, seed: 24 },
            workload: WorkloadSpec::Hotspot { node: 0, total: 256.0, task_size: 1.0 },
            duration: DurationSpec { rounds: 300, drain: 100.0 },
            ..base("scalefree-hotspot", "256-unit hotspot on a 256-node scale-free graph (m=3)")
        },
        // 25. Irregular topology II: a random-geometric field (uneven
        // degree, long shortest paths) under diurnal arrivals.
        ScenarioSpec {
            topology: TopologySpec::Geometric { n: 128, radius: 0.18, seed: 25 },
            arrival: ArrivalSpec::Diurnal {
                base_rate: 5.0,
                amplitude: 0.8,
                period: 80.0,
                size_min: 0.5,
                size_max: 1.5,
            },
            engine: EngineKnobs { consume_rate: 0.2, ..EngineKnobs::default() },
            duration: DurationSpec { rounds: 400, drain: 100.0 },
            ..base("geometric-diurnal", "diurnal arrivals on a 128-node random-geometric graph")
        },
        // 26. Node churn on the torus: Markov join/leave membership under
        // Poisson arrivals — leavers drain their queues to live neighbours,
        // joiners start cold (ADR-010).
        ScenarioSpec {
            topology: TopologySpec::Torus { dims: vec![8, 8] },
            workload: WorkloadSpec::UniformRandom { max_per_node: 8.0, seed: 26 },
            arrival: ArrivalSpec::Poisson { rate: 6.0, size_min: 0.5, size_max: 1.5 },
            churn: ChurnSpec::Markov { leave: 0.02, join: 0.25, seed: 26 },
            engine: EngineKnobs { consume_rate: 0.25, ..EngineKnobs::default() },
            duration: DurationSpec { rounds: 300, drain: 100.0 },
            ..base("torus-churn", "Markov node join/leave churn on the torus under arrivals")
        },
        // 27. The everything-fails case: node churn *and* the Markov link
        // up/down process *and* per-transfer link faults, simultaneously.
        ScenarioSpec {
            topology: TopologySpec::Torus { dims: vec![8, 8] },
            links: LinkSpec::Uniform { bandwidth: 1.0, distance: 1.0, fault_prob: 0.05 },
            workload: WorkloadSpec::Bimodal { fraction: 0.25, high: 10.0, low: 1.0, seed: 27 },
            faults: FaultPlanSpec { model: Some((0.05, 0.5)) },
            churn: ChurnSpec::Markov { leave: 0.015, join: 0.2, seed: 27 },
            engine: EngineKnobs { consume_rate: 0.15, ..EngineKnobs::default() },
            duration: DurationSpec { rounds: 300, drain: 150.0 },
            ..base("churn-faults", "node churn plus link faults plus transfer faults at once")
        },
    ];
    all
}

/// The shared body of the `hotspot16k-{static,adaptive}` pair — one
/// constructor so the two specs can never drift apart in anything but the
/// repartition knob.
fn hotspot16k(name: &str, desc: &str, repartition: Option<RepartitionConfig>) -> ScenarioSpec {
    ScenarioSpec {
        topology: TopologySpec::Torus { dims: vec![128, 128] },
        arrival: ArrivalSpec::MovingHotspot { rate: 24.0, size: 1.0, dwell: 8.0, stride: 4097 },
        engine: EngineKnobs { shards: 64, repartition, ..EngineKnobs::default() },
        duration: DurationSpec { rounds: 200, drain: 100.0 },
        ..base(name, desc)
    }
}

/// Looks a scenario up by name.
pub fn by_name(name: &str) -> Option<ScenarioSpec> {
    registry().into_iter().find(|s| s.name == name)
}

/// All registered names, in display order.
pub fn names() -> Vec<String> {
    registry().into_iter().map(|s| s.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn registry_is_large_and_unique() {
        let all = registry();
        assert!(all.len() >= 27, "registry has only {} scenarios", all.len());
        let names: HashSet<&str> = all.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), all.len(), "duplicate scenario names");
        // The ROADMAP-mandated workload families are all present.
        for required in [
            "bursty-onoff",
            "diurnal-wave",
            "moving-hotspot",
            "hetero-speeds",
            "trace-replay",
            "torus1k-resume-midfault",
            "torus16k-checkpointed",
            "torus1m-event",
            "hotspot16k-adaptive",
            "hotspot16k-static",
            "scalefree-hotspot",
            "geometric-diurnal",
            "torus-churn",
            "churn-faults",
        ] {
            assert!(names.contains(required), "missing required scenario `{required}`");
        }
    }

    #[test]
    fn churn_scenarios_actually_churn() {
        // The ChurnSpec wiring must reach the engine: a smoke run of each
        // churn scenario has down nodes mid-run, and the split run still
        // matches the straight run byte-for-byte.
        for name in ["torus-churn", "churn-faults"] {
            let spec = by_name(name).expect("registered").smoke(8, 15.0);
            let mut engine = spec.build_engine().expect("builds");
            engine.run_rounds(8);
            assert!(engine.down_node_count() > 0, "{name} scheduled no churn in smoke mode");
            let straight = spec.run().expect("straight");
            let (split, _) = spec.run_split(4).expect("split");
            assert_eq!(split, straight, "{name} churned split run diverged");
        }
    }

    #[test]
    fn midfault_resume_scenario_splits_exactly() {
        // The chaos scenario in miniature: kill mid-fault, resume, and the
        // report must be byte-identical to never having stopped.
        let spec = by_name("torus1k-resume-midfault").expect("registered").smoke(6, 15.0);
        let straight = spec.run().expect("straight run");
        let (split, layout) = spec.run_split(3).expect("split run");
        assert_eq!(split, straight);
        assert_eq!(layout.shards, 4, "spec pins 4 shards");
    }

    #[test]
    fn hotspot16k_pair_is_identical_but_for_the_knob() {
        let stat = by_name("hotspot16k-static").expect("registered");
        let adap = by_name("hotspot16k-adaptive").expect("registered");
        assert!(stat.engine.repartition.is_none());
        assert_eq!(
            adap.engine.repartition,
            Some(RepartitionConfig { every: 8, skew_threshold: 2.0 })
        );
        // The shared constructor means the pair can differ in nothing else.
        let strip = |spec: &ScenarioSpec| {
            let mut s = spec.clone();
            s.name = String::new();
            s.description = String::new();
            s.engine.repartition = None;
            s
        };
        assert_eq!(strip(&stat), strip(&adap));
        // In miniature: the adaptive run actually moves the layout, without
        // moving a byte of the report (the ADR-008 contract).
        let mut a = adap.smoke(24, 10.0).build_engine().expect("builds");
        let mut s = stat.smoke(24, 10.0).build_engine().expect("builds");
        a.run_rounds(24);
        s.run_rounds(24);
        assert!(a.repartitions() > 0, "adaptive hotspot16k engine never repartitioned");
        assert_eq!(a.report(), s.report());
    }

    #[test]
    fn every_entry_validates() {
        for s in registry() {
            s.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn every_entry_builds_an_engine() {
        for s in registry() {
            let engine = s.build_engine().unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(engine.state().node_count(), s.topology.node_count(), "{}", s.name);
        }
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(by_name("hotspot-torus").is_some());
        assert!(by_name("no-such-scenario").is_none());
    }

    #[test]
    fn invalid_arbiter_fails_validation_and_parse_alike() {
        // validate() and the JSON Deserialize path share Arbiter::validate,
        // so a spec cannot pass one and fail the other.
        use pp_core::arbiter::Arbiter;
        use pp_core::params::PhysicsConfig;
        let mut s = by_name("hotspot-torus").expect("registered");
        s.balancer = BalancerSpec::ParticlePlane {
            config: PhysicsConfig::default(),
            arbiter: Some(Arbiter::Stochastic { beta0: 1.5, c: -1.0, t_max: 0.0 }),
            name: None,
        };
        assert!(s.validate().is_err());
        assert!(ScenarioSpec::from_json(&s.to_json_pretty()).is_err());
    }

    #[test]
    fn every_entry_round_trips_through_json() {
        for s in registry() {
            let json = s.to_json_pretty();
            let back = ScenarioSpec::from_json(&json)
                .unwrap_or_else(|e| panic!("{}: parse error {e}", s.name));
            assert_eq!(back, s, "{} did not round-trip", s.name);
            // And the re-serialization is byte-identical.
            assert_eq!(back.to_json_pretty(), json, "{} JSON not canonical", s.name);
        }
    }

    #[test]
    fn smoke_runs_are_deterministic_per_seed() {
        // Every registered scenario, in miniature: two same-seed runs must
        // be outcome-identical (RunReport implements PartialEq over every
        // recorded artifact).
        for s in registry() {
            let mut small = s.smoke(3, 10.0);
            // smoke() deliberately leaves event-strategy horizons alone
            // (they're O(1) per skipped round in release); clamp them here
            // so the unoptimized test build stays fast — determinism is a
            // per-round property, not a per-horizon one.
            small.duration.rounds = small.duration.rounds.min(16);
            let a = small.run().unwrap_or_else(|e| panic!("{e}"));
            let b = small.run().unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(a, b, "{} diverged across same-seed runs", s.name);
        }
    }

    #[test]
    fn torus1m_event_keeps_its_horizon_and_fast_forwards() {
        let spec = by_name("torus1m-event").expect("registered");
        assert_eq!(spec.engine.strategy, SimulationStrategy::Event);
        assert_eq!(spec.topology.node_count(), 1 << 20);
        // The point of the entry: smoke mode must not cap the horizon —
        // Tick can't sweep 50,000 rounds at a million nodes, Event can.
        assert_eq!(spec.smoke(3, 10.0).duration.rounds, 50_000);
        // The hotspot drains and the balancer quiesces within ~200 rounds;
        // everything after is closed-form. Run a truncated horizon (full
        // scale, debug build) and check the sweep counters have frozen.
        let mut spec = spec;
        spec.duration.rounds = 400;
        let mut engine = spec.build_engine().expect("builds");
        engine.run_rounds(250);
        let evaluated = engine.shard_stats().ticks_evaluated;
        assert_eq!(engine.next_wake(), None, "system must fully quiesce");
        engine.run_rounds(150);
        assert_eq!(engine.shard_stats().ticks_evaluated, evaluated, "tail must fast-forward");
        assert_eq!(engine.round(), 400);
        assert_eq!(engine.report().series.len(), 401);
    }
}
