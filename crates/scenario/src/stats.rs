//! The statistical comparison harness (`pp-lab stats`): named scenario
//! sets × a fixed balancer panel × R master seeds, reduced to a
//! machine-readable [`StatsReport`] with per-metric mean / Student-t 95%
//! confidence intervals and a pairwise Welch verdict table. This is the
//! small-sample-honest successor to eyeballing single-seed golden reports:
//! at the harness's realistic replicate counts (5–10 seeds) the normal
//! 1.96 multiplier understates the interval by up to ~40%, so every CI
//! here uses `t₀.₉₇₅(n−1)` and every verdict a Welch test with
//! Satterthwaite degrees of freedom (see `pp_metrics::summary` and
//! `docs/adr/ADR-010-churn-and-stats.md`).
//!
//! Determinism contract: a report is a pure function of `(set, seeds,
//! smoke caps)`. Replicate `r` runs the registered spec with master seed
//! `base + r` and everything else untouched, so workload placement and
//! churn/fault schedules stay *paired* across balancers — each policy
//! faces the identical sequence of adversities. Layout overrides (shards,
//! threads) never reach the bytes: the engine guarantees layout-identical
//! runs, and the report carries no layout metadata.

use crate::registry;
use crate::spec::{BalancerSpec, DiffusionAlpha};
use pp_metrics::summary::{welch_test, Summary, Verdict};
use pp_sim::engine::RunReport;
use serde::{Serialize, Value};

/// The metrics extracted from every run, in report order.
pub const METRICS: &[&str] =
    &["final_cov", "final_spread", "migrations", "load_moved", "weighted_traffic", "heat"];

/// A named scenario set the harness can run.
#[derive(Debug, Clone, Copy)]
pub struct StatsSet {
    /// CLI name (`pp-lab stats --set <name>`).
    pub name: &'static str,
    /// One-line description for listings.
    pub description: &'static str,
    /// Registry names of the member scenarios.
    pub scenarios: &'static [&'static str],
}

/// All named sets, in display order. Every member name must resolve in
/// the registry (enforced by a test).
pub fn sets() -> Vec<StatsSet> {
    vec![
        StatsSet {
            name: "churn",
            description: "node join/leave churn on the torus, alone and with link faults",
            scenarios: &["torus-churn", "churn-faults"],
        },
        StatsSet {
            name: "irregular",
            description: "irregular topologies: scale-free hubs and random-geometric fields",
            scenarios: &["scalefree-hotspot", "geometric-diurnal"],
        },
        StatsSet {
            name: "classic",
            description: "the paper's canonical redistribution cases",
            scenarios: &["hotspot-torus", "ramp-ring"],
        },
    ]
}

/// Looks a set up by name.
pub fn set_by_name(name: &str) -> Option<StatsSet> {
    sets().into_iter().find(|s| s.name == name)
}

/// The fixed balancer panel every set is run under: the paper's
/// particle-plane policy first (the comparison baseline), then the
/// classical diffusive baseline (always-stable α on any topology — the
/// irregular-graph sets rule out the hypercube-only policies), then the
/// Eager et al. sender-initiated threshold policy.
pub fn balancer_panel() -> Vec<(String, BalancerSpec)> {
    vec![
        ("particle-plane".to_string(), BalancerSpec::default()),
        ("diffusion".to_string(), BalancerSpec::Diffusion { alpha: DiffusionAlpha::Safe }),
        (
            "sender-initiated".to_string(),
            BalancerSpec::SenderInitiated { t_high: 2.0, t_accept: 1.0, probes: 3 },
        ),
    ]
}

/// One `(scenario, balancer, metric)` cell: the five-number summary over
/// the replicate runs plus the Student-t 95% CI half-width.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricCell {
    /// Scenario name.
    pub scenario: String,
    /// Balancer label.
    pub balancer: String,
    /// Metric name (one of [`METRICS`]).
    pub metric: String,
    /// Summary over the replicates.
    pub summary: Summary,
}

impl Serialize for MetricCell {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("scenario".to_string(), self.scenario.to_value()),
            ("balancer".to_string(), self.balancer.to_value()),
            ("metric".to_string(), self.metric.to_value()),
            ("n".to_string(), self.summary.n.to_value()),
            ("mean".to_string(), self.summary.mean.to_value()),
            ("stddev".to_string(), self.summary.stddev.to_value()),
            ("ci95".to_string(), self.summary.ci95().to_value()),
            ("min".to_string(), self.summary.min.to_value()),
            ("max".to_string(), self.summary.max.to_value()),
        ])
    }
}

/// One pairwise Welch comparison: balancer `a` against balancer `b` on
/// one metric of one scenario. `verdict` reads as "`a` is
/// lower/higher/indistinguishable relative to `b`".
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Scenario name.
    pub scenario: String,
    /// Metric name.
    pub metric: String,
    /// First balancer label (the verdict's subject).
    pub a: String,
    /// Second balancer label.
    pub b: String,
    /// Welch verdict for `a` relative to `b` at the 95% level.
    pub verdict: Verdict,
    /// The Welch t statistic (omitted from JSON when non-finite — two
    /// zero-variance samples with different means yield ±∞).
    pub t: f64,
    /// Satterthwaite degrees of freedom (floored).
    pub df: usize,
}

impl Serialize for ComparisonRow {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("scenario".to_string(), self.scenario.to_value()),
            ("metric".to_string(), self.metric.to_value()),
            ("a".to_string(), self.a.to_value()),
            ("b".to_string(), self.b.to_value()),
            ("verdict".to_string(), self.verdict.as_str().to_value()),
        ];
        if self.t.is_finite() {
            entries.push(("t".to_string(), self.t.to_value()));
        }
        entries.push(("df".to_string(), self.df.to_value()));
        Value::Object(entries)
    }
}

/// The harness's machine-readable output: everything `pp-lab stats`
/// knows, in a fixed field order with a byte-stable rendering (the same
/// canonical-JSON convention as [`GoldenReport`](crate::report::GoldenReport)).
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReport {
    /// The set that was run.
    pub set: String,
    /// Replicates per `(scenario, balancer)` pair.
    pub seeds: usize,
    /// Whether smoke caps were applied.
    pub smoke: bool,
    /// Member scenario names, in run order.
    pub scenarios: Vec<String>,
    /// Balancer labels, in panel order (first = baseline).
    pub balancers: Vec<String>,
    /// Metric names, in cell order.
    pub metrics: Vec<String>,
    /// Per-`(scenario, balancer, metric)` summaries.
    pub cells: Vec<MetricCell>,
    /// Pairwise Welch verdicts, every unordered balancer pair per
    /// scenario per metric.
    pub comparisons: Vec<ComparisonRow>,
}

impl Serialize for StatsReport {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("set".to_string(), self.set.to_value()),
            ("seeds".to_string(), self.seeds.to_value()),
            ("smoke".to_string(), self.smoke.to_value()),
            ("scenarios".to_string(), self.scenarios.to_value()),
            ("balancers".to_string(), self.balancers.to_value()),
            ("metrics".to_string(), self.metrics.to_value()),
            ("cells".to_string(), Value::Array(self.cells.iter().map(|c| c.to_value()).collect())),
            (
                "comparisons".to_string(),
                Value::Array(self.comparisons.iter().map(|c| c.to_value()).collect()),
            ),
        ])
    }
}

impl StatsReport {
    /// The canonical byte-stable rendering (pretty JSON + trailing
    /// newline, like the golden reports).
    pub fn to_canonical_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("stats serialization is total");
        s.push('\n');
        s
    }

    /// Checks that `text` parses as a stats report: valid JSON carrying
    /// every top-level field with the right shape, at least one cell, and
    /// every cell/comparison structurally complete. Returns the set name.
    pub fn check_text(text: &str) -> Result<String, String> {
        let v = serde_json::from_str(text).map_err(|e| e.to_string())?;
        let set: String = v.field("set")?;
        let seeds: usize = v.field("seeds")?;
        if seeds == 0 {
            return Err("seeds must be ≥ 1".into());
        }
        let _: bool = v.field("smoke")?;
        let scenarios: Vec<String> = v.field("scenarios")?;
        let balancers: Vec<String> = v.field("balancers")?;
        let metrics: Vec<String> = v.field("metrics")?;
        let cells = match v.get("cells") {
            Some(Value::Array(cells)) if !cells.is_empty() => cells,
            Some(Value::Array(_)) => return Err("empty `cells` array".into()),
            _ => return Err("missing field `cells`".into()),
        };
        if cells.len() != scenarios.len() * balancers.len() * metrics.len() {
            return Err(format!(
                "{} cells but {} scenarios × {} balancers × {} metrics",
                cells.len(),
                scenarios.len(),
                balancers.len(),
                metrics.len()
            ));
        }
        for cell in cells {
            for key in
                ["scenario", "balancer", "metric", "n", "mean", "stddev", "ci95", "min", "max"]
            {
                if cell.get(key).is_none() {
                    return Err(format!("cell missing field `{key}`"));
                }
            }
        }
        let comparisons = match v.get("comparisons") {
            Some(Value::Array(rows)) => rows,
            _ => return Err("missing field `comparisons`".into()),
        };
        for row in comparisons {
            for key in ["scenario", "metric", "a", "b", "verdict", "df"] {
                if row.get(key).is_none() {
                    return Err(format!("comparison missing field `{key}`"));
                }
            }
            let verdict: String = row.field("verdict")?;
            if !["lower", "higher", "indistinguishable"].contains(&verdict.as_str()) {
                return Err(format!("unknown verdict `{verdict}`"));
            }
        }
        Ok(set)
    }
}

/// The metric values of one finished run, in [`METRICS`] order.
fn metric_values(r: &RunReport) -> [f64; 6] {
    [
        r.final_imbalance.cov,
        r.final_imbalance.spread,
        r.ledger.migration_count() as f64,
        r.ledger.total_load_moved(),
        r.ledger.total_weighted_traffic(),
        r.ledger.total_heat(),
    ]
}

/// Runs a named set under the balancer panel with `seeds` replicates per
/// pair and reduces to a [`StatsReport`]. `smoke` caps every run à la
/// [`ScenarioSpec::smoke`]; `layout` overrides the engine's `(shards,
/// threads)` knobs — the report bytes are identical for every layout
/// (asserted by a test and the CI stats job).
pub fn run_stats(
    set_name: &str,
    seeds: usize,
    smoke: Option<(u64, f64)>,
    layout: Option<(usize, usize)>,
) -> Result<StatsReport, String> {
    if seeds == 0 {
        return Err("need at least one seed (replicate)".into());
    }
    let set = set_by_name(set_name).ok_or_else(|| {
        let known: Vec<&str> = sets().iter().map(|s| s.name).collect();
        format!("unknown stats set `{set_name}`; known sets: {known:?}")
    })?;
    let panel = balancer_panel();
    let mut cells = Vec::new();
    // summaries[scenario][balancer][metric], for the comparison pass.
    let mut summaries: Vec<Vec<Vec<Summary>>> = Vec::new();
    for scen_name in set.scenarios {
        let base = registry::by_name(scen_name).ok_or_else(|| {
            format!("set `{}` names unregistered scenario `{scen_name}`", set.name)
        })?;
        let base = match smoke {
            Some((rounds, drain)) => base.smoke(rounds, drain),
            None => base,
        };
        let mut per_balancer = Vec::new();
        for (label, bspec) in &panel {
            let mut samples: [Vec<f64>; 6] = Default::default();
            for r in 0..seeds {
                let mut spec = base.clone();
                spec.balancer = bspec.clone();
                spec.seed = base.seed + r as u64;
                if let Some((shards, threads)) = layout {
                    spec.engine.shards = shards;
                    spec.engine.threads = threads;
                }
                let report = spec.run().map_err(|e| format!("{scen_name}/{label}: {e}"))?;
                for (bucket, value) in samples.iter_mut().zip(metric_values(&report)) {
                    bucket.push(value);
                }
            }
            let mut per_metric = Vec::new();
            for (metric, sample) in METRICS.iter().zip(&samples) {
                let summary = Summary::of(sample);
                per_metric.push(summary);
                cells.push(MetricCell {
                    scenario: scen_name.to_string(),
                    balancer: label.clone(),
                    metric: metric.to_string(),
                    summary,
                });
            }
            per_balancer.push(per_metric);
        }
        summaries.push(per_balancer);
    }
    let mut comparisons = Vec::new();
    for (si, scen_name) in set.scenarios.iter().enumerate() {
        for (mi, metric) in METRICS.iter().enumerate() {
            for i in 0..panel.len() {
                for j in (i + 1)..panel.len() {
                    let (verdict, t, df) = welch_test(&summaries[si][i][mi], &summaries[si][j][mi]);
                    comparisons.push(ComparisonRow {
                        scenario: scen_name.to_string(),
                        metric: metric.to_string(),
                        a: panel[i].0.clone(),
                        b: panel[j].0.clone(),
                        verdict,
                        t,
                        df,
                    });
                }
            }
        }
    }
    Ok(StatsReport {
        set: set.name.to_string(),
        seeds,
        smoke: smoke.is_some(),
        scenarios: set.scenarios.iter().map(|s| s.to_string()).collect(),
        balancers: panel.into_iter().map(|(label, _)| label).collect(),
        metrics: METRICS.iter().map(|m| m.to_string()).collect(),
        cells,
        comparisons,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_set_member_is_registered() {
        for set in sets() {
            assert!(!set.scenarios.is_empty(), "set `{}` is empty", set.name);
            for name in set.scenarios {
                assert!(
                    registry::by_name(name).is_some(),
                    "set `{}` names unregistered scenario `{name}`",
                    set.name
                );
            }
        }
        // Set names are unique, and the panel leads with the paper's policy.
        let names: Vec<&str> = sets().iter().map(|s| s.name).collect();
        let unique: std::collections::HashSet<&&str> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "duplicate set names");
        assert_eq!(balancer_panel()[0].0, "particle-plane");
        for (_, spec) in balancer_panel() {
            spec.validate().expect("panel balancers validate");
        }
    }

    #[test]
    fn churn_stats_report_is_canonical_and_layout_independent() {
        let smoke = Some((4, 10.0));
        let a = run_stats("churn", 2, smoke, None).expect("runs");
        let text = a.to_canonical_json();
        // Byte-identical across layouts and repeat runs.
        for layout in [Some((1, 1)), Some((4, 2)), Some((8, 4))] {
            let b = run_stats("churn", 2, smoke, layout).expect("runs");
            assert_eq!(b.to_canonical_json(), text, "layout {layout:?} drifted the report");
        }
        // Schema round-check.
        assert_eq!(StatsReport::check_text(&text).expect("checks"), "churn");
        assert!(StatsReport::check_text("{}").is_err());
        assert!(StatsReport::check_text("not json").is_err());
        // The shape: full cell matrix, full pairwise table, t-based CIs.
        assert_eq!(a.cells.len(), 2 * 3 * METRICS.len());
        assert_eq!(a.comparisons.len(), 2 * METRICS.len() * 3);
        // The acceptance row: particle-plane vs the diffusive baseline
        // under churn is present for every metric.
        let pp_vs_diff =
            a.comparisons.iter().filter(|c| c.a == "particle-plane" && c.b == "diffusion").count();
        assert_eq!(pp_vs_diff, 2 * METRICS.len());
        // n = 2 replicates ⇒ df 1 CIs use the t table (12.706), not 1.96:
        // every cell's ci95 is either 0 (zero variance) or > 2·stddev.
        for cell in &a.cells {
            let s = cell.summary;
            assert_eq!(s.n, 2);
            if s.stddev > 0.0 {
                assert!(
                    s.ci95() > 2.0 * s.stddev,
                    "{}/{}/{}",
                    cell.scenario,
                    cell.balancer,
                    cell.metric
                );
            }
        }
    }

    #[test]
    fn unknown_sets_and_zero_seeds_are_rejected() {
        assert!(run_stats("no-such-set", 2, Some((2, 5.0)), None)
            .unwrap_err()
            .contains("unknown stats set"));
        assert!(run_stats("churn", 0, Some((2, 5.0)), None).unwrap_err().contains("seed"));
    }
}
