//! # pp-scenario — declarative experiment scenarios
//!
//! The ROADMAP's "as many scenarios as you can imagine" demands that an
//! experiment setup be *data*, not wiring: one [`spec::ScenarioSpec`]
//! names a topology, link attributes, initial workload, task affinities,
//! balancing policy, arrival process (Poisson, bursty ON/OFF, diurnal
//! sine-wave, adversarial moving hotspot, recorded-trace replay), fault
//! plan, node speeds, engine knobs and duration. Specs validate, build
//! engines, run to [`pp_sim::engine::RunReport`]s, and round-trip through
//! JSON via the vendored `serde`/`serde_json`, so the same scenario is
//! runnable from the `pp-lab` CLI, unit tests, Criterion benches and CI.
//!
//! * [`spec`] — the schema and the engine construction;
//! * [`registry`] — named, validated scenarios (`pp-lab --list`);
//! * [`report::GoldenReport`] — deterministic byte-stable run reports,
//!   used by the CI scenario matrix and the committed `golden/` files;
//! * [`stats`] — the statistical comparison harness (`pp-lab stats`):
//!   scenario sets × balancer panel × seeds, reduced to Student-t CIs
//!   and pairwise Welch verdicts in a byte-stable [`stats::StatsReport`].
//!
//! ```
//! use pp_scenario::registry;
//!
//! let spec = registry::by_name("hotspot-torus").unwrap().smoke(5, 20.0);
//! let report = spec.run().unwrap();
//! assert_eq!(report.rounds, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod registry;
pub mod report;
pub mod spec;
pub mod stats;

/// One-stop imports.
pub mod prelude {
    pub use crate::registry::{by_name, names, registry};
    pub use crate::report::GoldenReport;
    pub use crate::spec::{
        ArrivalSpec, BalancerSpec, ChurnSpec, DiffusionAlpha, DurationSpec, EngineKnobs,
        FaultPlanSpec, LinkSpec, ResourceSpec, ScenarioSpec, SpeedSpec, TaskGraphSpec,
        WorkloadSpec,
    };
    pub use crate::stats::{run_stats, StatsReport};
}
