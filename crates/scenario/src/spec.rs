//! The declarative scenario schema: every knob of an experiment —
//! topology, link attributes, initial workload, task-graph/resource
//! affinities, balancing policy, dynamic arrivals, fault plan, node
//! speeds, engine configuration and duration — as plain data that can be
//! validated, serialized to JSON, diffed and replayed. See
//! `docs/adr/ADR-003-scenario-subsystem.md` for the design discussion.

use pp_core::arbiter::Arbiter;
use pp_core::balancer::ParticlePlaneBalancer;
use pp_core::baselines::{
    CwnBalancer, DiffusionBalancer, DimensionExchangeBalancer, GradientModelBalancer,
    RandomNeighborBalancer, SenderInitiatedBalancer,
};
use pp_core::params::PhysicsConfig;
use pp_sim::balancer::{LoadBalancer, NullBalancer};
use pp_sim::checkpoint::Checkpoint;
use pp_sim::churn::ChurnPlan;
use pp_sim::engine::{
    Engine, EngineBuilder, EngineConfig, FaultModel, RepartitionConfig, RunReport, ShardLayout,
};
use pp_sim::strategy::SimulationStrategy;
use pp_tasking::graph::TaskGraph;
use pp_tasking::resources::ResourceMatrix;
use pp_tasking::task::TaskId;
use pp_tasking::workload::{validate_trace, ArrivalProcess, TraceEvent, Workload};
use pp_topology::graph::{NodeId, Topology};
use pp_topology::links::{LinkAttrs, LinkMap};
use pp_topology::spec::TopologySpec;

/// Per-link attribute selection.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkSpec {
    /// Every link shares the same attributes.
    Uniform {
        /// Bandwidth (load units per time unit).
        bandwidth: f64,
        /// Physical length / base latency.
        distance: f64,
        /// Per-time-unit fault probability in `[0, 1)`.
        fault_prob: f64,
    },
    /// Links fast enough that transfers land within the tick — the
    /// synchronous assumption of the classical convergence analyses.
    Instant,
    /// Heterogeneous seeded random attributes.
    Random {
        /// Attribute seed.
        seed: u64,
        /// Bandwidth range `[min, max]`.
        bw: (f64, f64),
        /// Distance range `[min, max]`.
        d: (f64, f64),
        /// Fault probability upper bound.
        f_max: f64,
    },
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec::Uniform { bandwidth: 1.0, distance: 1.0, fault_prob: 0.0 }
    }
}

impl LinkSpec {
    /// Parameter-range check (no topology needed).
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            LinkSpec::Uniform { bandwidth, distance, fault_prob } => {
                LinkAttrs { bandwidth, distance, fault_prob }.validate()
            }
            LinkSpec::Instant => Ok(()),
            LinkSpec::Random { bw, d, f_max, .. } => {
                if !(bw.0 > 0.0 && bw.1 >= bw.0) {
                    return Err(format!("bad bandwidth range {bw:?}"));
                }
                if !(d.0 > 0.0 && d.1 >= d.0) {
                    return Err(format!("bad distance range {d:?}"));
                }
                if !(0.0..1.0).contains(&f_max) {
                    return Err(format!("fault bound {f_max} not in [0, 1)"));
                }
                Ok(())
            }
        }
    }

    /// Builds the link map for `topo`.
    pub fn build(&self, topo: &Topology) -> LinkMap {
        match *self {
            LinkSpec::Uniform { bandwidth, distance, fault_prob } => {
                LinkMap::uniform(topo, LinkAttrs { bandwidth, distance, fault_prob })
            }
            LinkSpec::Instant => LinkMap::uniform(
                topo,
                LinkAttrs { bandwidth: 1e9, distance: 1e-9, fault_prob: 0.0 },
            ),
            LinkSpec::Random { seed, bw, d, f_max } => LinkMap::random(topo, seed, bw, d, f_max),
        }
    }
}

/// Initial placement of load onto nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// No initial load (dynamic-arrival scenarios).
    Empty,
    /// All load on one node.
    Hotspot {
        /// The hot node.
        node: usize,
        /// Total load.
        total: f64,
        /// Task granularity.
        task_size: f64,
    },
    /// Several equal hotspots.
    MultiHotspot {
        /// The hot nodes.
        nodes: Vec<usize>,
        /// Total load split evenly among them.
        total: f64,
    },
    /// Independent uniform loads in `[0, max_per_node]`.
    UniformRandom {
        /// Per-node maximum.
        max_per_node: f64,
        /// Placement seed.
        seed: u64,
    },
    /// A fraction of nodes get `high`, the rest `low`.
    Bimodal {
        /// Fraction of high nodes in `[0, 1]`.
        fraction: f64,
        /// High load.
        high: f64,
        /// Low load.
        low: f64,
        /// Shuffle seed.
        seed: u64,
    },
    /// Node `i` gets `i · step`.
    Ramp {
        /// Per-node increment.
        step: f64,
    },
    /// Zipf-distributed task sizes dealt onto random nodes.
    Zipf {
        /// Number of tasks.
        count: usize,
        /// Largest task size.
        base: f64,
        /// Power-law skew.
        skew: f64,
        /// Placement seed.
        seed: u64,
    },
    /// Explicit per-node load quantities.
    Loads {
        /// `loads[i]` goes to node `i` (length must match the topology).
        loads: Vec<f64>,
        /// Task granularity.
        task_size: f64,
    },
    /// Explicit `(node, size)` task records (initial-placement replay).
    Trace {
        /// The records, in order.
        records: Vec<(usize, f64)>,
    },
}

impl WorkloadSpec {
    /// Parameter check against a node count.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        match self {
            WorkloadSpec::Empty => Ok(()),
            WorkloadSpec::Hotspot { node, total, task_size } => {
                if *node >= n {
                    return Err(format!("hot node {node} out of range (n={n})"));
                }
                if *total < 0.0 || *task_size <= 0.0 {
                    return Err("hotspot total must be ≥ 0 and task size > 0".into());
                }
                Ok(())
            }
            WorkloadSpec::MultiHotspot { nodes, total } => {
                if nodes.is_empty() {
                    return Err("multi-hotspot needs at least one node".into());
                }
                if let Some(&bad) = nodes.iter().find(|&&v| v >= n) {
                    return Err(format!("hot node {bad} out of range (n={n})"));
                }
                if *total < 0.0 {
                    return Err("total load must be ≥ 0".into());
                }
                Ok(())
            }
            WorkloadSpec::UniformRandom { max_per_node, .. } => {
                if *max_per_node <= 0.0 {
                    return Err("max_per_node must be > 0".into());
                }
                Ok(())
            }
            WorkloadSpec::Bimodal { fraction, high, low, .. } => {
                if !(0.0..=1.0).contains(fraction) {
                    return Err(format!("fraction {fraction} not in [0, 1]"));
                }
                if *high < 0.0 || *low < 0.0 {
                    return Err("bimodal loads must be ≥ 0".into());
                }
                Ok(())
            }
            WorkloadSpec::Ramp { step } => {
                if *step < 0.0 {
                    return Err("ramp step must be ≥ 0".into());
                }
                Ok(())
            }
            WorkloadSpec::Zipf { count, base, skew, .. } => {
                if *count == 0 || *base <= 0.0 || *skew < 0.0 {
                    return Err("zipf needs count > 0, base > 0, skew ≥ 0".into());
                }
                Ok(())
            }
            WorkloadSpec::Loads { loads, task_size } => {
                if loads.len() != n {
                    return Err(format!("loads length {} ≠ node count {n}", loads.len()));
                }
                if loads.iter().any(|&l| l < 0.0 || !l.is_finite()) {
                    return Err("loads must be finite and ≥ 0".into());
                }
                if *task_size <= 0.0 {
                    return Err("task size must be > 0".into());
                }
                Ok(())
            }
            WorkloadSpec::Trace { records } => {
                if let Some(&(bad, _)) = records.iter().find(|&&(v, _)| v >= n) {
                    return Err(format!("trace node {bad} out of range (n={n})"));
                }
                if records.iter().any(|&(_, s)| s <= 0.0 || !s.is_finite()) {
                    return Err("trace sizes must be finite and > 0".into());
                }
                Ok(())
            }
        }
    }

    /// Builds the workload for `n` nodes.
    pub fn build(&self, n: usize) -> Workload {
        match self {
            WorkloadSpec::Empty => Workload::from_loads(&vec![0.0; n], 1.0),
            WorkloadSpec::Hotspot { node, total, task_size } => {
                Workload::hotspot_sized(n, *node, *total, *task_size)
            }
            WorkloadSpec::MultiHotspot { nodes, total } => {
                Workload::multi_hotspot(n, nodes, *total)
            }
            WorkloadSpec::UniformRandom { max_per_node, seed } => {
                Workload::uniform_random(n, *max_per_node, *seed)
            }
            WorkloadSpec::Bimodal { fraction, high, low, seed } => {
                Workload::bimodal(n, *fraction, *high, *low, *seed)
            }
            WorkloadSpec::Ramp { step } => Workload::ramp(n, *step),
            WorkloadSpec::Zipf { count, base, skew, seed } => {
                Workload::zipf(n, *count, *base, *skew, *seed)
            }
            WorkloadSpec::Loads { loads, task_size } => Workload::from_loads(loads, *task_size),
            WorkloadSpec::Trace { records } => Workload::from_trace(n, records),
        }
    }

    /// Short label for tables (`hotspot`, `bimodal`, …).
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadSpec::Empty => "empty",
            WorkloadSpec::Hotspot { .. } => "hotspot",
            WorkloadSpec::MultiHotspot { .. } => "multi-hotspot",
            WorkloadSpec::UniformRandom { .. } => "uniform-random",
            WorkloadSpec::Bimodal { .. } => "bimodal",
            WorkloadSpec::Ramp { .. } => "ramp",
            WorkloadSpec::Zipf { .. } => "zipf",
            WorkloadSpec::Loads { .. } => "loads",
            WorkloadSpec::Trace { .. } => "trace",
        }
    }
}

/// Task dependency structure.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum TaskGraphSpec {
    /// No dependencies.
    #[default]
    None,
    /// The first `count` task ids (0..count) form a chain of the given
    /// weight — the pipeline-stage pattern.
    Chain {
        /// Number of chained tasks.
        count: u64,
        /// Dependency weight between consecutive tasks.
        weight: f64,
    },
}

impl TaskGraphSpec {
    /// Builds the task graph.
    pub fn build(&self) -> TaskGraph {
        match *self {
            TaskGraphSpec::None => TaskGraph::new(),
            TaskGraphSpec::Chain { count, weight } => {
                let ids: Vec<TaskId> = (0..count).map(TaskId).collect();
                TaskGraph::chain(&ids, weight)
            }
        }
    }

    /// Parameter check.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            TaskGraphSpec::None => Ok(()),
            TaskGraphSpec::Chain { weight, .. } => {
                if weight < 0.0 {
                    return Err("chain weight must be ≥ 0".into());
                }
                Ok(())
            }
        }
    }
}

/// Task-to-node resource affinities.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ResourceSpec {
    /// No resource pins.
    #[default]
    None,
    /// The first `count` task ids are pinned to `node` with the given
    /// affinity strength.
    PinFirst {
        /// Number of pinned tasks (ids 0..count).
        count: u64,
        /// The node they are pinned to.
        node: usize,
        /// Affinity strength added to `µ_s` away from the node.
        strength: f64,
    },
}

impl ResourceSpec {
    /// Builds the resource matrix.
    pub fn build(&self) -> ResourceMatrix {
        match *self {
            ResourceSpec::None => ResourceMatrix::none(),
            ResourceSpec::PinFirst { count, node, strength } => {
                let mut res = ResourceMatrix::none();
                for id in 0..count {
                    res.set(TaskId(id), NodeId(node as u32), strength);
                }
                res
            }
        }
    }

    /// Parameter check against a node count.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        match *self {
            ResourceSpec::None => Ok(()),
            ResourceSpec::PinFirst { node, strength, .. } => {
                if node >= n {
                    return Err(format!("pin node {node} out of range (n={n})"));
                }
                if strength < 0.0 {
                    return Err("pin strength must be ≥ 0".into());
                }
                Ok(())
            }
        }
    }
}

/// Balancing policy selection. Policies that need the topology (diffusion's
/// optimal α, dimension exchange's edge coloring) get it at build time.
#[derive(Debug, Clone, PartialEq)]
pub enum BalancerSpec {
    /// The paper's particle-plane balancer.
    ParticlePlane {
        /// Physical constants.
        config: PhysicsConfig,
        /// Link-choice policy (None = the default annealed stochastic).
        arbiter: Option<Arbiter>,
        /// Display-name override.
        name: Option<String>,
    },
    /// Cybenko diffusion.
    Diffusion {
        /// Diffusion parameter choice.
        alpha: DiffusionAlpha,
    },
    /// Cybenko dimension exchange over an edge coloring.
    DimensionExchange,
    /// Lin–Keller gradient model.
    GradientModel {
        /// Low-water mark.
        low: f64,
        /// High-water mark.
        high: f64,
    },
    /// Shu–Kale contracting within a neighborhood.
    Cwn {
        /// Imbalance threshold.
        threshold: f64,
    },
    /// Random-neighbor strawman.
    RandomNeighbor {
        /// Imbalance threshold.
        threshold: f64,
    },
    /// Eager et al. sender-initiated threshold policy.
    SenderInitiated {
        /// Send threshold.
        t_high: f64,
        /// Accept threshold.
        t_accept: f64,
        /// Probe count.
        probes: usize,
    },
    /// Do nothing (control runs).
    Null,
}

/// How the diffusion parameter is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DiffusionAlpha {
    /// Xu–Lau optimal `2/(λ₂+λ_max)`.
    Optimal,
    /// The always-stable `1/(deg_max+1)`.
    Safe,
    /// A fixed value.
    Fixed(f64),
}

impl Default for BalancerSpec {
    fn default() -> Self {
        BalancerSpec::ParticlePlane { config: PhysicsConfig::default(), arbiter: None, name: None }
    }
}

impl BalancerSpec {
    /// Parameter check.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            BalancerSpec::ParticlePlane { config, arbiter, .. } => {
                config.validate()?;
                if let Some(a) = arbiter {
                    a.validate()?;
                }
                Ok(())
            }
            BalancerSpec::Diffusion { alpha: DiffusionAlpha::Fixed(a) } => {
                if !(*a > 0.0 && *a <= 1.0) {
                    return Err(format!("diffusion α {a} not in (0, 1]"));
                }
                Ok(())
            }
            BalancerSpec::Diffusion { .. } | BalancerSpec::DimensionExchange => Ok(()),
            BalancerSpec::GradientModel { low, high } => {
                // Negated so NaN thresholds fail validation too.
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                if !(high > low) {
                    return Err(format!("gradient-model low {low} must be < high {high}"));
                }
                Ok(())
            }
            BalancerSpec::Cwn { threshold } | BalancerSpec::RandomNeighbor { threshold } => {
                if *threshold < 0.0 {
                    return Err("threshold must be ≥ 0".into());
                }
                Ok(())
            }
            BalancerSpec::SenderInitiated { t_high, t_accept, probes } => {
                // Negated so NaN thresholds fail validation too.
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                if !(t_high >= t_accept) {
                    return Err(format!("t_high {t_high} must be ≥ t_accept {t_accept}"));
                }
                if *probes == 0 {
                    return Err("need at least one probe".into());
                }
                Ok(())
            }
            BalancerSpec::Null => Ok(()),
        }
    }

    /// Builds the policy for `topo`.
    pub fn build(&self, topo: &Topology) -> Box<dyn LoadBalancer> {
        match self {
            BalancerSpec::ParticlePlane { config, arbiter, name } => {
                let mut b = ParticlePlaneBalancer::new(*config);
                if let Some(a) = arbiter {
                    b = b.with_arbiter(*a);
                }
                if let Some(n) = name {
                    b = b.named(n);
                }
                Box::new(b)
            }
            BalancerSpec::Diffusion { alpha } => Box::new(match alpha {
                DiffusionAlpha::Optimal => DiffusionBalancer::optimal(topo),
                DiffusionAlpha::Safe => DiffusionBalancer::safe(topo),
                DiffusionAlpha::Fixed(a) => DiffusionBalancer::new(*a),
            }),
            BalancerSpec::DimensionExchange => Box::new(DimensionExchangeBalancer::new(topo)),
            BalancerSpec::GradientModel { low, high } => {
                Box::new(GradientModelBalancer::new(*low, *high))
            }
            BalancerSpec::Cwn { threshold } => Box::new(CwnBalancer::new(*threshold)),
            BalancerSpec::RandomNeighbor { threshold } => {
                Box::new(RandomNeighborBalancer::new(*threshold))
            }
            BalancerSpec::SenderInitiated { t_high, t_accept, probes } => {
                Box::new(SenderInitiatedBalancer::new(*t_high, *t_accept, *probes))
            }
            BalancerSpec::Null => Box::new(NullBalancer),
        }
    }
}

/// Dynamic arrivals: either a stochastic process or a recorded trace
/// replayed record-for-record (or both are absent for quiescent runs).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ArrivalSpec {
    /// No arrivals.
    #[default]
    Quiescent,
    /// Homogeneous Poisson arrivals (uniform target node).
    Poisson {
        /// Arrivals per time unit.
        rate: f64,
        /// Minimum task size.
        size_min: f64,
        /// Maximum task size.
        size_max: f64,
    },
    /// ON/OFF bursts.
    Bursty {
        /// In-burst rate.
        rate: f64,
        /// Burst duration.
        burst_len: f64,
        /// Quiet duration.
        quiet_len: f64,
        /// Task size.
        size: f64,
    },
    /// Sine-wave diurnal load.
    Diurnal {
        /// Mean rate over a period.
        base_rate: f64,
        /// Relative swing in `[0, 1]`.
        amplitude: f64,
        /// Cycle length.
        period: f64,
        /// Minimum task size.
        size_min: f64,
        /// Maximum task size.
        size_max: f64,
    },
    /// Adversarial moving hotspot.
    MovingHotspot {
        /// Arrival rate.
        rate: f64,
        /// Task size.
        size: f64,
        /// Dwell time per node.
        dwell: f64,
        /// Node stride between dwells.
        stride: u32,
    },
    /// Replay a recorded `(time, node, size)` trace.
    Replay {
        /// The records.
        events: Vec<(f64, u32, f64)>,
    },
}

impl ArrivalSpec {
    /// Parameter check against a node count.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        match self {
            ArrivalSpec::Quiescent => Ok(()),
            ArrivalSpec::Poisson { rate, size_min, size_max } => {
                if !(*rate > 0.0 && *size_min > 0.0 && size_max >= size_min) {
                    return Err("poisson needs rate > 0 and 0 < size_min ≤ size_max".into());
                }
                Ok(())
            }
            ArrivalSpec::Bursty { rate, burst_len, quiet_len, size } => {
                if !(*rate > 0.0 && *burst_len > 0.0 && *quiet_len >= 0.0 && *size > 0.0) {
                    return Err("bursty needs rate, burst_len, size > 0 and quiet_len ≥ 0".into());
                }
                Ok(())
            }
            ArrivalSpec::Diurnal { base_rate, amplitude, period, size_min, size_max } => {
                if !(*base_rate > 0.0 && *period > 0.0) {
                    return Err("diurnal needs base_rate and period > 0".into());
                }
                if !(0.0..=1.0).contains(amplitude) {
                    return Err(format!("diurnal amplitude {amplitude} not in [0, 1]"));
                }
                if !(*size_min > 0.0 && size_max >= size_min) {
                    return Err("diurnal needs 0 < size_min ≤ size_max".into());
                }
                Ok(())
            }
            ArrivalSpec::MovingHotspot { rate, size, dwell, .. } => {
                if !(*rate > 0.0 && *size > 0.0 && *dwell > 0.0) {
                    return Err("moving hotspot needs rate, size, dwell > 0".into());
                }
                Ok(())
            }
            ArrivalSpec::Replay { events } => {
                let trace: Vec<TraceEvent> = events
                    .iter()
                    .map(|&(time, node, size)| TraceEvent { time, node, size })
                    .collect();
                validate_trace(&trace, n)
            }
        }
    }

    /// The `(process, trace)` pair the engine builder consumes: replay
    /// scenarios yield a trace and a quiescent process, everything else a
    /// process and an empty trace.
    pub fn build(&self) -> (ArrivalProcess, Vec<TraceEvent>) {
        match self {
            ArrivalSpec::Quiescent => (ArrivalProcess::Quiescent, Vec::new()),
            ArrivalSpec::Poisson { rate, size_min, size_max } => (
                ArrivalProcess::Poisson { rate: *rate, size_min: *size_min, size_max: *size_max },
                Vec::new(),
            ),
            ArrivalSpec::Bursty { rate, burst_len, quiet_len, size } => (
                ArrivalProcess::Bursty {
                    rate: *rate,
                    burst_len: *burst_len,
                    quiet_len: *quiet_len,
                    size: *size,
                },
                Vec::new(),
            ),
            ArrivalSpec::Diurnal { base_rate, amplitude, period, size_min, size_max } => (
                ArrivalProcess::Diurnal {
                    base_rate: *base_rate,
                    amplitude: *amplitude,
                    period: *period,
                    size_min: *size_min,
                    size_max: *size_max,
                },
                Vec::new(),
            ),
            ArrivalSpec::MovingHotspot { rate, size, dwell, stride } => (
                ArrivalProcess::MovingHotspot {
                    rate: *rate,
                    size: *size,
                    dwell: *dwell,
                    stride: *stride,
                },
                Vec::new(),
            ),
            ArrivalSpec::Replay { events } => (
                ArrivalProcess::Quiescent,
                events.iter().map(|&(time, node, size)| TraceEvent { time, node, size }).collect(),
            ),
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalSpec::Quiescent => "quiescent",
            ArrivalSpec::Poisson { .. } => "poisson",
            ArrivalSpec::Bursty { .. } => "bursty",
            ArrivalSpec::Diurnal { .. } => "diurnal",
            ArrivalSpec::MovingHotspot { .. } => "moving-hotspot",
            ArrivalSpec::Replay { .. } => "trace-replay",
        }
    }
}

/// Per-node speed multipliers on the work-consumption rate.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum SpeedSpec {
    /// Homogeneous unit speed.
    #[default]
    Uniform,
    /// A seeded-random fraction of nodes run fast, the rest slow.
    TwoTier {
        /// Fraction of fast nodes in `[0, 1]`.
        fast_fraction: f64,
        /// Fast-node multiplier.
        fast: f64,
        /// Slow-node multiplier.
        slow: f64,
        /// Assignment seed.
        seed: u64,
    },
    /// Speeds ramp linearly from `min` (node 0) to `max` (node n−1).
    LinearRamp {
        /// Slowest multiplier.
        min: f64,
        /// Fastest multiplier.
        max: f64,
    },
}

impl SpeedSpec {
    /// Parameter check.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            SpeedSpec::Uniform => Ok(()),
            SpeedSpec::TwoTier { fast_fraction, fast, slow, .. } => {
                if !(0.0..=1.0).contains(&fast_fraction) {
                    return Err(format!("fast fraction {fast_fraction} not in [0, 1]"));
                }
                if !(fast > 0.0 && slow > 0.0) {
                    return Err("speed multipliers must be > 0".into());
                }
                Ok(())
            }
            SpeedSpec::LinearRamp { min, max } => {
                if !(min > 0.0 && max >= min) {
                    return Err(format!("bad speed ramp [{min}, {max}]"));
                }
                Ok(())
            }
        }
    }

    /// Builds the speed vector for `n` nodes (empty = homogeneous, the
    /// engine's fast path).
    pub fn build(&self, n: usize) -> Vec<f64> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        match *self {
            SpeedSpec::Uniform => Vec::new(),
            SpeedSpec::TwoTier { fast_fraction, fast, slow, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut idx: Vec<usize> = (0..n).collect();
                // Fisher–Yates, matching the bimodal workload shuffle.
                for i in (1..n).rev() {
                    let j = rng.gen_range(0..=i);
                    idx.swap(i, j);
                }
                let cut = (n as f64 * fast_fraction).round() as usize;
                let mut speeds = vec![slow; n];
                for &i in idx.iter().take(cut) {
                    speeds[i] = fast;
                }
                speeds
            }
            SpeedSpec::LinearRamp { min, max } => {
                if n == 1 {
                    return vec![min];
                }
                (0..n).map(|i| min + (max - min) * i as f64 / (n - 1) as f64).collect()
            }
        }
    }
}

/// The dynamic link up/down plan.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlanSpec {
    /// Markov up/down process applied to every link each round.
    pub model: Option<(f64, f64)>,
}

impl FaultPlanSpec {
    /// Parameter check.
    pub fn validate(&self) -> Result<(), String> {
        if let Some((p_down, p_up)) = self.model {
            if !(0.0..=1.0).contains(&p_down) || !(0.0..=1.0).contains(&p_up) {
                return Err(format!("fault probabilities ({p_down}, {p_up}) not in [0, 1]"));
            }
        }
        Ok(())
    }

    /// The engine's fault model.
    pub fn build(&self) -> Option<FaultModel> {
        self.model.map(|(p_down, p_up)| FaultModel { p_down, p_up })
    }
}

/// The node join/leave plan — membership churn, as opposed to the link
/// up/down process of [`FaultPlanSpec`]. The schedule is precomputed from
/// its own seed at engine-build time (see `pp_sim::churn`), so a churned
/// scenario stays byte-identical across `(shards, threads)` layouts and
/// checkpoint/resume splits exactly like an unchurned one.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ChurnSpec {
    /// Static membership (the default; omitted from JSON).
    #[default]
    None,
    /// Two-state Markov churn: each round every up node leaves with
    /// probability `leave` and every down node rejoins with probability
    /// `join`, over the scenario's full round budget.
    Markov {
        /// Per-round leave probability in `[0, 1]`.
        leave: f64,
        /// Per-round rejoin probability in `[0, 1]`.
        join: f64,
        /// Schedule seed (independent of the master seed).
        seed: u64,
    },
}

impl ChurnSpec {
    /// Parameter check.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            ChurnSpec::None => Ok(()),
            ChurnSpec::Markov { leave, join, .. } => {
                for (name, p) in [("leave", leave), ("join", join)] {
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("churn {name} probability {p} not in [0, 1]"));
                    }
                }
                Ok(())
            }
        }
    }

    /// Builds the churn plan for an `n`-node system over `rounds` rounds.
    pub fn build(&self, n: usize, rounds: u64) -> ChurnPlan {
        match *self {
            ChurnSpec::None => ChurnPlan::default(),
            ChurnSpec::Markov { leave, join, seed } => {
                ChurnPlan::markov(n, rounds, leave, join, seed)
            }
        }
    }
}

/// Engine knobs lifted straight into [`EngineConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineKnobs {
    /// Interval between balance rounds.
    pub tick: f64,
    /// Link-weight constant `c`.
    pub weight_c: f64,
    /// Work consumed per node per time unit.
    pub consume_rate: f64,
    /// Transfer attempts per hop.
    pub max_attempts: u32,
    /// Compatibility alias: with `shards = 0`, selects one shard per
    /// available core (machine-dependent — prefer `shards`).
    pub parallel_decide: bool,
    /// Shard count `K` for the sharded tick pipeline (0 = auto; 1 = the
    /// sequential reference; clamped to the node count at build).
    pub shards: usize,
    /// Sweep worker threads (0 = auto: one per core, capped at `K`).
    pub threads: usize,
    /// How rounds advance: `Tick` sweeps every round; `Event` fast-forwards
    /// quiescent rounds in closed form (byte-identical reports either way).
    pub strategy: SimulationStrategy,
    /// Adaptive online repartitioning of the shard decomposition (`None` =
    /// the build-time uniform layout stays fixed). Repartitioning never
    /// reaches the report bytes — it only changes per-round sweep cost.
    pub repartition: Option<RepartitionConfig>,
}

impl Default for EngineKnobs {
    fn default() -> Self {
        let d = EngineConfig::default();
        EngineKnobs {
            tick: d.tick,
            weight_c: d.weight_c,
            consume_rate: d.consume_rate,
            max_attempts: d.max_attempts,
            parallel_decide: d.parallel_decide,
            shards: d.shards,
            threads: d.threads,
            strategy: d.strategy,
            repartition: d.repartition,
        }
    }
}

impl EngineKnobs {
    /// Parameter check.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.tick > 0.0 && self.tick.is_finite()) {
            return Err(format!("tick {} must be finite and > 0", self.tick));
        }
        // Negated so a NaN weight constant fails validation too.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(self.weight_c > 0.0) {
            return Err("weight_c must be > 0".into());
        }
        if self.consume_rate < 0.0 {
            return Err("consume_rate must be ≥ 0".into());
        }
        if self.max_attempts == 0 {
            return Err("need at least one transfer attempt".into());
        }
        if let Some(rp) = self.repartition {
            if rp.every == 0 {
                return Err("repartition interval must be > 0 rounds".into());
            }
            // Negated so a NaN threshold fails validation; +∞ is legal (the
            // measure-but-never-fire configuration the differential gate
            // uses).
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(rp.skew_threshold >= 1.0) {
                return Err(format!(
                    "repartition skew_threshold {} must be ≥ 1 (max/mean skew)",
                    rp.skew_threshold
                ));
            }
        }
        Ok(())
    }
}

/// Periodic checkpointing during [`ScenarioSpec::run`]: every `every`
/// balance rounds the engine state is captured and written (overwriting) to
/// `path` as versioned checkpoint JSON — the standard enabler for
/// long-horizon runs that must survive interruption. Checkpoint capture is
/// read-only, so a checkpointed run's report is byte-identical to the same
/// run without the knob.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointSpec {
    /// Balance rounds between checkpoints (> 0).
    pub every: u64,
    /// File the latest checkpoint is written to (parent directories are
    /// created as needed).
    pub path: String,
}

impl CheckpointSpec {
    /// Parameter check.
    pub fn validate(&self) -> Result<(), String> {
        if self.every == 0 {
            return Err("checkpoint interval must be > 0 rounds".into());
        }
        if self.path.is_empty() {
            return Err("checkpoint path must not be empty".into());
        }
        Ok(())
    }
}

/// How long the scenario runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurationSpec {
    /// Balance rounds to execute.
    pub rounds: u64,
    /// Extra drain time after the last round (lets in-flight loads land).
    pub drain: f64,
}

impl Default for DurationSpec {
    fn default() -> Self {
        DurationSpec { rounds: 200, drain: 100.0 }
    }
}

/// Writes a checkpoint to `path` (creating parent directories) in the
/// canonical byte-stable JSON rendering. Used by [`ScenarioSpec::run`] for
/// the `checkpoint` knob and by `pp-lab --checkpoint-every`.
///
/// The write is atomic-by-rename: the bytes go to a `.tmp` sibling first
/// and replace `path` only once fully written, so a crash or full disk
/// mid-write can never destroy the previous good checkpoint — losing the
/// last restart point to an interruption is the exact failure checkpoints
/// exist to survive.
pub fn write_checkpoint(cp: &Checkpoint, path: &str) -> Result<(), String> {
    let path = std::path::Path::new(path);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    // Write + fsync the sibling before the rename: without the sync a
    // power loss can journal the rename ahead of the data blocks and leave
    // a zero-length file at `path` (process crashes and full disks are
    // covered by the rename alone).
    {
        use std::io::Write;
        let mut f =
            std::fs::File::create(&tmp).map_err(|e| format!("cannot create {tmp:?}: {e}"))?;
        f.write_all(cp.to_json().as_bytes()).map_err(|e| format!("cannot write {tmp:?}: {e}"))?;
        f.sync_all().map_err(|e| format!("cannot sync {tmp:?}: {e}"))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot move {tmp:?} over {path:?}: {e}"))
}

/// A complete, self-contained experiment description.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Registry key (kebab-case) and display name.
    pub name: String,
    /// One-line description of what the scenario exercises.
    pub description: String,
    /// Network topology.
    pub topology: TopologySpec,
    /// Link attributes.
    pub links: LinkSpec,
    /// Initial load placement.
    pub workload: WorkloadSpec,
    /// Task dependency structure.
    pub task_graph: TaskGraphSpec,
    /// Resource pins.
    pub resources: ResourceSpec,
    /// Balancing policy.
    pub balancer: BalancerSpec,
    /// Dynamic arrivals.
    pub arrival: ArrivalSpec,
    /// Link up/down plan.
    pub faults: FaultPlanSpec,
    /// Node join/leave plan.
    pub churn: ChurnSpec,
    /// Node speed multipliers.
    pub speeds: SpeedSpec,
    /// Engine configuration.
    pub engine: EngineKnobs,
    /// Run length.
    pub duration: DurationSpec,
    /// Periodic checkpointing during the run (`None` = off).
    pub checkpoint: Option<CheckpointSpec>,
    /// Master seed for all randomness.
    pub seed: u64,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            name: "unnamed".to_string(),
            description: String::new(),
            topology: TopologySpec::Torus { dims: vec![8, 8] },
            links: LinkSpec::default(),
            workload: WorkloadSpec::Empty,
            task_graph: TaskGraphSpec::None,
            resources: ResourceSpec::None,
            balancer: BalancerSpec::default(),
            arrival: ArrivalSpec::Quiescent,
            faults: FaultPlanSpec::default(),
            churn: ChurnSpec::None,
            speeds: SpeedSpec::Uniform,
            engine: EngineKnobs::default(),
            duration: DurationSpec::default(),
            checkpoint: None,
            seed: 42,
        }
    }
}

impl ScenarioSpec {
    /// Validates every component and their cross-references.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("scenario needs a name".into());
        }
        let wrap = |part: &str, e: String| format!("scenario `{}`: {part}: {e}", self.name);
        self.topology.validate().map_err(|e| wrap("topology", e))?;
        let n = self.topology.node_count();
        self.links.validate().map_err(|e| wrap("links", e))?;
        self.workload.validate(n).map_err(|e| wrap("workload", e))?;
        self.task_graph.validate().map_err(|e| wrap("task_graph", e))?;
        self.resources.validate(n).map_err(|e| wrap("resources", e))?;
        self.balancer.validate().map_err(|e| wrap("balancer", e))?;
        self.arrival.validate(n).map_err(|e| wrap("arrival", e))?;
        self.faults.validate().map_err(|e| wrap("faults", e))?;
        self.churn.validate().map_err(|e| wrap("churn", e))?;
        self.speeds.validate().map_err(|e| wrap("speeds", e))?;
        self.engine.validate().map_err(|e| wrap("engine", e))?;
        if let Some(ck) = &self.checkpoint {
            ck.validate().map_err(|e| wrap("checkpoint", e))?;
        }
        Ok(())
    }

    /// Builds a ready-to-run engine from the spec (validating first).
    pub fn build_engine(&self) -> Result<Engine, String> {
        self.validate()?;
        let topo = self.topology.build();
        let n = topo.node_count();
        let links = self.links.build(&topo);
        let workload = self.workload.build(n);
        let (arrival, trace) = self.arrival.build();
        let config = EngineConfig {
            tick: self.engine.tick,
            weight_c: self.engine.weight_c,
            consume_rate: self.engine.consume_rate,
            max_attempts: self.engine.max_attempts,
            parallel_decide: self.engine.parallel_decide,
            shards: self.engine.shards,
            threads: self.engine.threads,
            fault_model: self.faults.build(),
            arrival,
            strategy: self.engine.strategy,
            repartition: self.engine.repartition,
        };
        let balancer = self.balancer.build(&topo);
        Ok(EngineBuilder::new(topo)
            .links(links)
            .workload(workload)
            .task_graph(self.task_graph.build())
            .resources(self.resources.build())
            .balancer_boxed(balancer)
            .config(config)
            .node_speeds(self.speeds.build(n))
            .arrival_trace(trace)
            .churn(self.churn.build(n, self.duration.rounds))
            .seed(self.seed)
            .build())
    }

    /// Runs the scenario to completion: `duration.rounds` balance rounds
    /// followed by a `duration.drain` network drain. With the `checkpoint`
    /// knob set, a checkpoint is written every `every` rounds (and once
    /// more after the final round) — capture is read-only, so the returned
    /// report is identical to an uncheckpointed run.
    pub fn run(&self) -> Result<RunReport, String> {
        let mut engine = self.build_engine()?;
        self.finish_engine(&mut engine)?;
        Ok(engine.report())
    }

    /// Resumes the scenario from a [`Checkpoint`] taken by a previous run
    /// of the *same* spec: builds a fresh engine, restores the snapshot,
    /// runs the remaining `duration.rounds − checkpoint.round` rounds and
    /// the drain. The result is byte-identical to the uninterrupted run.
    /// With the `checkpoint` knob set, the resumed run keeps writing
    /// checkpoints, so a twice-interrupted run resumes twice.
    pub fn run_from_checkpoint(&self, cp: &Checkpoint) -> Result<RunReport, String> {
        let mut engine = self.build_engine()?;
        engine.restore(cp)?;
        self.finish_engine(&mut engine)?;
        Ok(engine.report())
    }

    /// Drives an already-built (possibly just-restored) engine from its
    /// current round to the spec's full duration and drains it, honoring
    /// the `checkpoint` knob. The single implementation of the
    /// interval-write loop — `run`, `run_from_checkpoint` and `pp-lab`'s
    /// checkpoint/resume paths all funnel through here, so the CLI and
    /// library can never checkpoint differently.
    pub fn finish_engine(&self, engine: &mut Engine) -> Result<(), String> {
        match &self.checkpoint {
            None => {
                engine.run_rounds(self.duration.rounds.saturating_sub(engine.round()));
            }
            Some(ck) => {
                while engine.round() < self.duration.rounds {
                    let chunk = ck.every.min(self.duration.rounds - engine.round());
                    engine.run_rounds(chunk);
                    write_checkpoint(&engine.checkpoint(), &ck.path)?;
                }
            }
        }
        engine.drain(self.duration.drain);
        Ok(())
    }

    /// Runs the scenario split in two: `at` rounds, then checkpoint →
    /// canonical JSON → parse → restore into a **fresh** engine, then the
    /// remaining rounds and the drain. Exercises the full serialized
    /// checkpoint path; the resume-equivalence tests and `pp-lab
    /// --verify-resume` compare the result byte-for-byte against
    /// [`ScenarioSpec::run`]. Also returns the resolved shard layout (for
    /// golden-report metadata).
    pub fn run_split(&self, at: u64) -> Result<(RunReport, ShardLayout), String> {
        let at = at.min(self.duration.rounds);
        let mut first = self.build_engine()?;
        first.run_rounds(at);
        let text = first.checkpoint().to_json();
        drop(first);
        let cp = Checkpoint::from_json(&text)?;
        let mut resumed = self.build_engine()?;
        resumed.restore(&cp)?;
        resumed.run_rounds(self.duration.rounds - at).drain(self.duration.drain);
        let layout = resumed.shard_layout();
        Ok((resumed.report(), layout))
    }

    /// A copy scaled down for CI smoke runs: at most `rounds` rounds and
    /// `drain` drain time, everything else untouched. Event-strategy specs
    /// keep their full round budget — skipped rounds are O(1), so the point
    /// of such scenarios (horizons Tick can't sweep) survives smoke mode.
    pub fn smoke(&self, rounds: u64, drain: f64) -> ScenarioSpec {
        let mut s = self.clone();
        if s.engine.strategy == SimulationStrategy::Tick {
            s.duration.rounds = s.duration.rounds.min(rounds);
        }
        s.duration.drain = s.duration.drain.min(drain);
        s
    }

    /// Reads a checkpoint file written by a run of this spec (see
    /// [`CheckpointSpec`] and `pp-lab --resume-from`).
    pub fn read_checkpoint(path: &str) -> Result<Checkpoint, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Checkpoint::from_json(&text)
    }

    /// One-line summary for `pp-lab --list`.
    pub fn summary(&self) -> String {
        format!(
            "{:28} {:14} workload={:14} arrival={:14} n={:5} rounds={}",
            self.name,
            self.topology.label(),
            self.workload.label(),
            self.arrival.label(),
            self.topology.node_count(),
            self.duration.rounds,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    /// A small full-event-mix spec (faults + diurnal arrivals + speeds) for
    /// the checkpoint tests.
    fn busy_spec() -> ScenarioSpec {
        let mut s = registry::by_name("diurnal-wave").expect("registered").smoke(8, 20.0);
        s.faults = FaultPlanSpec { model: Some((0.05, 0.5)) };
        s.speeds = SpeedSpec::TwoTier { fast_fraction: 0.25, fast: 2.0, slow: 0.75, seed: 4 };
        s
    }

    #[test]
    fn split_runs_match_straight_runs() {
        let spec = busy_spec();
        let straight = spec.run().expect("straight");
        for at in [1, 4, 8] {
            let (split, _) = spec.run_split(at).expect("split");
            assert_eq!(split, straight, "split at {at}");
        }
    }

    #[test]
    fn split_runs_match_across_layouts() {
        let mut spec = busy_spec();
        let straight = spec.run().expect("straight");
        for (shards, threads) in [(3, 1), (5, 2)] {
            spec.engine.shards = shards;
            spec.engine.threads = threads;
            let (split, layout) = spec.run_split(4).expect("split");
            assert_eq!(split, straight, "K={shards} threads={threads}");
            assert_eq!(layout.shards, shards);
        }
    }

    #[test]
    fn checkpoint_knob_writes_resumable_files_without_changing_the_run() {
        let path = std::env::temp_dir()
            .join(format!("pp-spec-knob-{}.ckpt.json", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let mut spec = busy_spec();
        spec.checkpoint = Some(CheckpointSpec { every: 3, path: path.clone() });
        let checkpointed = spec.run().expect("checkpointed run");
        spec.checkpoint = None;
        let plain = spec.run().expect("plain run");
        assert_eq!(checkpointed, plain, "checkpoint capture must be read-only");
        // The last written checkpoint sits at the final round; resuming
        // from it re-runs only the drain and lands on the same report.
        let cp = ScenarioSpec::read_checkpoint(&path).expect("file parses");
        assert_eq!(cp.round, spec.duration.rounds);
        let resumed = spec.run_from_checkpoint(&cp).expect("resume");
        assert_eq!(resumed, plain);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_from_mid_run_checkpoint_file() {
        let path = std::env::temp_dir()
            .join(format!("pp-spec-mid-{}.ckpt.json", std::process::id()))
            .to_string_lossy()
            .into_owned();
        // Write checkpoints every 3 rounds but only run 6 of the 8: emulate
        // an interrupted run by truncating the duration for the first pass.
        let mut first = busy_spec();
        first.duration.rounds = 6;
        first.checkpoint = Some(CheckpointSpec { every: 3, path: path.clone() });
        let _ = first.run().expect("interrupted run");
        let cp = ScenarioSpec::read_checkpoint(&path).expect("file parses");
        assert_eq!(cp.round, 6);
        // Resume under the full spec: must equal the uninterrupted run.
        let full = busy_spec();
        let resumed = full.run_from_checkpoint(&cp).expect("resume");
        assert_eq!(resumed, full.run().expect("straight"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn strategy_knob_round_trips_and_stays_canonical() {
        // Tick is the default and must be *omitted*: every spec written
        // before the knob existed stays canonical byte-for-byte.
        let spec = busy_spec();
        assert_eq!(spec.engine.strategy, SimulationStrategy::Tick);
        let text = spec.to_json_pretty();
        assert!(!text.contains("strategy"), "default strategy must be omitted");
        assert_eq!(ScenarioSpec::from_json(&text).expect("parses"), spec);

        let mut event = spec;
        event.engine.strategy = SimulationStrategy::Event;
        let text = event.to_json_pretty();
        assert!(text.contains("\"strategy\": \"event\""), "got: {text}");
        let back = ScenarioSpec::from_json(&text).expect("parses");
        assert_eq!(back, event);
        assert_eq!(back.to_json_pretty(), text, "re-serialization is stable");

        let bad = text.replace("\"event\"", "\"warp\"");
        let err = ScenarioSpec::from_json(&bad).expect_err("unknown strategy rejected");
        assert!(err.contains("unknown simulation strategy"), "got: {err}");
    }

    #[test]
    fn churn_knob_round_trips_and_stays_canonical() {
        // The static-membership default must be *omitted*: every spec
        // written before the churn knob existed stays canonical.
        let spec = busy_spec();
        assert_eq!(spec.churn, ChurnSpec::None);
        let text = spec.to_json_pretty();
        assert!(!text.contains("churn"), "default churn must be omitted");
        assert_eq!(ScenarioSpec::from_json(&text).expect("parses"), spec);

        let mut churned = spec;
        churned.churn = ChurnSpec::Markov { leave: 0.02, join: 0.3, seed: 7 };
        let text = churned.to_json_pretty();
        assert!(text.contains("\"churn\""), "got: {text}");
        let back = ScenarioSpec::from_json(&text).expect("parses");
        assert_eq!(back, churned);
        assert_eq!(back.to_json_pretty(), text, "re-serialization is stable");

        // Out-of-range probabilities fail validation with a churn-scoped
        // message, and the unknown-kind path rejects.
        churned.churn = ChurnSpec::Markov { leave: 1.5, join: 0.3, seed: 7 };
        assert!(churned.validate().unwrap_err().contains("churn"));
        let bad = text.replace("\"markov\"", "\"flapping\"");
        assert!(ScenarioSpec::from_json(&bad).unwrap_err().contains("unknown churn kind"));
    }

    #[test]
    fn event_strategy_spec_runs_byte_identical_to_tick() {
        let tick = busy_spec();
        let mut event = tick.clone();
        event.engine.strategy = SimulationStrategy::Event;
        assert_eq!(event.run().expect("event"), tick.run().expect("tick"));
    }

    #[test]
    fn smoke_caps_rounds_only_for_tick_specs() {
        let mut spec = busy_spec();
        spec.duration.rounds = 5000;
        spec.duration.drain = 100.0;
        let tick = spec.smoke(3, 10.0);
        assert_eq!((tick.duration.rounds, tick.duration.drain), (3, 10.0));
        spec.engine.strategy = SimulationStrategy::Event;
        let event = spec.smoke(3, 10.0);
        assert_eq!(event.duration.rounds, 5000, "event horizons survive smoke mode");
        assert_eq!(event.duration.drain, 10.0, "drain is still capped");
    }

    #[test]
    fn checkpoint_spec_validation() {
        let mut spec = busy_spec();
        spec.checkpoint = Some(CheckpointSpec { every: 0, path: "x.json".into() });
        assert!(spec.validate().unwrap_err().contains("interval"));
        spec.checkpoint = Some(CheckpointSpec { every: 5, path: String::new() });
        assert!(spec.validate().unwrap_err().contains("path"));
        spec.checkpoint = Some(CheckpointSpec { every: 5, path: "x.json".into() });
        assert!(spec.validate().is_ok());
    }
}
