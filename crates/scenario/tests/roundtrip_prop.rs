//! Property-based `ScenarioSpec -> JSON -> ScenarioSpec` round-trips over
//! randomized specs (the registry test covers the 16 curated entries; this
//! covers the combinatorial space of variants and parameter values).

use pp_scenario::spec::{
    ArrivalSpec, BalancerSpec, CheckpointSpec, ChurnSpec, DiffusionAlpha, DurationSpec,
    EngineKnobs, FaultPlanSpec, LinkSpec, ResourceSpec, ScenarioSpec, SpeedSpec, TaskGraphSpec,
    WorkloadSpec,
};
use pp_topology::spec::TopologySpec;
use proptest::prelude::*;

fn topology_variant(idx: u8, n: usize) -> TopologySpec {
    match idx % 6 {
        0 => TopologySpec::Mesh { dims: vec![n.max(1), 3] },
        1 => TopologySpec::Torus { dims: vec![n.max(3)] },
        2 => TopologySpec::Hypercube { dim: (n % 6) + 1 },
        3 => TopologySpec::Ring { n: n.max(3) },
        4 => TopologySpec::Tree { arity: 2, depth: n % 4 },
        _ => TopologySpec::Random { n: n.max(2), p: 0.1, seed: n as u64 },
    }
}

fn workload_variant(idx: u8, x: f64, seed: u64) -> WorkloadSpec {
    match idx % 6 {
        0 => WorkloadSpec::Empty,
        1 => WorkloadSpec::Hotspot { node: 0, total: x, task_size: 1.0 },
        2 => WorkloadSpec::UniformRandom { max_per_node: x.max(0.1), seed },
        3 => WorkloadSpec::Bimodal { fraction: 0.5, high: x, low: 0.0, seed },
        4 => WorkloadSpec::Zipf { count: 10, base: x.max(0.1), skew: 1.0, seed },
        _ => WorkloadSpec::Trace { records: vec![(0, x.max(0.1)), (0, 1.0)] },
    }
}

fn arrival_variant(idx: u8, x: f64) -> ArrivalSpec {
    let x = x.max(0.1);
    match idx % 6 {
        0 => ArrivalSpec::Quiescent,
        1 => ArrivalSpec::Poisson { rate: x, size_min: 1.0, size_max: 2.0 },
        2 => ArrivalSpec::Bursty { rate: x, burst_len: 1.0, quiet_len: x, size: 1.0 },
        3 => ArrivalSpec::Diurnal {
            base_rate: x,
            amplitude: 0.5,
            period: 10.0,
            size_min: 0.5,
            size_max: 1.5,
        },
        4 => ArrivalSpec::MovingHotspot { rate: x, size: 1.0, dwell: x, stride: 3 },
        _ => ArrivalSpec::Replay { events: vec![(0.5, 0, x), (1.5, 0, 1.0)] },
    }
}

fn balancer_variant(idx: u8, x: f64) -> BalancerSpec {
    let x = x.max(0.1);
    match idx % 6 {
        0 => BalancerSpec::default(),
        1 => BalancerSpec::Diffusion { alpha: DiffusionAlpha::Fixed((x / 100.0).clamp(0.01, 1.0)) },
        2 => BalancerSpec::DimensionExchange,
        3 => BalancerSpec::GradientModel { low: x, high: x + 1.0 },
        4 => BalancerSpec::SenderInitiated { t_high: x + 1.0, t_accept: x, probes: 2 },
        _ => BalancerSpec::Null,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn randomized_specs_round_trip(
        t_idx in 0u8..6,
        w_idx in 0u8..6,
        a_idx in 0u8..6,
        b_idx in 0u8..6,
        n in 2usize..9,
        x in 0.0f64..100.0,
        seed in 0u64..10_000,
        rounds in 1u64..5000,
        fault in 0u8..2,
        speed in 0u8..3,
    ) {
        let spec = ScenarioSpec {
            name: format!("prop-{t_idx}-{w_idx}-{a_idx}-{b_idx}"),
            description: "randomized round-trip case".to_string(),
            topology: topology_variant(t_idx, n),
            links: if seed % 2 == 0 {
                LinkSpec::Instant
            } else {
                LinkSpec::Random { seed, bw: (0.5, 2.0), d: (0.5, 2.0), f_max: 0.1 }
            },
            workload: workload_variant(w_idx, x, seed),
            task_graph: if seed % 3 == 0 {
                TaskGraphSpec::Chain { count: n as u64, weight: x }
            } else {
                TaskGraphSpec::None
            },
            resources: if seed % 5 == 0 {
                ResourceSpec::PinFirst { count: n as u64, node: 0, strength: x }
            } else {
                ResourceSpec::None
            },
            balancer: balancer_variant(b_idx, x),
            arrival: arrival_variant(a_idx, x),
            faults: FaultPlanSpec { model: (fault == 1).then_some((0.1, 0.5)) },
            churn: if seed % 3 == 1 {
                ChurnSpec::Markov { leave: 0.05, join: 0.5, seed }
            } else {
                ChurnSpec::None
            },
            speeds: match speed {
                0 => SpeedSpec::Uniform,
                1 => SpeedSpec::TwoTier { fast_fraction: 0.5, fast: 2.0, slow: 0.5, seed },
                _ => SpeedSpec::LinearRamp { min: 0.5, max: 2.0 },
            },
            engine: EngineKnobs {
                consume_rate: x / 100.0,
                shards: (seed % 9) as usize,
                threads: (seed % 4) as usize,
                ..EngineKnobs::default()
            },
            duration: DurationSpec { rounds, drain: x },
            checkpoint: (seed % 4 == 0).then(|| CheckpointSpec {
                every: rounds.max(1),
                path: format!("target/prop-{seed}.ckpt.json"),
            }),
            seed,
        };
        let json = spec.to_json_pretty();
        let back = ScenarioSpec::from_json(&json).expect("round-trip parse");
        prop_assert_eq!(&back, &spec);
        // Canonical: a second lowering is byte-identical.
        prop_assert_eq!(back.to_json_pretty(), json);
    }
}
