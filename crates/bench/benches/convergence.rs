//! Criterion timing for the E5/E7 machinery: how long a fixed-round
//! balancing run takes per policy on a 16×16 torus hotspot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_bench::run_once;
use pp_core::balancer::ParticlePlaneBalancer;
use pp_core::baselines::{DiffusionBalancer, DimensionExchangeBalancer, GradientModelBalancer};
use pp_core::params::PhysicsConfig;
use pp_sim::balancer::LoadBalancer;
use pp_sim::engine::EngineConfig;
use pp_tasking::workload::Workload;
use pp_topology::graph::Topology;

fn bench_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("convergence_50_rounds_torus16");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));

    type Factory = fn(&Topology) -> Box<dyn LoadBalancer>;
    let make: Vec<(&str, Factory)> = vec![
        ("particle-plane", |_| Box::new(ParticlePlaneBalancer::new(PhysicsConfig::default()))),
        ("diffusion-opt", |t| Box::new(DiffusionBalancer::optimal(t))),
        ("dimension-exchange", |t| Box::new(DimensionExchangeBalancer::new(t))),
        ("gradient-model", |_| Box::new(GradientModelBalancer::new(1.5, 2.5))),
    ];
    for (name, factory) in make {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let topo = Topology::torus(&[16, 16]);
                let n = topo.node_count();
                let w = Workload::hotspot(n, 0, 2.0 * n as f64);
                let balancer = factory(&topo);
                run_once(topo, None, w, balancer, EngineConfig::default(), 50, 1)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_convergence);
criterion_main!(benches);
