//! Per-decision cost of every balancing policy (E7 substrate): one
//! `decide()` call on a loaded 8×8 torus node view.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_core::balancer::ParticlePlaneBalancer;
use pp_core::baselines::*;
use pp_core::params::PhysicsConfig;
use pp_sim::balancer::{build_view, GlobalView, LinkView, LoadBalancer, ViewScratch};
use pp_sim::state::SystemState;
use pp_tasking::graph::TaskGraph;
use pp_tasking::resources::ResourceMatrix;
use pp_tasking::task::{Task, TaskId};
use pp_topology::graph::{NodeId, Topology};
use pp_topology::links::{LinkAttrs, LinkMap};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn loaded_state() -> SystemState {
    let topo = Topology::torus(&[8, 8]);
    let links = LinkMap::uniform(&topo, LinkAttrs::default());
    let mut s = SystemState::new(topo, links, TaskGraph::new(), ResourceMatrix::none());
    let mut id = 0u64;
    for i in 0..64u32 {
        let count = if i == 0 { 64 } else { i % 3 };
        for _ in 0..count {
            s.add_task(NodeId(i), Task::new(TaskId(id), 1.0, i));
            id += 1;
        }
    }
    s
}

fn bench_decide(c: &mut Criterion) {
    let mut group = c.benchmark_group("decide_hot_node");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(2));

    let state = loaded_state();
    let heights = state.heights();
    let topo = state.topo.clone();
    let balancers: Vec<Box<dyn LoadBalancer>> = vec![
        Box::new(ParticlePlaneBalancer::new(PhysicsConfig::default())),
        Box::new(DiffusionBalancer::optimal(&topo)),
        Box::new(DimensionExchangeBalancer::new(&topo)),
        Box::new(GradientModelBalancer::new(1.0, 2.0)),
        Box::new(CwnBalancer::new(1.0)),
        Box::new(RandomNeighborBalancer::new(1.0)),
        Box::new(SenderInitiatedBalancer::new(3.0, 2.0, 2)),
    ];
    for mut balancer in balancers {
        let name = balancer.name().to_string();
        let global = GlobalView { topo: &state.topo, heights: &heights, round: 1, time: 1.0 };
        balancer.begin_round(&global);
        group.bench_function(BenchmarkId::from_parameter(&name), |b| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut scratch = ViewScratch::new();
            let view = build_view(
                &mut scratch,
                &state,
                NodeId(0),
                &heights,
                &LinkView::all_up(&state, 1.0),
                1,
                1.0,
            );
            b.iter(|| balancer.decide(&view, &mut rng).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decide);
criterion_main!(benches);
