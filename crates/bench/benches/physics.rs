//! Physics kernel timings (E3/E4 substrate): integrator steps per second on
//! analytic and grid surfaces, and the contour machinery (basin flood fill,
//! escape radius).

use criterion::{criterion_group, criterion_main, Criterion};
use pp_physics::prelude::*;

fn bench_physics(c: &mut Criterion) {
    let mut group = c.benchmark_group("physics");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));

    let bowl = AnalyticSurface::Bowl { center: Vec2::ZERO, curvature: 0.5 };
    group.bench_function("particle_1k_steps_bowl", |b| {
        b.iter(|| {
            let cfg = SimConfig { g: 10.0, dt: 1e-3, stop_speed: 1e-6, max_steps: 10_000 };
            let mut sim = Simulation::new(
                &bowl,
                Friction::uniform(0.01),
                cfg,
                Particle::at_rest(Vec2::new(2.0, 1.0), 1.0),
            );
            for _ in 0..1000 {
                sim.step();
            }
            sim.particle().pos
        })
    });

    let crater =
        AnalyticSurface::Crater { center: Vec2::ZERO, floor_r: 1.0, rim_r: 2.0, rim_height: 1.0 };
    let grid = GridSurface::sample(&crater, 200, 200, 0.05);
    group.bench_function("particle_1k_steps_grid", |b| {
        b.iter(|| {
            let cfg = SimConfig { g: 10.0, dt: 1e-3, stop_speed: 1e-6, max_steps: 10_000 };
            let mut sim = Simulation::new(
                &grid,
                Friction::uniform(0.05),
                cfg,
                Particle::at_rest(Vec2::new(1.8, 0.1), 1.0),
            );
            for _ in 0..1000 {
                sim.step();
            }
            sim.particle().pos
        })
    });

    group.bench_function("contour_basin_flood_fill", |b| {
        b.iter(|| Contour::basin(&crater, Vec2::ZERO, 0.95, 0.05, 100).area_cells())
    });

    let contour = Contour::basin(&crater, Vec2::ZERO, 0.95, 0.05, 100);
    group
        .bench_function("escape_radius", |b| b.iter(|| contour.escape_radius(Vec2::new(0.3, 0.2))));

    group.finish();
}

criterion_group!(benches, bench_physics);
criterion_main!(benches);
