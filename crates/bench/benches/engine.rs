//! Engine throughput: cost of a balance round (decision sweep + event
//! handling) as the network grows, for the null policy (pure engine
//! overhead) and the particle-plane policy, sequential vs parallel
//! decisions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_core::balancer::ParticlePlaneBalancer;
use pp_core::params::PhysicsConfig;
use pp_sim::balancer::NullBalancer;
use pp_sim::engine::{EngineBuilder, EngineConfig};
use pp_tasking::workload::Workload;
use pp_topology::graph::Topology;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_10_rounds");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));

    for side in [8usize, 16, 32] {
        let n = side * side;
        group.bench_function(BenchmarkId::new("null", n), |b| {
            b.iter(|| {
                let topo = Topology::torus(&[side, side]);
                let w = Workload::uniform_random(n, 4.0, 1);
                let mut e =
                    EngineBuilder::new(topo).workload(w).balancer(NullBalancer).seed(1).build();
                e.run_rounds(10);
                e.round()
            })
        });
        group.bench_function(BenchmarkId::new("particle-plane", n), |b| {
            b.iter(|| {
                let topo = Topology::torus(&[side, side]);
                let w = Workload::uniform_random(n, 4.0, 1);
                let mut e = EngineBuilder::new(topo)
                    .workload(w)
                    .balancer(ParticlePlaneBalancer::new(PhysicsConfig::default()))
                    .seed(1)
                    .build();
                e.run_rounds(10);
                e.round()
            })
        });
        group.bench_function(BenchmarkId::new("particle-plane-sharded", n), |b| {
            b.iter(|| {
                let topo = Topology::torus(&[side, side]);
                let w = Workload::uniform_random(n, 4.0, 1);
                let mut e = EngineBuilder::new(topo)
                    .workload(w)
                    .balancer(ParticlePlaneBalancer::new(PhysicsConfig::default()))
                    .config(EngineConfig { shards: 8, ..Default::default() })
                    .seed(1)
                    .build();
                e.run_rounds(10);
                e.round()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
