//! Arbiter micro-benchmarks (E6 substrate): the per-decision cost of the
//! stochastic chooser at different neighbourhood sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_core::arbiter::Arbiter;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_arbiter(c: &mut Criterion) {
    let mut group = c.benchmark_group("arbiter_choose");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(2));

    for m in [2usize, 4, 8, 64] {
        let scores: Vec<(usize, f64)> =
            (0..m).map(|i| (i, (i as f64 * 0.37).sin() + 2.0)).collect();
        let arb = Arbiter::default();
        group.bench_function(BenchmarkId::new("stochastic", m), |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| arb.choose(&scores, 10.0, &mut rng))
        });
        let det = Arbiter::Deterministic;
        group.bench_function(BenchmarkId::new("deterministic", m), |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| det.choose(&scores, 10.0, &mut rng))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_arbiter);
criterion_main!(benches);
