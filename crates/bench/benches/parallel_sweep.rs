//! The crossbeam sweep runner (E12 substrate): wall-clock scaling of
//! `par_map` over independent simulations, 1 thread vs all cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_bench::run_once;
use pp_core::balancer::ParticlePlaneBalancer;
use pp_core::params::PhysicsConfig;
use pp_sim::engine::EngineConfig;
use pp_sim::parallel::par_map;
use pp_tasking::workload::Workload;
use pp_topology::graph::Topology;

fn sweep(threads: usize) -> f64 {
    let seeds: Vec<u64> = (0..16).collect();
    let results = par_map(seeds, threads, |seed| {
        let topo = Topology::torus(&[8, 8]);
        let w = Workload::hotspot(64, (seed % 64) as usize, 96.0);
        run_once(
            topo,
            None,
            w,
            Box::new(ParticlePlaneBalancer::new(PhysicsConfig::default())),
            EngineConfig::default(),
            60,
            seed,
        )
        .final_imbalance
        .cov
    });
    results.iter().sum()
}

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_sweep_16_sims");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    for threads in [1usize, 0] {
        let label = if threads == 1 { "1-thread" } else { "all-cores" };
        group.bench_function(BenchmarkId::from_parameter(label), |b| b.iter(|| sweep(threads)));
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
