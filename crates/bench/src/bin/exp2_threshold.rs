//! E2 — Eq. (1) / Fig. 1–2: the movement threshold. On a two-node system we
//! sweep the height difference and measure exactly where migration starts;
//! the measured frontier must match `Δh* = µ_s·e + 2l` (the feasibility
//! rule with the self-correction term).

use pp_bench::{banner, dump_json};
use pp_core::balancer::ParticlePlaneBalancer;
use pp_core::feasibility::movement_threshold;
use pp_core::params::PhysicsConfig;
use pp_metrics::summary::{fmt, TextTable};
use pp_sim::engine::{EngineBuilder, EngineConfig};
use pp_tasking::resources::ResourceMatrix;
use pp_tasking::task::TaskId;
use pp_tasking::workload::Workload;
use pp_topology::graph::{NodeId, Topology};
use pp_topology::links::{LinkAttrs, LinkMap};
use serde::Serialize;

/// Does a transfer start in round 1 for the given gap and parameters?
fn moves(gap: f64, mu_extra: f64, e: f64) -> bool {
    let topo = Topology::mesh(&[2]);
    let links =
        LinkMap::uniform(&topo, LinkAttrs { bandwidth: 1.0 / e, distance: 1.0, fault_prob: 0.0 });
    let w = Workload::from_loads(&[gap, 0.0], 1.0);
    // Give every task an extra resource affinity to raise µ_s beyond base.
    let mut res = ResourceMatrix::none();
    if mu_extra > 0.0 {
        for id in 0..(gap.ceil() as u64 + 1) {
            res.set(TaskId(id), NodeId(0), mu_extra);
        }
    }
    let mut engine = EngineBuilder::new(topo)
        .links(links)
        .workload(w)
        .resources(res)
        .balancer(ParticlePlaneBalancer::new(PhysicsConfig::default()))
        .config(EngineConfig::default())
        .seed(1)
        .build();
    engine.run_rounds(1);
    engine.drain(100.0); // migrations are recorded on arrival
    engine.report().ledger.migration_count() > 0
}

#[derive(Serialize)]
struct Row {
    mu_s: f64,
    e: f64,
    predicted_gap: f64,
    measured_gap: f64,
}

fn main() {
    banner("E2", "movement threshold frontier", "Eq. (1), Fig. 1–2");
    let cfg = PhysicsConfig::default();
    let mut table = TextTable::new(vec!["µ_s", "e_{i,j}", "predicted Δh*", "measured Δh*", "ok"]);
    let mut rows = Vec::new();
    // µ_s = base (1.0) + resource extra; unit loads l = 1.
    for &(mu_extra, e) in &[(0.0, 1.0), (0.0, 2.0), (1.0, 1.0), (2.0, 1.0), (1.0, 2.0), (4.0, 0.5)]
    {
        let mu_s = cfg.mu_s_base + cfg.c_resource * mu_extra;
        let predicted = movement_threshold(&cfg, mu_s, e, 1.0);
        // Sweep integer gaps (so every task has exactly size l = 1) and find
        // the smallest at which migration fires. The condition is strict, so
        // the frontier sits within one unit above the predicted threshold.
        let mut measured = f64::NAN;
        let mut gap = 1.0;
        while gap < 40.0 {
            if moves(gap, mu_extra, e) {
                measured = gap;
                break;
            }
            gap += 1.0;
        }
        let ok = measured > predicted && measured <= predicted + 1.0 + 1e-9;
        table.row(vec![
            fmt(mu_s, 2),
            fmt(e, 2),
            fmt(predicted, 2),
            fmt(measured, 2),
            if ok { "✓".to_string() } else { "✗".to_string() },
        ]);
        assert!(
            ok,
            "frontier mismatch: µ_s={mu_s} e={e} predicted {predicted} measured {measured}"
        );
        rows.push(Row { mu_s, e, predicted_gap: predicted, measured_gap: measured });
    }
    println!("{}", table.render());
    println!("Movement starts strictly above Δh* = µ_s·e + 2l, as Eq. (1) dictates.");
    dump_json("exp2_threshold", &rows);
}
