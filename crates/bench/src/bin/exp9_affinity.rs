//! E9 — §4.2's dependency/resource model: sweep the task-graph dependency
//! weight and the resource-pinning fraction; dependent/pinned tasks must
//! migrate less (their `µ_s`/`µ_k` grow), trading balance for locality.

use pp_bench::{banner, dump_json};
use pp_core::balancer::ParticlePlaneBalancer;
use pp_core::params::PhysicsConfig;
use pp_metrics::imbalance::Imbalance;
use pp_metrics::summary::{fmt, TextTable};
use pp_sim::engine::EngineBuilder;
use pp_tasking::graph::TaskGraph;
use pp_tasking::resources::ResourceMatrix;
use pp_tasking::task::TaskId;
use pp_tasking::workload::Workload;
use pp_topology::graph::{NodeId, Topology};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scenario: String,
    strength: f64,
    bound_moved: usize,
    bound_total: usize,
    free_moved: usize,
    free_total: usize,
    final_cov: f64,
}

/// Hotspot of 32 tasks on node 0 of a 4×4 mesh: the first 16 are "bound"
/// (chained or pinned, per scenario), the rest are free fillers.
fn run(scenario: &str, strength: f64) -> Row {
    let topo = Topology::mesh(&[4, 4]);
    let n = topo.node_count();
    let mut loads = vec![0.0; n];
    loads[0] = 32.0;
    let w = Workload::from_loads(&loads, 1.0);

    let mut tg = TaskGraph::new();
    let mut res = ResourceMatrix::none();
    match scenario {
        "chained" => {
            let ids: Vec<TaskId> = (0..16).map(TaskId).collect();
            tg = TaskGraph::chain(&ids, strength);
        }
        "pinned" => {
            for id in 0..16 {
                res.set(TaskId(id), NodeId(0), strength);
            }
        }
        _ => unreachable!(),
    }
    let mut engine = EngineBuilder::new(topo)
        .workload(w)
        .task_graph(tg)
        .resources(res)
        .balancer(ParticlePlaneBalancer::new(PhysicsConfig::default()))
        .seed(33)
        .build();
    engine.run_rounds(250).drain(300.0);

    let on_origin =
        |id: u64| engine.state().node(NodeId(0)).tasks().iter().any(|t| t.id == TaskId(id));
    let bound_moved = (0..16).filter(|&id| !on_origin(id)).count();
    let free_moved = (16..32).filter(|&id| !on_origin(id)).count();
    Row {
        scenario: scenario.to_string(),
        strength,
        bound_moved,
        bound_total: 16,
        free_moved,
        free_total: 16,
        final_cov: Imbalance::of(&engine.heights()).cov,
    }
}

fn main() {
    banner("E9", "dependency & resource affinity", "§4.2 (T and R matrices in µ_s)");
    let mut rows = Vec::new();
    for scenario in ["chained", "pinned"] {
        for &s in &[0.0, 1.0, 4.0, 16.0, 64.0] {
            rows.push(run(scenario, s));
        }
    }
    let mut table =
        TextTable::new(vec!["scenario", "strength", "bound moved", "free moved", "final CoV"]);
    for r in &rows {
        table.row(vec![
            r.scenario.clone(),
            fmt(r.strength, 0),
            format!("{}/{}", r.bound_moved, r.bound_total),
            format!("{}/{}", r.free_moved, r.free_total),
            fmt(r.final_cov, 3),
        ]);
    }
    println!("{}", table.render());

    // Shape: at the highest strength no bound task moves, at zero strength
    // they move like the fillers; fillers always spread.
    for scenario in ["chained", "pinned"] {
        let sub: Vec<&Row> = rows.iter().filter(|r| r.scenario == scenario).collect();
        assert!(sub.first().unwrap().bound_moved > 8, "{scenario}: unbound should spread");
        assert_eq!(sub.last().unwrap().bound_moved, 0, "{scenario}: strength 64 must pin");
        assert!(sub.iter().all(|r| r.free_moved > 8), "{scenario}: fillers must spread");
        // Monotone-ish: the strongest three strengths are non-increasing.
        let tail: Vec<usize> = sub.iter().rev().take(3).map(|r| r.bound_moved).collect();
        assert!(tail[0] <= tail[1] && tail[1] <= tail[2], "{scenario}: {tail:?}");
    }
    println!("\nAffinity pins tasks (µ_s grows with T and R); balance degrades gracefully.");
    dump_json("exp9_affinity", &rows);
}
