//! E1 — Table 1: the physics ↔ load-balancing parameter dictionary,
//! regenerated as *measured* proportionality checks: every row of the
//! paper's table is exercised through the actual code path and verified.

use pp_bench::{banner, dump_json};
use pp_core::energy::hop_heat;
use pp_core::params::{gradient, kinetic_friction, static_friction, PhysicsConfig};
use pp_metrics::summary::{fmt, TextTable};
use pp_tasking::graph::TaskGraph;
use pp_tasking::resources::ResourceMatrix;
use pp_tasking::task::{Task, TaskId};
use pp_topology::graph::NodeId;
use pp_topology::links::LinkAttrs;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    parameter: String,
    meaning: String,
    check: String,
    ok: bool,
}

fn main() {
    banner("E1", "parameter dictionary", "Table 1");
    let cfg = PhysicsConfig::default();
    let mut rows: Vec<Row> = Vec::new();

    // µ_s: participation + task/resource dependency.
    {
        let mut tg = TaskGraph::new();
        tg.set_dependency(TaskId(0), TaskId(1), 2.0);
        let mut res = ResourceMatrix::none();
        res.set(TaskId(0), NodeId(0), 3.0);
        let colocated = [Task::new(TaskId(1), 1.0, 0)];
        let free = static_friction(&cfg, TaskId(0), NodeId(1), &[], &TaskGraph::new(), &res);
        let bound = static_friction(&cfg, TaskId(0), NodeId(0), &colocated, &tg, &res);
        rows.push(Row {
            parameter: "µ_s".into(),
            meaning: "participation + dependency of task to tasks/resources in node".into(),
            check: format!("independent {free} < dependent {bound}"),
            ok: bound > free,
        });
    }
    // µ_k ∝ µ_s.
    {
        let k1 = kinetic_friction(&cfg, 1.0);
        let k2 = kinetic_friction(&cfg, 2.0);
        rows.push(Row {
            parameter: "µ_k".into(),
            meaning: "communication cost of sending a task over a link; µ_k ∝ µ_s".into(),
            check: format!("µ_k(2µ_s)/µ_k(µ_s) = {}", fmt(k2 / k1, 2)),
            ok: (k2 / k1 - 2.0).abs() < 1e-9,
        });
    }
    // m: load quantity.
    {
        let heat_light = hop_heat(&cfg, 1.0, 1.0, 1.0);
        let heat_heavy = hop_heat(&cfg, 1.0, 1.0, 4.0);
        rows.push(Row {
            parameter: "m".into(),
            meaning: "load quantity (computational/mnemonic size)".into(),
            check: format!("heat scales ×{}", fmt(heat_heavy / heat_light, 1)),
            ok: (heat_heavy / heat_light - 4.0).abs() < 1e-9,
        });
    }
    // tan β: gradient with respect to e_{i,j}.
    {
        let steep = gradient(&cfg, 10.0, 2.0, 1.0, 1.0);
        let shallow = gradient(&cfg, 10.0, 2.0, 1.0, 4.0);
        rows.push(Row {
            parameter: "tan β".into(),
            meaning: "load difference of neighbours w.r.t. e_{i,j} (the gradient)".into(),
            check: format!("e×4 flattens {} → {}", fmt(steep, 2), fmt(shallow, 2)),
            ok: steep == 4.0 * shallow,
        });
    }
    // h: total node load — definitional, checked through the engine height.
    {
        use pp_sim::state::NodeState;
        let mut n = NodeState::default();
        n.add_task(Task::new(TaskId(0), 2.0, 0));
        n.add_task(Task::new(TaskId(1), 3.5, 0));
        rows.push(Row {
            parameter: "h".into(),
            meaning: "total load quantity of a node".into(),
            check: format!("h = {}", fmt(n.height(), 1)),
            ok: (n.height() - 5.5).abs() < 1e-12,
        });
    }
    // E_h: traffic of a transfer.
    {
        let base = hop_heat(&cfg, 0.5, 1.0, 1.0);
        let far = hop_heat(&cfg, 0.5, 3.0, 1.0);
        rows.push(Row {
            parameter: "E_h".into(),
            meaning: "traffic caused by the transfer of a load on a link".into(),
            check: format!("e×3 ⇒ heat ×{}", fmt(far / base, 1)),
            ok: (far / base - 3.0).abs() < 1e-9,
        });
    }
    // e_{i,j}: distance, bandwidth, fault probability.
    {
        let a = LinkAttrs { bandwidth: 1.0, distance: 1.0, fault_prob: 0.0 };
        let far = LinkAttrs { distance: 2.0, ..a };
        let fast = LinkAttrs { bandwidth: 2.0, ..a };
        let flaky = LinkAttrs { fault_prob: 0.3, ..a };
        let ok = far.weight(1.0) > a.weight(1.0)
            && fast.weight(1.0) < a.weight(1.0)
            && flaky.weight(1.0) > a.weight(1.0);
        rows.push(Row {
            parameter: "e_{i,j}".into(),
            meaning: "link distance, delay and/or fault probability".into(),
            check: format!(
                "base {} | far {} | fast {} | flaky {}",
                fmt(a.weight(1.0), 2),
                fmt(far.weight(1.0), 2),
                fmt(fast.weight(1.0), 2),
                fmt(flaky.weight(1.0), 2)
            ),
            ok,
        });
    }

    let mut table =
        TextTable::new(vec!["physics", "load-balancing meaning", "measured check", "ok"]);
    for r in &rows {
        table.row(vec![
            r.parameter.clone(),
            r.meaning.clone(),
            r.check.clone(),
            if r.ok { "✓".into() } else { "✗".to_string() },
        ]);
    }
    println!("{}", table.render());
    assert!(rows.iter().all(|r| r.ok), "a Table 1 row failed its check");
    dump_json("exp1_table1", &rows);
}
