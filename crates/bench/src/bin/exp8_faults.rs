//! E8 — §4.2's fault model: sweep per-transfer link fault probability and
//! the dynamic up/down process; measure the effective link weight `e_{i,j}`
//! (which the paper's formula inflates with fault exposure), balance
//! quality, retries and traffic.

use pp_bench::{banner, dump_json, run_once};
use pp_core::balancer::ParticlePlaneBalancer;
use pp_core::params::PhysicsConfig;
use pp_metrics::summary::{fmt, TextTable};
use pp_sim::engine::{EngineConfig, FaultModel};
use pp_tasking::workload::Workload;
use pp_topology::graph::Topology;
use pp_topology::links::{LinkAttrs, LinkMap};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    fault_prob: f64,
    dynamic: bool,
    link_weight: f64,
    final_cov: f64,
    hops: usize,
    hop_faults: usize,
    traffic: f64,
}

fn main() {
    banner("E8", "fault tolerance", "§4.2 fault model (F matrix, e_{i,j} formula)");
    let mut rows = Vec::new();
    for &(f, dynamic) in &[
        (0.0, false),
        (0.02, false),
        (0.05, false),
        (0.1, false),
        (0.2, false),
        (0.0, true),
        (0.1, true),
    ] {
        let topo = Topology::torus(&[8, 8]);
        let n = topo.node_count();
        let attrs = LinkAttrs { bandwidth: 1.0, distance: 1.0, fault_prob: f };
        let links = LinkMap::uniform(&topo, attrs);
        let w = Workload::hotspot(n, 0, 2.0 * n as f64);
        let config = EngineConfig {
            fault_model: dynamic.then_some(FaultModel { p_down: 0.05, p_up: 0.4 }),
            ..Default::default()
        };
        let r = run_once(
            topo,
            Some(links),
            w,
            Box::new(ParticlePlaneBalancer::new(PhysicsConfig::default())),
            config,
            400,
            9,
        );
        rows.push(Row {
            fault_prob: f,
            dynamic,
            link_weight: attrs.weight(1.0),
            final_cov: r.final_imbalance.cov,
            hops: r.ledger.migration_count(),
            hop_faults: r.ledger.fault_count(),
            traffic: r.ledger.total_weighted_traffic(),
        });
    }

    let mut table = TextTable::new(vec![
        "fault prob",
        "dynamic up/down",
        "e_{i,j}",
        "final CoV",
        "hops",
        "hop faults",
        "traffic",
    ]);
    for r in &rows {
        table.row(vec![
            fmt(r.fault_prob, 2),
            r.dynamic.to_string(),
            fmt(r.link_weight, 3),
            fmt(r.final_cov, 3),
            r.hops.to_string(),
            r.hop_faults.to_string(),
            fmt(r.traffic, 0),
        ]);
    }
    println!("{}", table.render());

    // Shape: the effective link weight grows with f (the paper's formula);
    // faults appear in the ledger yet balancing still converges to
    // near-balance in every scenario.
    let static_rows: Vec<&Row> = rows.iter().filter(|r| !r.dynamic).collect();
    for w in static_rows.windows(2) {
        assert!(w[1].link_weight >= w[0].link_weight, "e_{{i,j}} must grow with f");
    }
    for r in &rows {
        assert!(r.final_cov < 0.8, "f={} cov {}", r.fault_prob, r.final_cov);
        if r.fault_prob > 0.0 {
            assert!(r.hop_faults > 0, "expected retries at f={}", r.fault_prob);
        }
    }
    println!("\ne_{{i,j}} inflates with fault exposure; convergence survives every scenario.");
    dump_json("exp8_faults", &rows);
}
