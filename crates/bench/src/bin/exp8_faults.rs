//! E8 — §4.2's fault model: sweep per-transfer link fault probability and
//! the dynamic up/down process; measure the effective link weight `e_{i,j}`
//! (which the paper's formula inflates with fault exposure), balance
//! quality, retries and traffic. Each sweep point is one [`ScenarioSpec`]
//! differing only in its link/fault-plan fields.

use pp_bench::{banner, dump_json};
use pp_metrics::summary::{fmt, TextTable};
use pp_scenario::spec::{DurationSpec, FaultPlanSpec, LinkSpec, ScenarioSpec, WorkloadSpec};
use pp_topology::links::LinkAttrs;
use pp_topology::spec::TopologySpec;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    fault_prob: f64,
    dynamic: bool,
    link_weight: f64,
    final_cov: f64,
    hops: usize,
    hop_faults: usize,
    traffic: f64,
}

fn main() {
    banner("E8", "fault tolerance", "§4.2 fault model (F matrix, e_{i,j} formula)");
    let n = 64usize;
    let mut rows = Vec::new();
    for &(f, dynamic) in &[
        (0.0, false),
        (0.02, false),
        (0.05, false),
        (0.1, false),
        (0.2, false),
        (0.0, true),
        (0.1, true),
    ] {
        let spec = ScenarioSpec {
            name: format!("e8-f{f}-{}", if dynamic { "dynamic" } else { "static" }),
            topology: TopologySpec::Torus { dims: vec![8, 8] },
            links: LinkSpec::Uniform { bandwidth: 1.0, distance: 1.0, fault_prob: f },
            workload: WorkloadSpec::Hotspot { node: 0, total: 2.0 * n as f64, task_size: 1.0 },
            faults: FaultPlanSpec { model: dynamic.then_some((0.05, 0.4)) },
            duration: DurationSpec { rounds: 400, drain: 1000.0 },
            seed: 9,
            ..ScenarioSpec::default()
        };
        let r = spec.run().expect("valid scenario");
        rows.push(Row {
            fault_prob: f,
            dynamic,
            link_weight: LinkAttrs { bandwidth: 1.0, distance: 1.0, fault_prob: f }.weight(1.0),
            final_cov: r.final_imbalance.cov,
            hops: r.ledger.migration_count(),
            hop_faults: r.ledger.fault_count(),
            traffic: r.ledger.total_weighted_traffic(),
        });
    }

    let mut table = TextTable::new(vec![
        "fault prob",
        "dynamic up/down",
        "e_{i,j}",
        "final CoV",
        "hops",
        "hop faults",
        "traffic",
    ]);
    for r in &rows {
        table.row(vec![
            fmt(r.fault_prob, 2),
            r.dynamic.to_string(),
            fmt(r.link_weight, 3),
            fmt(r.final_cov, 3),
            r.hops.to_string(),
            r.hop_faults.to_string(),
            fmt(r.traffic, 0),
        ]);
    }
    println!("{}", table.render());

    // Shape: the effective link weight grows with f (the paper's formula);
    // faults appear in the ledger yet balancing still converges to
    // near-balance in every scenario.
    let static_rows: Vec<&Row> = rows.iter().filter(|r| !r.dynamic).collect();
    for w in static_rows.windows(2) {
        assert!(w[1].link_weight >= w[0].link_weight, "e_{{i,j}} must grow with f");
    }
    for r in &rows {
        assert!(r.final_cov < 0.8, "f={} cov {}", r.fault_prob, r.final_cov);
        if r.fault_prob > 0.0 {
            assert!(r.hop_faults > 0, "expected retries at f={}", r.fault_prob);
        }
    }
    println!("\ne_{{i,j}} inflates with fault exposure; convergence survives every scenario.");
    dump_json("exp8_faults", &rows);
}
