//! E13 — ablations of the paper's design choices (DESIGN.md §5): the
//! stochastic arbiter vs deterministic steepest-descent, the in-motion
//! (inertia) phase vs single-hop migration, and the `−2l` self-correction
//! term vs the raw gradient. Each variant is one [`BalancerSpec`] inside
//! an otherwise identical [`ScenarioSpec`].

use pp_bench::{banner, dump_json};
use pp_core::arbiter::Arbiter;
use pp_core::jitter::FrictionJitter;
use pp_core::params::PhysicsConfig;
use pp_metrics::summary::{fmt, Summary, TextTable};
use pp_scenario::spec::{BalancerSpec, DurationSpec, ScenarioSpec, WorkloadSpec};
use pp_topology::spec::TopologySpec;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    variant: String,
    final_cov: f64,
    auc: f64,
    hops: f64,
    conv05: Option<f64>,
}

fn variant(name: &str) -> BalancerSpec {
    let base = PhysicsConfig::default();
    let pp = |config: PhysicsConfig, arbiter: Option<Arbiter>| BalancerSpec::ParticlePlane {
        config,
        arbiter,
        name: (name != "full").then(|| name.to_string()),
    };
    match name {
        "full" => pp(base, None),
        "no-arbiter" => pp(base, Some(Arbiter::Deterministic)),
        "no-motion" => pp(PhysicsConfig { in_motion: false, ..base }, None),
        "no-self-correction" => pp(PhysicsConfig { self_correction: false, ..base }, None),
        // §5.1's optional extension: annealed stochastic µ_s/µ_k.
        "jittered-friction" => {
            pp(PhysicsConfig { jitter: Some(FrictionJitter::new(0.3, 3.0, 100.0)), ..base }, None)
        }
        _ => unreachable!(),
    }
}

fn main() {
    banner("E13", "ablations", "design choices of §5.1–5.2");
    let variants = ["full", "no-arbiter", "no-motion", "no-self-correction", "jittered-friction"];
    let seeds = [1u64, 2, 3, 4, 5];
    let n = 64usize;
    let mut rows = Vec::new();
    for name in variants {
        let mut covs = Vec::new();
        let mut aucs = Vec::new();
        let mut hops = Vec::new();
        let mut convs = Vec::new();
        for &seed in &seeds {
            let spec = ScenarioSpec {
                name: format!("e13-{name}-{seed}"),
                topology: TopologySpec::Torus { dims: vec![8, 8] },
                workload: WorkloadSpec::Hotspot { node: 0, total: 2.0 * n as f64, task_size: 1.0 },
                balancer: variant(name),
                duration: DurationSpec { rounds: 400, drain: 1000.0 },
                seed,
                ..ScenarioSpec::default()
            };
            let r = spec.run().expect("valid scenario");
            covs.push(r.final_imbalance.cov);
            aucs.push(r.series.auc());
            hops.push(r.ledger.migration_count() as f64);
            if let Some(t) = r.converged_round(0.5, 3) {
                convs.push(t);
            }
        }
        rows.push(Row {
            variant: name.to_string(),
            final_cov: Summary::of(&covs).mean,
            auc: Summary::of(&aucs).mean,
            hops: Summary::of(&hops).mean,
            conv05: (convs.len() == seeds.len()).then(|| Summary::of(&convs).mean),
        });
    }

    let mut table = TextTable::new(vec!["variant", "final CoV", "CoV AUC", "hops", "t(CoV≤0.5)"]);
    for r in &rows {
        table.row(vec![
            r.variant.clone(),
            fmt(r.final_cov, 3),
            fmt(r.auc, 1),
            fmt(r.hops, 0),
            r.conv05.map(|t| fmt(t, 0)).unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{}", table.render());

    let get = |v: &str| rows.iter().find(|r| r.variant == v).unwrap();
    // In-motion inertia is the load-spreading engine: without it the
    // hotspot drains one ring at a time and balance suffers badly.
    assert!(
        get("no-motion").final_cov > 1.5 * get("full").final_cov,
        "in-motion ablation should hurt balance: {} vs {}",
        get("no-motion").final_cov,
        get("full").final_cov
    );
    // The in-motion phase is also where the traffic goes.
    assert!(get("no-motion").hops < get("full").hops);
    println!("\nInertia (in-motion hops) is what spreads tall hills; the arbiter and the");
    println!("self-correction term trade small amounts of AUC/final CoV.");
    dump_json("exp13_ablation", &rows);
}
