//! E13 — ablations of the paper's design choices (DESIGN.md §5): the
//! stochastic arbiter vs deterministic steepest-descent, the in-motion
//! (inertia) phase vs single-hop migration, and the `−2l` self-correction
//! term vs the raw gradient.

use pp_bench::{banner, dump_json, run_once};
use pp_core::arbiter::Arbiter;
use pp_core::balancer::ParticlePlaneBalancer;
use pp_core::jitter::FrictionJitter;
use pp_core::params::PhysicsConfig;
use pp_metrics::summary::{fmt, Summary, TextTable};
use pp_sim::engine::EngineConfig;
use pp_tasking::workload::Workload;
use pp_topology::graph::Topology;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    variant: String,
    final_cov: f64,
    auc: f64,
    hops: f64,
    conv05: Option<f64>,
}

fn variant(name: &str) -> ParticlePlaneBalancer {
    let base = PhysicsConfig::default();
    match name {
        "full" => ParticlePlaneBalancer::new(base),
        "no-arbiter" => ParticlePlaneBalancer::new(base)
            .with_arbiter(Arbiter::Deterministic)
            .named("no-arbiter"),
        "no-motion" => ParticlePlaneBalancer::new(PhysicsConfig { in_motion: false, ..base })
            .named("no-motion"),
        "no-self-correction" => {
            ParticlePlaneBalancer::new(PhysicsConfig { self_correction: false, ..base })
                .named("no-self-correction")
        }
        // §5.1's optional extension: annealed stochastic µ_s/µ_k.
        "jittered-friction" => ParticlePlaneBalancer::new(PhysicsConfig {
            jitter: Some(FrictionJitter::new(0.3, 3.0, 100.0)),
            ..base
        })
        .named("jittered-friction"),
        _ => unreachable!(),
    }
}

fn main() {
    banner("E13", "ablations", "design choices of §5.1–5.2");
    let variants = ["full", "no-arbiter", "no-motion", "no-self-correction", "jittered-friction"];
    let seeds = [1u64, 2, 3, 4, 5];
    let mut rows = Vec::new();
    for name in variants {
        let mut covs = Vec::new();
        let mut aucs = Vec::new();
        let mut hops = Vec::new();
        let mut convs = Vec::new();
        for &seed in &seeds {
            let topo = Topology::torus(&[8, 8]);
            let n = topo.node_count();
            let w = Workload::hotspot(n, 0, 2.0 * n as f64);
            let r = run_once(
                topo,
                None,
                w,
                Box::new(variant(name)),
                EngineConfig::default(),
                400,
                seed,
            );
            covs.push(r.final_imbalance.cov);
            aucs.push(r.series.auc());
            hops.push(r.ledger.migration_count() as f64);
            if let Some(t) = r.converged_round(0.5, 3) {
                convs.push(t);
            }
        }
        rows.push(Row {
            variant: name.to_string(),
            final_cov: Summary::of(&covs).mean,
            auc: Summary::of(&aucs).mean,
            hops: Summary::of(&hops).mean,
            conv05: (convs.len() == seeds.len()).then(|| Summary::of(&convs).mean),
        });
    }

    let mut table = TextTable::new(vec!["variant", "final CoV", "CoV AUC", "hops", "t(CoV≤0.5)"]);
    for r in &rows {
        table.row(vec![
            r.variant.clone(),
            fmt(r.final_cov, 3),
            fmt(r.auc, 1),
            fmt(r.hops, 0),
            r.conv05.map(|t| fmt(t, 0)).unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{}", table.render());

    let get = |v: &str| rows.iter().find(|r| r.variant == v).unwrap();
    // In-motion inertia is the load-spreading engine: without it the
    // hotspot drains one ring at a time and balance suffers badly.
    assert!(
        get("no-motion").final_cov > 1.5 * get("full").final_cov,
        "in-motion ablation should hurt balance: {} vs {}",
        get("no-motion").final_cov,
        get("full").final_cov
    );
    // The in-motion phase is also where the traffic goes.
    assert!(get("no-motion").hops < get("full").hops);
    println!("\nInertia (in-motion hops) is what spreads tall hills; the arbiter and the");
    println!("self-correction term trade small amounts of AUC/final CoV.");
    dump_json("exp13_ablation", &rows);
}
