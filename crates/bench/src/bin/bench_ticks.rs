//! BENCH_2 — tick-throughput benchmark for the engine hot path.
//!
//! Measures balance-round throughput (rounds/sec) and per-node decision cost
//! (ns/node-decision) for the particle-plane balancer on square tori of 64,
//! 1 024 and 16 384 nodes, sequential and parallel, on a quiescent
//! redistribution workload. Emits `BENCH_2.json` so successive PRs have a
//! recorded perf trajectory.
//!
//! ```text
//! bench_ticks [--smoke] [--out PATH] [--baseline PATH] [--check PATH]
//! ```
//!
//! * `--smoke`      few iterations (CI keep-alive; numbers are meaningless)
//! * `--out PATH`   where to write the JSON (default `BENCH_2.json`)
//! * `--baseline P` embed the `scenarios` of a previous output as
//!   `baseline` and compute per-scenario speedups
//! * `--check PATH` parse PATH as JSON and exit (0 = parses, 1 = does
//!   not, with a missing file reported as `NOT FOUND` rather than a parse
//!   error); no benchmark is run
//!
//! The benchmark also verifies that sequential and parallel decision sweeps
//! produce identical run outcomes for the same seed (`reports_identical`).

use pp_core::balancer::ParticlePlaneBalancer;
use pp_core::params::PhysicsConfig;
use pp_sim::engine::{EngineBuilder, EngineConfig, RunReport};
use pp_tasking::workload::Workload;
use pp_topology::graph::Topology;
use serde::{Serialize, Value};
use std::time::Instant;

const SEED: u64 = 42;
const LOAD_PER_NODE: f64 = 10.0;

struct Scenario {
    name: &'static str,
    side: usize,
    rounds: u64,
    smoke_rounds: u64,
    parallel: bool,
}

const SCENARIOS: &[Scenario] = &[
    Scenario { name: "torus64_seq", side: 8, rounds: 3000, smoke_rounds: 5, parallel: false },
    Scenario { name: "torus1024_seq", side: 32, rounds: 300, smoke_rounds: 3, parallel: false },
    Scenario { name: "torus1024_par", side: 32, rounds: 300, smoke_rounds: 3, parallel: true },
    Scenario { name: "torus16384_seq", side: 128, rounds: 25, smoke_rounds: 2, parallel: false },
    Scenario { name: "torus16384_par", side: 128, rounds: 25, smoke_rounds: 2, parallel: true },
];

#[derive(Serialize)]
struct Measurement {
    name: String,
    nodes: usize,
    rounds: u64,
    parallel: bool,
    rounds_per_sec: f64,
    ns_per_node_decision: f64,
}

#[derive(Serialize)]
struct Output {
    bench: String,
    mode: String,
    scenarios: Vec<Measurement>,
    reports_identical: bool,
    baseline: Option<Vec<Measurement>>,
    speedup_rounds_per_sec: Option<Vec<(String, f64)>>,
}

fn engine_for(side: usize, parallel: bool) -> pp_sim::engine::Engine {
    let topo = Topology::torus(&[side, side]);
    let n = topo.node_count();
    let w = Workload::uniform_random(n, LOAD_PER_NODE, SEED);
    EngineBuilder::new(topo)
        .workload(w)
        .balancer(ParticlePlaneBalancer::new(PhysicsConfig::default()))
        .config(EngineConfig { parallel_decide: parallel, ..Default::default() })
        .seed(SEED)
        .build()
}

fn measure(sc: &Scenario, smoke: bool) -> Measurement {
    let rounds = if smoke { sc.smoke_rounds } else { sc.rounds };
    let n = sc.side * sc.side;
    let mut engine = engine_for(sc.side, sc.parallel);
    // Warm up: converge past the initial migration burst so the measured
    // window is dominated by steady-state tick cost, and warm caches/pools.
    engine.run_rounds((rounds / 5).max(1));
    let start = Instant::now();
    engine.run_rounds(rounds);
    let elapsed = start.elapsed();
    let secs = elapsed.as_secs_f64().max(1e-12);
    Measurement {
        name: sc.name.to_string(),
        nodes: n,
        rounds,
        parallel: sc.parallel,
        rounds_per_sec: rounds as f64 / secs,
        ns_per_node_decision: elapsed.as_nanos() as f64 / (rounds as f64 * n as f64),
    }
}

/// Digest of everything observable about a run; byte-identical digests mean
/// identical `RunReport`s (Debug formatting of f64 is value-exact).
fn report_digest(r: &RunReport) -> String {
    format!(
        "{:?}|{:?}|{:?}|{}|{}|{}",
        r.series.points(),
        r.final_imbalance,
        r.ledger.migration_count(),
        r.ledger.total_load_moved(),
        r.ledger.total_weighted_traffic(),
        r.total_load,
    )
}

fn seq_par_identical(smoke: bool) -> bool {
    let rounds = if smoke { 3 } else { 60 };
    let run = |parallel: bool| {
        let mut e = engine_for(32, parallel);
        e.run_rounds(rounds).drain(50.0);
        report_digest(&e.report())
    };
    run(false) == run(true)
}

fn extract_baseline(path: &str) -> Result<(Vec<Measurement>, Value), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let v = serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let scenarios = v
        .get("scenarios")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{path} has no `scenarios` array"))?;
    let mut out = Vec::new();
    for s in scenarios {
        let field = |k: &str| s.get(k).and_then(Value::as_f64);
        out.push(Measurement {
            name: s.get("name").and_then(Value::as_str).unwrap_or("?").to_string(),
            nodes: field("nodes").unwrap_or(0.0) as usize,
            rounds: field("rounds").unwrap_or(0.0) as u64,
            parallel: s.get("parallel").and_then(Value::as_bool).unwrap_or(false),
            rounds_per_sec: field("rounds_per_sec").unwrap_or(0.0),
            ns_per_node_decision: field("ns_per_node_decision").unwrap_or(0.0),
        });
    }
    Ok((out, v))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned();

    if let Some(path) = opt("--check") {
        match pp_bench::check_json_file(&path) {
            Ok(()) => {
                println!("{path}: OK (valid JSON)");
                return;
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        }
    }

    let smoke = flag("--smoke");
    let out_path = opt("--out").unwrap_or_else(|| "BENCH_2.json".to_string());
    let baseline = opt("--baseline").map(|p| match extract_baseline(&p) {
        Ok((b, _)) => b,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    });

    println!("=== BENCH_2: tick throughput ({})", if smoke { "smoke" } else { "full" });
    let mut scenarios = Vec::new();
    for sc in SCENARIOS {
        let m = measure(sc, smoke);
        println!(
            "  {:16} {:6} nodes  {:>10.1} rounds/s  {:>10.1} ns/node-decision",
            m.name, m.nodes, m.rounds_per_sec, m.ns_per_node_decision
        );
        scenarios.push(m);
    }

    let identical = seq_par_identical(smoke);
    println!("  seq/par reports identical: {identical}");
    assert!(identical, "parallel decision sweep diverged from sequential");

    let speedups = baseline.as_ref().map(|base| {
        scenarios
            .iter()
            .filter_map(|m| {
                base.iter().find(|b| b.name == m.name && b.rounds_per_sec > 0.0).map(|b| {
                    let s = m.rounds_per_sec / b.rounds_per_sec;
                    println!("  speedup {:16} {s:.2}x", m.name);
                    (m.name.clone(), s)
                })
            })
            .collect::<Vec<_>>()
    });

    let output = Output {
        bench: "BENCH_2 tick throughput (quiescent redistribution, particle-plane)".into(),
        mode: if smoke { "smoke" } else { "full" }.into(),
        scenarios,
        reports_identical: identical,
        baseline,
        speedup_rounds_per_sec: speedups,
    };
    let json = serde_json::to_string_pretty(&output).expect("serialize");
    std::fs::write(&out_path, json).expect("write output");
    println!("[json artifact: {out_path}]");
}
