//! BENCH_9 — tick-throughput benchmark for the sharded tick pipeline, the
//! event-driven time-skipping strategy, the pinned-worker thread scaling
//! of the decision sweep, adaptive online repartitioning, and — new in
//! BENCH_9 — the cache-conscious dense-sweep kernel and the lock-free
//! epoch barrier.
//!
//! Measures steady-state balance-round throughput (rounds/sec) and
//! per-node decision cost (ns/node-decision) for the particle-plane
//! balancer on square tori, on a quiescent redistribution workload. The
//! BENCH_4/BENCH_6 scenario set carries over unchanged (so `--baseline`
//! trajectories line up):
//!
//! * `*_seq`   — `shards = 1`: the sequential reference pipeline;
//! * `*_shard` — `shards = K` row bands: the sharded pipeline with
//!   halo-exact shard-level activity tracking;
//! * `sparse65536_{tick,event}` — the strategy pair on a sparse-activity
//!   system (the event strategy fast-forwards quiescent rounds).
//!
//! The BENCH_7 **dense thread matrix** carries over — `dense16384_t{1,2,4,8}`,
//! a 16 384-node torus with friction jitter enabled. Jitter makes the
//! policy non-quiescence-stable, so *every* shard is evaluated *every*
//! round: no skipping, no event fast-forward — the rows isolate raw sweep
//! throughput, and the only variable across them is the worker-thread
//! count of the pinned shard pool. This is the honest measurement the
//! earlier benches could not make: BENCH_4/BENCH_6 headline ratios all ran
//! `threads: 1`, and BENCH_2's channel-dispatch pool lost to sequential
//! outright.
//!
//! New in BENCH_9: the **dense-kernel gate** and the **barrier figure**.
//! The structure-of-arrays rewrite of the decision sweep (flat
//! height/weight slices into branch-light feasibility kernels, the jitter
//! `exp` hoisted out of the per-task loop) is gated against an *embedded*
//! BENCH_7 baseline: `dense16384_t1` must come in at least 1.25× faster in
//! ns-per-node-decision, enforced on every host — the row runs on one
//! worker thread, so core count is no excuse. Separately, the per-round
//! overhead of the pool's lock-free sense-reversing epoch barrier is
//! measured on a no-op job (4 workers × 64 shards, the `t4` matrix shape)
//! and recorded as `barrier_ns_per_round` next to `host_parallelism`, so
//! the first ≥ 4-core run of the `t4 > t1` gate inherits a known barrier
//! cost instead of re-deriving it from scratch.
//!
//! From BENCH_8: the **adaptive repartitioning pair** —
//! `hotspot16384_{static,adaptive}`, a 16 384-node torus under a slowly
//! drifting arrival hotspot (redistribution only: `consume_rate = 0`, so
//! the per-round cost is exactly the dirty-shard sweep). Both rows run the
//! identical system and emit identical report bytes (the `--verify-
//! repartition` gate proves it); the only difference is the `repartition`
//! knob, which lets the adaptive row shrink its shards around the dirty
//! frontier and skip the wide quiescent ones. The enforced expectation is
//! adaptive ≥ 1.3× static rounds/sec (ADR-008).
//!
//! The JSON header records `host_parallelism` and whether the
//! thread-scaling gate was enforced, so a 1-core container can never again
//! masquerade as parallel speedup.
//!
//! ```text
//! bench_ticks [--smoke] [--enforce] [--dense] [--shards K] [--threads T]
//!             [--out PATH] [--baseline PATH] [--check PATH]
//! ```
//!
//! * `--smoke`      few iterations (CI keep-alive; numbers are meaningless)
//! * `--enforce`    exit non-zero unless the scaling expectations hold:
//!   sharded ≥ 1× sequential at 1 024 nodes, ≥ 1.5× at 16 384, event
//!   strategy ≥ 5× tick on the sparse 65 536 pair, adaptive repartitioning
//!   ≥ 1.3× static on the hotspot pair, the dense-kernel gate
//!   (`dense16384_t1` ≥ 1.25× the embedded BENCH_7 ns-per-node-decision
//!   baseline, enforced everywhere), and — on hosts with ≥ 4 cores —
//!   `dense16384_t4` strictly faster than `dense16384_t1`. On smaller
//!   hosts the thread gate is skipped with a visible annotation
//!   (`::notice::` under GitHub Actions, a plain note elsewhere) and
//!   recorded as such in the JSON. Failures print the measured ratio, the
//!   requirement, and both raw values — never a bare pass/fail.
//! * `--dense`      run only the dense thread matrix, the barrier
//!   measurement, and the dense-kernel gate (the CI `dense-kernel` job's
//!   fast path; cross-pair expectations need rows this mode skips, so
//!   `--enforce` then gates on the dense kernel alone). The differential
//!   checks still run in their miniature form.
//! * `--shards K`   override the shard count of every `*_shard` scenario
//! * `--threads T`  override the sweep worker-thread count everywhere
//!   (including the thread matrix — useful only for debugging)
//! * `--out PATH`   where to write the JSON (default `BENCH_9.json`)
//! * `--baseline P` embed the `scenarios` of a previous output as
//!   `baseline` and compute per-scenario speedups (BENCH_8.json's names
//!   line up, continuing the trajectory)
//! * `--check PATH` parse PATH as JSON and exit (0 = parses, 1 = does
//!   not, with a missing file reported as `NOT FOUND` rather than a parse
//!   error); no benchmark is run
//!
//! The benchmark also verifies that the sequential and sharded pipelines
//! produce identical run outcomes for the same seed (`reports_identical`),
//! including multi-threaded sweeps and the jittered dense workload.

use pp_core::balancer::ParticlePlaneBalancer;
use pp_core::jitter::FrictionJitter;
use pp_core::params::PhysicsConfig;
use pp_sim::engine::{EngineBuilder, EngineConfig, RepartitionConfig, RunReport};
use pp_sim::strategy::SimulationStrategy;
use pp_tasking::workload::{ArrivalProcess, Workload};
use pp_topology::graph::Topology;
use serde::{Serialize, Value};
use std::time::Instant;

const SEED: u64 = 42;
const LOAD_PER_NODE: f64 = 10.0;
/// Cores required before the `t4 > t1` thread-scaling gate is enforced.
const GATE_MIN_CORES: usize = 4;
/// The committed BENCH_7 `dense16384_t1` ns-per-node-decision on the
/// reference container (1 core, `host_parallelism: 1`), embedded so the
/// dense-kernel gate needs no baseline file: the scenario construction is
/// unchanged since BENCH_7, so the comparison is like-for-like.
const BENCH7_DENSE_T1_NS: f64 = 277.22659861246746;
/// The dense-kernel win the SoA sweep must hold: `dense16384_t1` at least
/// this many times faster (baseline ns ÷ measured ns) than BENCH_7.
const DENSE_KERNEL_REQUIRED: f64 = 1.25;

struct Scenario {
    name: &'static str,
    side: usize,
    /// Warm-up rounds before the timer starts: enough to converge past the
    /// initial migration burst, so the measured window is steady state.
    warm: u64,
    rounds: u64,
    smoke_rounds: u64,
    shards: usize,
    /// Sweep worker threads (0 = builder auto). The thread matrix pins
    /// this per row; every other scenario inherits the `--threads` flag.
    threads: usize,
    /// Friction jitter on: the policy stops being quiescence-stable, so
    /// every shard is evaluated every round — skipping disabled by
    /// construction, isolating raw sweep throughput.
    jitter: bool,
    /// Sparse-activity variant: no resident workload, `consume_rate > 0`
    /// — nothing ever happens, but the tick strategy still pays the O(n)
    /// consume sweep per round.
    sparse: bool,
    /// Drifting-hotspot variant: no resident workload, no consumption, a
    /// [`ArrivalProcess::MovingHotspot`] that drifts one diagonal step per
    /// dwell — the dirty frontier stays compact while it wanders, which is
    /// the regime adaptive repartitioning exists for.
    moving: bool,
    /// Adaptive online repartitioning knob (the BENCH_8 variable).
    repartition: Option<RepartitionConfig>,
    strategy: SimulationStrategy,
}

/// A dense redistribution scenario on the tick strategy (the BENCH_4 set).
const fn dense(
    name: &'static str,
    side: usize,
    warm: u64,
    rounds: u64,
    smoke_rounds: u64,
    shards: usize,
) -> Scenario {
    Scenario {
        name,
        side,
        warm,
        rounds,
        smoke_rounds,
        shards,
        threads: 0,
        jitter: false,
        sparse: false,
        moving: false,
        repartition: None,
        strategy: SimulationStrategy::Tick,
    }
}

/// A thread-matrix row: 16 384 nodes, K = 64, jitter on (skipping
/// disabled), pinned worker count.
const fn matrix(name: &'static str, threads: usize) -> Scenario {
    Scenario {
        name,
        side: 128,
        warm: 30,
        rounds: 120,
        smoke_rounds: 2,
        shards: 64,
        threads,
        jitter: true,
        sparse: false,
        moving: false,
        repartition: None,
        strategy: SimulationStrategy::Tick,
    }
}

/// An adaptive-repartitioning row: 16 384 nodes, K = 64, a drifting
/// arrival hotspot, redistribution only. The pair differs in exactly the
/// `repartition` knob.
const fn hotspot(name: &'static str, repartition: Option<RepartitionConfig>) -> Scenario {
    Scenario {
        name,
        side: 128,
        warm: 40,
        rounds: 300,
        smoke_rounds: 2,
        shards: 64,
        threads: 0,
        jitter: false,
        sparse: false,
        moving: true,
        repartition,
        strategy: SimulationStrategy::Tick,
    }
}

const SCENARIOS: &[Scenario] = &[
    dense("torus64_seq", 8, 200, 3000, 5, 1),
    dense("torus1024_seq", 32, 400, 300, 3, 1),
    dense("torus1024_shard", 32, 400, 3000, 3, 16),
    dense("torus16384_seq", 128, 250, 25, 2, 1),
    dense("torus16384_shard", 128, 250, 500, 2, 64),
    dense("torus65536_seq", 256, 120, 8, 1, 1),
    dense("torus65536_shard", 256, 120, 200, 1, 128),
    // The strategy pair: identical sparse systems, only the round-advance
    // mechanism differs. Round counts differ because the per-round costs
    // differ by orders of magnitude; rounds/sec is the comparable number.
    Scenario {
        name: "sparse65536_tick",
        side: 256,
        warm: 5,
        rounds: 400,
        smoke_rounds: 2,
        shards: 128,
        threads: 0,
        jitter: false,
        sparse: true,
        moving: false,
        repartition: None,
        strategy: SimulationStrategy::Tick,
    },
    Scenario {
        name: "sparse65536_event",
        side: 256,
        warm: 5,
        rounds: 100_000,
        smoke_rounds: 1000,
        shards: 128,
        threads: 0,
        jitter: false,
        sparse: true,
        moving: false,
        repartition: None,
        strategy: SimulationStrategy::Event,
    },
    // The dense thread matrix: identical systems, identical bytes out
    // (the differential suites prove it), only the worker count varies.
    matrix("dense16384_t1", 1),
    matrix("dense16384_t2", 2),
    matrix("dense16384_t4", 4),
    matrix("dense16384_t8", 8),
    // The adaptive repartitioning pair: identical systems, identical bytes
    // out (`lab --verify-repartition` proves it), only the knob varies.
    hotspot("hotspot16384_static", None),
    hotspot("hotspot16384_adaptive", Some(RepartitionConfig { every: 16, skew_threshold: 2.0 })),
];

#[derive(Serialize)]
struct Measurement {
    name: String,
    nodes: usize,
    rounds: u64,
    shards: usize,
    threads: usize,
    /// Round-advance mechanism the row ran under ("tick" | "event").
    strategy: String,
    rounds_per_sec: f64,
    /// Rounds in the measured window whose sweep evaluated ≥ 1 shard —
    /// the denominator that makes skip-heavy rows honest (the event
    /// strategy fast-forwards most of its rounds; quiescence skipping
    /// empties most of the rest).
    executed_rounds: u64,
    /// Node decisions actually evaluated in the measured window.
    executed_decisions: u64,
    /// Wall time divided by `executed_decisions` — the real cost of one
    /// decision, comparable across `*_seq`, `*_shard` and skip-heavy rows
    /// alike. `null` when the window evaluated no decisions at all (a
    /// fully quiescent window has no per-decision cost, not a zero one).
    ns_per_node_decision: Option<f64>,
    /// Fraction of shard-ticks skipped as quiescent during the whole run
    /// (warm-up included) — 0 for the sequential reference.
    skip_ratio: f64,
    /// Adaptive repartitions applied over the whole run (warm-up included)
    /// — 0 everywhere except the `hotspot16384_adaptive` row.
    repartitions: u64,
}

#[derive(Serialize)]
struct Expectation {
    /// "candidate/reference" scenario names the ratio compares.
    pair: String,
    nodes: usize,
    reference_rps: f64,
    candidate_rps: f64,
    ratio: f64,
    required: f64,
    pass: bool,
    /// Whether `--enforce` gates on this row. The thread-scaling row is
    /// advisory on hosts with < 4 cores (recorded, never enforced).
    enforced: bool,
}

/// The BENCH_9 dense-kernel gate: the SoA decision sweep against the
/// embedded BENCH_7 AoS baseline, single-threaded, enforced on every host.
#[derive(Serialize)]
struct DenseKernelGate {
    /// Scenario the gate measures.
    scenario: String,
    /// Where the baseline number comes from.
    baseline: String,
    baseline_ns_per_node_decision: f64,
    /// `null` if the row never ran (e.g. `--smoke` evaluated no decisions).
    measured_ns_per_node_decision: Option<f64>,
    /// baseline ÷ measured — > 1 means faster than the BENCH_7 kernel.
    ratio: f64,
    required: f64,
    pass: bool,
}

fn dense_kernel_gate(scenarios: &[Measurement]) -> DenseKernelGate {
    let measured =
        scenarios.iter().find(|m| m.name == "dense16384_t1").and_then(|m| m.ns_per_node_decision);
    let ratio = measured.map(|ns| BENCH7_DENSE_T1_NS / ns).unwrap_or(0.0);
    DenseKernelGate {
        scenario: "dense16384_t1".into(),
        baseline: "BENCH_7.json dense16384_t1 (embedded)".into(),
        baseline_ns_per_node_decision: BENCH7_DENSE_T1_NS,
        measured_ns_per_node_decision: measured,
        ratio,
        required: DENSE_KERNEL_REQUIRED,
        pass: ratio >= DENSE_KERNEL_REQUIRED,
    }
}

/// Times the shard pool's barrier round-trip on a no-op job: publish, wake,
/// sweep zero work, done-barrier. Pool shape = the `t4` matrix row
/// (4 workers × 64 shards) so the figure is the one that row actually pays
/// per round on a ≥ 4-core host.
fn measure_barrier(smoke: bool) -> f64 {
    use pp_metrics::shard::BarrierSample;
    use pp_sim::pool::ShardPool;
    let pool = ShardPool::new(4, 64);
    let mut slots = vec![0u8; 64];
    let rounds: u64 = if smoke { 200 } else { 2000 };
    // Warm: spawn-time page faults and first parks out of the window.
    for _ in 0..rounds / 10 {
        pool.run_shards(&mut slots, &|_, _| {});
    }
    let mut sample = BarrierSample::new();
    let start = Instant::now();
    for _ in 0..rounds {
        pool.run_shards(&mut slots, &|_, _| {});
    }
    sample.record(rounds, start.elapsed().as_nanos() as u64);
    sample.ns_per_round().expect("rounds > 0")
}

#[derive(Serialize)]
struct Output {
    bench: String,
    mode: String,
    /// `std::thread::available_parallelism()` on the measuring host (0 =
    /// unknown). The context every ratio must be read in: threads cannot
    /// win on a 1-core container, and this field proves which kind of
    /// host produced the numbers.
    host_parallelism: usize,
    /// "enforced" | "skipped (...)": whether the `t4 > t1` thread-scaling
    /// gate was live on this host — machine-readable, so downstream
    /// tooling never mistakes a skipped gate for a passed one.
    thread_gate: String,
    /// Per-round cost of the pool's lock-free epoch barrier on a no-op job
    /// (see [`measure_barrier`]) — recorded beside `host_parallelism`
    /// because the figure is as host-shaped as the core count is.
    barrier_ns_per_round: f64,
    /// The BENCH_9 dense-kernel gate, enforced on every host.
    dense_kernel: DenseKernelGate,
    scenarios: Vec<Measurement>,
    reports_identical: bool,
    /// Adaptive-vs-static differential (miniature): repartitioning must be
    /// outcome-invisible. The full-size gate is `lab --verify-repartition`.
    repartition_identical: bool,
    expectations: Vec<Expectation>,
    baseline: Option<Vec<Measurement>>,
    speedup_rounds_per_sec: Option<Vec<(String, f64)>>,
}

fn host_parallelism() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(0)
}

fn physics(jitter: bool) -> PhysicsConfig {
    PhysicsConfig {
        jitter: if jitter {
            // Slow decay (t_max far beyond any measured window) so the
            // per-task RNG draw — and with it the skip-disabling
            // non-stability — persists through warm-up and measurement.
            Some(FrictionJitter::new(0.3, 1.0, 1.0e9))
        } else {
            None
        },
        ..PhysicsConfig::default()
    }
}

#[allow(clippy::too_many_arguments)] // bench scenario axes, called from one table
fn engine_with(
    side: usize,
    shards: usize,
    threads: usize,
    sparse: bool,
    jitter: bool,
    moving: bool,
    repartition: Option<RepartitionConfig>,
    strategy: SimulationStrategy,
) -> pp_sim::engine::Engine {
    let topo = Topology::torus(&[side, side]);
    let n = topo.node_count();
    let w = if sparse || moving {
        Workload::from_loads(&vec![0.0; n], 1.0)
    } else {
        Workload::uniform_random(n, LOAD_PER_NODE, SEED)
    };
    let consume_rate = if sparse { 0.5 } else { 0.0 };
    // `side + 1` = one diagonal step per dwell: the hotspot drifts instead
    // of teleporting, so the dirty frontier stays one compact wandering
    // blob — narrow shards around it pay off, wide quiescent ones skip.
    // The sparse rate keeps the blob small relative to a uniform shard:
    // that gap (nodes a static layout sweeps but an adaptive one does not)
    // is exactly what the BENCH_8 gate measures, and a heavy blob erodes
    // it by making even the adaptive layout's hot shards wide.
    let arrival = if moving {
        ArrivalProcess::MovingHotspot { rate: 1.5, size: 1.0, dwell: 10.0, stride: side as u32 + 1 }
    } else {
        ArrivalProcess::Quiescent
    };
    EngineBuilder::new(topo)
        .workload(w)
        .balancer(ParticlePlaneBalancer::new(physics(jitter)))
        .config(EngineConfig {
            shards,
            threads,
            consume_rate,
            arrival,
            repartition,
            strategy,
            ..Default::default()
        })
        .seed(SEED)
        .build()
}

fn measure(sc: &Scenario, smoke: bool, shards_override: usize, threads_flag: usize) -> Measurement {
    let (warm, rounds) = if smoke { (1, sc.smoke_rounds) } else { (sc.warm, sc.rounds) };
    let shards = if sc.shards > 1 && shards_override > 0 { shards_override } else { sc.shards };
    // Per-row pin beats the global flag default, but an explicit
    // `--threads` overrides everything (debugging escape hatch).
    let threads = if threads_flag > 0 { threads_flag } else { sc.threads };
    let n = sc.side * sc.side;
    let mut engine = engine_with(
        sc.side,
        shards,
        threads,
        sc.sparse,
        sc.jitter,
        sc.moving,
        sc.repartition,
        sc.strategy,
    );
    // Warm up: converge past the initial migration burst so the measured
    // window is dominated by steady-state tick cost, and warm caches/pools.
    engine.run_rounds(warm.max(1));
    engine.reserve_rounds(rounds);
    let evaluated_before = engine.shard_stats().nodes_evaluated;
    let executed_before = engine.executed_rounds();
    let start = Instant::now();
    engine.run_rounds(rounds);
    let elapsed = start.elapsed();
    let secs = elapsed.as_secs_f64().max(1e-12);
    let evaluated = engine.shard_stats().nodes_evaluated - evaluated_before;
    let executed = engine.executed_rounds() - executed_before;
    let layout = engine.shard_layout();
    Measurement {
        name: sc.name.to_string(),
        nodes: n,
        rounds,
        shards: layout.shards,
        threads: layout.threads,
        strategy: sc.strategy.as_str().to_string(),
        rounds_per_sec: rounds as f64 / secs,
        executed_rounds: executed,
        executed_decisions: evaluated,
        ns_per_node_decision: if evaluated == 0 {
            None
        } else {
            Some(elapsed.as_nanos() as f64 / evaluated as f64)
        },
        skip_ratio: engine.shard_stats().skip_ratio(),
        repartitions: engine.repartitions(),
    }
}

/// Digest of everything observable about a run; byte-identical digests mean
/// identical `RunReport`s (Debug formatting of f64 is value-exact).
fn report_digest(r: &RunReport) -> String {
    format!(
        "{:?}|{:?}|{:?}|{}|{}|{}",
        r.series.points(),
        r.final_imbalance,
        r.ledger.migration_count(),
        r.ledger.total_load_moved(),
        r.ledger.total_weighted_traffic(),
        r.total_load,
    )
}

/// The sequential reference vs the sharded pipeline — single- and
/// multi-threaded, skip-capable and jittered (always-dense) — must be
/// outcome-identical for the same seed.
fn seq_shard_identical(smoke: bool) -> bool {
    let rounds = if smoke { 3 } else { 60 };
    let run = |shards: usize, threads: usize, jitter: bool| {
        let mut e =
            engine_with(32, shards, threads, false, jitter, false, None, SimulationStrategy::Tick);
        e.run_rounds(rounds).drain(50.0);
        report_digest(&e.report())
    };
    let seq = run(1, 1, false);
    let dense = run(1, 1, true);
    seq == run(16, 1, false)
        && seq == run(16, 2, false)
        && seq == run(5, 3, false)
        && dense == run(16, 4, true)
        && dense == run(16, 8, true)
}

/// The adaptive pair in miniature: a repartitioning run must be
/// outcome-identical to its static twin for the same seed (and must
/// actually repartition, or the comparison verifies nothing).
fn adaptive_static_identical(smoke: bool) -> bool {
    let rounds = if smoke { 6 } else { 60 };
    let run = |rp: Option<RepartitionConfig>| {
        let mut e = engine_with(32, 16, 2, false, false, true, rp, SimulationStrategy::Tick);
        e.run_rounds(rounds).drain(50.0);
        (report_digest(&e.report()), e.repartitions())
    };
    let (static_digest, _) = run(None);
    let (adaptive_digest, fired) = run(Some(RepartitionConfig { every: 2, skew_threshold: 1.5 }));
    adaptive_digest == static_digest && (smoke || fired > 0)
}

fn extract_baseline(path: &str) -> Result<Vec<Measurement>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let v: Value = serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let scenarios = v
        .get("scenarios")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{path} has no `scenarios` array"))?;
    let mut out = Vec::new();
    for s in scenarios {
        let field = |k: &str| s.get(k).and_then(Value::as_f64);
        out.push(Measurement {
            name: s.get("name").and_then(Value::as_str).unwrap_or("?").to_string(),
            nodes: field("nodes").unwrap_or(0.0) as usize,
            rounds: field("rounds").unwrap_or(0.0) as u64,
            shards: field("shards").unwrap_or(0.0) as usize,
            threads: field("threads").unwrap_or(0.0) as usize,
            // Pre-BENCH_6 baselines had no strategy column: all tick.
            strategy: s.get("strategy").and_then(Value::as_str).unwrap_or("tick").to_string(),
            rounds_per_sec: field("rounds_per_sec").unwrap_or(0.0),
            // Pre-BENCH_7 baselines had neither executed column.
            executed_rounds: field("executed_rounds").unwrap_or(0.0) as u64,
            executed_decisions: field("executed_decisions").unwrap_or(0.0) as u64,
            // A BENCH_6 `0.0` meant "nothing executed"; normalize to null.
            ns_per_node_decision: field("ns_per_node_decision").filter(|&x| x > 0.0),
            skip_ratio: field("skip_ratio").unwrap_or(0.0),
            // Pre-BENCH_8 baselines had no repartition column.
            repartitions: field("repartitions").unwrap_or(0.0) as u64,
        });
    }
    Ok(out)
}

/// The scaling contract: sharded ≥ sequential at 1 024 nodes, ≥ 1.5× at
/// 16 384 (the two scales BENCH_2 showed the work-stealing path *losing*),
/// the event strategy ≥ 5× the tick strategy on the sparse-activity
/// 65 536-node pair, 4 pinned workers strictly faster than 1 on the dense
/// (never-skipping) 16 384-node matrix (enforced only where the host
/// actually has ≥ 4 cores), and — the BENCH_8 addition — adaptive
/// repartitioning ≥ 1.3× static on the drifting-hotspot pair.
fn expectations(scenarios: &[Measurement], cores: usize) -> Vec<Expectation> {
    let rps = |name: &str| {
        scenarios.iter().find(|m| m.name == name).map(|m| m.rounds_per_sec).unwrap_or(0.0)
    };
    [
        (1024, "torus1024_seq", "torus1024_shard", 1.0, true),
        (16384, "torus16384_seq", "torus16384_shard", 1.5, true),
        (65536, "sparse65536_tick", "sparse65536_event", 5.0, true),
        (16384, "dense16384_t1", "dense16384_t4", 1.0, cores >= GATE_MIN_CORES),
        (16384, "hotspot16384_static", "hotspot16384_adaptive", 1.3, true),
    ]
    .into_iter()
    .map(|(nodes, reference, candidate, required, enforced)| {
        let (s, p) = (rps(reference), rps(candidate));
        let ratio = if s > 0.0 { p / s } else { 0.0 };
        Expectation {
            pair: format!("{candidate}/{reference}"),
            nodes,
            reference_rps: s,
            candidate_rps: p,
            ratio,
            required,
            // The thread gate is strict (threads must *win*, not tie);
            // the legacy ratios keep their ≥ semantics.
            pass: if required == 1.0 { ratio > required } else { ratio >= required },
            enforced,
        }
    })
    .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned();

    if let Some(path) = opt("--check") {
        match pp_bench::check_json_file(&path) {
            Ok(()) => {
                println!("{path}: OK (valid JSON)");
                return;
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        }
    }

    let smoke = flag("--smoke");
    let enforce = flag("--enforce");
    let dense_only = flag("--dense");
    if smoke && enforce {
        // Smoke numbers are explicitly meaningless: warm-up is one round,
        // the system never quiesces, and the ratio is noise. Refuse rather
        // than gate on it.
        eprintln!("error: --enforce requires full measurement mode; drop --smoke");
        std::process::exit(2);
    }
    let shards_override: usize =
        opt("--shards").map(|s| s.parse().expect("--shards N")).unwrap_or(0);
    let threads: usize = opt("--threads").map(|s| s.parse().expect("--threads N")).unwrap_or(0);
    let out_path = opt("--out").unwrap_or_else(|| "BENCH_9.json".to_string());
    let baseline = opt("--baseline").map(|p| match extract_baseline(&p) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    });

    let cores = host_parallelism();
    let thread_gate = if cores >= GATE_MIN_CORES {
        "enforced".to_string()
    } else {
        format!("skipped (host_parallelism {cores} < {GATE_MIN_CORES})")
    };
    let mode = if dense_only {
        "dense"
    } else if smoke {
        "smoke"
    } else {
        "full"
    };
    println!(
        "=== BENCH_9: sharded tick + event-strategy + thread-scaling + adaptive-repartition + \
         dense-kernel throughput ({mode}, {cores} cores)"
    );
    let barrier_ns = measure_barrier(smoke);
    println!("  barrier (4 workers x 64 shards, no-op job): {barrier_ns:.1} ns/round");
    let mut scenarios = Vec::new();
    for sc in SCENARIOS {
        if dense_only && !sc.name.starts_with("dense16384") {
            continue;
        }
        let m = measure(sc, smoke, shards_override, threads);
        println!(
            "  {:17} {:6} nodes  K={:<3} T={:<2} {:5} {:>12.1} rounds/s  {:>9.1} ns/node-decision  \
             skip={:.2}",
            m.name,
            m.nodes,
            m.shards,
            m.threads,
            m.strategy,
            m.rounds_per_sec,
            m.ns_per_node_decision.unwrap_or(f64::NAN),
            m.skip_ratio
        );
        scenarios.push(m);
    }

    // In --dense mode the differentials run in their miniature (smoke)
    // form: still a real byte-identity check, small enough for a fast job.
    let identical = seq_shard_identical(smoke || dense_only);
    println!("  seq/sharded reports identical: {identical}");
    assert!(identical, "sharded decision sweep diverged from sequential");

    let repart_identical = adaptive_static_identical(smoke || dense_only);
    println!("  adaptive/static reports identical: {repart_identical}");
    assert!(repart_identical, "adaptive repartitioning diverged from the static layout");

    // Cross-pair expectations need rows --dense does not run; the dense
    // mode gates on the dense-kernel ratio alone.
    let expect = if dense_only { Vec::new() } else { expectations(&scenarios, cores) };
    for e in &expect {
        println!(
            "  scaling @ {:5} nodes: {} = {:.2}x (required {:.1}x) → {}",
            e.nodes,
            e.pair,
            e.ratio,
            e.required,
            if !e.enforced {
                "skipped"
            } else if e.pass {
                "pass"
            } else {
                "FAIL"
            }
        );
    }
    if cores < GATE_MIN_CORES {
        // A skipped gate must be loud, not a silently green job — but the
        // `::notice::` annotation syntax is GitHub Actions' own; on a
        // developer terminal it is line noise, so print a plain note there.
        let msg = format!(
            "host has {cores} core(s), the dense16384 t4>t1 gate needs {GATE_MIN_CORES}; \
             ratios recorded unenforced"
        );
        if std::env::var_os("GITHUB_ACTIONS").is_some() {
            println!("::notice title=thread-scaling gate skipped::{msg}");
        } else {
            println!("note: thread-scaling gate skipped: {msg}");
        }
    }
    let dense_kernel = dense_kernel_gate(&scenarios);
    println!(
        "  dense kernel @ 16384 nodes: {} = {:.1} ns/decision vs baseline {:.1} → ratio {:.2}x \
         (required {:.2}x) → {}",
        dense_kernel.scenario,
        dense_kernel.measured_ns_per_node_decision.unwrap_or(f64::NAN),
        dense_kernel.baseline_ns_per_node_decision,
        dense_kernel.ratio,
        dense_kernel.required,
        if dense_kernel.pass { "pass" } else { "FAIL" }
    );

    let all_pass = expect.iter().filter(|e| e.enforced).all(|e| e.pass) && dense_kernel.pass;

    let speedups = baseline.as_ref().map(|base| {
        scenarios
            .iter()
            .filter_map(|m| {
                base.iter().find(|b| b.name == m.name && b.rounds_per_sec > 0.0).map(|b| {
                    let s = m.rounds_per_sec / b.rounds_per_sec;
                    println!("  speedup {:17} {s:.2}x", m.name);
                    (m.name.clone(), s)
                })
            })
            .collect::<Vec<_>>()
    });

    let output = Output {
        bench: "BENCH_9 sharded tick + event-strategy + pinned-worker thread scaling + \
                adaptive repartitioning + SoA dense kernel + lock-free epoch barrier \
                (quiescent redistribution + jittered dense matrix + drifting hotspot, \
                particle-plane)"
            .into(),
        mode: mode.into(),
        host_parallelism: cores,
        thread_gate,
        barrier_ns_per_round: barrier_ns,
        dense_kernel,
        scenarios,
        reports_identical: identical,
        repartition_identical: repart_identical,
        expectations: expect,
        baseline,
        speedup_rounds_per_sec: speedups,
    };
    let json = serde_json::to_string_pretty(&output).expect("serialize");
    std::fs::write(&out_path, json).expect("write output");
    println!("[json artifact: {out_path}]");

    if enforce && !all_pass {
        // Satellite contract: a failed gate names its numbers — the
        // measured ratio, the requirement, and both raw values — so a CI
        // log is diagnosable without re-running the bench.
        for e in output.expectations.iter().filter(|e| e.enforced && !e.pass) {
            eprintln!(
                "error: scaling expectation {} failed: measured ratio {:.3}x < required {:.2}x \
                 (reference {:.1} rounds/s, candidate {:.1} rounds/s)",
                e.pair, e.ratio, e.required, e.reference_rps, e.candidate_rps
            );
        }
        let dk = &output.dense_kernel;
        if !dk.pass {
            eprintln!(
                "error: dense-kernel gate failed: {} measured {:.1} ns/node-decision vs \
                 baseline {:.4} ({}); ratio {:.3}x < required {:.2}x",
                dk.scenario,
                dk.measured_ns_per_node_decision.unwrap_or(f64::NAN),
                dk.baseline_ns_per_node_decision,
                dk.baseline,
                dk.ratio,
                dk.required
            );
        }
        std::process::exit(1);
    }
}
