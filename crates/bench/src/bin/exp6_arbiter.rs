//! E6 — §5.2: the stochastic arbiter's annealing curve. Plots the
//! probability of choosing the steepest link over time for a grid of
//! `(β₀, c, t_max)` settings, analytically and by sampling; the rigidity
//! must increase monotonically toward 1.

use pp_bench::{banner, dump_json};
use pp_core::arbiter::Arbiter;
use pp_metrics::summary::{fmt, TextTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    beta0: f64,
    c: f64,
    t_max: f64,
    t: f64,
    p_analytic: f64,
    p_sampled: f64,
}

fn main() {
    banner("E6", "arbiter annealing", "§5.2 stochastic arbiter");
    let scores = [(0u32, 1.0), (1, 3.0), (2, 5.0)]; // steepest is candidate 2
    let plain: Vec<f64> = scores.iter().map(|&(_, s)| s).collect();
    let times = [0.0, 25.0, 50.0, 100.0, 200.0, 400.0];
    let mut rows = Vec::new();
    let mut rng = StdRng::seed_from_u64(123);

    for &(beta0, c, t_max) in
        &[(0.3, 3.0, 100.0), (0.6, 3.0, 100.0), (0.6, 1.0, 100.0), (0.9, 5.0, 50.0)]
    {
        let a = Arbiter::Stochastic { beta0, c, t_max };
        for &t in &times {
            let p_analytic = a.steepest_probability(&plain, t);
            let n = 8000;
            let hits = (0..n).filter(|_| a.choose(&scores, t, &mut rng) == Some(2)).count();
            rows.push(Row { beta0, c, t_max, t, p_analytic, p_sampled: hits as f64 / n as f64 });
        }
    }

    let mut table =
        TextTable::new(vec!["β₀", "c", "t_max", "t", "P(steepest) analytic", "sampled"]);
    for r in &rows {
        table.row(vec![
            fmt(r.beta0, 1),
            fmt(r.c, 1),
            fmt(r.t_max, 0),
            fmt(r.t, 0),
            fmt(r.p_analytic, 4),
            fmt(r.p_sampled, 4),
        ]);
    }
    println!("{}", table.render());

    // Monotone rigidity per configuration, analytic ≈ sampled, and the
    // late-time limit is the deterministic rule.
    for chunk in rows.chunks(times.len()) {
        for w in chunk.windows(2) {
            assert!(w[1].p_analytic >= w[0].p_analytic - 1e-12, "rigidity decreased");
        }
        let last = chunk.last().unwrap();
        assert!(last.p_analytic > 0.95, "late-time rigidity too low: {}", last.p_analytic);
    }
    for r in &rows {
        assert!(
            (r.p_analytic - r.p_sampled).abs() < 0.03,
            "analytic {} vs sampled {} at t={}",
            r.p_analytic,
            r.p_sampled,
            r.t
        );
    }
    println!("\nRigidity grows monotonically to 1; sampling matches the closed form.");
    dump_json("exp6_arbiter", &rows);
}
