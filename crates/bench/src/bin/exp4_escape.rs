//! E4 — Theorem 1 + Corollary 3 + Fig. 3: escape radii.
//!
//! Theorem 1 speaks about an object *in motion*: only then can its
//! potential height `h*` exceed the surrounding terrain. Part A releases
//! objects at rest inside a crater basin (there `h* ≤ P_c` always, so the
//! rigorous content is Corollary 3's trapping-radius bound and the energy
//! invariants). Part B flies objects across a double well into a contour
//! around the far minimum and evaluates `P_c ≤ h* − µ_k·r` at entry
//! against whether the object actually leaves again.

use pp_bench::{banner, dump_json};
use pp_metrics::summary::{fmt, TextTable};
use pp_physics::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct RowA {
    rim_height: f64,
    mu: f64,
    start_r: f64,
    h_star: f64,
    travel_bound: f64,
    displacement: f64,
    ok: bool,
}

#[derive(Serialize)]
struct RowB {
    mu: f64,
    release_x: f64,
    h_star_entry: f64,
    peak: f64,
    escape_radius: f64,
    theory_escape: bool,
    escaped: bool,
}

fn main() {
    banner("E4", "escape radius & Theorem 1", "Theorem 1, Corollary 3, Fig. 3");
    let cfg = SimConfig { g: 10.0, dt: 1e-3, stop_speed: 1e-4, max_steps: 400_000 };

    // --- Part A: Corollary 3 on crater basins (objects released at rest).
    let mut rows_a = Vec::new();
    for &rim_height in &[0.3, 0.6, 1.2] {
        let crater =
            AnalyticSurface::Crater { center: Vec2::ZERO, floor_r: 1.0, rim_r: 2.0, rim_height };
        let max_slope = rim_height;
        for &mu in &[0.05, 0.15, 0.4] {
            for &start_r in &[1.2, 1.6, 1.95] {
                let start = Vec2::new(start_r, 0.0);
                let check =
                    max_travel_check(&crater, Friction::uniform(mu), cfg, start, 1.0, max_slope);
                rows_a.push(RowA {
                    rim_height,
                    mu,
                    start_r,
                    h_star: crater.height(start),
                    travel_bound: check.bound,
                    displacement: check.displacement,
                    ok: check.ok,
                });
            }
        }
    }
    let mut table_a =
        TextTable::new(vec!["rim", "µ", "start r", "h*", "bound h*/µ", "displacement", "ok"]);
    for r in &rows_a {
        table_a.row(vec![
            fmt(r.rim_height, 1),
            fmt(r.mu, 2),
            fmt(r.start_r, 2),
            fmt(r.h_star, 2),
            fmt(r.travel_bound, 2),
            fmt(r.displacement, 2),
            if r.ok { "✓".to_string() } else { "✗".to_string() },
        ]);
    }
    println!("Part A — Corollary 3 trapping radius (crater, rest starts):\n");
    println!("{}", table_a.render());
    assert!(rows_a.iter().all(|r| r.ok), "Corollary 3 bound violated");

    // --- Part B: Theorem 1 for objects in motion (double well).
    let well = AnalyticSurface::DoubleWell { a: 2.0, barrier: 1.0 };
    // Contour: a disc of radius 1.2 around the far minimum (+2, 0). Its
    // peak is the profile height at distance 1.2 from the minimum.
    let contour = Contour::disc(Vec2::new(2.0, 0.0), 1.2, 0.02);
    let mut rows_b = Vec::new();
    for &mu in &[0.01, 0.03, 0.08, 0.2, 0.5] {
        for &release_x in &[-3.2, -3.6, -4.0] {
            let mut sim = Simulation::new(
                &well,
                Friction::uniform(mu),
                cfg,
                Particle::at_rest(Vec2::new(release_x, 0.0), 1.0),
            );
            // Fly until the object enters the contour (or rests outside).
            let entry = sim.run_until(|s| contour.contains(s.particle().pos));
            if entry.reason != StopReason::Predicate {
                continue; // never reached the far well (high µ): skip
            }
            let h_star_entry = sim.potential_height();
            let r_entry = contour.escape_radius(sim.particle().pos);
            let peak = contour.peak(&well);
            let theory = escape_possible(peak, h_star_entry, mu, r_entry);
            // Continue: does it leave the contour again?
            let out = sim.run_until(|s| !contour.contains(s.particle().pos));
            let escaped = out.reason == StopReason::Predicate;
            rows_b.push(RowB {
                mu,
                release_x,
                h_star_entry,
                peak,
                escape_radius: r_entry,
                theory_escape: theory,
                escaped,
            });
        }
    }
    let mut table_b = TextTable::new(vec![
        "µ",
        "release x",
        "h* at entry",
        "P_c",
        "r_{c,p}",
        "theory: can escape",
        "escaped",
    ]);
    for r in &rows_b {
        table_b.row(vec![
            fmt(r.mu, 2),
            fmt(r.release_x, 1),
            fmt(r.h_star_entry, 3),
            fmt(r.peak, 3),
            fmt(r.escape_radius, 2),
            r.theory_escape.to_string(),
            r.escaped.to_string(),
        ]);
    }
    println!("Part B — Theorem 1 at contour entry (double well, flying entries):\n");
    println!("{}", table_b.render());

    // The sufficient condition must be demonstrated in both directions, and
    // low-friction flyers predicted to escape must actually escape (1-D
    // dynamics find the exit).
    assert!(rows_b.iter().any(|r| r.theory_escape && r.escaped), "no theory-true escape observed");
    assert!(
        rows_b.iter().any(|r| !r.theory_escape && !r.escaped),
        "no theory-false trapping observed"
    );
    for r in &rows_b {
        if r.theory_escape && r.mu <= 0.03 {
            assert!(r.escaped, "µ={} x={} predicted escape did not escape", r.mu, r.release_x);
        }
    }
    println!("\nTheorem 1 separates escapers from trapped objects; Corollary 3 bounds travel.");
    dump_json("exp4_escape_a", &rows_a);
    dump_json("exp4_escape_b", &rows_b);
}
