//! E10 — §4.1's heat ≡ traffic analogy, measured: across heterogeneous
//! systems the heat billed by the energy model (`Σ E_h`) must track the
//! measured weighted traffic (`Σ size·e_{i,j}`) record-by-record
//! (correlation ≈ 1) and in total (constant ratio `c₀·g·µ_k` when µ_k is
//! uniform). Each system is one [`ScenarioSpec`] with a different
//! `LinkSpec::Random` attribute envelope.

use pp_bench::{banner, dump_json};
use pp_metrics::summary::{fmt, TextTable};
use pp_scenario::spec::{DurationSpec, LinkSpec, ScenarioSpec, WorkloadSpec};
use pp_topology::spec::TopologySpec;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    system: String,
    hops: usize,
    total_heat: f64,
    total_traffic: f64,
    ratio: f64,
    correlation: f64,
}

fn main() {
    banner("E10", "heat ≡ traffic", "§4.1 analogy table discussion");
    let mut rows = Vec::new();
    for (name, seed, bw, d) in [
        ("uniform links", 1u64, (1.0, 1.0), (1.0, 1.0)),
        ("heterogeneous bw", 2, (0.5, 3.0), (1.0, 1.0)),
        ("heterogeneous distance", 3, (1.0, 1.0), (0.5, 3.0)),
        ("fully heterogeneous", 4, (0.5, 3.0), (0.5, 3.0)),
    ] {
        let spec = ScenarioSpec {
            name: format!("e10-{}", name.replace(' ', "-")),
            topology: TopologySpec::Torus { dims: vec![8, 8] },
            links: LinkSpec::Random { seed, bw, d, f_max: 0.0 },
            workload: WorkloadSpec::Bimodal { fraction: 0.3, high: 6.3, low: 1.7, seed },
            duration: DurationSpec { rounds: 300, drain: 1000.0 },
            seed,
            ..ScenarioSpec::default()
        };
        let r = spec.run().expect("valid scenario");
        let heat = r.ledger.total_heat();
        let traffic = r.ledger.total_weighted_traffic();
        rows.push(Row {
            system: name.to_string(),
            hops: r.ledger.migration_count(),
            total_heat: heat,
            total_traffic: traffic,
            ratio: heat / traffic,
            correlation: r.ledger.heat_traffic_correlation().unwrap_or(f64::NAN),
        });
    }

    let mut table = TextTable::new(vec![
        "system",
        "hops",
        "Σ heat",
        "Σ size·e",
        "heat/traffic",
        "per-hop correlation",
    ]);
    for r in &rows {
        table.row(vec![
            r.system.clone(),
            r.hops.to_string(),
            fmt(r.total_heat, 1),
            fmt(r.total_traffic, 1),
            fmt(r.ratio, 3),
            if r.correlation.is_nan() {
                "n/a (zero variance)".into()
            } else {
                fmt(r.correlation, 4)
            },
        ]);
    }
    println!("{}", table.render());

    for r in &rows {
        // With uniform µ_k = 1 and c₀ = g = 1, heat = traffic exactly.
        assert!((r.ratio - 1.0).abs() < 0.05, "{}: ratio {}", r.system, r.ratio);
        if !r.correlation.is_nan() {
            assert!(r.correlation > 0.99, "{}: corr {}", r.system, r.correlation);
        }
    }
    println!("\nHeat billed by the physics equals measured traffic — the analogy is exact.");
    dump_json("exp10_heat", &rows);
}
