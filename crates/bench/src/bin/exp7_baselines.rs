//! E7 — the comparison the paper argues for in §2/§6: particle-plane vs
//! the classical schemes (diffusion, dimension exchange, GM, CWN, random,
//! sender-initiated) on identical workloads, topologies and seeds.
//! Reports final CoV, cumulative imbalance (AUC), migrations and traffic,
//! averaged over seeds. Every cell of the matrix is one [`ScenarioSpec`]
//! differing only in the `balancer` and `seed` fields.

use pp_bench::{banner, dump_json};
use pp_metrics::summary::{fmt, Summary, TextTable};
use pp_scenario::spec::{BalancerSpec, DiffusionAlpha, DurationSpec, ScenarioSpec, WorkloadSpec};
use pp_topology::spec::TopologySpec;
use serde::Serialize;

/// The balancer lineup. `mean` is the per-node mean load the threshold
/// policies calibrate against.
fn lineup(mean: f64) -> Vec<(&'static str, BalancerSpec)> {
    vec![
        ("particle-plane", BalancerSpec::default()),
        ("diffusion-opt", BalancerSpec::Diffusion { alpha: DiffusionAlpha::Optimal }),
        ("dimension-exchange", BalancerSpec::DimensionExchange),
        ("gradient-model", BalancerSpec::GradientModel { low: 0.75 * mean, high: 1.25 * mean }),
        ("cwn", BalancerSpec::Cwn { threshold: 1.0 }),
        ("random", BalancerSpec::RandomNeighbor { threshold: 1.0 }),
        (
            "sender-init",
            BalancerSpec::SenderInitiated { t_high: 1.5 * mean, t_accept: mean, probes: 2 },
        ),
    ]
}

#[derive(Serialize)]
struct Row {
    workload: String,
    balancer: String,
    final_cov_mean: f64,
    final_cov_ci: f64,
    auc_mean: f64,
    hops_mean: f64,
    traffic_mean: f64,
}

fn main() {
    banner("E7", "bake-off against the §2 baselines", "§2 related work, §6 conclusions");
    let seeds = [1u64, 2, 3, 4, 5];
    let n = 64usize;
    let mut rows = Vec::new();

    for wname in ["hotspot", "bimodal", "uniform-random"] {
        // Workloads are regenerated per seed (placement seeds vary).
        let workload_for = |seed: u64| match wname {
            "hotspot" => WorkloadSpec::Hotspot { node: 0, total: 2.0 * n as f64, task_size: 1.0 },
            "bimodal" => WorkloadSpec::Bimodal { fraction: 0.25, high: 6.0, low: 0.5, seed },
            _ => WorkloadSpec::UniformRandom { max_per_node: 4.0, seed },
        };
        // Mean per-node load of the first seed calibrates the thresholds
        // (the bimodal/uniform totals barely move across seeds).
        let mean = workload_for(seeds[0]).build(n).total_load() / n as f64;
        for (bname, balancer) in lineup(mean) {
            let mut covs = Vec::new();
            let mut aucs = Vec::new();
            let mut hops = Vec::new();
            let mut traffic = Vec::new();
            for &seed in &seeds {
                let spec = ScenarioSpec {
                    name: format!("e7-{wname}-{bname}-{seed}"),
                    topology: TopologySpec::Torus { dims: vec![8, 8] },
                    workload: workload_for(seed),
                    balancer: balancer.clone(),
                    duration: DurationSpec { rounds: 400, drain: 1000.0 },
                    seed,
                    ..ScenarioSpec::default()
                };
                let r = spec.run().expect("valid scenario");
                covs.push(r.final_imbalance.cov);
                aucs.push(r.series.auc());
                hops.push(r.ledger.migration_count() as f64);
                traffic.push(r.ledger.total_weighted_traffic());
            }
            let s = Summary::of(&covs);
            rows.push(Row {
                workload: wname.to_string(),
                balancer: bname.to_string(),
                final_cov_mean: s.mean,
                final_cov_ci: s.ci95(),
                auc_mean: Summary::of(&aucs).mean,
                hops_mean: Summary::of(&hops).mean,
                traffic_mean: Summary::of(&traffic).mean,
            });
        }
    }

    let mut table = TextTable::new(vec![
        "workload",
        "balancer",
        "final CoV (±ci95)",
        "CoV AUC",
        "hops",
        "traffic",
    ]);
    for r in &rows {
        table.row(vec![
            r.workload.clone(),
            r.balancer.clone(),
            format!("{} ±{}", fmt(r.final_cov_mean, 3), fmt(r.final_cov_ci, 3)),
            fmt(r.auc_mean, 1),
            fmt(r.hops_mean, 0),
            fmt(r.traffic_mean, 0),
        ]);
    }
    println!("{}", table.render());

    // Shape checks: on the hotspot, particle-plane must end better balanced
    // than diffusion, random and sender-init (the schemes the paper says
    // get stuck on coarse gradients), and its heat-priced traffic must be
    // the highest — the explicit cost of inertia-driven spreading.
    let get =
        |w: &str, b: &str| rows.iter().find(|r| r.workload == w && r.balancer == b).expect("row");
    let pp = get("hotspot", "particle-plane");
    for other in ["diffusion-opt", "random", "sender-init"] {
        assert!(
            pp.final_cov_mean < get("hotspot", other).final_cov_mean,
            "particle-plane should out-balance {other} on the hotspot"
        );
    }
    assert!(
        pp.traffic_mean > get("hotspot", "diffusion-opt").traffic_mean,
        "particle-plane trades traffic for balance"
    );
    println!("\nShape holds: particle-plane out-balances diffusion/random/sender-init on the");
    println!("hotspot while paying more traffic (inertia spreads loads farther).");
    dump_json("exp7_baselines", &rows);
}
