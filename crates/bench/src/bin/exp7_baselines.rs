//! E7 — the comparison the paper argues for in §2/§6: particle-plane vs
//! the classical schemes (diffusion, dimension exchange, GM, CWN, random,
//! sender-initiated) on identical workloads, topologies and seeds.
//! Reports final CoV, cumulative imbalance (AUC), migrations and traffic,
//! averaged over seeds.

use pp_bench::{banner, dump_json, run_once};
use pp_core::balancer::ParticlePlaneBalancer;
use pp_core::baselines::*;
use pp_core::params::PhysicsConfig;
use pp_metrics::summary::{fmt, Summary, TextTable};
use pp_sim::balancer::LoadBalancer;
use pp_sim::engine::EngineConfig;
use pp_tasking::workload::Workload;
use pp_topology::graph::Topology;
use serde::Serialize;

fn make(name: &str, topo: &Topology, mean: f64) -> Box<dyn LoadBalancer> {
    match name {
        "particle-plane" => Box::new(ParticlePlaneBalancer::new(PhysicsConfig::default())),
        "diffusion-opt" => Box::new(DiffusionBalancer::optimal(topo)),
        "dimension-exchange" => Box::new(DimensionExchangeBalancer::new(topo)),
        "gradient-model" => Box::new(GradientModelBalancer::new(0.75 * mean, 1.25 * mean)),
        "cwn" => Box::new(CwnBalancer::new(1.0)),
        "random" => Box::new(RandomNeighborBalancer::new(1.0)),
        "sender-init" => Box::new(SenderInitiatedBalancer::new(1.5 * mean, mean, 2)),
        _ => unreachable!(),
    }
}

#[derive(Serialize)]
struct Row {
    workload: String,
    balancer: String,
    final_cov_mean: f64,
    final_cov_ci: f64,
    auc_mean: f64,
    hops_mean: f64,
    traffic_mean: f64,
}

fn main() {
    banner("E7", "bake-off against the §2 baselines", "§2 related work, §6 conclusions");
    let names = [
        "particle-plane",
        "diffusion-opt",
        "dimension-exchange",
        "gradient-model",
        "cwn",
        "random",
        "sender-init",
    ];
    let seeds = [1u64, 2, 3, 4, 5];
    let rounds = 400;
    let mut rows = Vec::new();

    for (wname, wgen) in [("hotspot", 0usize), ("bimodal", 1), ("uniform-random", 2)] {
        for name in names {
            let mut covs = Vec::new();
            let mut aucs = Vec::new();
            let mut hops = Vec::new();
            let mut traffic = Vec::new();
            for &seed in &seeds {
                let topo = Topology::torus(&[8, 8]);
                let n = topo.node_count();
                let w = match wgen {
                    0 => Workload::hotspot(n, 0, 2.0 * n as f64),
                    1 => Workload::bimodal(n, 0.25, 6.0, 0.5, seed),
                    _ => Workload::uniform_random(n, 4.0, seed),
                };
                let mean = w.total_load() / n as f64;
                let r = run_once(
                    topo.clone(),
                    None,
                    w,
                    make(name, &topo, mean),
                    EngineConfig::default(),
                    rounds,
                    seed,
                );
                covs.push(r.final_imbalance.cov);
                aucs.push(r.series.auc());
                hops.push(r.ledger.migration_count() as f64);
                traffic.push(r.ledger.total_weighted_traffic());
            }
            let s = Summary::of(&covs);
            rows.push(Row {
                workload: wname.to_string(),
                balancer: name.to_string(),
                final_cov_mean: s.mean,
                final_cov_ci: s.ci95(),
                auc_mean: Summary::of(&aucs).mean,
                hops_mean: Summary::of(&hops).mean,
                traffic_mean: Summary::of(&traffic).mean,
            });
        }
    }

    let mut table = TextTable::new(vec![
        "workload",
        "balancer",
        "final CoV (±ci95)",
        "CoV AUC",
        "hops",
        "traffic",
    ]);
    for r in &rows {
        table.row(vec![
            r.workload.clone(),
            r.balancer.clone(),
            format!("{} ±{}", fmt(r.final_cov_mean, 3), fmt(r.final_cov_ci, 3)),
            fmt(r.auc_mean, 1),
            fmt(r.hops_mean, 0),
            fmt(r.traffic_mean, 0),
        ]);
    }
    println!("{}", table.render());

    // Shape checks: on the hotspot, particle-plane must end better balanced
    // than diffusion, random and sender-init (the schemes the paper says
    // get stuck on coarse gradients), and its heat-priced traffic must be
    // the highest — the explicit cost of inertia-driven spreading.
    let get =
        |w: &str, b: &str| rows.iter().find(|r| r.workload == w && r.balancer == b).expect("row");
    let pp = get("hotspot", "particle-plane");
    for other in ["diffusion-opt", "random", "sender-init"] {
        assert!(
            pp.final_cov_mean < get("hotspot", other).final_cov_mean,
            "particle-plane should out-balance {other} on the hotspot"
        );
    }
    assert!(
        pp.traffic_mean > get("hotspot", "diffusion-opt").traffic_mean,
        "particle-plane trades traffic for balance"
    );
    println!("\nShape holds: particle-plane out-balances diffusion/random/sender-init on the");
    println!("hotspot while paying more traffic (inertia spreads loads farther).");
    dump_json("exp7_baselines", &rows);
}
