//! E5 — Theorem 2: convergence to a nearly perfect balance. Runs the
//! particle-plane balancer on every standard topology family × workload
//! shape and reports the imbalance trajectory: initial CoV, rounds to
//! CoV ≤ 0.5 and ≤ 0.3, and the final state. The whole matrix is built
//! declaratively: one [`ScenarioSpec`] per cell.

use pp_bench::{banner, dump_json, initial_cov};
use pp_metrics::summary::{fmt, TextTable};
use pp_scenario::spec::{DurationSpec, ScenarioSpec, WorkloadSpec};
use pp_topology::spec::TopologySpec;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    topology: String,
    workload: String,
    initial_cov: f64,
    final_cov: f64,
    rounds_to_05: Option<f64>,
    rounds_to_03: Option<f64>,
    migrations: usize,
}

fn main() {
    banner("E5", "convergence of the particle-plane scheme", "Theorem 2");
    let topologies = vec![
        TopologySpec::Mesh { dims: vec![8, 8] },
        TopologySpec::Torus { dims: vec![8, 8] },
        TopologySpec::Hypercube { dim: 6 },
        TopologySpec::Ring { n: 64 },
        TopologySpec::Random { n: 64, p: 0.05, seed: 3 },
    ];
    let mut rows = Vec::new();
    for topo in topologies {
        let n = topo.node_count();
        // Mean loads sit well above the friction floor (µ_s·e + 2l ≈ 3) so
        // the relative residual imbalance stays small.
        let workloads = vec![
            WorkloadSpec::Hotspot { node: 0, total: 2.0 * n as f64, task_size: 1.0 },
            WorkloadSpec::UniformRandom { max_per_node: 12.0, seed: 5 },
            WorkloadSpec::Bimodal { fraction: 0.25, high: 16.0, low: 2.0, seed: 5 },
        ];
        for workload in workloads {
            let spec = ScenarioSpec {
                name: format!("e5-{}-{}", topo.label().replace(' ', "-"), workload.label()),
                topology: topo.clone(),
                workload,
                duration: DurationSpec { rounds: 600, drain: 1000.0 },
                seed: 11,
                ..ScenarioSpec::default()
            };
            let init = initial_cov(&spec.workload.build(n));
            let r = spec.run().expect("valid scenario");
            rows.push(Row {
                topology: spec.topology.label(),
                workload: spec.workload.label().to_string(),
                initial_cov: init,
                final_cov: r.final_imbalance.cov,
                rounds_to_05: r.converged_round(0.5, 3),
                rounds_to_03: r.converged_round(0.3, 3),
                migrations: r.ledger.migration_count(),
            });
        }
    }
    let mut table = TextTable::new(vec![
        "topology",
        "workload",
        "CoV₀",
        "CoV final",
        "t(CoV≤0.5)",
        "t(CoV≤0.3)",
        "hops",
    ]);
    for r in &rows {
        table.row(vec![
            r.topology.clone(),
            r.workload.clone(),
            fmt(r.initial_cov, 2),
            fmt(r.final_cov, 3),
            r.rounds_to_05.map(|t| fmt(t, 0)).unwrap_or_else(|| "-".into()),
            r.rounds_to_03.map(|t| fmt(t, 0)).unwrap_or_else(|| "-".into()),
            r.migrations.to_string(),
        ]);
    }
    println!("{}", table.render());
    // Theorem 2's claim: every case ends well below where it started, at a
    // near-balanced state. "Near" is bounded away from perfect by design:
    // static friction (µ_s·e + 2l) deliberately leaves gradients of up to
    // ~3 load units untouched — the stability-vs-balance trade the paper
    // encodes in µ_s.
    for r in &rows {
        assert!(
            r.final_cov < 0.7 * r.initial_cov || r.final_cov < 0.45,
            "{} / {}: {} vs initial {}",
            r.topology,
            r.workload,
            r.final_cov,
            r.initial_cov
        );
    }
    println!("\nEvery topology × workload converges to near-balance (Theorem 2).");
    dump_json("exp5_convergence", &rows);
}
