//! E5 — Theorem 2: convergence to a nearly perfect balance. Runs the
//! particle-plane balancer on every standard topology family × workload
//! shape and reports the imbalance trajectory: initial CoV, rounds to
//! CoV ≤ 0.5 and ≤ 0.3, and the final state.

use pp_bench::{banner, dump_json, initial_cov, run_once};
use pp_core::balancer::ParticlePlaneBalancer;
use pp_core::params::PhysicsConfig;
use pp_metrics::summary::{fmt, TextTable};
use pp_sim::engine::EngineConfig;
use pp_tasking::workload::Workload;
use pp_topology::graph::Topology;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    topology: String,
    workload: String,
    initial_cov: f64,
    final_cov: f64,
    rounds_to_05: Option<f64>,
    rounds_to_03: Option<f64>,
    migrations: usize,
}

fn main() {
    banner("E5", "convergence of the particle-plane scheme", "Theorem 2");
    let topologies: Vec<(String, Topology)> = vec![
        ("mesh 8×8".into(), Topology::mesh(&[8, 8])),
        ("torus 8×8".into(), Topology::torus(&[8, 8])),
        ("hypercube 6".into(), Topology::hypercube(6)),
        ("ring 64".into(), Topology::ring(64)),
        ("random 64".into(), Topology::random(64, 0.05, 3)),
    ];
    let mut rows = Vec::new();
    for (tname, topo) in topologies {
        let n = topo.node_count();
        // Mean loads sit well above the friction floor (µ_s·e + 2l ≈ 3) so
        // the relative residual imbalance stays small.
        let workloads: Vec<(String, Workload)> = vec![
            ("hotspot".into(), Workload::hotspot(n, 0, 2.0 * n as f64)),
            ("uniform-random".into(), Workload::uniform_random(n, 12.0, 5)),
            ("bimodal".into(), Workload::bimodal(n, 0.25, 16.0, 2.0, 5)),
        ];
        for (wname, w) in workloads {
            let init = initial_cov(&w);
            let r = run_once(
                topo.clone(),
                None,
                w,
                Box::new(ParticlePlaneBalancer::new(PhysicsConfig::default())),
                EngineConfig::default(),
                600,
                11,
            );
            rows.push(Row {
                topology: tname.clone(),
                workload: wname,
                initial_cov: init,
                final_cov: r.final_imbalance.cov,
                rounds_to_05: r.converged_round(0.5, 3),
                rounds_to_03: r.converged_round(0.3, 3),
                migrations: r.ledger.migration_count(),
            });
        }
    }
    let mut table = TextTable::new(vec![
        "topology",
        "workload",
        "CoV₀",
        "CoV final",
        "t(CoV≤0.5)",
        "t(CoV≤0.3)",
        "hops",
    ]);
    for r in &rows {
        table.row(vec![
            r.topology.clone(),
            r.workload.clone(),
            fmt(r.initial_cov, 2),
            fmt(r.final_cov, 3),
            r.rounds_to_05.map(|t| fmt(t, 0)).unwrap_or_else(|| "-".into()),
            r.rounds_to_03.map(|t| fmt(t, 0)).unwrap_or_else(|| "-".into()),
            r.migrations.to_string(),
        ]);
    }
    println!("{}", table.render());
    // Theorem 2's claim: every case ends well below where it started, at a
    // near-balanced state. "Near" is bounded away from perfect by design:
    // static friction (µ_s·e + 2l) deliberately leaves gradients of up to
    // ~3 load units untouched — the stability-vs-balance trade the paper
    // encodes in µ_s.
    for r in &rows {
        assert!(
            r.final_cov < 0.7 * r.initial_cov || r.final_cov < 0.45,
            "{} / {}: {} vs initial {}",
            r.topology,
            r.workload,
            r.final_cov,
            r.initial_cov
        );
    }
    println!("\nEvery topology × workload converges to near-balance (Theorem 2).");
    dump_json("exp5_convergence", &rows);
}
