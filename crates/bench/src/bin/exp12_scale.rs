//! E12 — scalability: network sizes from 16 to 1024 nodes on square tori;
//! rounds-to-balance, wall time per round, and traffic per node. Sizes run
//! concurrently through the crossbeam sweep runner.

use pp_bench::{banner, dump_json, initial_cov, run_once};
use pp_core::balancer::ParticlePlaneBalancer;
use pp_core::params::PhysicsConfig;
use pp_metrics::summary::{fmt, TextTable};
use pp_sim::engine::EngineConfig;
use pp_sim::parallel::par_map;
use pp_tasking::workload::Workload;
use pp_topology::graph::Topology;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    nodes: usize,
    initial_cov: f64,
    final_cov: f64,
    rounds_to_05: Option<f64>,
    wall_ms_per_round: f64,
    traffic_per_node: f64,
}

fn main() {
    banner("E12", "scalability sweep", "implied by the multiprocessor setting");
    let sides = vec![4usize, 8, 12, 16, 24, 32];
    let rounds = 500u64;

    let rows: Vec<Row> = par_map(sides, 0, |side| {
        let topo = Topology::torus(&[side, side]);
        let n = topo.node_count();
        // Same per-node mean everywhere: bimodal 25% hot.
        let w = Workload::bimodal(n, 0.25, 8.0, 1.0, 7);
        let init = initial_cov(&w);
        let start = Instant::now();
        let r = run_once(
            topo,
            None,
            w,
            Box::new(ParticlePlaneBalancer::new(PhysicsConfig::default())),
            EngineConfig::default(),
            rounds,
            13,
        );
        let wall = start.elapsed().as_secs_f64() * 1000.0;
        Row {
            nodes: n,
            initial_cov: init,
            final_cov: r.final_imbalance.cov,
            rounds_to_05: r.converged_round(0.5, 3),
            wall_ms_per_round: wall / rounds as f64,
            traffic_per_node: r.ledger.total_weighted_traffic() / n as f64,
        }
    });

    let mut table = TextTable::new(vec![
        "nodes",
        "CoV₀",
        "CoV final",
        "t(CoV≤0.5)",
        "ms/round",
        "traffic/node",
    ]);
    for r in &rows {
        table.row(vec![
            r.nodes.to_string(),
            fmt(r.initial_cov, 2),
            fmt(r.final_cov, 3),
            r.rounds_to_05.map(|t| fmt(t, 0)).unwrap_or_else(|| "-".into()),
            fmt(r.wall_ms_per_round, 3),
            fmt(r.traffic_per_node, 1),
        ]);
    }
    println!("{}", table.render());

    // Shape: the scheme is local, so per-node traffic and balance quality
    // stay roughly flat as the network grows (bimodal workloads have no
    // global gradient to collapse).
    for r in &rows {
        assert!(r.final_cov < 0.7 * r.initial_cov, "n={}: {}", r.nodes, r.final_cov);
    }
    let t_small = rows.first().unwrap().traffic_per_node;
    let t_large = rows.last().unwrap().traffic_per_node;
    assert!(
        t_large < 4.0 * t_small + 10.0,
        "per-node traffic should not blow up with size: {t_small} -> {t_large}"
    );
    println!("\nLocal scheme: per-node cost stays flat while the network grows 64×.");
    dump_json("exp12_scale", &rows);
}
