//! E12 — scalability: network sizes from 16 to 1024 nodes on square tori;
//! rounds-to-balance, wall time per round, and traffic per node. Sizes run
//! concurrently through the crossbeam sweep runner; each size is the same
//! [`ScenarioSpec`] with a different torus extent.

use pp_bench::{banner, dump_json, initial_cov};
use pp_metrics::summary::{fmt, TextTable};
use pp_scenario::spec::{DurationSpec, ScenarioSpec, WorkloadSpec};
use pp_sim::parallel::par_map;
use pp_topology::spec::TopologySpec;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    nodes: usize,
    initial_cov: f64,
    final_cov: f64,
    rounds_to_05: Option<f64>,
    wall_ms_per_round: f64,
    traffic_per_node: f64,
}

fn main() {
    banner("E12", "scalability sweep", "implied by the multiprocessor setting");
    let sides = vec![4usize, 8, 12, 16, 24, 32];
    let rounds = 500u64;

    let rows: Vec<Row> = par_map(sides, 0, |side| {
        let spec = ScenarioSpec {
            name: format!("e12-torus-{side}x{side}"),
            topology: TopologySpec::Torus { dims: vec![side, side] },
            // Same per-node mean everywhere: bimodal 25% hot.
            workload: WorkloadSpec::Bimodal { fraction: 0.25, high: 8.0, low: 1.0, seed: 7 },
            duration: DurationSpec { rounds, drain: 1000.0 },
            seed: 13,
            ..ScenarioSpec::default()
        };
        let n = spec.topology.node_count();
        let init = initial_cov(&spec.workload.build(n));
        let start = Instant::now();
        let r = spec.run().expect("valid scenario");
        let wall = start.elapsed().as_secs_f64() * 1000.0;
        Row {
            nodes: n,
            initial_cov: init,
            final_cov: r.final_imbalance.cov,
            rounds_to_05: r.converged_round(0.5, 3),
            wall_ms_per_round: wall / rounds as f64,
            traffic_per_node: r.ledger.total_weighted_traffic() / n as f64,
        }
    });

    let mut table = TextTable::new(vec![
        "nodes",
        "CoV₀",
        "CoV final",
        "t(CoV≤0.5)",
        "ms/round",
        "traffic/node",
    ]);
    for r in &rows {
        table.row(vec![
            r.nodes.to_string(),
            fmt(r.initial_cov, 2),
            fmt(r.final_cov, 3),
            r.rounds_to_05.map(|t| fmt(t, 0)).unwrap_or_else(|| "-".into()),
            fmt(r.wall_ms_per_round, 3),
            fmt(r.traffic_per_node, 1),
        ]);
    }
    println!("{}", table.render());

    // Shape: the scheme is local, so per-node traffic and balance quality
    // stay roughly flat as the network grows (bimodal workloads have no
    // global gradient to collapse).
    for r in &rows {
        assert!(r.final_cov < 0.7 * r.initial_cov, "n={}: {}", r.nodes, r.final_cov);
    }
    let t_small = rows.first().unwrap().traffic_per_node;
    let t_large = rows.last().unwrap().traffic_per_node;
    assert!(
        t_large < 4.0 * t_small + 10.0,
        "per-node traffic should not blow up with size: {t_small} -> {t_large}"
    );
    println!("\nLocal scheme: per-node cost stays flat while the network grows 64×.");
    dump_json("exp12_scale", &rows);
}
