//! E14 — the Xu–Lau optimal diffusion parameter (the paper's reference
//! [19], which our diffusion baseline uses): sweep `α` around
//! `α_opt = 2/(λ₂+λ_max)` on mesh, torus and hypercube and verify the
//! optimum minimises cumulative imbalance, so the E7 comparison really runs
//! against the *best* diffusion.

use pp_bench::{banner, dump_json};
use pp_metrics::summary::{fmt, TextTable};
use pp_scenario::spec::{
    BalancerSpec, DiffusionAlpha, DurationSpec, LinkSpec, ScenarioSpec, WorkloadSpec,
};
use pp_topology::spec::TopologySpec;
use pp_topology::spectral::{lambda_2, lambda_max, optimal_diffusion_alpha};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    topology: String,
    alpha: f64,
    is_opt: bool,
    /// Contraction factor of the continuous FOS iteration:
    /// `γ(α) = max(|1−α·λ₂|, |1−α·λ_max|)` — what Xu–Lau minimise.
    gamma: f64,
    auc: f64,
    final_cov: f64,
}

fn main() {
    banner("E14", "Xu–Lau optimal diffusion parameter", "reference [19] (used by the E7 baseline)");
    let topologies: Vec<(String, TopologySpec)> = vec![
        ("mesh 8×8".into(), TopologySpec::Mesh { dims: vec![8, 8] }),
        ("torus 8×8".into(), TopologySpec::Torus { dims: vec![8, 8] }),
        ("hypercube 6".into(), TopologySpec::Hypercube { dim: 6 }),
    ];
    let mut rows = Vec::new();
    for (tname, tspec) in topologies {
        let topo = tspec.build();
        let a_opt = optimal_diffusion_alpha(&topo, 2000);
        let l2 = lambda_2(&topo, 2000);
        let lmax = lambda_max(&topo, 2000);
        // Sweep multiplicative factors around the optimum (clamped to ≤ 1).
        for &factor in &[0.25, 0.5, 0.75, 1.0, 1.25, 1.5] {
            let alpha = (a_opt * factor).clamp(1e-6, 1.0);
            let gamma = (1.0 - alpha * l2).abs().max((1.0 - alpha * lmax).abs());
            let spec = ScenarioSpec {
                name: format!("e14-{}-a{factor}", tspec.label().replace(' ', "-")),
                topology: tspec.clone(),
                links: LinkSpec::Instant,
                workload: WorkloadSpec::UniformRandom { max_per_node: 12.0, seed: 9 },
                balancer: BalancerSpec::Diffusion { alpha: DiffusionAlpha::Fixed(alpha) },
                duration: DurationSpec { rounds: 150, drain: 1000.0 },
                seed: 4,
                ..ScenarioSpec::default()
            };
            let r = spec.run().expect("valid scenario");
            rows.push(Row {
                topology: tname.clone(),
                alpha,
                is_opt: factor == 1.0,
                gamma,
                auc: r.series.auc(),
                final_cov: r.final_imbalance.cov,
            });
        }
    }

    let mut table = TextTable::new(vec![
        "topology",
        "α",
        "is α_opt",
        "γ(α) contraction",
        "CoV AUC (discrete)",
        "final CoV",
    ]);
    for r in &rows {
        table.row(vec![
            r.topology.clone(),
            fmt(r.alpha, 4),
            if r.is_opt { "→".to_string() } else { "".into() },
            fmt(r.gamma, 4),
            fmt(r.auc, 2),
            fmt(r.final_cov, 3),
        ]);
    }
    println!("{}", table.render());

    // The Xu–Lau claim is about the continuous iteration: γ(α_opt) must be
    // the sweep minimum on every topology. (The discrete-task AUC column is
    // reported for honesty: with atomic unit tasks, moderate
    // over-relaxation can beat α_opt at coarse granularity because per-edge
    // quotas below one task ship nothing.)
    for tname in ["mesh 8×8", "torus 8×8", "hypercube 6"] {
        let sub: Vec<&Row> = rows.iter().filter(|r| r.topology == tname).collect();
        let best = sub.iter().map(|r| r.gamma).fold(f64::INFINITY, f64::min);
        let opt = sub.iter().find(|r| r.is_opt).unwrap();
        assert!(opt.gamma <= best + 1e-9, "{tname}: γ(α_opt) {} vs best {best}", opt.gamma);
    }
    println!("\nγ(α_opt) minimises the continuous contraction factor on every family; the");
    println!("discrete-task AUC favours mild over-relaxation (quantisation effect, reported");
    println!("honestly — see EXPERIMENTS.md).");
    dump_json("exp14_alpha_sweep", &rows);
}
