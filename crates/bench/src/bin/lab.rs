//! pp-lab — run any declarative scenario by name or from a JSON spec file
//! and emit a deterministic golden report.
//!
//! ```text
//! lab --list                          list registered scenarios
//! lab <name> [--smoke] [--out PATH]   run one scenario, write its report
//! lab --file SPEC.json [--smoke]      run a scenario from a JSON spec
//! lab --spec <name>                   print a scenario's JSON spec
//! lab --all --smoke --out-dir DIR     run every scenario, one report each
//! lab --check PATH                    validate a golden-report JSON file
//! lab --emit-golden DIR               write smoke goldens for the pinned set
//! lab --verify-golden DIR             re-run the pinned set, byte-compare
//! lab <name> --checkpoint-every N [--checkpoint-path P]
//!                                     checkpoint every N rounds while running
//! lab <name> --resume-from CKPT.json  restore a checkpoint, run the rest
//! lab --verify-resume                 split-vs-straight byte gate (pinned set)
//! lab --verify-strategy               tick-vs-event byte gate (whole registry)
//! lab --verify-repartition            adaptive-vs-static byte gate (ADR-008)
//! lab stats --list                    list the named stats scenario sets
//! lab stats --set S --seeds R [--smoke] [--out PATH]
//!                                     statistical comparison harness
//! lab stats --check PATH              validate a stats-report JSON file
//! ```
//!
//! `lab stats` runs a named scenario set under the fixed balancer panel
//! (particle-plane first, then the diffusive and sender-initiated
//! baselines) with `R` master seeds per pair, and reduces the runs to a
//! byte-stable JSON report: per-metric mean / Student-t 95% CI / min /
//! max cells plus a pairwise Welch verdict table (see ADR-010). The
//! report is a pure function of `(set, seeds, smoke)` — `--shards` /
//! `--threads` change only throughput, which the CI stats job asserts by
//! diffing two differently-laid-out runs byte-for-byte.
//!
//! `--checkpoint-every N` writes a versioned engine checkpoint every `N`
//! balance rounds (to `--checkpoint-path`, default `<name>.ckpt.json`);
//! capture is read-only, so the emitted report is byte-identical to an
//! uncheckpointed run. `--resume-from` restores such a file into a freshly
//! built engine and runs the remaining rounds — byte-identical to never
//! having stopped. `--verify-resume` enforces exactly that: every pinned
//! golden scenario is run straight and split-at-half-way (through the
//! serialized checkpoint), under at least two distinct `(shards, threads)`
//! layouts, and the report bytes are diffed.
//!
//! `--shards K` / `--threads T` override the spec's engine knobs for the
//! running commands (`lab <name>`, `--file`, `--all`): `K` spatial shards
//! for the decision sweep, `T` worker threads. Outcomes are byte-identical
//! for every layout — only the throughput changes — so overriding the
//! knobs never drifts a golden report's *measurements*; a run with
//! explicit `K ≥ 2` records the layout in the report's `shard_layout`
//! metadata.
//!
//! `--strategy tick|event` overrides how rounds advance: `tick` sweeps
//! every round (the reference), `event` fast-forwards quiescent rounds via
//! the wake scheduler. Like the layout knobs, the strategy never changes an
//! outcome — reports are byte-identical either way — which
//! `--verify-strategy` enforces over the whole registry under multiple
//! layouts (see ADR-006).
//!
//! `--smoke` caps every run at a few rounds so the whole registry finishes
//! in CI seconds; reports are byte-identical across same-seed runs (the
//! scenario-matrix CI job runs everything twice and diffs). The *pinned*
//! subset under `golden/` additionally catches behavioral drift: any
//! engine/balancer change that alters an outcome shows up as a golden
//! diff and must be re-committed deliberately.

use pp_scenario::registry;
use pp_scenario::report::GoldenReport;
use pp_scenario::spec::{CheckpointSpec, ScenarioSpec};
use pp_scenario::stats::{self, StatsReport};
use pp_sim::engine::{RepartitionConfig, RunReport, ShardLayout};
use pp_sim::strategy::SimulationStrategy;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Smoke caps: enough rounds to exercise arrivals/faults/speeds, few
/// enough that all scenarios finish in seconds.
const SMOKE_ROUNDS: u64 = 8;
const SMOKE_DRAIN: f64 = 25.0;

/// The pinned golden subset: one scenario per major subsystem (classic
/// redistribution, new arrival models, trace replay, faults, speeds,
/// irregular topologies, node churn).
const PINNED: &[&str] = &[
    "hotspot-torus",
    "bursty-onoff",
    "diurnal-wave",
    "moving-hotspot",
    "hetero-speeds",
    "trace-replay",
    "faulty-torus",
    "torus1k-resume-midfault",
    "torus16k-checkpointed",
    "scalefree-hotspot",
    "geometric-diurnal",
    "torus-churn",
    "churn-faults",
];

/// The `(shards, threads)` layouts `--verify-resume` replays every pinned
/// scenario under — the acceptance gate requires at least two distinct
/// ones. `(8, 4)` puts the pinned-worker pool (multiple shards per worker,
/// real barrier rounds) on the verified path.
const RESUME_LAYOUTS: &[(usize, usize)] = &[(1, 1), (4, 2), (8, 4)];

/// Flattens a finished run into its golden report, attaching shard-layout
/// metadata only when the *spec* pins an explicit shard count: auto layouts
/// depend on the host's core count and would make golden reports
/// machine-dependent. Threads are omitted for the same reason.
fn finish_report(spec: &ScenarioSpec, report: &RunReport, layout: ShardLayout) -> GoldenReport {
    let mut g = GoldenReport::from_run(&spec.name, spec.seed, spec.topology.node_count(), report);
    // Adaptive repartitioning makes the shard layout time-varying: there is
    // no single `(shards, boundary)` pair to record, and omitting the
    // metadata is what lets the repartition-matrix CI job diff an adaptive
    // scenario's reports byte-for-byte across launch layouts (ADR-008).
    if spec.engine.shards >= 2 && spec.engine.repartition.is_none() {
        g = g.with_shard_layout(format!(
            "shards={} boundary={}",
            layout.shards, layout.boundary_nodes
        ));
    }
    g
}

fn run_to_report(spec: &ScenarioSpec, smoke: bool) -> Result<GoldenReport, String> {
    let spec = if smoke { spec.smoke(SMOKE_ROUNDS, SMOKE_DRAIN) } else { spec.clone() };
    let mut engine = spec.build_engine()?;
    let layout = engine.shard_layout();
    // finish_engine honors the spec's checkpoint knob, so `--all` and the
    // golden commands behave exactly like `lab <name>` for a checkpointed
    // spec (capture is read-only — reports are unchanged either way).
    spec.finish_engine(&mut engine)?;
    let report = engine.report();
    Ok(finish_report(&spec, &report, layout))
}

/// `run_to_report`'s split-brained twin: run to the half-way round,
/// checkpoint through the serialized JSON form, restore into a fresh
/// engine, finish. `--verify-resume` diffs its bytes against the straight
/// run's.
fn split_to_report(spec: &ScenarioSpec, smoke: bool) -> Result<GoldenReport, String> {
    let spec = if smoke { spec.smoke(SMOKE_ROUNDS, SMOKE_DRAIN) } else { spec.clone() };
    let at = (spec.duration.rounds / 2).max(1);
    let (report, layout) = spec.run_split(at)?;
    Ok(finish_report(&spec, &report, layout))
}

fn write_report(g: &GoldenReport, path: &Path) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
        }
    }
    std::fs::write(path, g.to_canonical_json()).map_err(|e| format!("cannot write {path:?}: {e}"))
}

fn cmd_list() -> ExitCode {
    let all = registry::registry();
    println!("{} registered scenarios:\n", all.len());
    for s in &all {
        println!("  {}", s.summary());
    }
    println!("\nrun one with: lab <name> [--smoke] [--out PATH]");
    ExitCode::SUCCESS
}

fn cmd_check(path: &str) -> ExitCode {
    match pp_bench::read_artifact(path) {
        Err(e) => {
            eprintln!("{path}: {e}");
            ExitCode::FAILURE
        }
        Ok(text) => match GoldenReport::check_text(&text) {
            Ok(name) => {
                println!("{path}: OK (golden report for `{name}`)");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ExitCode::FAILURE
            }
        },
    }
}

fn cmd_spec(name: &str) -> ExitCode {
    match registry::by_name(name) {
        Some(s) => {
            println!("{}", s.to_json_pretty());
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unknown scenario `{name}`; try --list");
            ExitCode::FAILURE
        }
    }
}

/// Runs one scenario like `run_to_report`, additionally honoring the
/// spec's `checkpoint` knob (periodic checkpoint files) and an optional
/// `--resume-from` checkpoint to start from instead of t = 0.
fn run_with_options(
    spec: &ScenarioSpec,
    smoke: bool,
    resume: Option<&str>,
) -> Result<GoldenReport, String> {
    let spec = if smoke { spec.smoke(SMOKE_ROUNDS, SMOKE_DRAIN) } else { spec.clone() };
    let mut engine = spec.build_engine()?;
    let layout = engine.shard_layout();
    if let Some(path) = resume {
        let cp = ScenarioSpec::read_checkpoint(path)?;
        engine.restore(&cp)?;
        println!("[resumed `{}` from {path} at round {}]", spec.name, cp.round);
    }
    // Announce checkpointing up front: a long run's operator must know the
    // restart point is being written *before* waiting hours for the run.
    if let Some(ck) = &spec.checkpoint {
        println!("[checkpointing every {} rounds to {}]", ck.every, ck.path);
    }
    // The interval-write loop lives in one place (ScenarioSpec::
    // finish_engine), so this CLI path can never checkpoint differently
    // from library `run()`.
    spec.finish_engine(&mut engine)?;
    let report = engine.report();
    Ok(finish_report(&spec, &report, layout))
}

fn cmd_run(spec: &ScenarioSpec, smoke: bool, out: Option<&str>, resume: Option<&str>) -> ExitCode {
    if let Err(e) = spec.validate() {
        eprintln!("invalid scenario: {e}");
        return ExitCode::FAILURE;
    }
    match run_with_options(spec, smoke, resume) {
        Ok(g) => {
            println!(
                "{}: {} rounds, final cov {:.4}, {} migrations, traffic {:.1}",
                g.scenario, g.rounds, g.final_cov, g.migrations, g.weighted_traffic
            );
            if let Some(path) = out {
                if let Err(e) = write_report(&g, Path::new(path)) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
                println!("[golden report: {path}]");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_all(
    smoke: bool,
    out_dir: Option<&str>,
    shards: Option<&str>,
    threads: Option<&str>,
    strategy: Option<&str>,
) -> ExitCode {
    let mut all = registry::registry();
    for s in &mut all {
        if let Err(code) = apply_overrides(s, shards, threads, strategy) {
            return code;
        }
    }
    println!("running {} scenarios ({}):", all.len(), if smoke { "smoke" } else { "full" });
    for s in &all {
        match run_to_report(s, smoke) {
            Ok(g) => {
                println!(
                    "  {:28} rounds={:4} cov={:8.4} migrations={:6}",
                    g.scenario, g.rounds, g.final_cov, g.migrations
                );
                if let Some(dir) = out_dir {
                    let path = PathBuf::from(dir).join(format!("{}.json", s.name));
                    if let Err(e) = write_report(&g, &path) {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            Err(e) => {
                eprintln!("error: {}: {e}", s.name);
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(dir) = out_dir {
        println!("[reports under {dir}/]");
    }
    ExitCode::SUCCESS
}

fn pinned_specs() -> Vec<ScenarioSpec> {
    PINNED
        .iter()
        .map(|name| registry::by_name(name).unwrap_or_else(|| panic!("pinned `{name}` missing")))
        .collect()
}

fn cmd_emit_golden(dir: &str) -> ExitCode {
    for spec in pinned_specs() {
        match run_to_report(&spec, true) {
            Ok(g) => {
                let path = PathBuf::from(dir).join(format!("{}.json", spec.name));
                if let Err(e) = write_report(&g, &path) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {}", path.display());
            }
            Err(e) => {
                eprintln!("error: {}: {e}", spec.name);
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_verify_golden(dir: &str) -> ExitCode {
    let mut drifted = Vec::new();
    for spec in pinned_specs() {
        let path = PathBuf::from(dir).join(format!("{}.json", spec.name));
        let committed = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{}: cannot read committed golden: {e}", path.display());
                drifted.push(spec.name.clone());
                continue;
            }
        };
        let fresh = match run_to_report(&spec, true) {
            Ok(g) => g.to_canonical_json(),
            Err(e) => {
                eprintln!("{}: run failed: {e}", spec.name);
                drifted.push(spec.name.clone());
                continue;
            }
        };
        if fresh == committed {
            println!("  {:28} OK", spec.name);
        } else {
            eprintln!("  {:28} DRIFT (report differs from {})", spec.name, path.display());
            drifted.push(spec.name.clone());
        }
    }
    if drifted.is_empty() {
        println!("all {} pinned goldens match", PINNED.len());
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "\ngolden drift in {drifted:?}.\nIf the behavior change is intended, regenerate with: \
             cargo run --release -p pp-bench --bin lab -- --emit-golden golden"
        );
        ExitCode::FAILURE
    }
}

/// The checkpoint/resume differential gate: every pinned scenario is run
/// straight and split-at-half (checkpoint → JSON → restore into a fresh
/// engine), under each of [`RESUME_LAYOUTS`], and the golden-report bytes
/// must be identical. This is the executable form of the restore-exactness
/// invariant (ADR-005).
fn cmd_verify_resume() -> ExitCode {
    let mut broken = Vec::new();
    for spec in pinned_specs() {
        for &(shards, threads) in RESUME_LAYOUTS {
            let mut spec = spec.clone();
            spec.engine.shards = shards;
            spec.engine.threads = threads;
            let label = format!("{} [K={shards} T={threads}]", spec.name);
            let straight = match run_to_report(&spec, true) {
                Ok(g) => g.to_canonical_json(),
                Err(e) => {
                    eprintln!("  {label:42} straight run failed: {e}");
                    broken.push(label);
                    continue;
                }
            };
            let split = match split_to_report(&spec, true) {
                Ok(g) => g.to_canonical_json(),
                Err(e) => {
                    eprintln!("  {label:42} split run failed: {e}");
                    broken.push(label);
                    continue;
                }
            };
            if straight == split {
                println!("  {label:42} OK (split == straight, {} bytes)", straight.len());
            } else {
                eprintln!("  {label:42} MISMATCH (split report differs from straight)");
                broken.push(label);
            }
        }
    }
    if broken.is_empty() {
        println!(
            "all {} pinned scenarios resume byte-identically under {} layouts",
            PINNED.len(),
            RESUME_LAYOUTS.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("\ncheckpoint/resume exactness broken for {broken:?}");
        ExitCode::FAILURE
    }
}

/// The cross-strategy differential gate: every *registered* scenario is
/// run under both simulation strategies and each of [`RESUME_LAYOUTS`],
/// and the golden-report bytes must be identical. Horizons are force-capped
/// directly (not via `smoke()`, which deliberately leaves event horizons
/// alone) so the tick reference runs the very same rounds the event run
/// does. This is the executable form of the skip-exactness invariant
/// (ADR-006).
fn cmd_verify_strategy() -> ExitCode {
    let all = registry::registry();
    let mut broken = Vec::new();
    for base in &all {
        for &(shards, threads) in RESUME_LAYOUTS {
            let mut spec = base.clone();
            spec.duration.rounds = spec.duration.rounds.min(SMOKE_ROUNDS);
            spec.duration.drain = spec.duration.drain.min(SMOKE_DRAIN);
            spec.engine.shards = shards;
            spec.engine.threads = threads;
            let label = format!("{} [K={shards} T={threads}]", spec.name);
            let mut pair = Vec::new();
            for strategy in [SimulationStrategy::Tick, SimulationStrategy::Event] {
                spec.engine.strategy = strategy;
                match run_to_report(&spec, false) {
                    Ok(g) => pair.push(g.to_canonical_json()),
                    Err(e) => {
                        eprintln!("  {label:42} {strategy} run failed: {e}");
                        break;
                    }
                }
            }
            match pair.as_slice() {
                [tick, event] if tick == event => {
                    println!("  {label:42} OK (tick == event, {} bytes)", tick.len());
                }
                [_, _] => {
                    eprintln!("  {label:42} MISMATCH (event report differs from tick)");
                    broken.push(label);
                }
                _ => broken.push(label),
            }
        }
    }
    if broken.is_empty() {
        println!(
            "all {} scenarios are strategy-independent under {} layouts",
            all.len(),
            RESUME_LAYOUTS.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("\ntick/event strategy equivalence broken for {broken:?}");
        ExitCode::FAILURE
    }
}

/// The adaptive-repartitioning differential gate (ADR-008): the
/// `hotspot16k-{adaptive,static}` registry pair must produce byte-identical
/// reports — repartitioning may only change per-round sweep cost, never an
/// outcome. Per layout in [`RESUME_LAYOUTS`], plus the pair's native
/// 64-shard layout:
///
/// 1. a *frozen* adaptive run (`every = 1`, `skew_threshold = ∞`: measures
///    load skew every round, can never fire) must match the static run
///    byte-for-byte and report zero repartitions;
/// 2. the committed adaptive knob must match the static run byte-for-byte;
/// 3. at the native layout the committed knob must actually fire
///    (`repartitions > 0`) — a gate that never repartitions verifies
///    nothing.
///
/// Specs are renamed to a common label before running so the emitted
/// reports are comparable down to the byte; the shard-layout metadata line
/// is never attached (the pair is compared across different launch
/// layouts, and for adaptive runs the layout is time-varying anyway).
fn cmd_verify_repartition() -> ExitCode {
    let stat = registry::by_name("hotspot16k-static").expect("hotspot16k-static registered");
    let adap = registry::by_name("hotspot16k-adaptive").expect("hotspot16k-adaptive registered");
    // 24 rounds: enough for the committed `every = 8` knob to fire several
    // times, short enough to keep the gate in CI seconds.
    const ROUNDS: u64 = 24;
    let run = |base: &ScenarioSpec,
               shards: usize,
               threads: usize,
               rp: Option<RepartitionConfig>|
     -> Result<(String, u64), String> {
        let mut spec = base.clone();
        spec.name = "hotspot16k".into();
        spec.duration.rounds = spec.duration.rounds.min(ROUNDS);
        spec.duration.drain = spec.duration.drain.min(SMOKE_DRAIN);
        spec.engine.shards = shards;
        spec.engine.threads = threads;
        spec.engine.repartition = rp;
        let mut engine = spec.build_engine()?;
        spec.finish_engine(&mut engine)?;
        let report = engine.report();
        let g = GoldenReport::from_run(&spec.name, spec.seed, spec.topology.node_count(), &report);
        Ok((g.to_canonical_json(), engine.repartitions()))
    };
    let frozen_knob = Some(RepartitionConfig { every: 1, skew_threshold: f64::INFINITY });
    let native = (stat.engine.shards, stat.engine.threads);
    let mut broken = Vec::new();
    for &(shards, threads) in RESUME_LAYOUTS.iter().chain([&native]) {
        let label = format!("hotspot16k [K={shards} T={threads}]");
        let outcome = (|| -> Result<Option<String>, String> {
            let (static_bytes, _) = run(&stat, shards, threads, None)?;
            let (frozen_bytes, frozen_fired) = run(&adap, shards, threads, frozen_knob)?;
            if frozen_fired > 0 {
                return Ok(Some("frozen (∞-threshold) run repartitioned".into()));
            }
            if frozen_bytes != static_bytes {
                return Ok(Some("frozen (∞-threshold) report differs from static".into()));
            }
            let (adaptive_bytes, fired) = run(&adap, shards, threads, adap.engine.repartition)?;
            if adaptive_bytes != static_bytes {
                return Ok(Some("adaptive report differs from static".into()));
            }
            if (shards, threads) == native && fired == 0 {
                return Ok(Some("adaptive run never repartitioned at native layout".into()));
            }
            println!(
                "  {label:32} OK (static == frozen == adaptive, {} bytes, {fired} repartitions)",
                static_bytes.len()
            );
            Ok(None)
        })();
        match outcome {
            Ok(None) => {}
            Ok(Some(why)) => {
                eprintln!("  {label:32} MISMATCH: {why}");
                broken.push(label);
            }
            Err(e) => {
                eprintln!("  {label:32} run failed: {e}");
                broken.push(label);
            }
        }
    }
    if broken.is_empty() {
        println!(
            "adaptive repartitioning is report-invisible under {} layouts",
            RESUME_LAYOUTS.len() + 1
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("\nadaptive/static report equivalence broken for {broken:?}");
        ExitCode::FAILURE
    }
}

/// The `lab stats ...` subcommand: the statistical comparison harness.
/// Parses its own flags so the global single-run/golden plumbing stays
/// untouched.
fn cmd_stats(args: &[String]) -> ExitCode {
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned();
    for f in ["--set", "--seeds", "--out", "--check", "--shards", "--threads"] {
        if flag(f) && opt(f).is_none() {
            eprintln!("{f} requires a value");
            return usage();
        }
    }
    if let Some(path) = opt("--check") {
        return match pp_bench::read_artifact(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| StatsReport::check_text(&text))
        {
            Ok(set) => {
                println!("{path}: OK (stats report for set `{set}`)");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if flag("--list") || opt("--set").is_none() {
        println!("named stats sets:\n");
        for set in stats::sets() {
            println!("  {:12} {:50} {:?}", set.name, set.description, set.scenarios);
        }
        println!("\nrun one with: lab stats --set <name> --seeds R [--smoke] [--out PATH]");
        return if flag("--list") { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }
    let set = opt("--set").expect("checked above");
    let seeds: usize = match opt("--seeds").as_deref().unwrap_or("5").parse() {
        Ok(n) => n,
        Err(_) => return usage(),
    };
    let smoke = flag("--smoke").then_some((SMOKE_ROUNDS, SMOKE_DRAIN));
    let layout = if opt("--shards").is_some() || opt("--threads").is_some() {
        let parse = |v: Option<String>| v.map(|s| s.parse::<usize>()).transpose();
        match (parse(opt("--shards")), parse(opt("--threads"))) {
            (Ok(k), Ok(t)) => Some((k.unwrap_or(0), t.unwrap_or(0))),
            _ => return usage(),
        }
    } else {
        None
    };
    match stats::run_stats(&set, seeds, smoke, layout) {
        Ok(report) => {
            println!(
                "stats set `{}`: {} scenarios x {} balancers x {} seeds{}",
                report.set,
                report.scenarios.len(),
                report.balancers.len(),
                report.seeds,
                if report.smoke { " (smoke)" } else { "" },
            );
            for cell in &report.cells {
                let s = cell.summary;
                println!(
                    "  {:20} {:18} {:18} mean={:12.4} ci95={:10.4} [{:10.4}, {:10.4}]",
                    cell.scenario,
                    cell.balancer,
                    cell.metric,
                    s.mean,
                    s.ci95(),
                    s.min,
                    s.max
                );
            }
            println!("pairwise Welch verdicts (a relative to b, 95% level):");
            for c in &report.comparisons {
                println!(
                    "  {:20} {:18} {:18} vs {:18} {} (df={})",
                    c.scenario,
                    c.metric,
                    c.a,
                    c.b,
                    c.verdict.as_str(),
                    c.df
                );
            }
            if let Some(path) = opt("--out") {
                let path = Path::new(&path);
                if let Some(dir) = path.parent() {
                    if !dir.as_os_str().is_empty() {
                        if let Err(e) = std::fs::create_dir_all(dir) {
                            eprintln!("cannot create {dir:?}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                if let Err(e) = std::fs::write(path, report.to_canonical_json()) {
                    eprintln!("cannot write {path:?}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("[stats report: {}]", path.display());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: lab --list\n       lab <name> [--smoke] [--shards K] [--threads T] [--strategy \
         tick|event] [--out PATH]\n       lab --file SPEC.json [--smoke] [--shards K] [--threads \
         T] [--strategy tick|event] [--out PATH]\n       lab --spec <name>\n       lab --all \
         [--smoke] [--shards K] [--threads T] [--strategy tick|event] [--out-dir DIR]\n       lab \
         --check PATH\n       lab --emit-golden DIR\n       lab --verify-golden DIR\n       lab \
         <name|--file SPEC.json> --checkpoint-every N [--checkpoint-path P]\n       lab \
         <name|--file SPEC.json> --resume-from CKPT.json\n       lab --verify-resume\n       lab \
         --verify-strategy\n       lab --verify-repartition\n       lab stats --list\n       lab \
         stats --set S [--seeds R] [--smoke] [--shards K] [--threads T] [--out PATH]\n       lab \
         stats --check PATH"
    );
    ExitCode::FAILURE
}

/// Applies the `--shards`/`--threads`/`--strategy` CLI overrides to a
/// spec's engine knobs (a parse failure falls through to `usage`).
fn apply_overrides(
    spec: &mut ScenarioSpec,
    shards: Option<&str>,
    threads: Option<&str>,
    strategy: Option<&str>,
) -> Result<(), ExitCode> {
    if let Some(k) = shards {
        spec.engine.shards = k.parse().map_err(|_| usage())?;
    }
    if let Some(t) = threads {
        spec.engine.threads = t.parse().map_err(|_| usage())?;
    }
    if let Some(s) = strategy {
        spec.engine.strategy = s.parse().map_err(|e: String| {
            eprintln!("{e}");
            usage()
        })?;
    }
    Ok(())
}

/// Applies the `--checkpoint-every`/`--checkpoint-path` overrides to a
/// spec's checkpoint knob (the path defaults to `<name>.ckpt.json`).
/// `--checkpoint-path` alone is rejected rather than silently ignored —
/// the user asked for checkpoints but gave no interval, and discovering
/// that after an interrupted long run is the worst possible time.
fn apply_checkpoint_overrides(
    spec: &mut ScenarioSpec,
    every: Option<&str>,
    path: Option<&str>,
) -> Result<(), ExitCode> {
    match (every, path) {
        (Some(n), path) => {
            spec.checkpoint = Some(CheckpointSpec {
                every: n.parse().map_err(|_| usage())?,
                path: path
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("{}.ckpt.json", spec.name)),
            });
        }
        (None, Some(_)) => {
            eprintln!("--checkpoint-path requires --checkpoint-every N");
            return Err(usage());
        }
        (None, None) => {}
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The stats harness is a self-contained subcommand with its own flags.
    if args.first().map(String::as_str) == Some("stats") {
        return cmd_stats(&args[1..]);
    }
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned();
    let smoke = flag("--smoke");
    let shards = opt("--shards");
    let threads = opt("--threads");
    let strategy = opt("--strategy");
    let ckpt_every = opt("--checkpoint-every");
    let ckpt_path = opt("--checkpoint-path");
    let resume = opt("--resume-from");

    // A checkpoint/resume flag with its value missing (e.g. a shell
    // variable that expanded empty left `--resume-from` trailing) must not
    // silently degrade into a plain run — the operator would believe a
    // resume happened or restart points were written.
    for f in ["--checkpoint-every", "--checkpoint-path", "--resume-from"] {
        if flag(f) && opt(f).is_none() {
            eprintln!("{f} requires a value");
            return usage();
        }
    }

    // The checkpoint/resume flags only make sense for a single run
    // (`lab <name>` / `lab --file`). Combining them with any other command
    // is rejected up front — dropping them silently would leave the user
    // believing checkpoints were written (or a resume happened) when
    // nothing of the sort occurred.
    let single_run_opts = ckpt_every.is_some() || ckpt_path.is_some() || resume.is_some();
    let other_command = flag("--list")
        || flag("--all")
        || flag("--verify-resume")
        || flag("--verify-strategy")
        || flag("--verify-repartition")
        || ["--check", "--spec", "--emit-golden", "--verify-golden"]
            .iter()
            .any(|f| opt(f).is_some());
    if single_run_opts && other_command {
        eprintln!(
            "--checkpoint-every/--checkpoint-path/--resume-from apply to single runs \
             (`lab <name>` or `lab --file`), not to list/all/check/golden commands"
        );
        return usage();
    }

    if flag("--list") {
        return cmd_list();
    }
    if let Some(path) = opt("--check") {
        return cmd_check(&path);
    }
    if let Some(name) = opt("--spec") {
        return cmd_spec(&name);
    }
    if let Some(dir) = opt("--emit-golden") {
        return cmd_emit_golden(&dir);
    }
    if let Some(dir) = opt("--verify-golden") {
        return cmd_verify_golden(&dir);
    }
    if flag("--verify-resume") {
        return cmd_verify_resume();
    }
    if flag("--verify-strategy") {
        return cmd_verify_strategy();
    }
    if flag("--verify-repartition") {
        return cmd_verify_repartition();
    }
    if flag("--all") {
        return cmd_all(
            smoke,
            opt("--out-dir").as_deref(),
            shards.as_deref(),
            threads.as_deref(),
            strategy.as_deref(),
        );
    }
    if let Some(path) = opt("--file") {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut spec = match ScenarioSpec::from_json(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot parse {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(code) =
            apply_overrides(&mut spec, shards.as_deref(), threads.as_deref(), strategy.as_deref())
        {
            return code;
        }
        if let Err(code) =
            apply_checkpoint_overrides(&mut spec, ckpt_every.as_deref(), ckpt_path.as_deref())
        {
            return code;
        }
        return cmd_run(&spec, smoke, opt("--out").as_deref(), resume.as_deref());
    }
    // First non-flag argument that is not the value of a value-taking
    // flag is the scenario name (`lab --out r.json hotspot-torus` and
    // `lab hotspot-torus --out r.json` both work).
    const VALUE_FLAGS: &[&str] = &[
        "--out",
        "--out-dir",
        "--file",
        "--check",
        "--spec",
        "--emit-golden",
        "--verify-golden",
        "--shards",
        "--threads",
        "--strategy",
        "--checkpoint-every",
        "--checkpoint-path",
        "--resume-from",
    ];
    let name = args.iter().enumerate().find_map(|(i, a)| {
        let is_flag_value = i > 0 && VALUE_FLAGS.contains(&args[i - 1].as_str());
        (!a.starts_with("--") && !is_flag_value).then(|| a.clone())
    });
    match name {
        Some(name) => match registry::by_name(&name) {
            Some(mut spec) => {
                if let Err(code) = apply_overrides(
                    &mut spec,
                    shards.as_deref(),
                    threads.as_deref(),
                    strategy.as_deref(),
                ) {
                    return code;
                }
                if let Err(code) = apply_checkpoint_overrides(
                    &mut spec,
                    ckpt_every.as_deref(),
                    ckpt_path.as_deref(),
                ) {
                    return code;
                }
                cmd_run(&spec, smoke, opt("--out").as_deref(), resume.as_deref())
            }
            None => {
                eprintln!("unknown scenario `{name}`; try --list");
                ExitCode::FAILURE
            }
        },
        None => usage(),
    }
}
