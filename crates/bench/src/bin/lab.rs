//! pp-lab — run any declarative scenario by name or from a JSON spec file
//! and emit a deterministic golden report.
//!
//! ```text
//! lab --list                          list registered scenarios
//! lab <name> [--smoke] [--out PATH]   run one scenario, write its report
//! lab --file SPEC.json [--smoke]      run a scenario from a JSON spec
//! lab --spec <name>                   print a scenario's JSON spec
//! lab --all --smoke --out-dir DIR     run every scenario, one report each
//! lab --check PATH                    validate a golden-report JSON file
//! lab --emit-golden DIR               write smoke goldens for the pinned set
//! lab --verify-golden DIR             re-run the pinned set, byte-compare
//! ```
//!
//! `--shards K` / `--threads T` override the spec's engine knobs for the
//! running commands (`lab <name>`, `--file`, `--all`): `K` spatial shards
//! for the decision sweep, `T` worker threads. Outcomes are byte-identical
//! for every layout — only the throughput changes — so overriding the
//! knobs never drifts a golden report's *measurements*; a run with
//! explicit `K ≥ 2` records the layout in the report's `shard_layout`
//! metadata.
//!
//! `--smoke` caps every run at a few rounds so the whole registry finishes
//! in CI seconds; reports are byte-identical across same-seed runs (the
//! scenario-matrix CI job runs everything twice and diffs). The *pinned*
//! subset under `golden/` additionally catches behavioral drift: any
//! engine/balancer change that alters an outcome shows up as a golden
//! diff and must be re-committed deliberately.

use pp_scenario::registry;
use pp_scenario::report::GoldenReport;
use pp_scenario::spec::ScenarioSpec;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Smoke caps: enough rounds to exercise arrivals/faults/speeds, few
/// enough that all scenarios finish in seconds.
const SMOKE_ROUNDS: u64 = 8;
const SMOKE_DRAIN: f64 = 25.0;

/// The pinned golden subset: one scenario per major subsystem (classic
/// redistribution, new arrival models, trace replay, faults, speeds).
const PINNED: &[&str] = &[
    "hotspot-torus",
    "bursty-onoff",
    "diurnal-wave",
    "moving-hotspot",
    "hetero-speeds",
    "trace-replay",
    "faulty-torus",
];

fn run_to_report(spec: &ScenarioSpec, smoke: bool) -> Result<GoldenReport, String> {
    let spec = if smoke { spec.smoke(SMOKE_ROUNDS, SMOKE_DRAIN) } else { spec.clone() };
    let mut engine = spec.build_engine()?;
    let layout = engine.shard_layout();
    engine.run_rounds(spec.duration.rounds).drain(spec.duration.drain);
    let report = engine.report();
    let mut g = GoldenReport::from_run(&spec.name, spec.seed, spec.topology.node_count(), &report);
    // Surface the layout only when the *spec* pins an explicit shard count:
    // auto layouts depend on the host's core count and would make golden
    // reports machine-dependent. Threads are omitted for the same reason.
    if spec.engine.shards >= 2 {
        g = g.with_shard_layout(format!(
            "shards={} boundary={}",
            layout.shards, layout.boundary_nodes
        ));
    }
    Ok(g)
}

fn write_report(g: &GoldenReport, path: &Path) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
        }
    }
    std::fs::write(path, g.to_canonical_json()).map_err(|e| format!("cannot write {path:?}: {e}"))
}

fn cmd_list() -> ExitCode {
    let all = registry::registry();
    println!("{} registered scenarios:\n", all.len());
    for s in &all {
        println!("  {}", s.summary());
    }
    println!("\nrun one with: lab <name> [--smoke] [--out PATH]");
    ExitCode::SUCCESS
}

fn cmd_check(path: &str) -> ExitCode {
    match pp_bench::read_artifact(path) {
        Err(e) => {
            eprintln!("{path}: {e}");
            ExitCode::FAILURE
        }
        Ok(text) => match GoldenReport::check_text(&text) {
            Ok(name) => {
                println!("{path}: OK (golden report for `{name}`)");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ExitCode::FAILURE
            }
        },
    }
}

fn cmd_spec(name: &str) -> ExitCode {
    match registry::by_name(name) {
        Some(s) => {
            println!("{}", s.to_json_pretty());
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unknown scenario `{name}`; try --list");
            ExitCode::FAILURE
        }
    }
}

fn cmd_run(spec: &ScenarioSpec, smoke: bool, out: Option<&str>) -> ExitCode {
    if let Err(e) = spec.validate() {
        eprintln!("invalid scenario: {e}");
        return ExitCode::FAILURE;
    }
    match run_to_report(spec, smoke) {
        Ok(g) => {
            println!(
                "{}: {} rounds, final cov {:.4}, {} migrations, traffic {:.1}",
                g.scenario, g.rounds, g.final_cov, g.migrations, g.weighted_traffic
            );
            if let Some(path) = out {
                if let Err(e) = write_report(&g, Path::new(path)) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
                println!("[golden report: {path}]");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_all(
    smoke: bool,
    out_dir: Option<&str>,
    shards: Option<&str>,
    threads: Option<&str>,
) -> ExitCode {
    let mut all = registry::registry();
    for s in &mut all {
        if let Err(code) = apply_overrides(s, shards, threads) {
            return code;
        }
    }
    println!("running {} scenarios ({}):", all.len(), if smoke { "smoke" } else { "full" });
    for s in &all {
        match run_to_report(s, smoke) {
            Ok(g) => {
                println!(
                    "  {:28} rounds={:4} cov={:8.4} migrations={:6}",
                    g.scenario, g.rounds, g.final_cov, g.migrations
                );
                if let Some(dir) = out_dir {
                    let path = PathBuf::from(dir).join(format!("{}.json", s.name));
                    if let Err(e) = write_report(&g, &path) {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            Err(e) => {
                eprintln!("error: {}: {e}", s.name);
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(dir) = out_dir {
        println!("[reports under {dir}/]");
    }
    ExitCode::SUCCESS
}

fn pinned_specs() -> Vec<ScenarioSpec> {
    PINNED
        .iter()
        .map(|name| registry::by_name(name).unwrap_or_else(|| panic!("pinned `{name}` missing")))
        .collect()
}

fn cmd_emit_golden(dir: &str) -> ExitCode {
    for spec in pinned_specs() {
        match run_to_report(&spec, true) {
            Ok(g) => {
                let path = PathBuf::from(dir).join(format!("{}.json", spec.name));
                if let Err(e) = write_report(&g, &path) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {}", path.display());
            }
            Err(e) => {
                eprintln!("error: {}: {e}", spec.name);
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_verify_golden(dir: &str) -> ExitCode {
    let mut drifted = Vec::new();
    for spec in pinned_specs() {
        let path = PathBuf::from(dir).join(format!("{}.json", spec.name));
        let committed = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{}: cannot read committed golden: {e}", path.display());
                drifted.push(spec.name.clone());
                continue;
            }
        };
        let fresh = match run_to_report(&spec, true) {
            Ok(g) => g.to_canonical_json(),
            Err(e) => {
                eprintln!("{}: run failed: {e}", spec.name);
                drifted.push(spec.name.clone());
                continue;
            }
        };
        if fresh == committed {
            println!("  {:28} OK", spec.name);
        } else {
            eprintln!("  {:28} DRIFT (report differs from {})", spec.name, path.display());
            drifted.push(spec.name.clone());
        }
    }
    if drifted.is_empty() {
        println!("all {} pinned goldens match", PINNED.len());
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "\ngolden drift in {drifted:?}.\nIf the behavior change is intended, regenerate with: \
             cargo run --release -p pp-bench --bin lab -- --emit-golden golden"
        );
        ExitCode::FAILURE
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: lab --list\n       lab <name> [--smoke] [--shards K] [--threads T] [--out PATH]\n  \
         \x20    lab --file SPEC.json [--smoke] [--shards K] [--threads T] [--out PATH]\n       \
         lab --spec <name>\n       lab --all [--smoke] [--shards K] [--threads T] [--out-dir \
         DIR]\n       lab --check PATH\n       lab --emit-golden DIR\n       lab --verify-golden \
         DIR"
    );
    ExitCode::FAILURE
}

/// Applies the `--shards`/`--threads` CLI overrides to a spec's engine
/// knobs (a parse failure falls through to `usage`).
fn apply_overrides(
    spec: &mut ScenarioSpec,
    shards: Option<&str>,
    threads: Option<&str>,
) -> Result<(), ExitCode> {
    if let Some(k) = shards {
        spec.engine.shards = k.parse().map_err(|_| usage())?;
    }
    if let Some(t) = threads {
        spec.engine.threads = t.parse().map_err(|_| usage())?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned();
    let smoke = flag("--smoke");

    if flag("--list") {
        return cmd_list();
    }
    if let Some(path) = opt("--check") {
        return cmd_check(&path);
    }
    if let Some(name) = opt("--spec") {
        return cmd_spec(&name);
    }
    if let Some(dir) = opt("--emit-golden") {
        return cmd_emit_golden(&dir);
    }
    if let Some(dir) = opt("--verify-golden") {
        return cmd_verify_golden(&dir);
    }
    let shards = opt("--shards");
    let threads = opt("--threads");
    if flag("--all") {
        return cmd_all(smoke, opt("--out-dir").as_deref(), shards.as_deref(), threads.as_deref());
    }
    if let Some(path) = opt("--file") {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut spec = match ScenarioSpec::from_json(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot parse {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(code) = apply_overrides(&mut spec, shards.as_deref(), threads.as_deref()) {
            return code;
        }
        return cmd_run(&spec, smoke, opt("--out").as_deref());
    }
    // First non-flag argument that is not the value of a value-taking
    // flag is the scenario name (`lab --out r.json hotspot-torus` and
    // `lab hotspot-torus --out r.json` both work).
    const VALUE_FLAGS: &[&str] = &[
        "--out",
        "--out-dir",
        "--file",
        "--check",
        "--spec",
        "--emit-golden",
        "--verify-golden",
        "--shards",
        "--threads",
    ];
    let name = args.iter().enumerate().find_map(|(i, a)| {
        let is_flag_value = i > 0 && VALUE_FLAGS.contains(&args[i - 1].as_str());
        (!a.starts_with("--") && !is_flag_value).then(|| a.clone())
    });
    match name {
        Some(name) => match registry::by_name(&name) {
            Some(mut spec) => {
                if let Err(code) = apply_overrides(&mut spec, shards.as_deref(), threads.as_deref())
                {
                    return code;
                }
                cmd_run(&spec, smoke, opt("--out").as_deref())
            }
            None => {
                eprintln!("unknown scenario `{name}`; try --list");
                ExitCode::FAILURE
            }
        },
        None => usage(),
    }
}
