//! E3 — Corollaries 1–2: trapping behaviour of the physical model.
//! Frictionless objects released above the rim always escape the crater
//! (Corollary 1); any `µ_k > 0` eventually traps and stops every object
//! (Corollary 2), sooner for stronger friction.

use pp_bench::{banner, dump_json};
use pp_metrics::summary::{fmt, TextTable};
use pp_physics::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    mu: f64,
    trials: usize,
    stopped: usize,
    escaped_crater: usize,
    mean_stop_time: f64,
    mean_path: f64,
}

fn main() {
    banner("E3", "trapping under friction", "Corollaries 1–2");
    let crater =
        AnalyticSurface::Crater { center: Vec2::ZERO, floor_r: 1.0, rim_r: 2.0, rim_height: 0.6 };
    let cfg = SimConfig { g: 10.0, dt: 1e-3, stop_speed: 1e-4, max_steps: 300_000 };
    let contour = Contour::disc(Vec2::ZERO, 3.0, 0.1);
    // Start on the inner rim slope, just below the peak.
    let starts: Vec<Vec2> = (0..8)
        .map(|k| {
            let a = k as f64 * std::f64::consts::FRAC_PI_4;
            Vec2::new(1.9 * a.cos(), 1.9 * a.sin())
        })
        .collect();

    let mut rows = Vec::new();
    for mu in [0.0, 0.05, 0.1, 0.2, 0.4, 0.8] {
        let mut stopped = 0;
        let mut escaped = 0;
        let mut stop_times = Vec::new();
        let mut paths = Vec::new();
        for &start in &starts {
            let friction = if mu == 0.0 { Friction::FRICTIONLESS } else { Friction::uniform(mu) };
            let mut sim = Simulation::new(&crater, friction, cfg, Particle::at_rest(start, 1.0));
            let out = sim.run_until(|s| !contour.contains(s.particle().pos));
            match out.reason {
                StopReason::Predicate => escaped += 1,
                StopReason::AtRest => {
                    stopped += 1;
                    stop_times.push(out.time);
                }
                StopReason::StepLimit => {}
            }
            paths.push(out.ground_distance);
        }
        rows.push(Row {
            mu,
            trials: starts.len(),
            stopped,
            escaped_crater: escaped,
            mean_stop_time: if stop_times.is_empty() {
                f64::NAN
            } else {
                stop_times.iter().sum::<f64>() / stop_times.len() as f64
            },
            mean_path: paths.iter().sum::<f64>() / paths.len() as f64,
        });
    }

    let mut table =
        TextTable::new(vec!["µ", "trials", "stopped", "escaped", "mean stop t", "mean path"]);
    for r in &rows {
        table.row(vec![
            fmt(r.mu, 2),
            r.trials.to_string(),
            r.stopped.to_string(),
            r.escaped_crater.to_string(),
            if r.mean_stop_time.is_nan() { "-".into() } else { fmt(r.mean_stop_time, 2) },
            fmt(r.mean_path, 2),
        ]);
    }
    println!("{}", table.render());

    // Corollary 1: µ = 0 starting above the rim peak (1.9 on the inner slope
    // has height 0.54 < 0.6 — released below the peak it oscillates; so we
    // check the frictionless row escaped *or* ran to the step limit, never
    // came to rest.
    assert_eq!(rows[0].stopped, 0, "a frictionless object can never stop");
    // Corollary 2: every µ > 0 row has all objects at rest inside.
    for r in &rows[1..] {
        assert_eq!(r.stopped + r.escaped_crater, r.trials, "µ={} lost objects", r.mu);
    }
    // Stronger friction ⇒ shorter paths.
    let paths: Vec<f64> = rows[1..].iter().map(|r| r.mean_path).collect();
    for w in paths.windows(2) {
        assert!(w[1] <= w[0] * 1.05, "path should shrink with µ: {paths:?}");
    }
    println!("\nµ=0 never rests (Cor. 1); every µ>0 rests (Cor. 2); paths shrink with µ.");
    dump_json("exp3_trapping", &rows);
}
