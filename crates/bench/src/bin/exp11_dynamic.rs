//! E11 — the §1 motivation: dynamic systems where tasks arrive at any time
//! and at any node, and nodes consume work. Static mapping cannot follow;
//! the dynamic balancer must hold the steady-state imbalance down and lift
//! throughput.

use pp_bench::{banner, dump_json, run_once};
use pp_core::balancer::ParticlePlaneBalancer;
use pp_core::params::PhysicsConfig;
use pp_metrics::summary::{fmt, TextTable};
use pp_sim::balancer::{LoadBalancer, NullBalancer};
use pp_sim::engine::EngineConfig;
use pp_tasking::workload::{ArrivalProcess, Workload};
use pp_topology::graph::Topology;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    arrivals: String,
    balanced: bool,
    steady_cov: f64,
    completed: usize,
    residual_load: f64,
}

fn run(arrival: ArrivalProcess, aname: &str, balanced: bool) -> Row {
    let topo = Topology::torus(&[6, 6]);
    let n = topo.node_count();
    let balancer: Box<dyn LoadBalancer> = if balanced {
        Box::new(ParticlePlaneBalancer::new(PhysicsConfig::default()))
    } else {
        Box::new(NullBalancer)
    };
    let config = EngineConfig { arrival, consume_rate: 0.3, ..Default::default() };
    let r = run_once(topo, None, Workload::hotspot(n, 0, n as f64), balancer, config, 500, 17);
    let tail: Vec<f64> = r.series.points().iter().rev().take(100).map(|&(_, v)| v).collect();
    Row {
        arrivals: aname.to_string(),
        balanced,
        steady_cov: tail.iter().sum::<f64>() / tail.len() as f64,
        completed: r.completed_tasks,
        residual_load: r.total_load,
    }
}

fn main() {
    banner("E11", "dynamic arrivals + work consumption", "§1 motivation (non-quiescent regime)");
    let mut rows = Vec::new();
    for (aname, arrival) in [
        ("poisson rate 8", ArrivalProcess::Poisson { rate: 8.0, size_min: 0.5, size_max: 1.5 }),
        (
            "bursty (rate 30, 5 on / 15 off)",
            ArrivalProcess::Bursty { rate: 30.0, burst_len: 5.0, quiet_len: 15.0, size: 1.0 },
        ),
    ] {
        for balanced in [false, true] {
            rows.push(run(arrival, aname, balanced));
        }
    }

    let mut table = TextTable::new(vec![
        "arrival process",
        "balancer",
        "steady-state CoV",
        "tasks completed",
        "residual load",
    ]);
    for r in &rows {
        table.row(vec![
            r.arrivals.clone(),
            if r.balanced { "particle-plane".into() } else { "none".to_string() },
            fmt(r.steady_cov, 3),
            r.completed.to_string(),
            fmt(r.residual_load, 1),
        ]);
    }
    println!("{}", table.render());

    // Shape: under both arrival processes balancing lowers the steady CoV
    // and completes at least as much work.
    for pair in rows.chunks(2) {
        let (off, on) = (&pair[0], &pair[1]);
        assert!(
            on.steady_cov < off.steady_cov,
            "{}: balanced CoV {} !< unbalanced {}",
            on.arrivals,
            on.steady_cov,
            off.steady_cov
        );
        assert!(
            on.completed as f64 >= off.completed as f64 * 0.95,
            "{}: balancing should not cost throughput",
            on.arrivals
        );
    }
    println!("\nBalancing holds the steady-state imbalance down without hurting throughput.");
    dump_json("exp11_dynamic", &rows);
}
