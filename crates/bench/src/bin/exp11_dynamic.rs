//! E11 — the §1 motivation: dynamic systems where tasks arrive at any time
//! and at any node, and nodes consume work. Static mapping cannot follow;
//! the dynamic balancer must hold the steady-state imbalance down and lift
//! throughput. Each cell is one [`ScenarioSpec`]; the balanced/unbalanced
//! pair differ only in the `balancer` field.

use pp_bench::{banner, dump_json};
use pp_metrics::summary::{fmt, TextTable};
use pp_scenario::spec::{
    ArrivalSpec, BalancerSpec, DurationSpec, EngineKnobs, ScenarioSpec, WorkloadSpec,
};
use pp_topology::spec::TopologySpec;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    arrivals: String,
    balanced: bool,
    steady_cov: f64,
    completed: usize,
    residual_load: f64,
}

fn run(arrival: ArrivalSpec, aname: &str, balanced: bool) -> Row {
    let n = 36usize;
    let spec = ScenarioSpec {
        name: format!("e11-{}-{balanced}", arrival.label()),
        topology: TopologySpec::Torus { dims: vec![6, 6] },
        workload: WorkloadSpec::Hotspot { node: 0, total: n as f64, task_size: 1.0 },
        balancer: if balanced { BalancerSpec::default() } else { BalancerSpec::Null },
        arrival,
        engine: EngineKnobs { consume_rate: 0.3, ..EngineKnobs::default() },
        // Short drain: a long unbalanced drain phase (arrivals keep coming
        // but no more rounds fire) would wash out the balanced/unbalanced
        // difference in completed work and residual backlog.
        duration: DurationSpec { rounds: 500, drain: 10.0 },
        seed: 17,
        ..ScenarioSpec::default()
    };
    let r = spec.run().expect("valid scenario");
    let tail: Vec<f64> = r.series.points().iter().rev().take(100).map(|&(_, v)| v).collect();
    Row {
        arrivals: aname.to_string(),
        balanced,
        steady_cov: tail.iter().sum::<f64>() / tail.len() as f64,
        completed: r.completed_tasks,
        residual_load: r.total_load,
    }
}

fn main() {
    banner("E11", "dynamic arrivals + work consumption", "§1 motivation (non-quiescent regime)");
    let mut rows = Vec::new();
    for (aname, arrival) in [
        ("poisson rate 8", ArrivalSpec::Poisson { rate: 8.0, size_min: 0.5, size_max: 1.5 }),
        (
            "bursty (rate 30, 5 on / 15 off)",
            ArrivalSpec::Bursty { rate: 30.0, burst_len: 5.0, quiet_len: 15.0, size: 1.0 },
        ),
        (
            "diurnal (rate 8±80%, period 100)",
            ArrivalSpec::Diurnal {
                base_rate: 8.0,
                amplitude: 0.8,
                period: 100.0,
                size_min: 0.5,
                size_max: 1.5,
            },
        ),
        (
            "moving hotspot (rate 8, dwell 25)",
            ArrivalSpec::MovingHotspot { rate: 8.0, size: 1.0, dwell: 25.0, stride: 13 },
        ),
    ] {
        for balanced in [false, true] {
            rows.push(run(arrival.clone(), aname, balanced));
        }
    }

    let mut table = TextTable::new(vec![
        "arrival process",
        "balancer",
        "steady-state CoV",
        "tasks completed",
        "residual load",
    ]);
    for r in &rows {
        table.row(vec![
            r.arrivals.clone(),
            if r.balanced { "particle-plane".into() } else { "none".to_string() },
            fmt(r.steady_cov, 3),
            r.completed.to_string(),
            fmt(r.residual_load, 1),
        ]);
    }
    println!("{}", table.render());

    // Shape: balancing completes at least as much work everywhere, and for
    // the uniform-target processes it lowers the steady relative CoV. The
    // moving hotspot is judged on backlog instead: the balancer retires
    // more work (its benefit), which *shrinks the mean height* — so the
    // ever-present fresh spike dominates σ/µ and the relative CoV is not a
    // meaningful win metric there.
    for pair in rows.chunks(2) {
        let (off, on) = (&pair[0], &pair[1]);
        if !on.arrivals.starts_with("moving hotspot") {
            assert!(
                on.steady_cov < off.steady_cov,
                "{}: balanced CoV {} !< unbalanced {}",
                on.arrivals,
                on.steady_cov,
                off.steady_cov
            );
        } else {
            assert!(
                on.residual_load < off.residual_load,
                "{}: balancing should shrink the backlog ({} !< {})",
                on.arrivals,
                on.residual_load,
                off.residual_load
            );
        }
        assert!(
            on.completed as f64 >= off.completed as f64 * 0.95,
            "{}: balancing should not cost throughput",
            on.arrivals
        );
    }
    println!("\nBalancing holds the steady-state imbalance down without hurting throughput,");
    println!("and turns idle capacity into backlog reduction against the moving hotspot.");
    dump_json("exp11_dynamic", &rows);
}
