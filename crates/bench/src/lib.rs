//! # pp-bench — the experiment harness
//!
//! One binary per paper artifact (see DESIGN.md §5 and EXPERIMENTS.md):
//! `cargo run --release -p pp-bench --bin expN` prints the regenerated
//! table and writes a JSON copy under `target/experiments/`. The Criterion
//! benches in `benches/` time the underlying machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pp_metrics::imbalance::Imbalance;
use pp_sim::balancer::LoadBalancer;
use pp_sim::engine::{Engine, EngineBuilder, EngineConfig, RunReport};
use pp_tasking::workload::Workload;
use pp_topology::graph::Topology;
use pp_topology::links::{LinkAttrs, LinkMap};
use serde::Serialize;
use std::path::PathBuf;

/// Links fast enough that transfers land within the tick — the synchronous
/// assumption of the classical convergence analyses.
pub fn instant_links(topo: &Topology) -> LinkMap {
    LinkMap::uniform(topo, LinkAttrs { bandwidth: 1e9, distance: 1e-9, fault_prob: 0.0 })
}

/// Builds and runs one simulation to completion (rounds + drain) and
/// returns the report.
pub fn run_once(
    topo: Topology,
    links: Option<LinkMap>,
    workload: Workload,
    balancer: Box<dyn LoadBalancer>,
    config: EngineConfig,
    rounds: u64,
    seed: u64,
) -> RunReport {
    let mut builder = EngineBuilder::new(topo)
        .workload(workload)
        .balancer_boxed(balancer)
        .config(config)
        .seed(seed);
    if let Some(l) = links {
        builder = builder.links(l);
    }
    let mut engine: Engine = builder.build();
    engine.run_rounds(rounds).drain(1000.0);
    engine.report()
}

/// Initial CoV of a workload (before any balancing).
pub fn initial_cov(w: &Workload) -> f64 {
    Imbalance::of(&w.heights()).cov
}

/// Prints the experiment banner.
pub fn banner(id: &str, title: &str, paper_ref: &str) {
    println!("=== {id}: {title}");
    println!("    paper artifact: {paper_ref}\n");
}

/// Why a JSON artifact check failed: the file is absent/unreadable, or it
/// exists but does not parse. The distinction matters for CI diagnostics —
/// a parse error on a missing file sends people hunting for corruption
/// that is not there.
#[derive(Debug)]
pub enum CheckError {
    /// The path does not exist.
    NotFound(String),
    /// The path exists but cannot be read.
    Unreadable(String),
    /// The contents are not valid JSON.
    Invalid(String),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::NotFound(e) => write!(f, "NOT FOUND ({e})"),
            CheckError::Unreadable(e) => write!(f, "UNREADABLE ({e})"),
            CheckError::Invalid(e) => write!(f, "INVALID: {e}"),
        }
    }
}

/// Reads an artifact file, classifying the failure as missing vs
/// unreadable (the distinction [`CheckError`] exists for).
pub fn read_artifact(path: &str) -> Result<String, CheckError> {
    std::fs::read_to_string(path).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            CheckError::NotFound(e.to_string())
        } else {
            CheckError::Unreadable(e.to_string())
        }
    })
}

/// Checks that `path` exists and parses as JSON, distinguishing a missing
/// file from a corrupt one.
pub fn check_json_file(path: &str) -> Result<(), CheckError> {
    let text = read_artifact(path)?;
    serde_json::from_str(&text).map(|_| ()).map_err(|e| CheckError::Invalid(e.to_string()))
}

/// Writes a JSON artifact for EXPERIMENTS.md bookkeeping. Failures to
/// create the directory are reported but non-fatal (the table on stdout is
/// the primary output).
pub fn dump_json<T: Serialize>(name: &str, value: &T) {
    let dir = PathBuf::from("target/experiments");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warn: cannot create {dir:?}: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warn: cannot write {path:?}: {e}");
            } else {
                println!("[json artifact: {}]", path.display());
            }
        }
        Err(e) => eprintln!("warn: cannot serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::balancer::ParticlePlaneBalancer;
    use pp_core::params::PhysicsConfig;

    #[test]
    fn run_once_produces_report() {
        let topo = Topology::torus(&[4, 4]);
        let w = Workload::hotspot(16, 0, 32.0);
        let r = run_once(
            topo,
            None,
            w,
            Box::new(ParticlePlaneBalancer::new(PhysicsConfig::default())),
            EngineConfig::default(),
            50,
            1,
        );
        assert_eq!(r.rounds, 50);
        assert!(r.final_imbalance.cov.is_finite());
    }

    #[test]
    fn instant_links_cover_topology() {
        let topo = Topology::hypercube(3);
        let l = instant_links(&topo);
        assert_eq!(l.len(), topo.edge_count());
    }

    #[test]
    fn initial_cov_of_hotspot() {
        let w = Workload::hotspot(16, 0, 16.0);
        assert!(initial_cov(&w) > 3.0);
    }

    #[test]
    fn check_json_file_distinguishes_failure_modes() {
        let dir = std::env::temp_dir().join("pp-bench-check-test");
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("no-such-file.json");
        let _ = std::fs::remove_file(&missing);
        match check_json_file(missing.to_str().unwrap()) {
            Err(CheckError::NotFound(_)) => {}
            other => panic!("expected NotFound, got {other:?}"),
        }

        let corrupt = dir.join("corrupt.json");
        std::fs::write(&corrupt, "{ not json").unwrap();
        match check_json_file(corrupt.to_str().unwrap()) {
            Err(CheckError::Invalid(e)) => assert!(e.contains("parse error"), "{e}"),
            other => panic!("expected Invalid, got {other:?}"),
        }

        let good = dir.join("good.json");
        std::fs::write(&good, r#"{"a": [1, 2.5], "b": null}"#).unwrap();
        assert!(check_json_file(good.to_str().unwrap()).is_ok());
    }
}
