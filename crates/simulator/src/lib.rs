//! # pp-sim — the discrete-event multiprocessor simulator
//!
//! Every experiment in this reproduction runs on this substrate: a network
//! of processing nodes ([`state::SystemState`]) whose loads are rearranged
//! by a pluggable [`balancer::LoadBalancer`] policy, driven by the
//! [`engine::Engine`] event loop. The engine models what the paper says
//! real systems have and prior work ignored (§1, §4.2): per-link bandwidth,
//! distance and fault probability; task dependency and resource matrices;
//! dynamic task arrival and completion; and multi-hop in-motion migration.
//!
//! [`parallel::par_map`] fans independent simulations out over threads for
//! parameter sweeps.

// `deny` rather than `forbid`: the shard pool (`pool`) contains two
// documented lifetime/aliasing erasures behind a module-level `allow`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod balancer;
pub mod checkpoint;
pub mod churn;
pub mod engine;
pub mod events;
pub mod parallel;
pub mod pool;
pub mod state;
pub mod strategy;

/// One-stop imports.
pub mod prelude {
    pub use crate::balancer::{
        build_view, GlobalView, LinkView, LoadBalancer, MigratingLoad, MigrationIntent,
        NeighborInfo, NodeView, NullBalancer, ViewScratch,
    };
    pub use crate::checkpoint::{Checkpoint, CHECKPOINT_VERSION};
    pub use crate::churn::{ChurnEvent, ChurnPlan};
    pub use crate::engine::{
        Engine, EngineBuilder, EngineConfig, FaultModel, RepartitionConfig, RunReport, ShardLayout,
    };
    pub use crate::parallel::par_map;
    pub use crate::pool::ShardPool;
    pub use crate::state::{NodeState, SystemState};
    pub use crate::strategy::{SimulationStrategy, WakeHeap};
}
