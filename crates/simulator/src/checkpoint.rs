//! Versioned, byte-stable engine checkpoints.
//!
//! A [`Checkpoint`] captures the **complete dynamic state** of an
//! [`Engine`](crate::engine::Engine) between two balance rounds: the system
//! state (per-node task lists and accumulated heights, plus the incremental
//! `(n, Σh, Σh²)` imbalance statistics restored *verbatim* so float drift
//! history is preserved), the event queue with its sequence counter, the
//! in-flight load slab and its free list, every RNG stream (the engine's
//! own and the per-node decision streams, which are layout-independent),
//! the dynamic link-fault bitset, the task-id generator position, the
//! recorded metrics (CoV series and traffic ledger), per-shard activity
//! flags, and opaque balancer-internal state via
//! [`LoadBalancer::save_state`](crate::balancer::LoadBalancer::save_state).
//!
//! What it deliberately does **not** capture is the static configuration —
//! topology, link attributes, balancer construction, node speeds, the
//! replay trace, engine knobs. A restore always targets an engine freshly
//! built from the same spec; the checkpoint carries a fingerprint (node
//! count, edge count, trace length, balancer name) so a mismatched restore
//! fails loudly instead of corrupting silently.
//!
//! **Execution layout is not state.** The worker count and the shard pool's
//! shard→worker affinity map are deliberately excluded from both the
//! capture and the fingerprint: a checkpoint written at `threads = 8` must
//! restore into a `threads = 1` engine (and vice versa) with byte-identical
//! continuation, because affinity only decides *where* a shard's sweep
//! runs, never what it computes. Only `shard_layout_k` (the spatial K) is
//! recorded, and then only to decide whether the activity flags carry over
//! or everything conservatively re-marks dirty.
//!
//! ## Exactness
//!
//! The invariant (enforced by `tests/checkpoint_resume_prop.rs` and the
//! `pp-lab --verify-resume` CI gate) is that *checkpoint → JSON → parse →
//! restore → continue* is byte-identical to never having stopped, for every
//! `(shards, threads)` layout. Three properties make this hold:
//!
//! 1. every `f64` round-trips bit-exactly through the vendored JSON writer
//!    (`{:?}` shortest-round-trip rendering) and parser (correctly rounded
//!    `str::parse::<f64>`);
//! 2. accumulated values (node heights, `Σh`/`Σh²`, in-flight load, ledger
//!    totals) are restored from their captured values — or rebuilt by
//!    replaying the identical addition sequence — never recomputed by a
//!    different summation order;
//! 3. RNG streams are captured as raw xoshiro256++ state words and resume
//!    mid-stream.
//!
//! ## Versioning
//!
//! The JSON carries a leading `"version"` field, checked before anything
//! else is parsed; unknown versions are rejected with an error (never a
//! panic — checkpoint bytes are untrusted input, and corrupt or truncated
//! files must fail cleanly too). See
//! `docs/adr/ADR-005-checkpoint-resume.md`.

use crate::events::Event;
use crate::state::StatSnapshot;
use pp_metrics::ledger::MigrationRecord;
use pp_metrics::shard::ShardAccum;
use pp_tasking::task::{Task, TaskId};
use serde::{Deserialize, Serialize, Value};

/// The current checkpoint format version. Bump on any incompatible change
/// to the serialized shape and teach [`Checkpoint::from_json`] to either
/// migrate or reject the older versions explicitly.
pub const CHECKPOINT_VERSION: u32 = 1;

/// One in-flight load, captured slot-exactly from the engine's flight slab
/// (pending [`Event::LoadArrival`] entries reference slots by index, so the
/// slab layout itself is part of the dynamic state).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightSnap {
    /// The migrating task.
    pub task: Task,
    /// The balancer's energy flag `h*` riding on the load.
    pub flag: f64,
    /// Hops completed so far.
    pub hops: u32,
    /// Node that originally emitted the migration.
    pub source: u32,
    /// Hop source node.
    pub from: u32,
    /// Hop destination node (the source again for bounced transfers).
    pub to: u32,
    /// Link weight `e_{i,j}` of the hop.
    pub link_weight: f64,
    /// Heat charged for the hop.
    pub heat: f64,
    /// Transfer attempts consumed.
    pub attempts: u32,
    /// Whether the transfer exhausted its attempt budget and bounced.
    pub bounced: bool,
}

/// A complete dynamic-state snapshot of a running engine. Build with
/// [`Engine::checkpoint`](crate::engine::Engine::checkpoint), persist with
/// [`Checkpoint::to_json`], and apply to a freshly built engine with
/// [`Engine::restore`](crate::engine::Engine::restore).
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Fingerprint: node count of the engine that wrote the checkpoint.
    pub nodes: usize,
    /// Fingerprint: edge count.
    pub edges: usize,
    /// Fingerprint: replay-trace length.
    pub trace_len: usize,
    /// Fingerprint: balancer display name.
    pub balancer: String,
    /// Simulation clock.
    pub time: f64,
    /// Absolute time of the next scheduled balance round.
    pub next_tick: f64,
    /// Balance rounds executed.
    pub round: u64,
    /// The engine's own RNG stream (faults, transfer attempts, arrivals).
    pub engine_rng: [u64; 4],
    /// Per-node decision RNG streams, indexed by node id — deliberately
    /// *not* grouped by shard, so a checkpoint written under one `(shards,
    /// threads)` layout restores exactly under any other.
    pub node_rngs: Vec<[u64; 4]>,
    /// Resident tasks per node, in queue order.
    pub node_tasks: Vec<Vec<Task>>,
    /// Accumulated node heights, captured verbatim (they may differ from
    /// `Σ size` in the last ulp — that drift is part of the exact state).
    pub node_heights: Vec<f64>,
    /// The incremental imbalance statistics, verbatim.
    pub stats: StatSnapshot,
    /// Task-id generator position.
    pub idgen_next: u64,
    /// Backing words of the down-link bitset.
    pub down_words: Vec<u64>,
    /// The in-flight load slab, slot-exact (`None` = free slot).
    pub flights: Vec<Option<FlightSnap>>,
    /// The slab free list, in pop order.
    pub free_slots: Vec<usize>,
    /// Total load in flight (accumulated value, verbatim).
    pub in_flight_load: f64,
    /// Tasks completed by work consumption.
    pub completed_tasks: usize,
    /// Event-queue sequence counter.
    pub queue_seq: u64,
    /// Pending events as `(time, seq, event)` in pop order.
    pub queue: Vec<(f64, u64, Event)>,
    /// Every migration record so far (totals are rebuilt by replaying the
    /// identical addition sequence).
    pub ledger: Vec<MigrationRecord>,
    /// The CoV time series recorded so far.
    pub series: Vec<(f64, f64)>,
    /// Shard count `K` the activity flags below were captured under. A
    /// restore into a different `K` discards them (all shards dirty), which
    /// is report-exact: evaluating a clean shard of a quiescence-stable
    /// policy emits nothing and draws nothing (ADR-004's skip-safety
    /// argument, run in reverse).
    pub shard_layout_k: usize,
    /// Per-shard dirty flags under `shard_layout_k`.
    pub shard_dirty: Vec<bool>,
    /// Per-shard sweep accumulators under `shard_layout_k`.
    pub shard_accums: Vec<ShardAccum>,
    /// Opaque balancer-internal state from
    /// [`LoadBalancer::save_state`](crate::balancer::LoadBalancer::save_state).
    pub balancer_state: Option<Value>,
    /// Fingerprint: length of the engine's churn plan (0 = no churn).
    /// Membership itself is a pure function of the plan prefix at the
    /// restored round, so only the plan length is captured — and omitted
    /// from the JSON entirely when zero, keeping churn-free checkpoint
    /// fixtures byte-identical to the pre-churn format.
    pub churn_len: usize,
}

impl Checkpoint {
    /// The canonical byte-stable rendering: pretty JSON plus a trailing
    /// newline (same convention as golden reports, so committed fixtures
    /// diff cleanly). Same engine state ⇒ identical bytes.
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("checkpoint serialization is total");
        s.push('\n');
        s
    }

    /// Parses a checkpoint from JSON text. Returns `Err` — never panics —
    /// on malformed JSON, a missing or unsupported `version`, or any
    /// missing/ill-typed field (truncated and bit-flipped files land here).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = serde_json::from_str(text).map_err(|e| format!("checkpoint: {e}"))?;
        Self::from_value(&v).map_err(|e| format!("checkpoint: {e}"))
    }
}

/// Shorthand for one object entry.
fn entry<T: Serialize>(key: &str, v: T) -> (String, Value) {
    (key.to_string(), v.to_value())
}

fn task_to_value(t: &Task) -> Value {
    Value::Object(vec![
        entry("id", t.id.0),
        entry("size", t.size),
        entry("work", t.work),
        entry("created_at", t.created_at),
        entry("origin", t.origin),
    ])
}

fn task_from_value(v: &Value) -> Result<Task, String> {
    let size: f64 = v.field("size")?;
    let work: f64 = v.field("work")?;
    let created_at: f64 = v.field("created_at")?;
    if !(size.is_finite() && size > 0.0) {
        return Err(format!("task size {size} must be finite and positive"));
    }
    if !(work.is_finite() && work >= 0.0) {
        return Err(format!("task work {work} must be finite and non-negative"));
    }
    if !created_at.is_finite() {
        return Err("task created_at must be finite".into());
    }
    Ok(Task { id: TaskId(v.field("id")?), size, work, created_at, origin: v.field("origin")? })
}

fn record_to_value(r: &MigrationRecord) -> Value {
    Value::Object(vec![
        entry("time", r.time),
        entry("from", r.from),
        entry("to", r.to),
        entry("size", r.size),
        entry("link_weight", r.link_weight),
        entry("heat", r.heat),
        entry("faulted", r.faulted),
    ])
}

fn record_from_value(v: &Value) -> Result<MigrationRecord, String> {
    Ok(MigrationRecord {
        time: v.field("time")?,
        from: v.field("from")?,
        to: v.field("to")?,
        size: v.field("size")?,
        link_weight: v.field("link_weight")?,
        heat: v.field("heat")?,
        faulted: v.field("faulted")?,
    })
}

fn accum_to_value(a: &ShardAccum) -> Value {
    Value::Object(vec![
        entry("ticks_evaluated", a.ticks_evaluated),
        entry("ticks_skipped", a.ticks_skipped),
        entry("nodes_evaluated", a.nodes_evaluated),
        entry("intents_emitted", a.intents_emitted),
    ])
}

fn accum_from_value(v: &Value) -> Result<ShardAccum, String> {
    Ok(ShardAccum {
        ticks_evaluated: v.field("ticks_evaluated")?,
        ticks_skipped: v.field("ticks_skipped")?,
        nodes_evaluated: v.field("nodes_evaluated")?,
        intents_emitted: v.field("intents_emitted")?,
    })
}

/// Events serialize as `{"kind": ..., "idx": ...}`. `BalanceTick` is never
/// queued (rounds are driven by `run_rounds`), so it has no encoding and is
/// rejected on parse — a checkpoint carrying one is corrupt by definition.
fn event_to_value(e: &Event) -> Value {
    let (kind, idx) = match *e {
        Event::LoadArrival { flight } => ("load", flight),
        Event::TaskArrival => ("task", 0),
        Event::TraceArrival { record } => ("trace", record),
        Event::BalanceTick => unreachable!("balance ticks are never queued"),
    };
    Value::Object(vec![entry("kind", kind), entry("idx", idx)])
}

fn event_from_value(v: &Value) -> Result<Event, String> {
    let kind: String = v.field("kind")?;
    match kind.as_str() {
        "load" => Ok(Event::LoadArrival { flight: v.field("idx")? }),
        "task" => Ok(Event::TaskArrival),
        "trace" => Ok(Event::TraceArrival { record: v.field("idx")? }),
        other => Err(format!("unknown event kind `{other}`")),
    }
}

impl Serialize for StatSnapshot {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            entry("height_sum", self.height_sum),
            entry("height_sq_sum", self.height_sq_sum),
            entry("stat_ops", self.stat_ops),
            entry("stat_peak_sum", self.stat_peak_sum),
            entry("stat_peak_sq", self.stat_peak_sq),
        ])
    }
}

impl Deserialize for StatSnapshot {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(StatSnapshot {
            height_sum: v.field("height_sum")?,
            height_sq_sum: v.field("height_sq_sum")?,
            stat_ops: v.field("stat_ops")?,
            stat_peak_sum: v.field("stat_peak_sum")?,
            stat_peak_sq: v.field("stat_peak_sq")?,
        })
    }
}

impl Serialize for FlightSnap {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            entry("task", task_to_value(&self.task)),
            entry("flag", self.flag),
            entry("hops", self.hops),
            entry("source", self.source),
            entry("from", self.from),
            entry("to", self.to),
            entry("link_weight", self.link_weight),
            entry("heat", self.heat),
            entry("attempts", self.attempts),
            entry("bounced", self.bounced),
        ])
    }
}

impl Deserialize for FlightSnap {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(FlightSnap {
            task: task_from_value(v.get("task").ok_or("flight missing `task`")?)
                .map_err(|e| format!("flight task: {e}"))?,
            flag: v.field("flag")?,
            hops: v.field("hops")?,
            source: v.field("source")?,
            from: v.field("from")?,
            to: v.field("to")?,
            link_weight: v.field("link_weight")?,
            heat: v.field("heat")?,
            attempts: v.field("attempts")?,
            bounced: v.field("bounced")?,
        })
    }
}

impl Serialize for Checkpoint {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            entry("version", CHECKPOINT_VERSION),
            entry("nodes", self.nodes),
            entry("edges", self.edges),
            entry("trace_len", self.trace_len),
            entry("balancer", &self.balancer),
            entry("time", self.time),
            entry("next_tick", self.next_tick),
            entry("round", self.round),
            entry("engine_rng", self.engine_rng),
            entry("node_rngs", &self.node_rngs),
            (
                "node_tasks".to_string(),
                Value::Array(
                    self.node_tasks
                        .iter()
                        .map(|list| Value::Array(list.iter().map(task_to_value).collect()))
                        .collect(),
                ),
            ),
            entry("node_heights", &self.node_heights),
            entry("stats", self.stats),
            entry("idgen_next", self.idgen_next),
            entry("down_words", &self.down_words),
            (
                "flights".to_string(),
                Value::Array(
                    self.flights
                        .iter()
                        .map(|f| match f {
                            Some(f) => f.to_value(),
                            None => Value::Null,
                        })
                        .collect(),
                ),
            ),
            entry("free_slots", &self.free_slots),
            entry("in_flight_load", self.in_flight_load),
            entry("completed_tasks", self.completed_tasks),
            entry("queue_seq", self.queue_seq),
            (
                "queue".to_string(),
                Value::Array(
                    self.queue
                        .iter()
                        .map(|&(t, s, ref e)| {
                            Value::Array(vec![t.to_value(), s.to_value(), event_to_value(e)])
                        })
                        .collect(),
                ),
            ),
            ("ledger".to_string(), Value::Array(self.ledger.iter().map(record_to_value).collect())),
            entry("series", &self.series),
            entry("shard_layout_k", self.shard_layout_k),
            entry("shard_dirty", &self.shard_dirty),
            (
                "shard_accums".to_string(),
                Value::Array(self.shard_accums.iter().map(accum_to_value).collect()),
            ),
            entry("balancer_state", &self.balancer_state),
        ];
        // Omitted (not null) when zero: churn-free checkpoints keep the
        // exact pre-churn byte layout, so committed fixtures never churn.
        if self.churn_len > 0 {
            fields.push(entry("churn_len", self.churn_len));
        }
        Value::Object(fields)
    }
}

impl Deserialize for Checkpoint {
    fn from_value(v: &Value) -> Result<Self, String> {
        // Version gate FIRST: a future-format file must fail on the version,
        // not on whichever field happened to change shape.
        let version: u32 = v.field("version")?;
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "unsupported checkpoint version {version} (this build reads version \
                 {CHECKPOINT_VERSION})"
            ));
        }
        let list = |key: &str| -> Result<&[Value], String> {
            v.get(key)
                .and_then(Value::as_array)
                .ok_or_else(|| format!("field `{key}`: expected array"))
        };
        let node_tasks = list("node_tasks")?
            .iter()
            .map(|lv| {
                lv.as_array()
                    .ok_or_else(|| "node_tasks entry: expected array".to_string())?
                    .iter()
                    .map(task_from_value)
                    .collect::<Result<Vec<Task>, String>>()
            })
            .collect::<Result<Vec<_>, String>>()?;
        let flights = list("flights")?
            .iter()
            .map(|fv| match fv {
                Value::Null => Ok(None),
                other => FlightSnap::from_value(other).map(Some),
            })
            .collect::<Result<Vec<_>, String>>()?;
        let queue = list("queue")?
            .iter()
            .map(|ev| {
                let items =
                    ev.as_array().ok_or_else(|| "queue entry: expected array".to_string())?;
                if items.len() != 3 {
                    return Err(format!("queue entry: expected 3 items, got {}", items.len()));
                }
                Ok((
                    f64::from_value(&items[0]).map_err(|e| format!("queue time: {e}"))?,
                    u64::from_value(&items[1]).map_err(|e| format!("queue seq: {e}"))?,
                    event_from_value(&items[2])?,
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let ledger =
            list("ledger")?.iter().map(record_from_value).collect::<Result<Vec<_>, String>>()?;
        let shard_accums = list("shard_accums")?
            .iter()
            .map(accum_from_value)
            .collect::<Result<Vec<_>, String>>()?;
        let rng_words = |val: &Value| -> Result<[u64; 4], String> {
            let words = Vec::<u64>::from_value(val)?;
            <[u64; 4]>::try_from(words)
                .map_err(|w| format!("RNG state needs 4 words, got {}", w.len()))
        };
        Ok(Checkpoint {
            nodes: v.field("nodes")?,
            edges: v.field("edges")?,
            trace_len: v.field("trace_len")?,
            balancer: v.field("balancer")?,
            time: v.field("time")?,
            next_tick: v.field("next_tick")?,
            round: v.field("round")?,
            engine_rng: rng_words(v.get("engine_rng").ok_or("missing field `engine_rng`")?)
                .map_err(|e| format!("field `engine_rng`: {e}"))?,
            node_rngs: list("node_rngs")?
                .iter()
                .map(&rng_words)
                .collect::<Result<Vec<_>, String>>()
                .map_err(|e| format!("field `node_rngs`: {e}"))?,
            node_tasks,
            node_heights: v.field("node_heights")?,
            stats: v.field("stats")?,
            idgen_next: v.field("idgen_next")?,
            down_words: v.field("down_words")?,
            flights,
            free_slots: v.field("free_slots")?,
            in_flight_load: v.field("in_flight_load")?,
            completed_tasks: v.field("completed_tasks")?,
            queue_seq: v.field("queue_seq")?,
            queue,
            ledger,
            series: v.field("series")?,
            shard_layout_k: v.field("shard_layout_k")?,
            shard_dirty: v.field("shard_dirty")?,
            shard_accums,
            balancer_state: v.field_opt("balancer_state")?,
            churn_len: v.field_opt("churn_len")?.unwrap_or(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_checkpoint() -> Checkpoint {
        Checkpoint {
            nodes: 2,
            edges: 1,
            trace_len: 1,
            balancer: "null".into(),
            time: 3.5,
            next_tick: 4.0,
            round: 3,
            engine_rng: [1, 2, 3, 4],
            node_rngs: vec![[5, 6, 7, 8], [9, 10, 11, 12]],
            node_tasks: vec![
                vec![Task { id: TaskId(0), size: 1.5, work: 0.25, created_at: 0.0, origin: 0 }],
                vec![],
            ],
            node_heights: vec![1.5, 0.0],
            stats: StatSnapshot {
                height_sum: 1.5,
                height_sq_sum: 2.25,
                stat_ops: 7,
                stat_peak_sum: 3.0,
                stat_peak_sq: 9.0,
            },
            idgen_next: 1,
            down_words: vec![1],
            flights: vec![
                None,
                Some(FlightSnap {
                    task: Task { id: TaskId(9), size: 0.5, work: 0.5, created_at: 1.0, origin: 1 },
                    flag: 2.5,
                    hops: 1,
                    source: 1,
                    from: 1,
                    to: 0,
                    link_weight: 1.0,
                    heat: 0.5,
                    attempts: 2,
                    bounced: false,
                }),
            ],
            free_slots: vec![0],
            in_flight_load: 0.5,
            completed_tasks: 4,
            queue_seq: 6,
            queue: vec![(3.75, 4, Event::LoadArrival { flight: 1 }), (4.5, 5, Event::TaskArrival)],
            ledger: vec![MigrationRecord {
                time: 2.0,
                from: 0,
                to: 1,
                size: 0.5,
                link_weight: 1.0,
                heat: 0.5,
                faulted: true,
            }],
            series: vec![(0.0, 1.0), (1.0, 0.5)],
            shard_layout_k: 2,
            shard_dirty: vec![true, false],
            shard_accums: vec![ShardAccum::new(), ShardAccum::new()],
            balancer_state: Some(Value::Object(vec![(
                "current_class".to_string(),
                Value::UInt(1),
            )])),
            churn_len: 0,
        }
    }

    #[test]
    fn churn_len_round_trips_and_is_omitted_when_zero() {
        let plain = tiny_checkpoint();
        assert!(!plain.to_json().contains("churn_len"), "zero churn must not serialize");
        let mut churned = tiny_checkpoint();
        churned.churn_len = 7;
        let text = churned.to_json();
        assert!(text.contains("\"churn_len\": 7"));
        let back = Checkpoint::from_json(&text).expect("round trip");
        assert_eq!(back, churned);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn json_round_trip_is_exact_and_byte_stable() {
        let cp = tiny_checkpoint();
        let text = cp.to_json();
        let back = Checkpoint::from_json(&text).expect("round trip");
        assert_eq!(back, cp);
        assert_eq!(back.to_json(), text, "re-serialization must be byte-identical");
    }

    #[test]
    fn version_gate_rejects_future_formats() {
        let text = tiny_checkpoint().to_json();
        let future = text.replacen("\"version\": 1", "\"version\": 99", 1);
        let err = Checkpoint::from_json(&future).unwrap_err();
        assert!(err.contains("version 99"), "{err}");
        let missing = text.replacen("\"version\": 1,", "", 1);
        assert!(Checkpoint::from_json(&missing).is_err());
    }

    #[test]
    fn truncated_and_corrupt_bytes_error_cleanly() {
        let text = tiny_checkpoint().to_json();
        for cut in [0, 1, text.len() / 4, text.len() / 2, text.len() - 2] {
            assert!(Checkpoint::from_json(&text[..cut]).is_err(), "cut at {cut}");
        }
        assert!(Checkpoint::from_json("not json at all").is_err());
        // A field with the wrong shape.
        let bad = text.replacen("\"queue_seq\": 6", "\"queue_seq\": \"six\"", 1);
        assert!(Checkpoint::from_json(&bad).is_err());
        // Non-finite floats render as null and must fail to lift.
        let nullified = text.replacen("\"in_flight_load\": 0.5", "\"in_flight_load\": null", 1);
        assert!(Checkpoint::from_json(&nullified).is_err());
    }

    #[test]
    fn unknown_event_kinds_rejected() {
        let text = tiny_checkpoint().to_json();
        let bad = text.replacen("\"kind\": \"task\"", "\"kind\": \"balance-tick\"", 1);
        assert!(Checkpoint::from_json(&bad).unwrap_err().contains("event kind"));
    }

    #[test]
    fn task_shape_validated() {
        let text = tiny_checkpoint().to_json();
        let bad = text.replacen("\"size\": 1.5", "\"size\": -1.5", 1);
        assert!(Checkpoint::from_json(&bad).is_err());
    }

    #[test]
    fn extreme_floats_survive_the_round_trip_bit_exactly() {
        let mut cp = tiny_checkpoint();
        // Values chosen to stress shortest-round-trip float printing:
        // drift-scale subnormal-ish magnitudes, ulp-separated pairs, and
        // negative zero.
        cp.stats.height_sum = 6.123233995736766e-17;
        cp.stats.height_sq_sum = -0.0;
        cp.node_heights = vec![0.1 + 0.2, f64::MIN_POSITIVE];
        cp.in_flight_load = 1.0 + f64::EPSILON;
        let back = Checkpoint::from_json(&cp.to_json()).expect("round trip");
        assert_eq!(back.stats.height_sum.to_bits(), cp.stats.height_sum.to_bits());
        assert_eq!(back.stats.height_sq_sum.to_bits(), cp.stats.height_sq_sum.to_bits());
        for (a, b) in back.node_heights.iter().zip(&cp.node_heights) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(back.in_flight_load.to_bits(), cp.in_flight_load.to_bits());
    }
}
