//! The balancer interface: what any load-balancing policy (the paper's
//! particle-plane algorithm or a baseline) sees and may do.
//!
//! Policies are *node-local*: at each balance tick the engine calls
//! [`LoadBalancer::decide`] once per node with that node's [`NodeView`]
//! (its own tasks plus neighbour heights/link weights — exactly the
//! information a decentralized agent would have). Once per tick,
//! [`LoadBalancer::begin_round`] lets a policy refresh internal per-round
//! state (e.g. the gradient model's propagated pressure map) from the
//! round's global snapshot — modelling the per-round neighbour message
//! exchange those algorithms perform.
//!
//! The paper's in-motion behaviour (a sliding load deciding whether to
//! climb onward at each intermediate node, §5.1) is exposed via
//! [`LoadBalancer::on_arrival`].

use crate::state::SystemState;
use pp_tasking::graph::TaskGraph;
use pp_tasking::resources::ResourceMatrix;
use pp_tasking::task::{Task, TaskId};
use pp_topology::edgeset::EdgeBitSet;
use pp_topology::graph::{NodeId, Topology};
use pp_topology::links::LinkAttrs;
use rand::rngs::StdRng;

/// What a node knows about one of its (up) neighbours.
#[derive(Debug, Clone, Copy)]
pub struct NeighborInfo {
    /// The neighbour's id.
    pub id: NodeId,
    /// The neighbour's current height `h(v_j)`.
    pub height: f64,
    /// The paper's link weight `e_{i,j}` (with the engine's constant `c`).
    pub link_weight: f64,
    /// Raw link attributes (bandwidth, distance, fault probability).
    pub attrs: LinkAttrs,
}

/// A node's local view at decision time.
#[derive(Debug)]
pub struct NodeView<'a> {
    /// The deciding node.
    pub node: NodeId,
    /// Its height `h(v_i)`.
    pub height: f64,
    /// Its resident tasks.
    pub tasks: &'a [Task],
    /// Its live neighbours (links currently down are omitted — this is how
    /// fault awareness reaches the policy). Borrowed from the
    /// [`ViewScratch`] the view was built into.
    pub neighbors: &'a [NeighborInfo],
    /// `neighbors[k].height` as a flat slice — the structure-of-arrays form
    /// of the same data, so feasibility kernels can stream heights without
    /// striding over [`NeighborInfo`] records. Index-aligned with
    /// `neighbors`.
    pub nbr_heights: &'a [f64],
    /// `neighbors[k].link_weight` as a flat slice, index-aligned with
    /// `neighbors`.
    pub nbr_weights: &'a [f64],
    /// The task dependency graph `T`.
    pub task_graph: &'a TaskGraph,
    /// The resource matrix `R`.
    pub resources: &'a ResourceMatrix,
    /// Balance round counter.
    pub round: u64,
    /// Simulation time.
    pub time: f64,
}

/// Reusable backing storage for a [`NodeView`]'s neighbour list. One
/// instance per decision thread; [`build_view`] overwrites it each call, so
/// steady-state view construction performs no heap allocation.
#[derive(Debug, Default)]
pub struct ViewScratch {
    neighbors: Vec<NeighborInfo>,
    /// SoA mirrors of the neighbour list (heights / link weights), filled by
    /// the same [`build_view`] pass and exposed as [`NodeView::nbr_heights`]
    /// / [`NodeView::nbr_weights`].
    nbr_heights: Vec<f64>,
    nbr_weights: Vec<f64>,
}

impl ViewScratch {
    /// An empty scratch buffer.
    pub fn new() -> Self {
        ViewScratch::default()
    }
}

/// Per-edge link context for view building: edge-indexed attributes,
/// optionally precomputed `e_{i,j}` weights for a fixed `c`, and the set of
/// edges currently down.
#[derive(Debug, Clone, Copy)]
pub struct LinkView<'a> {
    /// Link attributes by edge id (see [`pp_topology::links::LinkTable`]).
    pub attrs: &'a [LinkAttrs],
    /// Precomputed weights by edge id; `None` computes `attrs.weight(c)`
    /// per neighbour (fine for tests, avoided on the engine hot path).
    pub weights: Option<&'a [f64]>,
    /// The constant `c` used when `weights` is `None`.
    pub weight_c: f64,
    /// Edges currently down; `None` means every link is up.
    pub down: Option<&'a EdgeBitSet>,
}

impl<'a> LinkView<'a> {
    /// A link view over `state`'s attribute table with all links up and
    /// weights computed on the fly — the test/diagnostic configuration.
    pub fn all_up(state: &'a SystemState, weight_c: f64) -> Self {
        LinkView { attrs: state.links().attrs(), weights: None, weight_c, down: None }
    }

    /// Whether the edge is currently up.
    #[inline]
    pub fn is_up(&self, e: pp_topology::graph::EdgeId) -> bool {
        self.down.is_none_or(|d| !d.contains(e))
    }
}

/// Global per-round snapshot passed to [`LoadBalancer::begin_round`].
#[derive(Debug)]
pub struct GlobalView<'a> {
    /// The network.
    pub topo: &'a Topology,
    /// Heights of all nodes this round.
    pub heights: &'a [f64],
    /// Balance round counter.
    pub round: u64,
    /// Simulation time.
    pub time: f64,
}

/// A load in flight between nodes.
#[derive(Debug, Clone, Copy)]
pub struct MigratingLoad {
    /// The task being moved.
    pub task: Task,
    /// The balancer-specific energy flag (the paper's potential height `h*`;
    /// baselines may ignore it).
    pub flag: f64,
    /// Hops completed so far.
    pub hops: u32,
    /// The node that originally emitted this migration.
    pub source: NodeId,
}

/// One proposed migration: move `task` to neighbour `to`.
#[derive(Debug, Clone, Copy)]
pub struct MigrationIntent {
    /// The task to move (must be resident on the deciding node).
    pub task: TaskId,
    /// Destination (must be a live neighbour).
    pub to: NodeId,
    /// Energy flag to attach to the load (`h*` after this hop for the
    /// particle-plane balancer; 0 for baselines).
    pub flag: f64,
    /// Predicted heat `E_h` charged for this hop (0 for baselines) —
    /// recorded in the traffic ledger for the heat ≡ traffic experiment.
    pub heat: f64,
}

/// A load-balancing policy.
///
/// `decide`/`on_arrival` take `&self` so the engine may evaluate nodes in
/// parallel; per-round mutable state belongs in `begin_round`.
pub trait LoadBalancer: Send + Sync {
    /// Human-readable policy name (used in reports and tables).
    fn name(&self) -> &str;

    /// Per-round refresh from the global snapshot (optional).
    fn begin_round(&mut self, _global: &GlobalView<'_>) {}

    /// Migration decisions for a stationary node at a balance tick.
    fn decide(&self, view: &NodeView<'_>, rng: &mut StdRng) -> Vec<MigrationIntent>;

    /// Appends this node's migration decisions to `out` — the allocation-
    /// free form of [`LoadBalancer::decide`] the sweep's hot path uses.
    ///
    /// The engine hands every node of a shard the *same* shard-local arena,
    /// so a policy overriding this writes straight into memory owned by the
    /// worker that owns the shard — no per-node `Vec`, no global-allocator
    /// traffic mid-round. Must append exactly what `decide` would return,
    /// in the same order, with the same RNG draws; the default delegates to
    /// `decide` and is always correct.
    fn decide_into(&self, view: &NodeView<'_>, rng: &mut StdRng, out: &mut Vec<MigrationIntent>) {
        out.extend(self.decide(view, rng));
    }

    /// Whether `decide` is **quiescence-stable**: given a view whose tasks,
    /// heights and live neighbour links are unchanged since a call that
    /// returned no intents, `decide` is guaranteed to (a) return no intents
    /// again and (b) draw nothing from the RNG — regardless of the `round`
    /// and `time` fields, which keep advancing.
    ///
    /// A stable policy's [`LoadBalancer::begin_round`] must additionally be
    /// **effect-free**: no internal state mutation, no RNG, no observable
    /// side effect. The sharded pipeline still calls it every round, but
    /// the event strategy ([`crate::strategy::SimulationStrategy::Event`])
    /// fast-forwards whole quiescent rounds — `begin_round` included — and
    /// byte-exactness of the skip relies on those calls having been no-ops.
    ///
    /// The engine's sharded tick pipeline uses this to skip the decision
    /// sweep over shards whose state (and halo) has not changed, with
    /// byte-identical outcomes. Policies with per-round internal state
    /// (`begin_round`), round-dependent randomness, or RNG draws on the
    /// empty-decision path must return `false` — the default, which is
    /// always safe.
    fn quiescence_stable(&self) -> bool {
        false
    }

    /// Decision for a load arriving at `view.node` mid-flight: `Some` to
    /// forward it onward, `None` to deposit it here. Default: deposit.
    fn on_arrival(
        &self,
        _view: &NodeView<'_>,
        _load: &MigratingLoad,
        _rng: &mut StdRng,
    ) -> Option<MigrationIntent> {
        None
    }

    /// Serializes the policy's *internal dynamic* state for a checkpoint —
    /// anything `begin_round` or `decide` mutates or caches across rounds
    /// (e.g. the gradient model's propagated pressure map). Configuration
    /// that the policy was constructed with must NOT be included: a restore
    /// always targets a policy rebuilt from the same spec.
    ///
    /// The default returns `None` — correct for stateless policies, and the
    /// engine then skips [`LoadBalancer::load_state`] entirely on restore.
    fn save_state(&self) -> Option<serde::Value> {
        None
    }

    /// Restores internal state captured by [`LoadBalancer::save_state`].
    /// Called by [`Engine::restore`](crate::engine::Engine::restore) only
    /// when the checkpoint carries a state value; `nodes` is the engine's
    /// node count, so per-node state can be length-validated. The default
    /// is a no-op `Ok(())`, so stateless policies tolerate checkpoints
    /// written by a (hypothetical) stateful ancestor; stateful policies
    /// must override both methods together and report malformed values as
    /// `Err`, never panic — checkpoint bytes are untrusted input.
    fn load_state(&mut self, _state: &serde::Value, _nodes: usize) -> Result<(), String> {
        Ok(())
    }
}

/// A policy that never moves anything — the "no balancing" control.
#[derive(Debug, Default, Clone)]
pub struct NullBalancer;

impl LoadBalancer for NullBalancer {
    fn name(&self) -> &str {
        "null"
    }

    fn decide(&self, _view: &NodeView<'_>, _rng: &mut StdRng) -> Vec<MigrationIntent> {
        Vec::new()
    }

    fn quiescence_stable(&self) -> bool {
        true
    }
}

/// Builds the [`NodeView`] of `node` into `scratch` (helper shared by the
/// engine and by balancer unit tests).
///
/// The neighbour list is written into `scratch` and borrowed by the
/// returned view, so steady-state calls allocate nothing. Neighbours and
/// their edge ids come from the topology's CSR slices; link attributes and
/// weights are read from the edge-indexed tables in `links` — no hashing
/// anywhere on the path.
pub fn build_view<'a>(
    scratch: &'a mut ViewScratch,
    state: &'a SystemState,
    node: NodeId,
    heights: &'a [f64],
    links: &LinkView<'_>,
    round: u64,
    time: f64,
) -> NodeView<'a> {
    scratch.neighbors.clear();
    scratch.nbr_heights.clear();
    scratch.nbr_weights.clear();
    let nbrs = state.topo.neighbors(node);
    let eids = state.topo.neighbor_edge_ids(node);
    for (&j, &e) in nbrs.iter().zip(eids) {
        if !links.is_up(e) {
            continue;
        }
        let attrs = links.attrs[e.idx()];
        let link_weight = match links.weights {
            Some(w) => w[e.idx()],
            None => attrs.weight(links.weight_c),
        };
        let height = heights[j.idx()];
        scratch.neighbors.push(NeighborInfo { id: j, height, link_weight, attrs });
        scratch.nbr_heights.push(height);
        scratch.nbr_weights.push(link_weight);
    }
    NodeView {
        node,
        height: heights[node.idx()],
        tasks: state.node(node).tasks(),
        neighbors: &scratch.neighbors,
        nbr_heights: &scratch.nbr_heights,
        nbr_weights: &scratch.nbr_weights,
        task_graph: &state.task_graph,
        resources: &state.resources,
        round,
        time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_topology::graph::Topology;
    use pp_topology::links::LinkMap;
    use rand::SeedableRng;

    fn ring_state() -> SystemState {
        let topo = Topology::ring(4);
        let links = LinkMap::uniform(&topo, LinkAttrs::default());
        SystemState::new(topo, links, TaskGraph::new(), ResourceMatrix::none())
    }

    #[test]
    fn null_balancer_does_nothing() {
        let mut state = ring_state();
        state.add_task(NodeId(0), Task::new(TaskId(0), 5.0, 0));
        let mut scratch = ViewScratch::new();
        let heights = state.heights();
        let view = build_view(
            &mut scratch,
            &state,
            NodeId(0),
            &heights,
            &LinkView::all_up(&state, 1.0),
            0,
            0.0,
        );
        let mut rng = StdRng::seed_from_u64(0);
        let b = NullBalancer;
        assert!(b.decide(&view, &mut rng).is_empty());
        assert_eq!(b.name(), "null");
    }

    #[test]
    fn view_includes_all_up_neighbors() {
        let state = ring_state();
        let heights = vec![1.0, 2.0, 3.0, 4.0];
        let mut scratch = ViewScratch::new();
        let view = build_view(
            &mut scratch,
            &state,
            NodeId(0),
            &heights,
            &LinkView::all_up(&state, 1.0),
            3,
            1.5,
        );
        assert_eq!(view.neighbors.len(), 2);
        assert_eq!(view.round, 3);
        let ids: Vec<u32> = view.neighbors.iter().map(|n| n.id.0).collect();
        assert_eq!(ids, vec![1, 3]);
        assert_eq!(view.neighbors[0].height, 2.0);
    }

    #[test]
    fn down_links_hidden_from_view() {
        let state = ring_state();
        let heights = vec![0.0; 4];
        let mut down = EdgeBitSet::new(state.topo.edge_count());
        down.insert(state.topo.edge_index(NodeId(0), NodeId(1)).unwrap());
        let links = LinkView { down: Some(&down), ..LinkView::all_up(&state, 1.0) };
        let mut scratch = ViewScratch::new();
        let view = build_view(&mut scratch, &state, NodeId(0), &heights, &links, 0, 0.0);
        let ids: Vec<u32> = view.neighbors.iter().map(|n| n.id.0).collect();
        assert_eq!(ids, vec![3]);
    }

    #[test]
    fn scratch_is_reusable_across_nodes() {
        let state = ring_state();
        let heights = vec![0.0; 4];
        let mut scratch = ViewScratch::new();
        for node in [NodeId(0), NodeId(2), NodeId(1)] {
            let view = build_view(
                &mut scratch,
                &state,
                node,
                &heights,
                &LinkView::all_up(&state, 1.0),
                0,
                0.0,
            );
            assert_eq!(view.neighbors.len(), 2);
            assert_eq!(view.node, node);
        }
    }

    #[test]
    fn precomputed_weights_override_on_the_fly() {
        let state = ring_state();
        let heights = vec![0.0; 4];
        let table: Vec<f64> = (0..state.topo.edge_count()).map(|i| 10.0 + i as f64).collect();
        let links = LinkView { weights: Some(&table), ..LinkView::all_up(&state, 1.0) };
        let mut scratch = ViewScratch::new();
        let view = build_view(&mut scratch, &state, NodeId(0), &heights, &links, 0, 0.0);
        for nb in view.neighbors {
            let e = state.topo.edge_index(NodeId(0), nb.id).unwrap();
            assert_eq!(nb.link_weight, table[e.idx()]);
        }
    }

    #[test]
    fn soa_mirrors_stay_aligned_with_the_neighbor_list() {
        let state = ring_state();
        let heights = vec![1.0, 2.0, 3.0, 4.0];
        let mut down = EdgeBitSet::new(state.topo.edge_count());
        down.insert(state.topo.edge_index(NodeId(0), NodeId(1)).unwrap());
        let links = LinkView { down: Some(&down), ..LinkView::all_up(&state, 2.0) };
        let mut scratch = ViewScratch::new();
        for node in [NodeId(0), NodeId(2), NodeId(0)] {
            let view = build_view(&mut scratch, &state, node, &heights, &links, 0, 0.0);
            assert_eq!(view.nbr_heights.len(), view.neighbors.len());
            assert_eq!(view.nbr_weights.len(), view.neighbors.len());
            for (k, nb) in view.neighbors.iter().enumerate() {
                assert_eq!(view.nbr_heights[k].to_bits(), nb.height.to_bits());
                assert_eq!(view.nbr_weights[k].to_bits(), nb.link_weight.to_bits());
            }
        }
    }

    #[test]
    fn default_on_arrival_deposits() {
        let state = ring_state();
        let heights = vec![0.0; 4];
        let mut scratch = ViewScratch::new();
        let view = build_view(
            &mut scratch,
            &state,
            NodeId(1),
            &heights,
            &LinkView::all_up(&state, 1.0),
            0,
            0.0,
        );
        let mut rng = StdRng::seed_from_u64(0);
        let load = MigratingLoad {
            task: Task::new(TaskId(9), 1.0, 0),
            flag: 0.0,
            hops: 1,
            source: NodeId(0),
        };
        assert!(NullBalancer.on_arrival(&view, &load, &mut rng).is_none());
    }
}
