//! The balancer interface: what any load-balancing policy (the paper's
//! particle-plane algorithm or a baseline) sees and may do.
//!
//! Policies are *node-local*: at each balance tick the engine calls
//! [`LoadBalancer::decide`] once per node with that node's [`NodeView`]
//! (its own tasks plus neighbour heights/link weights — exactly the
//! information a decentralized agent would have). Once per tick,
//! [`LoadBalancer::begin_round`] lets a policy refresh internal per-round
//! state (e.g. the gradient model's propagated pressure map) from the
//! round's global snapshot — modelling the per-round neighbour message
//! exchange those algorithms perform.
//!
//! The paper's in-motion behaviour (a sliding load deciding whether to
//! climb onward at each intermediate node, §5.1) is exposed via
//! [`LoadBalancer::on_arrival`].

use crate::state::SystemState;
use pp_tasking::graph::TaskGraph;
use pp_tasking::resources::ResourceMatrix;
use pp_tasking::task::{Task, TaskId};
use pp_topology::graph::{NodeId, Topology};
use pp_topology::links::LinkAttrs;
use rand::rngs::StdRng;

/// What a node knows about one of its (up) neighbours.
#[derive(Debug, Clone, Copy)]
pub struct NeighborInfo {
    /// The neighbour's id.
    pub id: NodeId,
    /// The neighbour's current height `h(v_j)`.
    pub height: f64,
    /// The paper's link weight `e_{i,j}` (with the engine's constant `c`).
    pub link_weight: f64,
    /// Raw link attributes (bandwidth, distance, fault probability).
    pub attrs: LinkAttrs,
}

/// A node's local view at decision time.
#[derive(Debug)]
pub struct NodeView<'a> {
    /// The deciding node.
    pub node: NodeId,
    /// Its height `h(v_i)`.
    pub height: f64,
    /// Its resident tasks.
    pub tasks: &'a [Task],
    /// Its live neighbours (links currently down are omitted — this is how
    /// fault awareness reaches the policy).
    pub neighbors: Vec<NeighborInfo>,
    /// The task dependency graph `T`.
    pub task_graph: &'a TaskGraph,
    /// The resource matrix `R`.
    pub resources: &'a ResourceMatrix,
    /// Balance round counter.
    pub round: u64,
    /// Simulation time.
    pub time: f64,
}

/// Global per-round snapshot passed to [`LoadBalancer::begin_round`].
#[derive(Debug)]
pub struct GlobalView<'a> {
    /// The network.
    pub topo: &'a Topology,
    /// Heights of all nodes this round.
    pub heights: &'a [f64],
    /// Balance round counter.
    pub round: u64,
    /// Simulation time.
    pub time: f64,
}

/// A load in flight between nodes.
#[derive(Debug, Clone, Copy)]
pub struct MigratingLoad {
    /// The task being moved.
    pub task: Task,
    /// The balancer-specific energy flag (the paper's potential height `h*`;
    /// baselines may ignore it).
    pub flag: f64,
    /// Hops completed so far.
    pub hops: u32,
    /// The node that originally emitted this migration.
    pub source: NodeId,
}

/// One proposed migration: move `task` to neighbour `to`.
#[derive(Debug, Clone, Copy)]
pub struct MigrationIntent {
    /// The task to move (must be resident on the deciding node).
    pub task: TaskId,
    /// Destination (must be a live neighbour).
    pub to: NodeId,
    /// Energy flag to attach to the load (`h*` after this hop for the
    /// particle-plane balancer; 0 for baselines).
    pub flag: f64,
    /// Predicted heat `E_h` charged for this hop (0 for baselines) —
    /// recorded in the traffic ledger for the heat ≡ traffic experiment.
    pub heat: f64,
}

/// A load-balancing policy.
///
/// `decide`/`on_arrival` take `&self` so the engine may evaluate nodes in
/// parallel; per-round mutable state belongs in `begin_round`.
pub trait LoadBalancer: Send + Sync {
    /// Human-readable policy name (used in reports and tables).
    fn name(&self) -> &str;

    /// Per-round refresh from the global snapshot (optional).
    fn begin_round(&mut self, _global: &GlobalView<'_>) {}

    /// Migration decisions for a stationary node at a balance tick.
    fn decide(&self, view: &NodeView<'_>, rng: &mut StdRng) -> Vec<MigrationIntent>;

    /// Decision for a load arriving at `view.node` mid-flight: `Some` to
    /// forward it onward, `None` to deposit it here. Default: deposit.
    fn on_arrival(
        &self,
        _view: &NodeView<'_>,
        _load: &MigratingLoad,
        _rng: &mut StdRng,
    ) -> Option<MigrationIntent> {
        None
    }
}

/// A policy that never moves anything — the "no balancing" control.
#[derive(Debug, Default, Clone)]
pub struct NullBalancer;

impl LoadBalancer for NullBalancer {
    fn name(&self) -> &str {
        "null"
    }

    fn decide(&self, _view: &NodeView<'_>, _rng: &mut StdRng) -> Vec<MigrationIntent> {
        Vec::new()
    }
}

/// Builds the [`NodeView`] of `node` from system state (helper shared by the
/// engine and by balancer unit tests).
pub fn build_view<'a>(
    state: &'a SystemState,
    node: NodeId,
    heights: &[f64],
    weight_c: f64,
    is_link_up: impl Fn(NodeId, NodeId) -> bool,
    round: u64,
    time: f64,
) -> NodeView<'a> {
    let neighbors = state
        .topo
        .neighbors(node)
        .iter()
        .filter(|&&j| is_link_up(node, j))
        .map(|&j| {
            let attrs = *state.links.get(node, j).expect("missing link attributes");
            NeighborInfo {
                id: j,
                height: heights[j.idx()],
                link_weight: attrs.weight(weight_c),
                attrs,
            }
        })
        .collect();
    NodeView {
        node,
        height: heights[node.idx()],
        tasks: state.node(node).tasks(),
        neighbors,
        task_graph: &state.task_graph,
        resources: &state.resources,
        round,
        time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_topology::graph::Topology;
    use pp_topology::links::LinkMap;
    use rand::SeedableRng;

    #[test]
    fn null_balancer_does_nothing() {
        let topo = Topology::ring(4);
        let links = LinkMap::uniform(&topo, LinkAttrs::default());
        let mut state = SystemState::new(topo, links, TaskGraph::new(), ResourceMatrix::none());
        state.node_mut(NodeId(0)).add_task(Task::new(TaskId(0), 5.0, 0));
        let heights = state.heights();
        let view = build_view(&state, NodeId(0), &heights, 1.0, |_, _| true, 0, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let b = NullBalancer;
        assert!(b.decide(&view, &mut rng).is_empty());
        assert_eq!(b.name(), "null");
    }

    #[test]
    fn view_includes_all_up_neighbors() {
        let topo = Topology::ring(4);
        let links = LinkMap::uniform(&topo, LinkAttrs::default());
        let state = SystemState::new(topo, links, TaskGraph::new(), ResourceMatrix::none());
        let heights = vec![1.0, 2.0, 3.0, 4.0];
        let view = build_view(&state, NodeId(0), &heights, 1.0, |_, _| true, 3, 1.5);
        assert_eq!(view.neighbors.len(), 2);
        assert_eq!(view.round, 3);
        let ids: Vec<u32> = view.neighbors.iter().map(|n| n.id.0).collect();
        assert_eq!(ids, vec![1, 3]);
        assert_eq!(view.neighbors[0].height, 2.0);
    }

    #[test]
    fn down_links_hidden_from_view() {
        let topo = Topology::ring(4);
        let links = LinkMap::uniform(&topo, LinkAttrs::default());
        let state = SystemState::new(topo, links, TaskGraph::new(), ResourceMatrix::none());
        let heights = vec![0.0; 4];
        let view =
            build_view(&state, NodeId(0), &heights, 1.0, |u, v| !(u.0 == 0 && v.0 == 1), 0, 0.0);
        let ids: Vec<u32> = view.neighbors.iter().map(|n| n.id.0).collect();
        assert_eq!(ids, vec![3]);
    }

    #[test]
    fn default_on_arrival_deposits() {
        let topo = Topology::ring(4);
        let links = LinkMap::uniform(&topo, LinkAttrs::default());
        let state = SystemState::new(topo, links, TaskGraph::new(), ResourceMatrix::none());
        let heights = vec![0.0; 4];
        let view = build_view(&state, NodeId(1), &heights, 1.0, |_, _| true, 0, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let load = MigratingLoad {
            task: Task::new(TaskId(9), 1.0, 0),
            flag: 0.0,
            hops: 1,
            source: NodeId(0),
        };
        assert!(NullBalancer.on_arrival(&view, &load, &mut rng).is_none());
    }
}
