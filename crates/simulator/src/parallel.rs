//! A parallel sweep runner: fan a set of independent experiment
//! configurations out over worker threads and collect results in input
//! order.
//!
//! Work pickup is **lock-free**: instead of the old channel pair (every
//! item enqueued, claimed, and its result sent back — four queue
//! operations per item), workers claim indices off one shared atomic
//! cursor and write results into disjoint pre-sized slots. One `fetch_add`
//! per item is the entire coordination cost; the only lock is the failure
//! list, touched exclusively on the panic path.
//!
//! This is the harness the benchmark binaries use to evaluate parameter
//! grids; each simulation is single-threaded and deterministic, parallelism
//! is across configurations, so results are identical regardless of thread
//! count.

#![allow(unsafe_code)] // disjoint-slot hand-off, justified inline

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Logs the `available_parallelism()` failure once per process: the
/// degraded single-thread fallback should be visible, not a silent 4×
/// overcommit on a host that could not even report its core count.
fn warn_parallelism_unknown() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        eprintln!("par_map: available_parallelism() failed; threads=0 falls back to 1 worker");
    });
}

/// Inputs shorter than this run inline even when more threads were
/// requested: spawning a thread scope costs on the order of 100 µs, which
/// dominates tiny parameter grids (the `threads == n == 2` shape) — and a
/// sweep that small finishes within the same order of magnitude
/// sequentially even when each item is a whole simulation.
const SPAWN_THRESHOLD: usize = 4;

/// Maps `f` over `items` using up to `threads` worker threads, preserving
/// input order in the result.
///
/// `threads = 0` means "use available parallelism" — and when the host
/// cannot report it, the fallback is 1 (logged once), never a fabricated
/// core count. Inputs shorter than [`SPAWN_THRESHOLD`] are mapped inline
/// without spawning.
///
/// # Panics
/// If `f` panics on any item, the panic is re-raised on the caller with
/// the failing item indices in the message (all items still drain first,
/// so no worker is left holding unclaimed work).
pub fn par_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or_else(|_| {
            warn_parallelism_unknown();
            1
        })
    } else {
        threads
    }
    .min(n);
    if threads <= 1 || n < SPAWN_THRESHOLD {
        return items.into_iter().map(f).collect();
    }

    let mut items = items;
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    /// Raw slot base made `Sync`; soundness rests on the cursor handing
    /// every index to exactly one worker (same disjointness argument as
    /// the shard pool's slot hand-off).
    struct Base<U>(*mut U);
    // SAFETY: workers dereference disjoint offsets only (each index is
    // claimed by exactly one `fetch_add` winner) and both allocations
    // outlive the scope below.
    unsafe impl<U: Send> Sync for Base<U> {}
    let item_base = Base(items.as_mut_ptr());
    let result_base = Base(results.as_mut_ptr());
    // The workers move every element out of the item buffer by raw read;
    // drop the vec's claim on them (capacity stays owned and is freed on
    // return) so nothing is dropped twice.
    // SAFETY: 0 ≤ capacity, and every element is moved out exactly once
    // below — the cursor loop only stops once the counter passes `n`.
    unsafe { items.set_len(0) };
    let cursor = AtomicUsize::new(0);
    // Failure indices; cold path only — locked iff an item panicked.
    let failed = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        for _ in 0..threads {
            let (item_base, result_base) = (&item_base, &result_base);
            let (cursor, failed, f) = (&cursor, &failed, &f);
            s.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // SAFETY: this thread won index `i`; the element is read
                // out exactly once (the vec's len is already 0).
                let item = unsafe { std::ptr::read(item_base.0.add(i)) };
                // Catch per item: one poisoned configuration must not kill
                // the worker (stranding the cursor's remaining range) or
                // surface as an indexless scope panic.
                match catch_unwind(AssertUnwindSafe(|| f(item))) {
                    // SAFETY: slot `i` belongs to this thread alone; the
                    // scope join publishes the write to the caller.
                    Ok(r) => unsafe { *result_base.0.add(i) = Some(r) },
                    Err(_) => failed.lock().expect("failure list").push(i),
                }
            });
        }
    });

    let mut failed = failed.into_inner().expect("failure list");
    if !failed.is_empty() {
        failed.sort_unstable();
        panic!("par_map: f panicked on item(s) {failed:?} of {n}");
    }
    results.into_iter().map(|r| r.expect("worker delivered")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(items, 8, |x| x * 2);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn single_thread_path() {
        let out = par_map(vec![1, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn tiny_inputs_run_inline_on_the_caller_thread() {
        // Below SPAWN_THRESHOLD no worker scope is spawned, so every item
        // is mapped on the calling thread even with threads > 1.
        let caller = std::thread::current().id();
        let out = par_map(vec![10, 20, 30], 8, |x| {
            assert_eq!(std::thread::current().id(), caller, "tiny input spawned a worker");
            x + 1
        });
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn threshold_boundary_still_processes_everything() {
        let at = par_map((0..SPAWN_THRESHOLD).collect::<Vec<_>>(), 4, |x| x * 3);
        assert_eq!(at, (0..SPAWN_THRESHOLD).map(|x| x * 3).collect::<Vec<_>>());
        let below = par_map((0..SPAWN_THRESHOLD - 1).collect::<Vec<_>>(), 4, |x| x * 3);
        assert_eq!(below, (0..SPAWN_THRESHOLD - 1).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn zero_means_auto() {
        let out = par_map(vec![5; 64], 0, |x| x);
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn all_items_processed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = par_map((0..500).collect::<Vec<_>>(), 4, |x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 500);
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn worker_panic_reports_failing_item_indices() {
        let caught = std::panic::catch_unwind(|| {
            par_map((0..100).collect::<Vec<i32>>(), 4, |x| {
                if x == 41 || x == 17 {
                    panic!("bad item");
                }
                x
            })
        });
        let msg = *caught.expect_err("must propagate").downcast::<String>().expect("message");
        assert!(msg.contains("[17, 41]"), "panic names the failing items: {msg}");
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let f = |x: u64| x.wrapping_mul(0x9E3779B97F4A7C15) >> 7;
        let a = par_map((0..256).collect::<Vec<_>>(), 1, f);
        let b = par_map((0..256).collect::<Vec<_>>(), 7, f);
        assert_eq!(a, b);
    }

    #[test]
    fn owned_buffers_drop_cleanly_through_the_raw_handoff() {
        // Heap-owning items and results: every item must be moved out
        // exactly once (no double drop, no leak) even when some panic.
        let items: Vec<String> = (0..64).map(|i| format!("item-{i}")).collect();
        let out = par_map(items, 4, |s| s + "!");
        assert_eq!(out.len(), 64);
        assert_eq!(out[9], "item-9!");
        let caught = std::panic::catch_unwind(|| {
            par_map((0..64).map(|i| format!("{i}")).collect::<Vec<_>>(), 4, |s| {
                if s == "13" {
                    panic!("boom");
                }
                s
            })
        });
        let msg = *caught.expect_err("must propagate").downcast::<String>().expect("message");
        assert!(msg.contains("[13]"), "{msg}");
    }
}
